"""Multi-level top-down value mining -- §4.2's second optimisation.

"Because usually bitmaps are constructed at multiple levels ... we begin
with high-level bitmaps to quickly filter the low correlated value subsets.
Then we only look at the low-level bitvectors belonging to the
high-correlated bitvectors of high-level bitmaps."

The justification is Equation 7's monotonicity claim for value subsets
(top-down pruning is safe for values, while spatial subsets must be mined
bottom-up -- Equation 8's counter-example -- which single-level Algorithm 2
already does by evaluating units directly).

:func:`correlation_mining_multilevel` walks the top level's bin pairs, and
descends only into children of pairs whose high-level MI contribution
clears ``descend_threshold``; the low-level survivors then run the normal
value+spatial evaluation.  The work saved is reported in
:class:`MultiLevelStats` for the pruning-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitmap.index import MultiLevelBitmapIndex
from repro.bitmap.ops import auto_count, auto_op
from repro.bitmap.units import n_units, unit_popcounts, unit_sizes
from repro.metrics.entropy import mi_term_from_cell
from repro.mining.correlation import (
    MiningResult,
    SpatialSubsetHit,
    ValueSubsetHit,
    _unit_mi,
)


@dataclass
class MultiLevelStats:
    """Work accounting of the top-down walk."""

    high_pairs_evaluated: int = 0
    high_pairs_descended: int = 0
    low_pairs_evaluated: int = 0
    low_pairs_skipped: int = 0


def correlation_mining_multilevel(
    ml_a: MultiLevelBitmapIndex,
    ml_b: MultiLevelBitmapIndex,
    *,
    value_threshold: float,
    spatial_threshold: float,
    unit_bits: int,
    descend_threshold: float | None = None,
) -> tuple[MiningResult, MultiLevelStats]:
    """Two-level top-down mining (top level -> low level -> spatial units).

    ``descend_threshold`` defaults to ``value_threshold``: per Equation 7 a
    parent pair's MI contribution upper-bounds (under the paper's model)
    any child pair's, so a parent below the value threshold cannot contain
    an interesting child.
    """
    if ml_a.n_levels < 2 or ml_b.n_levels < 2:
        raise ValueError("multi-level mining needs at least two index levels")
    if descend_threshold is None:
        descend_threshold = value_threshold

    low_a, low_b = ml_a.low, ml_b.low
    high_a, high_b = ml_a.levels[-1], ml_b.levels[-1]
    level_a, level_b = ml_a.n_levels - 1, ml_b.n_levels - 1
    n = low_a.n_elements
    if n != low_b.n_elements:
        raise ValueError("indices cover different element sets")

    sizes = unit_sizes(n, unit_bits)
    total_units = n_units(n, unit_bits)
    counts_low_a = low_a.bin_counts()
    counts_low_b = low_b.bin_counts()
    counts_high_a = high_a.bin_counts()
    counts_high_b = high_b.bin_counts()

    result = MiningResult()
    stats = MultiLevelStats()
    a_units_cache: dict[int, object] = {}
    b_units_cache: dict[int, object] = {}

    def _children(ml: MultiLevelBitmapIndex, level: int, bin_id: int) -> list[int]:
        """Resolve a top-level bin down to low-level bin ids."""
        ids = [bin_id]
        for lvl in range(level, 0, -1):
            ids = [c for b in ids for c in ml.children(lvl, b)]
        return ids

    for hi in range(high_a.n_bins):
        for hj in range(high_b.n_bins):
            stats.high_pairs_evaluated += 1
            # Density-dispatched count: high-level bins are usually dense
            # (unions of children), low-level ones sparse -- auto_count
            # picks the compressed-domain kernel only when both compress.
            jc = auto_count(high_a.bitvectors[hi], high_b.bitvectors[hj], "and")
            parent_mi = mi_term_from_cell(
                jc, int(counts_high_a[hi]), int(counts_high_b[hj]), n
            )
            children_a = _children(ml_a, level_a, hi)
            children_b = _children(ml_b, level_b, hj)
            n_child_pairs = len(children_a) * len(children_b)
            if parent_mi < descend_threshold:
                stats.low_pairs_skipped += n_child_pairs
                continue
            stats.high_pairs_descended += 1
            for i in children_a:
                if counts_low_a[i] == 0:
                    stats.low_pairs_evaluated += len(children_b)
                    continue
                for j in children_b:
                    stats.low_pairs_evaluated += 1
                    result.n_pairs_evaluated += 1
                    if counts_low_b[j] == 0:
                        continue
                    va, vb = low_a.bitvectors[i], low_b.bitvectors[j]
                    cnt = auto_count(va, vb, "and")
                    value_mi = mi_term_from_cell(
                        cnt, int(counts_low_a[i]), int(counts_low_b[j]), n
                    )
                    if value_mi < value_threshold:
                        continue
                    # Only survivors materialise their joint bitvector.
                    joint = auto_op(va, vb, "and")
                    result.n_pairs_survived += 1
                    result.value_hits.append(ValueSubsetHit(i, j, cnt, value_mi))
                    if i not in a_units_cache:
                        a_units_cache[i] = unit_popcounts(low_a.bitvectors[i], unit_bits)
                    if j not in b_units_cache:
                        b_units_cache[j] = unit_popcounts(low_b.bitvectors[j], unit_bits)
                    joint_u = unit_popcounts(joint, unit_bits)
                    result.n_units_evaluated += total_units
                    unit_mi = _unit_mi(
                        joint_u, a_units_cache[i], b_units_cache[j], sizes
                    )
                    for unit in [int(u) for u in joint_u.nonzero()[0]]:
                        if unit_mi[unit] >= spatial_threshold:
                            result.spatial_hits.append(
                                SpatialSubsetHit(
                                    i, j, unit, int(joint_u[unit]), float(unit_mi[unit])
                                )
                            )
    return result, stats
