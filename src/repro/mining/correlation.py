"""Correlation mining between two variables -- Algorithm 2 of the paper.

Given bitmap indices of two variables over the same (Z-ordered) element
set, find the *value subsets* (bin pairs) and *spatial subsets* (Z-order
units within a bin pair) with high mutual information:

1. **joint step** -- for every bitvector pair ``(A_i, B_j)`` compute the
   joint bitvector ``A_i AND B_j`` and its popcount;
2. **value pruning** -- evaluate the pairwise MI contribution
   ``I(A_i; B_j)`` (Equation 7 cell term); discard pairs below
   ``value_threshold`` (the paper's THRESHOLD1 / T);
3. **spatial step** -- for surviving pairs, partition the joint bitvector
   into ``unit_bits``-sized spatial units and keep units whose local MI
   exceeds ``spatial_threshold`` (THRESHOLD2 / T').

The per-unit MI uses the unit-local joint/marginal counts, i.e. it treats
the unit as its own region -- exactly what "calculate the mutual
information within each spatial unit" prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitmap.index import BitmapIndex
from repro.bitmap.units import n_units, unit_popcounts, unit_sizes
from repro.bitmap.wah import WAHBitVector
from repro.metrics.entropy import mi_term_from_cell


@dataclass(frozen=True)
class ValueSubsetHit:
    """A correlated value subset: bin ``a_bin`` of A with bin ``b_bin`` of B."""

    a_bin: int
    b_bin: int
    joint_count: int
    mutual_information: float


@dataclass(frozen=True)
class SpatialSubsetHit:
    """A correlated spatial unit inside a correlated value subset."""

    a_bin: int
    b_bin: int
    unit: int
    joint_count: int
    mutual_information: float


@dataclass
class MiningResult:
    """Everything Algorithm 2 reports, plus work counters for benchmarks."""

    value_hits: list[ValueSubsetHit] = field(default_factory=list)
    spatial_hits: list[SpatialSubsetHit] = field(default_factory=list)
    n_pairs_evaluated: int = 0
    n_pairs_survived: int = 0
    n_units_evaluated: int = 0

    def spatial_units(self) -> set[int]:
        """Distinct spatial units flagged by any bin pair."""
        return {h.unit for h in self.spatial_hits}

    def __repr__(self) -> str:
        return (
            f"MiningResult(value_hits={len(self.value_hits)}, "
            f"spatial_hits={len(self.spatial_hits)}, "
            f"pairs={self.n_pairs_survived}/{self.n_pairs_evaluated})"
        )


def _unit_mi(
    joint_u: np.ndarray,
    a_u: np.ndarray,
    b_u: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Vectorised per-unit MI cell term (unit-local distributions)."""
    out = np.zeros(joint_u.size, dtype=np.float64)
    ok = (joint_u > 0) & (sizes > 0)
    if not np.any(ok):
        return out
    p_ab = joint_u[ok] / sizes[ok]
    p_a = a_u[ok] / sizes[ok]
    p_b = b_u[ok] / sizes[ok]
    out[ok] = p_ab * np.log2(p_ab / (p_a * p_b))
    return out


def correlation_mining(
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    *,
    value_threshold: float,
    spatial_threshold: float,
    unit_bits: int,
    threshold: float | None = None,
) -> MiningResult:
    """Algorithm 2: mine correlated value and spatial subsets via bitmaps.

    The m x n joint step is density-dispatched once per call: when both
    indices compress below ``threshold`` (default
    :data:`~repro.bitmap.ops.STREAMING_COUNT_RATIO_THRESHOLD`) every pair's
    joint count runs in the compressed domain and only *surviving* pairs
    materialise their joint bitvector (run-merge); otherwise each bin is
    decompressed once into the memoised group matrix and ANDs are row ops.
    """
    if index_a.n_elements != index_b.n_elements:
        raise ValueError(
            "indices cover different element sets: "
            f"{index_a.n_elements} != {index_b.n_elements}"
        )
    n = index_a.n_elements
    total_units = n_units(n, unit_bits)
    sizes = unit_sizes(n, unit_bits)
    result = MiningResult()

    from repro.bitmap.ops import (
        STREAMING_COUNT_RATIO_THRESHOLD,
        and_count_streaming,
        logical_op_runmerge,
    )
    from repro.bitmap.units import unit_popcounts_groups
    from repro.bitmap.wah import compress_groups
    from repro.util.bits import popcount_total

    t = STREAMING_COUNT_RATIO_THRESHOLD if threshold is None else threshold
    streaming = (
        index_a.compression_ratio() <= t and index_b.compression_ratio() <= t
    )
    group_aligned = unit_bits % 31 == 0
    if not streaming:
        # Decompress each bin's groups once; pairwise ANDs become row ops
        # -- the word-level work the paper counts as "m x n bitwise ANDs".
        ga = index_a.group_matrix()
        gb = index_b.group_matrix()

    # Per-unit marginals of every bin, computed once (reused across pairs).
    a_units = [unit_popcounts(v, unit_bits) for v in index_a.bitvectors]
    b_units = [unit_popcounts(v, unit_bits) for v in index_b.bitvectors]
    counts_a = index_a.bin_counts()
    counts_b = index_b.bin_counts()

    for i in range(index_a.n_bins):  # Alg. 2 line 1
        if counts_a[i] == 0:
            result.n_pairs_evaluated += index_b.n_bins
            continue
        for j in range(index_b.n_bins):  # line 2
            result.n_pairs_evaluated += 1
            if counts_b[j] == 0:
                continue
            if streaming:  # line 3 (AND in the compressed domain)
                jc = and_count_streaming(
                    index_a.bitvectors[i], index_b.bitvectors[j]
                )
            else:  # line 3 (AND on decompressed 31-bit groups)
                joint_groups = ga[i] & gb[j]
                jc = int(popcount_total(joint_groups))
            value_mi = mi_term_from_cell(jc, int(counts_a[i]), int(counts_b[j]), n)
            if value_mi < value_threshold:  # line 5 pruning
                continue
            result.n_pairs_survived += 1
            result.value_hits.append(ValueSubsetHit(i, j, jc, value_mi))
            # lines 6-11: per-spatial-unit MI over the joint bitvector,
            # materialised only for survivors on the streaming route.
            if streaming:
                joint = logical_op_runmerge(
                    index_a.bitvectors[i], index_b.bitvectors[j], "and"
                )
                joint_u = unit_popcounts(joint, unit_bits)
            elif group_aligned:
                joint_u = unit_popcounts_groups(joint_groups, n, unit_bits)
            else:
                joint = WAHBitVector(compress_groups(joint_groups), n)
                joint_u = unit_popcounts(joint, unit_bits)
            result.n_units_evaluated += total_units
            unit_mi = _unit_mi(joint_u, a_units[i], b_units[j], sizes)
            for unit in np.flatnonzero(unit_mi >= spatial_threshold):
                result.spatial_hits.append(
                    SpatialSubsetHit(
                        i, j, int(unit), int(joint_u[unit]), float(unit_mi[unit])
                    )
                )
    return result


def suggest_value_threshold(
    index_a: BitmapIndex, index_b: BitmapIndex, unit_bits: int
) -> float:
    """The paper's rule for T: "even if all the 1-bits of this joint
    bitvector is located within the same spatial unit, we still consider it
    as uncorrelated".

    A joint bitvector whose 1-bits all land in one unit of ``unit_bits``
    elements has joint count <= unit_bits; its largest possible global MI
    contribution (joint count = unit_bits, marginals equal to it) is
    ``(u/n) * log2(n/u)``.  Anything at or below that is noise.
    """
    n = index_a.n_elements
    if n <= unit_bits:
        return 0.0
    u = float(unit_bits)
    return (u / n) * np.log2(n / u)
