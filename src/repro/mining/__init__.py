"""Correlation mining (S11): Algorithm 2, multi-level pruning, baseline."""

from repro.mining.correlation import (
    MiningResult,
    SpatialSubsetHit,
    ValueSubsetHit,
    correlation_mining,
    suggest_value_threshold,
)
from repro.mining.fulldata import correlation_mining_fulldata
from repro.mining.multilevel import MultiLevelStats, correlation_mining_multilevel

__all__ = [
    "MiningResult",
    "SpatialSubsetHit",
    "ValueSubsetHit",
    "correlation_mining",
    "suggest_value_threshold",
    "correlation_mining_fulldata",
    "MultiLevelStats",
    "correlation_mining_multilevel",
]
