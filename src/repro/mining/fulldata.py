"""Full-data correlation mining baseline (the method Figure 14 compares to).

"Without bitmaps, we have to manually divide the entire dataset into a huge
number of values and spatial units and then calculate the mutual
information between each unit pair" (§4.2).  This module does exactly
that, from raw arrays:

* bin both variables (a raw-data scan per variable),
* build every (bin_i, bin_j) joint membership by element-wise comparison,
* apply the same value threshold,
* re-scan each surviving pair per spatial unit and apply the same spatial
  threshold.

Semantics match :func:`repro.mining.correlation.correlation_mining`
exactly at equal binning (tested), so the speed difference measured by the
Figure 14 benchmark is purely representational.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.binning import Binning
from repro.metrics.entropy import mi_term_from_cell
from repro.mining.correlation import (
    MiningResult,
    SpatialSubsetHit,
    ValueSubsetHit,
    _unit_mi,
)
from repro.bitmap.units import n_units, unit_sizes


def correlation_mining_fulldata(
    a: np.ndarray,
    b: np.ndarray,
    binning_a: Binning,
    binning_b: Binning,
    *,
    value_threshold: float,
    spatial_threshold: float,
    unit_bits: int,
) -> MiningResult:
    """Mine correlated subsets by exhaustive raw-data scans."""
    fa = np.asarray(a).ravel()
    fb = np.asarray(b).ravel()
    if fa.size != fb.size:
        raise ValueError(f"arrays must align: {fa.size} != {fb.size} elements")
    n = fa.size
    ia = binning_a.assign_checked(fa)
    ib = binning_b.assign_checked(fb)
    counts_a = np.bincount(ia, minlength=binning_a.n_bins)
    counts_b = np.bincount(ib, minlength=binning_b.n_bins)
    total_units = n_units(n, unit_bits)
    sizes = unit_sizes(n, unit_bits)
    unit_of = np.arange(n) // unit_bits

    # Per-unit marginal counts (the "reorganisation" cost of the baseline).
    a_units = np.zeros((binning_a.n_bins, total_units), dtype=np.int64)
    np.add.at(a_units, (ia, unit_of), 1)
    b_units = np.zeros((binning_b.n_bins, total_units), dtype=np.int64)
    np.add.at(b_units, (ib, unit_of), 1)

    result = MiningResult()
    for i in range(binning_a.n_bins):
        in_a = ia == i
        for j in range(binning_b.n_bins):
            result.n_pairs_evaluated += 1
            if counts_a[i] == 0 or counts_b[j] == 0:
                continue
            joint_mask = in_a & (ib == j)  # the element-wise joint scan
            jc = int(joint_mask.sum())
            value_mi = mi_term_from_cell(jc, int(counts_a[i]), int(counts_b[j]), n)
            if value_mi < value_threshold:
                continue
            result.n_pairs_survived += 1
            result.value_hits.append(ValueSubsetHit(i, j, jc, value_mi))
            joint_u = np.bincount(unit_of[joint_mask], minlength=total_units)
            result.n_units_evaluated += total_units
            unit_mi = _unit_mi(joint_u, a_units[i], b_units[j], sizes)
            for unit in np.flatnonzero(unit_mi >= spatial_threshold):
                result.spatial_hits.append(
                    SpatialSubsetHit(
                        i, j, int(unit), int(joint_u[unit]), float(unit_mi[unit])
                    )
                )
    return result
