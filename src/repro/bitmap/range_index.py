"""Range-encoded bitmap index -- the O'Neil & Quass variant [26].

§2.1 cites "Improved query performance with variant indexes"; the
*range-encoded* variant stores, per bin ``i``, the bitvector of elements
whose value falls in bins ``0..i`` (a cumulative encoding).  Consequences:

* any one-sided range predicate (``value <= x`` / ``value > x``) is a
  *single* stored bitvector (or its complement) -- no OR cascade;
* any two-sided range needs at most one ANDNOT of two stored vectors,
  versus OR-ing up to ``m`` equality-encoded bitvectors;
* the trade-off folklore says cumulative bitvectors cost more space, but
  *under WAH* the two encodings are size-comparable on real data: each
  cumulative vector has a single 0->1 transition region (one run
  boundary), while each equality bin has two -- the ablation benchmark
  quantifies this.

Equality-encoded bins can be recovered as ``cum[i] ANDNOT cum[i-1]``, so a
range index can also serve the analyses of :mod:`repro.metrics`; the test
suite checks that recovery is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import logical_andnot, logical_not
from repro.bitmap.wah import WAHBitVector


@dataclass
class RangeBitmapIndex:
    """Cumulative ("range-encoded") bitmap index over one variable.

    ``cumulative[i]`` has a 1 at every position whose value lies in bins
    ``0..i``; ``cumulative[-1]`` is all ones by construction.
    """

    binning: Binning
    cumulative: list[WAHBitVector]
    n_elements: int
    _counts: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.cumulative) != self.binning.n_bins:
            raise ValueError(
                f"{len(self.cumulative)} vectors != {self.binning.n_bins} bins"
            )
        for v in self.cumulative:
            if v.n_bits != self.n_elements:
                raise ValueError("cumulative vector length mismatch")

    # ------------------------------------------------------------ building
    @classmethod
    def build(cls, data: np.ndarray, binning: Binning) -> "RangeBitmapIndex":
        """Build directly from data (one vectorised cumulative pass)."""
        flat = np.asarray(data).ravel()
        ids = binning.assign_checked(flat)
        vectors = [
            WAHBitVector.from_bools(ids <= i) for i in range(binning.n_bins)
        ]
        return cls(binning, vectors, flat.size)

    @classmethod
    def from_equality_index(cls, index: BitmapIndex) -> "RangeBitmapIndex":
        """Convert an equality-encoded index by cumulative OR.

        Fused: one chunked ``bitwise_or.accumulate`` sweep over the
        decoded bins (:func:`~repro.bitmap.kernels.logical_accumulate`)
        produces every cumulative vector at once -- bit-identical to the
        old one-OR-at-a-time loop, without its k - 1 intermediate
        decode/encode round trips.
        """
        from repro.bitmap.kernels import logical_accumulate

        vectors = (
            logical_accumulate(index.bitvectors, "or")
            if index.bitvectors
            else []
        )
        return cls(index.binning, vectors, index.n_elements)

    # ------------------------------------------------------------- queries
    @property
    def n_bins(self) -> int:
        return self.binning.n_bins

    def leq_bin(self, bin_id: int) -> WAHBitVector:
        """Elements with value in bins ``0..bin_id`` -- one stored vector."""
        if not 0 <= bin_id < self.n_bins:
            raise IndexError(bin_id)
        return self.cumulative[bin_id]

    def gt_bin(self, bin_id: int) -> WAHBitVector:
        """Elements with value strictly above bin ``bin_id``."""
        return logical_not(self.leq_bin(bin_id))

    def bin_range(self, lo_bin: int, hi_bin: int) -> WAHBitVector:
        """Elements in bins ``lo_bin..hi_bin`` -- at most one ANDNOT."""
        if lo_bin > hi_bin:
            raise ValueError(f"empty bin range [{lo_bin}, {hi_bin}]")
        upper = self.leq_bin(hi_bin)
        if lo_bin == 0:
            return upper
        return logical_andnot(upper, self.cumulative[lo_bin - 1])

    def equality_bin(self, bin_id: int) -> WAHBitVector:
        """Recover an equality-encoded bin: ``cum[i] ANDNOT cum[i-1]``."""
        return self.bin_range(bin_id, bin_id)

    def bin_counts(self) -> np.ndarray:
        """Per-bin counts via cumulative popcount differences."""
        if self._counts is None:
            cum = np.asarray([v.count() for v in self.cumulative], dtype=np.int64)
            self._counts = np.diff(np.concatenate([[0], cum]))
        return self._counts

    def query_value_range(self, lo: float, hi: float) -> WAHBitVector:
        """Bin-granular value range query (same semantics as BitmapIndex)."""
        from repro.bitmap.index import _bin_overlaps

        hits = [
            b for b in range(self.n_bins) if _bin_overlaps(self.binning, b, lo, hi)
        ]
        if not hits:
            return WAHBitVector.zeros(self.n_elements)
        return self.bin_range(min(hits), max(hits))

    # ------------------------------------------------------------ geometry
    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.cumulative)

    def to_equality_index(self) -> BitmapIndex:
        """Materialise the equivalent equality-encoded index."""
        vectors = [self.equality_bin(b) for b in range(self.n_bins)]
        return BitmapIndex(self.binning, vectors, self.n_elements)

    def check_invariants(self) -> None:
        """Cumulative vectors are monotone and end at all-ones."""
        prev = 0
        for v in self.cumulative:
            v.check_invariants()
            count = v.count()
            assert count >= prev, "cumulative counts must be non-decreasing"
            prev = count
        assert prev == self.n_elements, "last cumulative vector must be all ones"

    def __repr__(self) -> str:
        return (
            f"RangeBitmapIndex(n_elements={self.n_elements}, "
            f"n_bins={self.n_bins}, nbytes={self.nbytes})"
        )
