"""On-disk format for bitvectors and bitmap indices.

The in-situ pipeline's whole point is that it writes *bitmaps*, not raw
data, to persistent storage (§2.3 / Figures 7-10 "output" bars).  This
module defines that byte format:

* a bitvector record: ``n_bits`` + word count + the raw ``uint32`` words;
* an index record: a magic header, the binning (self-describing, no
  pickle), element count, and the bitvector records;
* a per-time-step container used by :mod:`repro.insitu.writer`.

All integers are little-endian.  The format is versioned so stored bitmaps
outlive code changes.

Two record versions exist, the second with a tagged minor revision:

* **V1** -- header + bitvector records, readable only front to back.
* **V2** (default for new writes) -- V1's layout followed by an *offset
  table* (``n_bins + 1`` int64 byte offsets, relative to the record
  start; the final entry is the table's own offset) and a 12-byte footer
  (``<q table_offset>`` + ``RBOT``).  The table makes every bitvector
  independently addressable, which is what :class:`LazyBitmapIndex` and
  the query service (:mod:`repro.service`) build on: a single-bin query
  against a stored index reads only that bin's bytes.
* **V2.1 (codec-tagged)** -- V2 with bit 0 of the header's 16-bit flags
  field set (the flags field was written as zero by every earlier
  version, so old readers reject tagged files cleanly and old files
  parse unchanged).  A *codec tag table* of ``n_bins`` ``uint8`` tags
  follows the ``<qi n_elements n_bins>`` header, one per bitvector in
  record order, naming the codec of each record's payload
  (:mod:`repro.bitmap.codec`: 0 = WAH, 1 = Roaring, 2 = WAH64).  Record
  framing is unchanged -- ``<qi n_bits payload_words>`` then
  ``payload_words`` little-endian ``uint32`` words -- only the payload
  encoding varies by tag.  Unknown tags and truncated tag tables raise
  clear errors before any payload byte is read.  Writers emit the
  tagged layout only when a non-WAH vector is present, so all-WAH
  indices remain byte-identical to plain V2 (and V1/V2-untagged files
  load bit-identically as WAH).
* **V2.1 (row-ordered)** -- flags bit 1 marks an index whose rows were
  permuted before encoding (:mod:`repro.bitmap.ordering`).  A
  *permutation sidecar* follows the codec tag table (or the
  ``<qi n_elements n_bins>`` header when untagged):
  ``<B method_tag> <B width> <q n_rows>`` then ``n_rows`` little-endian
  unsigned integers of ``width`` bytes each (1/2/4/8 -- the minimal
  width for ``n_rows - 1``, which is the "compression" relative to a
  naive int64 dump).  ``ordered_row[i] = simulation_row[perm[i]]``; the
  sidecar is validated as a bijection on read, so spatial/region
  queries and mask results can be mapped back to simulation order
  *exactly*.  Both flags compose (tag table first, then sidecar).
  Writers emit the sidecar only when the index carries an ordering, so
  unordered records stay byte-identical to pre-ordering output.

Sequential readers consume V2 records exactly (table and footer
included), so V2 indices still embed in containers with trailing data;
V1 files written by older code load unchanged.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import threading
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.bitmap.binning import (
    Binning,
    DistinctValueBinning,
    EqualWidthBinning,
    ExplicitBinning,
    PrecisionBinning,
)
from repro.bitmap.codec import (
    WAH as WAH_CODEC,
    BitVectorAny,
    Codec,
    codec_for_tag,
    codec_of,
)
from repro.bitmap.index import BitmapIndex
from repro.bitmap.ordering import (
    ORDERING_METHOD_TAGS,
    RowOrdering,
    method_for_tag,
)
from repro.bitmap.wah import WAHBitVector

MAGIC = b"RBMP"
FOOTER_MAGIC = b"RBOT"
VERSION = 1
VERSION_V2 = 2
#: Version used for new writes (V1 remains fully readable).
DEFAULT_VERSION = VERSION_V2
_SUPPORTED_VERSIONS = (VERSION, VERSION_V2)

#: Header-flags bit marking the V2.1 codec-tagged layout.
FLAG_CODEC_TAGS = 0x0001
#: Header-flags bit marking a row-ordered index (permutation sidecar).
FLAG_ORDERING = 0x0002
_KNOWN_FLAGS = FLAG_CODEC_TAGS | FLAG_ORDERING

_FOOTER_SIZE = 12  # <q table_offset> + FOOTER_MAGIC
_ORDERING_HEADER = struct.Struct("<BBq")  # method_tag, byte width, n_rows
_ORDERING_WIDTHS = (1, 2, 4, 8)


def _read_exact(fh: BinaryIO, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise a clean ``EOFError``."""
    raw = fh.read(n)
    if len(raw) != n:
        raise EOFError(f"truncated {what}: wanted {n} bytes, got {len(raw)}")
    return raw


def _bytes_remaining(fh: BinaryIO) -> int | None:
    """Bytes left in a seekable stream, or ``None`` when unknowable."""
    try:
        cur = fh.tell()
        end = fh.seek(0, os.SEEK_END)
        fh.seek(cur)
    except (OSError, AttributeError, io.UnsupportedOperation):
        return None
    return end - cur

_BINNING_TAGS: dict[type, int] = {
    EqualWidthBinning: 1,
    PrecisionBinning: 2,
    ExplicitBinning: 3,
    DistinctValueBinning: 4,
}


# ------------------------------------------------------------- bitvectors
def write_bitvector(fh: BinaryIO, vector: BitVectorAny) -> int:
    """Append one bitvector record; returns bytes written.

    The record frame is codec-uniform: ``<qi n_bits payload_words>``
    followed by the payload as little-endian ``uint32`` words.  *Which*
    codec the payload belongs to is not part of the record -- V1/V2
    records are always WAH; the V2.1 tag table carries it otherwise.
    """
    codec = codec_of(vector)
    payload = codec.payload_words(vector)
    header = struct.pack("<qi", vector.n_bits, payload.size)
    fh.write(header)
    raw = payload.astype("<u4").tobytes()
    fh.write(raw)
    return len(header) + len(raw)


def _check_bitvector_header(
    n_bits: int, n_words: int, codec: Codec = WAH_CODEC
) -> None:
    """Reject word counts no valid stream of ``n_bits`` can have.

    Every codec has a hard upper bound on payload words for a given bit
    count (:meth:`~repro.bitmap.codec.Codec.max_payload_words`; for WAH,
    one word per 31-bit group).  Checking this *before* reading the
    payload means a corrupt header cannot demand gigabytes from
    ``_read_exact``.
    """
    if n_bits < 0 or n_words < 0:
        raise ValueError(
            f"corrupt bitvector header: n_bits={n_bits}, n_words={n_words}"
        )
    if n_words > codec.max_payload_words(n_bits):
        raise ValueError(
            f"corrupt bitvector header: {n_words} words cannot encode "
            f"{n_bits} bits ({codec.max_payload_words(n_bits)} {codec.name} "
            f"payload words max)"
        )


def read_bitvector(fh: BinaryIO, codec: Codec = WAH_CODEC) -> BitVectorAny:
    """Read one bitvector record, decoding its payload with ``codec``."""
    header = _read_exact(fh, 12, "bitvector header")
    n_bits, n_words = struct.unpack("<qi", header)
    _check_bitvector_header(n_bits, n_words, codec)
    remaining = _bytes_remaining(fh)
    if remaining is not None and 4 * n_words > remaining:
        # Checked *before* the read so a corrupt word count can never
        # demand a giant allocation from _read_exact.
        raise EOFError(
            f"truncated bitvector payload: {4 * n_words} bytes demanded "
            f"but only {remaining} remain in the stream"
        )
    raw = _read_exact(fh, 4 * n_words, "bitvector payload")
    words = np.frombuffer(raw, dtype="<u4")
    if words.dtype != np.uint32:  # big-endian host: byte-swapped copy
        words = words.astype(np.uint32)
    return codec.decode_payload(words, n_bits)


# ---------------------------------------------------------------- binning
def write_binning(fh: BinaryIO, binning: Binning) -> None:
    """Serialise a binning without pickle (each strategy is self-describing)."""
    tag = _BINNING_TAGS.get(type(binning))
    if tag is None:
        raise TypeError(f"cannot serialise binning {type(binning).__name__}")
    fh.write(struct.pack("<B", tag))
    if isinstance(binning, EqualWidthBinning):
        fh.write(struct.pack("<ddq", binning.lo, binning.hi, binning.bins))
    elif isinstance(binning, PrecisionBinning):
        fh.write(struct.pack("<ddq", binning.lo, binning.hi, binning.digits))
    elif isinstance(binning, ExplicitBinning):
        edges = binning.bin_edges.astype("<f8")
        fh.write(struct.pack("<q", edges.size))
        fh.write(edges.tobytes())
    elif isinstance(binning, DistinctValueBinning):
        values = np.asarray(binning.values, dtype="<f8")
        fh.write(struct.pack("<q", values.size))
        fh.write(values.tobytes())


def read_binning(fh: BinaryIO) -> Binning:
    """Inverse of :func:`write_binning`."""
    (tag,) = struct.unpack("<B", _read_exact(fh, 1, "binning tag"))
    if tag == 1:
        lo, hi, bins = struct.unpack("<ddq", _read_exact(fh, 24, "binning header"))
        return EqualWidthBinning(lo, hi, int(bins))
    if tag == 2:
        lo, hi, digits = struct.unpack("<ddq", _read_exact(fh, 24, "binning header"))
        return PrecisionBinning(lo, hi, int(digits))
    if tag == 3:
        (n,) = struct.unpack("<q", _read_exact(fh, 8, "binning size"))
        if n < 0:
            raise ValueError(f"corrupt binning: negative edge count {n}")
        edges = np.frombuffer(
            _read_exact(fh, 8 * n, "binning edges"), dtype="<f8"
        ).astype(np.float64)
        return ExplicitBinning(edges)
    if tag == 4:
        (n,) = struct.unpack("<q", _read_exact(fh, 8, "binning size"))
        if n < 0:
            raise ValueError(f"corrupt binning: negative value count {n}")
        values = np.frombuffer(
            _read_exact(fh, 8 * n, "binning values"), dtype="<f8"
        ).astype(np.float64)
        return DistinctValueBinning(values)
    raise ValueError(f"unknown binning tag {tag}")


# ------------------------------------------------------- ordering sidecar
def _ordering_width(n_rows: int) -> int:
    """Minimal byte width able to hold every index in ``[0, n_rows)``."""
    hi = max(n_rows - 1, 0)
    for width in _ORDERING_WIDTHS:
        if hi < 1 << (8 * width):
            return width
    raise ValueError(f"permutation of {n_rows} rows exceeds uint64")


def _ordering_size(ordering: RowOrdering) -> int:
    return _ORDERING_HEADER.size + ordering.n_rows * _ordering_width(
        ordering.n_rows
    )


def write_ordering(fh: BinaryIO, ordering: RowOrdering) -> int:
    """Append the permutation sidecar section; returns bytes written."""
    width = _ordering_width(ordering.n_rows)
    fh.write(
        _ORDERING_HEADER.pack(
            ORDERING_METHOD_TAGS[ordering.method], width, ordering.n_rows
        )
    )
    fh.write(ordering.permutation.astype(f"<u{width}").tobytes())
    return _ORDERING_HEADER.size + ordering.n_rows * width


def read_ordering(fh: BinaryIO, n_elements: int) -> RowOrdering:
    """Read and validate the permutation sidecar section."""
    tag, width, n_rows = _ORDERING_HEADER.unpack(
        _read_exact(fh, _ORDERING_HEADER.size, "ordering sidecar header")
    )
    method = method_for_tag(tag)
    if width not in _ORDERING_WIDTHS:
        raise ValueError(f"corrupt ordering sidecar: byte width {width}")
    if n_rows != n_elements:
        raise ValueError(
            f"ordering sidecar covers {n_rows} rows, index covers "
            f"{n_elements} elements"
        )
    if n_rows > 0 and n_rows - 1 >= 1 << (8 * width):
        raise ValueError(
            f"corrupt ordering sidecar: width {width} cannot index "
            f"{n_rows} rows"
        )
    raw = _read_exact(fh, n_rows * width, "ordering sidecar permutation")
    perm = np.frombuffer(raw, dtype=f"<u{width}").astype(np.int64)
    # RowOrdering validates the bijection; corrupt bytes raise here.
    return RowOrdering(method, perm)


# ------------------------------------------------------------------ index
def _header_size(binning: Binning) -> int:
    """Bytes before the codec tag table (or the first record, untagged)."""
    return 4 + 4 + _binning_size(binning) + 12


def _index_codecs(index: BitmapIndex) -> list[Codec]:
    return [codec_of(v) for v in index.bitvectors]


def write_index(
    fh: BinaryIO, index: BitmapIndex, *, version: int = DEFAULT_VERSION
) -> int:
    """Serialise a full bitmap index; returns bytes written.

    ``version=2`` (the default) appends the per-bitvector offset table and
    footer enabling random access; ``version=1`` writes the legacy layout.
    Indices holding any non-WAH bitvector are written in the V2.1
    codec-tagged layout (flags bit 0 + per-bin tag table); all-WAH
    indices stay byte-identical to plain V2.  Indices carrying a
    :class:`~repro.bitmap.ordering.RowOrdering` additionally set flags
    bit 1 and write the permutation sidecar after the tag table.  V1
    cannot carry codec tags or an ordering, so writing either as V1 is
    an error.
    """
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"cannot write index version {version}")
    codecs = _index_codecs(index)
    tagged = any(c is not WAH_CODEC for c in codecs)
    ordering = index.ordering
    if tagged and version != VERSION_V2:
        raise ValueError(
            "V1 records cannot carry codec tags; write version=2 or "
            "convert the index to WAH"
        )
    if ordering is not None and version != VERSION_V2:
        raise ValueError(
            "V1 records cannot carry a row ordering; write version=2 or "
            "strip the ordering"
        )
    flags = (FLAG_CODEC_TAGS if tagged else 0) | (
        FLAG_ORDERING if ordering is not None else 0
    )
    start = fh.tell()
    fh.write(MAGIC)
    fh.write(struct.pack("<HH", version, flags))
    write_binning(fh, index.binning)
    fh.write(struct.pack("<qi", index.n_elements, index.n_bins))
    pos = _header_size(index.binning)
    if tagged:
        fh.write(np.array([c.tag for c in codecs], dtype=np.uint8).tobytes())
        pos += index.n_bins
    if ordering is not None:
        pos += write_ordering(fh, ordering)
    offsets = np.empty(index.n_bins + 1, dtype=np.int64)
    for b, vector in enumerate(index.bitvectors):
        offsets[b] = pos
        pos += write_bitvector(fh, vector)
    offsets[index.n_bins] = pos
    if version == VERSION_V2:
        fh.write(offsets.astype("<i8").tobytes())
        fh.write(struct.pack("<q", pos) + FOOTER_MAGIC)
    return fh.tell() - start


def _parse_flags(version: int, flags: int) -> tuple[bool, bool]:
    """Validate header flags; returns ``(codec_tagged, row_ordered)``."""
    if flags & ~_KNOWN_FLAGS:
        raise ValueError(f"unsupported format flags 0x{flags:04x}")
    tagged = bool(flags & FLAG_CODEC_TAGS)
    ordered = bool(flags & FLAG_ORDERING)
    if tagged and version != VERSION_V2:
        raise ValueError(
            f"codec-tagged layout requires a V2 record, got version {version}"
        )
    if ordered and version != VERSION_V2:
        raise ValueError(
            f"row-ordered layout requires a V2 record, got version {version}"
        )
    return tagged, ordered


def _read_tag_table(fh: BinaryIO, n_bins: int) -> list[Codec]:
    """Read and resolve the V2.1 codec tag table (one uint8 per bin)."""
    raw = _read_exact(fh, n_bins, "codec tag table")
    return [codec_for_tag(t) for t in raw]


def _read_offset_table(fh: BinaryIO, n_bins: int, expected: np.ndarray) -> None:
    """Consume and validate a V2 offset table + footer (sequential path).

    The table is redundant for a front-to-back read, but validating it
    against the offsets actually observed catches silent corruption (and
    keeps lazy readers honest about what they would have read).
    """
    raw = _read_exact(fh, 8 * (n_bins + 1), "offset table")
    table = np.frombuffer(raw, dtype="<i8")
    footer = _read_exact(fh, _FOOTER_SIZE, "index footer")
    (table_offset,) = struct.unpack("<q", footer[:8])
    if footer[8:] != FOOTER_MAGIC:
        raise ValueError(f"bad footer magic {footer[8:]!r}")
    if table_offset != expected[-1] or not np.array_equal(table, expected):
        raise ValueError("corrupt offset table: offsets disagree with records")


def read_index(fh: BinaryIO) -> BitmapIndex:
    """Inverse of :func:`write_index` (reads V1, V2 and V2.1 records)."""
    magic = fh.read(4)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}; not a repro bitmap index")
    version, flags = struct.unpack("<HH", _read_exact(fh, 4, "index version"))
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported index version {version}")
    tagged, ordered = _parse_flags(version, flags)
    binning = read_binning(fh)
    n_elements, n_bins = struct.unpack("<qi", _read_exact(fh, 12, "index header"))
    if n_elements < 0 or n_bins < 0:
        raise ValueError(
            f"corrupt index header: n_elements={n_elements}, n_bins={n_bins}"
        )
    pos = _header_size(binning)
    if tagged:
        codecs = _read_tag_table(fh, n_bins)
        pos += n_bins
    else:
        codecs = [WAH_CODEC] * n_bins
    ordering = None
    if ordered:
        ordering = read_ordering(fh, n_elements)
        pos += _ordering_size(ordering)
    offsets = np.empty(n_bins + 1, dtype=np.int64)
    vectors = []
    for b in range(n_bins):
        offsets[b] = pos
        vector = read_bitvector(fh, codecs[b])
        pos += 12 + 4 * codecs[b].payload_n_words(vector)
        vectors.append(vector)
    offsets[n_bins] = pos
    if version == VERSION_V2:
        _read_offset_table(fh, n_bins, offsets)
    return BitmapIndex(binning, vectors, n_elements, ordering)


def index_to_bytes(index: BitmapIndex, *, version: int = DEFAULT_VERSION) -> bytes:
    """Serialise an index to a bytes object."""
    buf = io.BytesIO()
    write_index(buf, index, version=version)
    return buf.getvalue()


def index_from_bytes(data: bytes) -> BitmapIndex:
    """Deserialise an index from bytes."""
    return read_index(io.BytesIO(data))


def save_index(path, index: BitmapIndex, *, version: int = DEFAULT_VERSION) -> int:
    """Write an index to ``path``; returns file size in bytes."""
    with open(path, "wb") as fh:
        return write_index(fh, index, version=version)


def load_index(path) -> BitmapIndex:
    """Read an index from ``path``."""
    with open(path, "rb") as fh:
        return read_index(fh)


def serialized_size(index: BitmapIndex, *, version: int = DEFAULT_VERSION) -> int:
    """Exact on-disk size without materialising the bytes."""
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"cannot size index version {version}")
    codecs = _index_codecs(index)
    size = _header_size(index.binning)
    if any(c is not WAH_CODEC for c in codecs):
        size += index.n_bins  # codec tag table
    if index.ordering is not None:
        size += _ordering_size(index.ordering)  # permutation sidecar
    for c, v in zip(codecs, index.bitvectors):
        size += 12 + 4 * c.payload_n_words(v)
    if version == VERSION_V2:
        size += 8 * (index.n_bins + 1) + _FOOTER_SIZE
    return size


def _binning_size(binning: Binning) -> int:
    if isinstance(binning, (EqualWidthBinning, PrecisionBinning)):
        return 1 + 24
    if isinstance(binning, ExplicitBinning):
        return 1 + 8 + 8 * binning.bin_edges.size
    if isinstance(binning, DistinctValueBinning):
        return 1 + 8 + 8 * np.asarray(binning.values).size
    raise TypeError(type(binning).__name__)


# ------------------------------------------------------------- lazy loads
class LazyBitmapIndex:
    """Random access to one stored index without materialising it.

    Opens an index *file* (memory-mapped when possible), parses only the
    header (plus the V2.1 codec tag table when present), and resolves
    each bin's byte range from the V2 offset table -- or, for V1 files
    and V2 records whose footer cannot be trusted (e.g. trailing bytes
    appended to the file), from a one-pass scan of the bitvector
    *headers* that never touches payload bytes.  Individual bitvectors
    are decoded on demand by :meth:`get`, each with its bin's codec
    (``codecs[bin_id]``; always WAH for untagged files).

    ``bytes_read`` / ``reads`` count the record bytes actually decoded,
    which is the accounting the query service's cold/warm assertions and
    ``QueryStats.bytes_loaded`` are built on.  Concurrent :meth:`get`
    calls are safe: mmap slicing is lock-free, the file-handle fallback
    serialises around a lock.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.bytes_read = 0
        self.reads = 0
        self._lock = threading.Lock()
        self._fh: BinaryIO | None = open(self.path, "rb")
        self._mm: mmap.mmap | None = None
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty or unmappable file
            self._mm = None
        try:
            self._parse_header()
        except Exception:
            self.close()
            raise

    @classmethod
    def open(cls, path: Path | str) -> "LazyBitmapIndex":
        """Alias constructor, symmetric with :func:`load_index`."""
        return cls(path)

    # ----------------------------------------------------------- plumbing
    def _parse_header(self) -> None:
        fh = self._fh
        fh.seek(0)
        magic = fh.read(4)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}; not a repro bitmap index")
        version, flags = struct.unpack("<HH", _read_exact(fh, 4, "index version"))
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported index version {version}")
        self.version = int(version)
        tagged, ordered = _parse_flags(self.version, flags)
        self.binning = read_binning(fh)
        n_elements, n_bins = struct.unpack(
            "<qi", _read_exact(fh, 12, "index header")
        )
        if n_elements < 0 or n_bins < 0:
            raise ValueError(
                f"corrupt index header: n_elements={n_elements}, n_bins={n_bins}"
            )
        self.n_elements = int(n_elements)
        self.n_bins = int(n_bins)
        self._data_start = _header_size(self.binning)
        if tagged:
            self.codecs = _read_tag_table(fh, self.n_bins)
            self._data_start += self.n_bins
        else:
            self.codecs = [WAH_CODEC] * self.n_bins
        self.ordering: RowOrdering | None = None
        if ordered:
            # Decoded eagerly: the executor needs the permutation to
            # de-permute masks and permute region predicates, and the
            # bijection check must reject corrupt sidecars before any
            # payload byte is trusted.
            fh.seek(self._data_start)
            self.ordering = read_ordering(fh, self.n_elements)
            self._data_start += _ordering_size(self.ordering)
        self.offsets = None
        if self.version == VERSION_V2:
            self.offsets = self._offsets_from_footer()
        if self.offsets is None:
            self.offsets = self._offsets_from_scan()

    def _offsets_from_footer(self) -> np.ndarray | None:
        """Load the V2 offset table via the footer; ``None`` if untrusted."""
        fh = self._fh
        size = fh.seek(0, os.SEEK_END)
        if size < self._data_start + 8 * (self.n_bins + 1) + _FOOTER_SIZE:
            return None
        fh.seek(size - _FOOTER_SIZE)
        footer = _read_exact(fh, _FOOTER_SIZE, "index footer")
        (table_offset,) = struct.unpack("<q", footer[:8])
        if footer[8:] != FOOTER_MAGIC:
            return None
        table_end = size - _FOOTER_SIZE
        if table_offset + 8 * (self.n_bins + 1) != table_end:
            return None
        fh.seek(table_offset)
        raw = _read_exact(fh, 8 * (self.n_bins + 1), "offset table")
        offsets = np.frombuffer(raw, dtype="<i8").astype(np.int64)
        if (
            offsets[0] != self._data_start
            or offsets[-1] != table_offset
            or np.any(np.diff(offsets) < 12)
        ):
            raise ValueError("corrupt offset table: implausible offsets")
        return offsets

    def _offsets_from_scan(self) -> np.ndarray:
        """Build the offset table by hopping over bitvector *headers* only."""
        fh = self._fh
        offsets = np.empty(self.n_bins + 1, dtype=np.int64)
        pos = self._data_start
        for b in range(self.n_bins):
            offsets[b] = pos
            fh.seek(pos)
            n_bits, n_words = struct.unpack(
                "<qi", _read_exact(fh, 12, "bitvector header")
            )
            _check_bitvector_header(n_bits, n_words, self.codecs[b])
            if n_bits != self.n_elements:
                raise ValueError(
                    f"bitvector {b} covers {n_bits} bits, index covers "
                    f"{self.n_elements} elements"
                )
            pos += 12 + 4 * n_words
        offsets[self.n_bins] = pos
        return offsets

    def _read_range(self, lo: int, hi: int, what: str) -> bytes:
        if self._mm is not None:
            raw = self._mm[lo:hi]
            if len(raw) != hi - lo:
                raise EOFError(
                    f"truncated {what}: wanted {hi - lo} bytes, got {len(raw)}"
                )
            return raw
        with self._lock:
            self._fh.seek(lo)
            return _read_exact(self._fh, hi - lo, what)

    # ------------------------------------------------------------ reading
    def nbytes_of(self, bin_id: int) -> int:
        """On-disk record size of one bin's bitvector."""
        self._check_bin(bin_id)
        return int(self.offsets[bin_id + 1] - self.offsets[bin_id])

    def get(self, bin_id: int) -> BitVectorAny:
        """Decode one bin's bitvector (with its codec), reading only its
        byte range."""
        self._check_bin(bin_id)
        lo, hi = int(self.offsets[bin_id]), int(self.offsets[bin_id + 1])
        raw = self._read_range(lo, hi, f"bitvector record {bin_id}")
        vector = read_bitvector(io.BytesIO(raw), self.codecs[bin_id])
        if vector.n_bits != self.n_elements:
            raise ValueError(
                f"bitvector {bin_id} covers {vector.n_bits} bits, index "
                f"covers {self.n_elements} elements"
            )
        self.bytes_read += hi - lo
        self.reads += 1
        return vector

    def materialize(self) -> BitmapIndex:
        """Load every bin into a regular :class:`BitmapIndex`."""
        vectors = [self.get(b) for b in range(self.n_bins)]
        return BitmapIndex(self.binning, vectors, self.n_elements, self.ordering)

    def _check_bin(self, bin_id: int) -> None:
        if not 0 <= bin_id < self.n_bins:
            raise IndexError(f"bin {bin_id} out of range [0, {self.n_bins})")

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "LazyBitmapIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LazyBitmapIndex({str(self.path)!r}, v{self.version}, "
            f"n_elements={self.n_elements}, n_bins={self.n_bins}, "
            f"bytes_read={self.bytes_read})"
        )
