"""On-disk format for bitvectors and bitmap indices.

The in-situ pipeline's whole point is that it writes *bitmaps*, not raw
data, to persistent storage (§2.3 / Figures 7-10 "output" bars).  This
module defines that byte format:

* a bitvector record: ``n_bits`` + word count + the raw ``uint32`` words;
* an index record: a magic header, the binning (self-describing, no
  pickle), element count, and the bitvector records;
* a per-time-step container used by :mod:`repro.insitu.writer`.

All integers are little-endian.  The format is versioned so stored bitmaps
outlive code changes.

Two record versions exist:

* **V1** -- header + bitvector records, readable only front to back.
* **V2** (default for new writes) -- V1's layout followed by an *offset
  table* (``n_bins + 1`` int64 byte offsets, relative to the record
  start; the final entry is the table's own offset) and a 12-byte footer
  (``<q table_offset>`` + ``RBOT``).  The table makes every bitvector
  independently addressable, which is what :class:`LazyBitmapIndex` and
  the query service (:mod:`repro.service`) build on: a single-bin query
  against a stored index reads only that bin's bytes.

Sequential readers consume V2 records exactly (table and footer
included), so V2 indices still embed in containers with trailing data;
V1 files written by older code load unchanged.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import threading
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.bitmap.binning import (
    Binning,
    DistinctValueBinning,
    EqualWidthBinning,
    ExplicitBinning,
    PrecisionBinning,
)
from repro.bitmap.index import BitmapIndex
from repro.bitmap.wah import WAHBitVector
from repro.util.bits import groups_needed

MAGIC = b"RBMP"
FOOTER_MAGIC = b"RBOT"
VERSION = 1
VERSION_V2 = 2
#: Version used for new writes (V1 remains fully readable).
DEFAULT_VERSION = VERSION_V2
_SUPPORTED_VERSIONS = (VERSION, VERSION_V2)

_FOOTER_SIZE = 12  # <q table_offset> + FOOTER_MAGIC


def _read_exact(fh: BinaryIO, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise a clean ``EOFError``."""
    raw = fh.read(n)
    if len(raw) != n:
        raise EOFError(f"truncated {what}: wanted {n} bytes, got {len(raw)}")
    return raw


def _bytes_remaining(fh: BinaryIO) -> int | None:
    """Bytes left in a seekable stream, or ``None`` when unknowable."""
    try:
        cur = fh.tell()
        end = fh.seek(0, os.SEEK_END)
        fh.seek(cur)
    except (OSError, AttributeError, io.UnsupportedOperation):
        return None
    return end - cur

_BINNING_TAGS: dict[type, int] = {
    EqualWidthBinning: 1,
    PrecisionBinning: 2,
    ExplicitBinning: 3,
    DistinctValueBinning: 4,
}


# ------------------------------------------------------------- bitvectors
def write_bitvector(fh: BinaryIO, vector: WAHBitVector) -> int:
    """Append one bitvector record; returns bytes written."""
    header = struct.pack("<qi", vector.n_bits, vector.n_words)
    fh.write(header)
    payload = vector.words.astype("<u4").tobytes()
    fh.write(payload)
    return len(header) + len(payload)


def _check_bitvector_header(n_bits: int, n_words: int) -> None:
    """Reject word counts no valid WAH stream of ``n_bits`` can have.

    Every WAH word covers at least one 31-bit group, so a stream can never
    hold more words than groups.  Checking this *before* reading the
    payload means a corrupt header cannot demand gigabytes from
    ``_read_exact``.
    """
    if n_bits < 0 or n_words < 0:
        raise ValueError(
            f"corrupt bitvector header: n_bits={n_bits}, n_words={n_words}"
        )
    if n_words > groups_needed(n_bits):
        raise ValueError(
            f"corrupt bitvector header: {n_words} words cannot encode "
            f"{n_bits} bits ({groups_needed(n_bits)} groups max)"
        )


def read_bitvector(fh: BinaryIO) -> WAHBitVector:
    """Read one bitvector record."""
    header = _read_exact(fh, 12, "bitvector header")
    n_bits, n_words = struct.unpack("<qi", header)
    _check_bitvector_header(n_bits, n_words)
    remaining = _bytes_remaining(fh)
    if remaining is not None and 4 * n_words > remaining:
        # Checked *before* the read so a corrupt word count can never
        # demand a giant allocation from _read_exact.
        raise EOFError(
            f"truncated bitvector payload: {4 * n_words} bytes demanded "
            f"but only {remaining} remain in the stream"
        )
    raw = _read_exact(fh, 4 * n_words, "bitvector payload")
    words = np.frombuffer(raw, dtype="<u4")
    if words.dtype != np.uint32:  # big-endian host: byte-swapped copy
        words = words.astype(np.uint32)
    return WAHBitVector(words, n_bits)


# ---------------------------------------------------------------- binning
def write_binning(fh: BinaryIO, binning: Binning) -> None:
    """Serialise a binning without pickle (each strategy is self-describing)."""
    tag = _BINNING_TAGS.get(type(binning))
    if tag is None:
        raise TypeError(f"cannot serialise binning {type(binning).__name__}")
    fh.write(struct.pack("<B", tag))
    if isinstance(binning, EqualWidthBinning):
        fh.write(struct.pack("<ddq", binning.lo, binning.hi, binning.bins))
    elif isinstance(binning, PrecisionBinning):
        fh.write(struct.pack("<ddq", binning.lo, binning.hi, binning.digits))
    elif isinstance(binning, ExplicitBinning):
        edges = binning.bin_edges.astype("<f8")
        fh.write(struct.pack("<q", edges.size))
        fh.write(edges.tobytes())
    elif isinstance(binning, DistinctValueBinning):
        values = np.asarray(binning.values, dtype="<f8")
        fh.write(struct.pack("<q", values.size))
        fh.write(values.tobytes())


def read_binning(fh: BinaryIO) -> Binning:
    """Inverse of :func:`write_binning`."""
    (tag,) = struct.unpack("<B", _read_exact(fh, 1, "binning tag"))
    if tag == 1:
        lo, hi, bins = struct.unpack("<ddq", _read_exact(fh, 24, "binning header"))
        return EqualWidthBinning(lo, hi, int(bins))
    if tag == 2:
        lo, hi, digits = struct.unpack("<ddq", _read_exact(fh, 24, "binning header"))
        return PrecisionBinning(lo, hi, int(digits))
    if tag == 3:
        (n,) = struct.unpack("<q", _read_exact(fh, 8, "binning size"))
        if n < 0:
            raise ValueError(f"corrupt binning: negative edge count {n}")
        edges = np.frombuffer(
            _read_exact(fh, 8 * n, "binning edges"), dtype="<f8"
        ).astype(np.float64)
        return ExplicitBinning(edges)
    if tag == 4:
        (n,) = struct.unpack("<q", _read_exact(fh, 8, "binning size"))
        if n < 0:
            raise ValueError(f"corrupt binning: negative value count {n}")
        values = np.frombuffer(
            _read_exact(fh, 8 * n, "binning values"), dtype="<f8"
        ).astype(np.float64)
        return DistinctValueBinning(values)
    raise ValueError(f"unknown binning tag {tag}")


# ------------------------------------------------------------------ index
def _header_size(binning: Binning) -> int:
    """Bytes before the first bitvector record."""
    return 4 + 4 + _binning_size(binning) + 12


def write_index(
    fh: BinaryIO, index: BitmapIndex, *, version: int = DEFAULT_VERSION
) -> int:
    """Serialise a full bitmap index; returns bytes written.

    ``version=2`` (the default) appends the per-bitvector offset table and
    footer enabling random access; ``version=1`` writes the legacy layout.
    """
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"cannot write index version {version}")
    start = fh.tell()
    fh.write(MAGIC)
    fh.write(struct.pack("<HH", version, 0))
    write_binning(fh, index.binning)
    fh.write(struct.pack("<qi", index.n_elements, index.n_bins))
    offsets = np.empty(index.n_bins + 1, dtype=np.int64)
    pos = _header_size(index.binning)
    for b, vector in enumerate(index.bitvectors):
        offsets[b] = pos
        pos += write_bitvector(fh, vector)
    offsets[index.n_bins] = pos
    if version == VERSION_V2:
        fh.write(offsets.astype("<i8").tobytes())
        fh.write(struct.pack("<q", pos) + FOOTER_MAGIC)
    return fh.tell() - start


def _read_offset_table(fh: BinaryIO, n_bins: int, expected: np.ndarray) -> None:
    """Consume and validate a V2 offset table + footer (sequential path).

    The table is redundant for a front-to-back read, but validating it
    against the offsets actually observed catches silent corruption (and
    keeps lazy readers honest about what they would have read).
    """
    raw = _read_exact(fh, 8 * (n_bins + 1), "offset table")
    table = np.frombuffer(raw, dtype="<i8")
    footer = _read_exact(fh, _FOOTER_SIZE, "index footer")
    (table_offset,) = struct.unpack("<q", footer[:8])
    if footer[8:] != FOOTER_MAGIC:
        raise ValueError(f"bad footer magic {footer[8:]!r}")
    if table_offset != expected[-1] or not np.array_equal(table, expected):
        raise ValueError("corrupt offset table: offsets disagree with records")


def read_index(fh: BinaryIO) -> BitmapIndex:
    """Inverse of :func:`write_index` (reads V1 and V2 records)."""
    magic = fh.read(4)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}; not a repro bitmap index")
    version, _flags = struct.unpack("<HH", _read_exact(fh, 4, "index version"))
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported index version {version}")
    binning = read_binning(fh)
    n_elements, n_bins = struct.unpack("<qi", _read_exact(fh, 12, "index header"))
    if n_elements < 0 or n_bins < 0:
        raise ValueError(
            f"corrupt index header: n_elements={n_elements}, n_bins={n_bins}"
        )
    offsets = np.empty(n_bins + 1, dtype=np.int64)
    pos = _header_size(binning)
    vectors = []
    for b in range(n_bins):
        offsets[b] = pos
        vector = read_bitvector(fh)
        pos += 12 + 4 * vector.n_words
        vectors.append(vector)
    offsets[n_bins] = pos
    if version == VERSION_V2:
        _read_offset_table(fh, n_bins, offsets)
    return BitmapIndex(binning, vectors, n_elements)


def index_to_bytes(index: BitmapIndex, *, version: int = DEFAULT_VERSION) -> bytes:
    """Serialise an index to a bytes object."""
    buf = io.BytesIO()
    write_index(buf, index, version=version)
    return buf.getvalue()


def index_from_bytes(data: bytes) -> BitmapIndex:
    """Deserialise an index from bytes."""
    return read_index(io.BytesIO(data))


def save_index(path, index: BitmapIndex, *, version: int = DEFAULT_VERSION) -> int:
    """Write an index to ``path``; returns file size in bytes."""
    with open(path, "wb") as fh:
        return write_index(fh, index, version=version)


def load_index(path) -> BitmapIndex:
    """Read an index from ``path``."""
    with open(path, "rb") as fh:
        return read_index(fh)


def serialized_size(index: BitmapIndex, *, version: int = DEFAULT_VERSION) -> int:
    """Exact on-disk size without materialising the bytes."""
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"cannot size index version {version}")
    size = _header_size(index.binning)
    for v in index.bitvectors:
        size += 12 + 4 * v.n_words
    if version == VERSION_V2:
        size += 8 * (index.n_bins + 1) + _FOOTER_SIZE
    return size


def _binning_size(binning: Binning) -> int:
    if isinstance(binning, (EqualWidthBinning, PrecisionBinning)):
        return 1 + 24
    if isinstance(binning, ExplicitBinning):
        return 1 + 8 + 8 * binning.bin_edges.size
    if isinstance(binning, DistinctValueBinning):
        return 1 + 8 + 8 * np.asarray(binning.values).size
    raise TypeError(type(binning).__name__)


# ------------------------------------------------------------- lazy loads
class LazyBitmapIndex:
    """Random access to one stored index without materialising it.

    Opens an index *file* (memory-mapped when possible), parses only the
    header, and resolves each bin's byte range from the V2 offset table --
    or, for V1 files and V2 records whose footer cannot be trusted (e.g.
    trailing bytes appended to the file), from a one-pass scan of the
    bitvector *headers* that never touches payload bytes.  Individual
    :class:`~repro.bitmap.wah.WAHBitVector`\\ s are decoded on demand by
    :meth:`get`.

    ``bytes_read`` / ``reads`` count the record bytes actually decoded,
    which is the accounting the query service's cold/warm assertions and
    ``QueryStats.bytes_loaded`` are built on.  Concurrent :meth:`get`
    calls are safe: mmap slicing is lock-free, the file-handle fallback
    serialises around a lock.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.bytes_read = 0
        self.reads = 0
        self._lock = threading.Lock()
        self._fh: BinaryIO | None = open(self.path, "rb")
        self._mm: mmap.mmap | None = None
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty or unmappable file
            self._mm = None
        try:
            self._parse_header()
        except Exception:
            self.close()
            raise

    @classmethod
    def open(cls, path: Path | str) -> "LazyBitmapIndex":
        """Alias constructor, symmetric with :func:`load_index`."""
        return cls(path)

    # ----------------------------------------------------------- plumbing
    def _parse_header(self) -> None:
        fh = self._fh
        fh.seek(0)
        magic = fh.read(4)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}; not a repro bitmap index")
        version, _flags = struct.unpack("<HH", _read_exact(fh, 4, "index version"))
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported index version {version}")
        self.version = int(version)
        self.binning = read_binning(fh)
        n_elements, n_bins = struct.unpack(
            "<qi", _read_exact(fh, 12, "index header")
        )
        if n_elements < 0 or n_bins < 0:
            raise ValueError(
                f"corrupt index header: n_elements={n_elements}, n_bins={n_bins}"
            )
        self.n_elements = int(n_elements)
        self.n_bins = int(n_bins)
        self._data_start = _header_size(self.binning)
        self.offsets = None
        if self.version == VERSION_V2:
            self.offsets = self._offsets_from_footer()
        if self.offsets is None:
            self.offsets = self._offsets_from_scan()

    def _offsets_from_footer(self) -> np.ndarray | None:
        """Load the V2 offset table via the footer; ``None`` if untrusted."""
        fh = self._fh
        size = fh.seek(0, os.SEEK_END)
        if size < self._data_start + 8 * (self.n_bins + 1) + _FOOTER_SIZE:
            return None
        fh.seek(size - _FOOTER_SIZE)
        footer = _read_exact(fh, _FOOTER_SIZE, "index footer")
        (table_offset,) = struct.unpack("<q", footer[:8])
        if footer[8:] != FOOTER_MAGIC:
            return None
        table_end = size - _FOOTER_SIZE
        if table_offset + 8 * (self.n_bins + 1) != table_end:
            return None
        fh.seek(table_offset)
        raw = _read_exact(fh, 8 * (self.n_bins + 1), "offset table")
        offsets = np.frombuffer(raw, dtype="<i8").astype(np.int64)
        if (
            offsets[0] != self._data_start
            or offsets[-1] != table_offset
            or np.any(np.diff(offsets) < 12)
        ):
            raise ValueError("corrupt offset table: implausible offsets")
        return offsets

    def _offsets_from_scan(self) -> np.ndarray:
        """Build the offset table by hopping over bitvector *headers* only."""
        fh = self._fh
        offsets = np.empty(self.n_bins + 1, dtype=np.int64)
        pos = self._data_start
        for b in range(self.n_bins):
            offsets[b] = pos
            fh.seek(pos)
            n_bits, n_words = struct.unpack(
                "<qi", _read_exact(fh, 12, "bitvector header")
            )
            _check_bitvector_header(n_bits, n_words)
            if n_bits != self.n_elements:
                raise ValueError(
                    f"bitvector {b} covers {n_bits} bits, index covers "
                    f"{self.n_elements} elements"
                )
            pos += 12 + 4 * n_words
        offsets[self.n_bins] = pos
        return offsets

    def _read_range(self, lo: int, hi: int, what: str) -> bytes:
        if self._mm is not None:
            raw = self._mm[lo:hi]
            if len(raw) != hi - lo:
                raise EOFError(
                    f"truncated {what}: wanted {hi - lo} bytes, got {len(raw)}"
                )
            return raw
        with self._lock:
            self._fh.seek(lo)
            return _read_exact(self._fh, hi - lo, what)

    # ------------------------------------------------------------ reading
    def nbytes_of(self, bin_id: int) -> int:
        """On-disk record size of one bin's bitvector."""
        self._check_bin(bin_id)
        return int(self.offsets[bin_id + 1] - self.offsets[bin_id])

    def get(self, bin_id: int) -> WAHBitVector:
        """Decode one bin's bitvector, reading only its byte range."""
        self._check_bin(bin_id)
        lo, hi = int(self.offsets[bin_id]), int(self.offsets[bin_id + 1])
        raw = self._read_range(lo, hi, f"bitvector record {bin_id}")
        vector = read_bitvector(io.BytesIO(raw))
        if vector.n_bits != self.n_elements:
            raise ValueError(
                f"bitvector {bin_id} covers {vector.n_bits} bits, index "
                f"covers {self.n_elements} elements"
            )
        self.bytes_read += hi - lo
        self.reads += 1
        return vector

    def materialize(self) -> BitmapIndex:
        """Load every bin into a regular :class:`BitmapIndex`."""
        vectors = [self.get(b) for b in range(self.n_bins)]
        return BitmapIndex(self.binning, vectors, self.n_elements)

    def _check_bin(self, bin_id: int) -> None:
        if not 0 <= bin_id < self.n_bins:
            raise IndexError(f"bin {bin_id} out of range [0, {self.n_bins})")

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "LazyBitmapIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LazyBitmapIndex({str(self.path)!r}, v{self.version}, "
            f"n_elements={self.n_elements}, n_bins={self.n_bins}, "
            f"bytes_read={self.bytes_read})"
        )
