"""On-disk format for bitvectors and bitmap indices.

The in-situ pipeline's whole point is that it writes *bitmaps*, not raw
data, to persistent storage (§2.3 / Figures 7-10 "output" bars).  This
module defines that byte format:

* a bitvector record: ``n_bits`` + word count + the raw ``uint32`` words;
* an index record: a magic header, the binning (self-describing, no
  pickle), element count, and the bitvector records;
* a per-time-step container used by :mod:`repro.insitu.writer`.

All integers are little-endian.  The format is versioned so stored bitmaps
outlive code changes.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

import numpy as np

from repro.bitmap.binning import (
    Binning,
    DistinctValueBinning,
    EqualWidthBinning,
    ExplicitBinning,
    PrecisionBinning,
)
from repro.bitmap.index import BitmapIndex
from repro.bitmap.wah import WAHBitVector

MAGIC = b"RBMP"
VERSION = 1


def _read_exact(fh: BinaryIO, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise a clean ``EOFError``."""
    raw = fh.read(n)
    if len(raw) != n:
        raise EOFError(f"truncated {what}: wanted {n} bytes, got {len(raw)}")
    return raw

_BINNING_TAGS: dict[type, int] = {
    EqualWidthBinning: 1,
    PrecisionBinning: 2,
    ExplicitBinning: 3,
    DistinctValueBinning: 4,
}


# ------------------------------------------------------------- bitvectors
def write_bitvector(fh: BinaryIO, vector: WAHBitVector) -> int:
    """Append one bitvector record; returns bytes written."""
    header = struct.pack("<qi", vector.n_bits, vector.n_words)
    fh.write(header)
    payload = vector.words.astype("<u4").tobytes()
    fh.write(payload)
    return len(header) + len(payload)


def read_bitvector(fh: BinaryIO) -> WAHBitVector:
    """Read one bitvector record."""
    header = _read_exact(fh, 12, "bitvector header")
    n_bits, n_words = struct.unpack("<qi", header)
    if n_bits < 0 or n_words < 0:
        raise ValueError(f"corrupt bitvector header: n_bits={n_bits}, n_words={n_words}")
    raw = _read_exact(fh, 4 * n_words, "bitvector payload")
    words = np.frombuffer(raw, dtype="<u4").astype(np.uint32)
    return WAHBitVector(words, n_bits)


# ---------------------------------------------------------------- binning
def write_binning(fh: BinaryIO, binning: Binning) -> None:
    """Serialise a binning without pickle (each strategy is self-describing)."""
    tag = _BINNING_TAGS.get(type(binning))
    if tag is None:
        raise TypeError(f"cannot serialise binning {type(binning).__name__}")
    fh.write(struct.pack("<B", tag))
    if isinstance(binning, EqualWidthBinning):
        fh.write(struct.pack("<ddq", binning.lo, binning.hi, binning.bins))
    elif isinstance(binning, PrecisionBinning):
        fh.write(struct.pack("<ddq", binning.lo, binning.hi, binning.digits))
    elif isinstance(binning, ExplicitBinning):
        edges = binning.bin_edges.astype("<f8")
        fh.write(struct.pack("<q", edges.size))
        fh.write(edges.tobytes())
    elif isinstance(binning, DistinctValueBinning):
        values = np.asarray(binning.values, dtype="<f8")
        fh.write(struct.pack("<q", values.size))
        fh.write(values.tobytes())


def read_binning(fh: BinaryIO) -> Binning:
    """Inverse of :func:`write_binning`."""
    (tag,) = struct.unpack("<B", _read_exact(fh, 1, "binning tag"))
    if tag == 1:
        lo, hi, bins = struct.unpack("<ddq", _read_exact(fh, 24, "binning header"))
        return EqualWidthBinning(lo, hi, int(bins))
    if tag == 2:
        lo, hi, digits = struct.unpack("<ddq", _read_exact(fh, 24, "binning header"))
        return PrecisionBinning(lo, hi, int(digits))
    if tag == 3:
        (n,) = struct.unpack("<q", _read_exact(fh, 8, "binning size"))
        if n < 0:
            raise ValueError(f"corrupt binning: negative edge count {n}")
        edges = np.frombuffer(
            _read_exact(fh, 8 * n, "binning edges"), dtype="<f8"
        ).astype(np.float64)
        return ExplicitBinning(edges)
    if tag == 4:
        (n,) = struct.unpack("<q", _read_exact(fh, 8, "binning size"))
        if n < 0:
            raise ValueError(f"corrupt binning: negative value count {n}")
        values = np.frombuffer(
            _read_exact(fh, 8 * n, "binning values"), dtype="<f8"
        ).astype(np.float64)
        return DistinctValueBinning(values)
    raise ValueError(f"unknown binning tag {tag}")


# ------------------------------------------------------------------ index
def write_index(fh: BinaryIO, index: BitmapIndex) -> int:
    """Serialise a full bitmap index; returns bytes written."""
    start = fh.tell()
    fh.write(MAGIC)
    fh.write(struct.pack("<HH", VERSION, 0))
    write_binning(fh, index.binning)
    fh.write(struct.pack("<qi", index.n_elements, index.n_bins))
    for vector in index.bitvectors:
        write_bitvector(fh, vector)
    return fh.tell() - start


def read_index(fh: BinaryIO) -> BitmapIndex:
    """Inverse of :func:`write_index`."""
    magic = fh.read(4)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}; not a repro bitmap index")
    version, _flags = struct.unpack("<HH", _read_exact(fh, 4, "index version"))
    if version != VERSION:
        raise ValueError(f"unsupported index version {version}")
    binning = read_binning(fh)
    n_elements, n_bins = struct.unpack("<qi", _read_exact(fh, 12, "index header"))
    if n_elements < 0 or n_bins < 0:
        raise ValueError(
            f"corrupt index header: n_elements={n_elements}, n_bins={n_bins}"
        )
    vectors = [read_bitvector(fh) for _ in range(n_bins)]
    return BitmapIndex(binning, vectors, n_elements)


def index_to_bytes(index: BitmapIndex) -> bytes:
    """Serialise an index to a bytes object."""
    buf = io.BytesIO()
    write_index(buf, index)
    return buf.getvalue()


def index_from_bytes(data: bytes) -> BitmapIndex:
    """Deserialise an index from bytes."""
    return read_index(io.BytesIO(data))


def save_index(path, index: BitmapIndex) -> int:
    """Write an index to ``path``; returns file size in bytes."""
    with open(path, "wb") as fh:
        return write_index(fh, index)


def load_index(path) -> BitmapIndex:
    """Read an index from ``path``."""
    with open(path, "rb") as fh:
        return read_index(fh)


def serialized_size(index: BitmapIndex) -> int:
    """Exact on-disk size without materialising the bytes."""
    size = 4 + 4  # magic + version
    size += _binning_size(index.binning)
    size += 12  # n_elements + n_bins
    for v in index.bitvectors:
        size += 12 + 4 * v.n_words
    return size


def _binning_size(binning: Binning) -> int:
    if isinstance(binning, (EqualWidthBinning, PrecisionBinning)):
        return 1 + 24
    if isinstance(binning, ExplicitBinning):
        return 1 + 8 + 8 * binning.bin_edges.size
    if isinstance(binning, DistinctValueBinning):
        return 1 + 8 + 8 * np.asarray(binning.values).size
    raise TypeError(type(binning).__name__)
