"""Compression-maximizing row ordering with an invertible permutation.

The paper builds bitmaps in simulation order, but Lemire & Kaser
("Sorting improves word-aligned bitmap indexes") showed that reordering
rows before encoding shrinks WAH indexes by integer factors: sorting
turns scattered set bits into long runs, which WAH's fill words compress
to a couple of words per bin.  "Histogram-Aware Sorting for Enhanced
Word-Aligned Compression in Bitmap Indexes" refines this for
multi-column indexes by reordering *columns* (low-cardinality first) and
relabelling *values* by frequency before the sort.

This module computes a row permutation from one or more columns of
binned ids and packages it as an invertible :class:`RowOrdering`:

* ``"lex"`` -- plain lexicographic sort of the bin-id tuples (the
  Lemire/Kaser baseline; optimal for a single column);
* ``"gray"`` -- reflected mixed-radix Gray-code ordering: consecutive
  rows differ in as few columns as possible, which lengthens runs in
  *every* column, not just the primary sort key;
* ``"hist"`` -- histogram-aware ordering: columns sorted by ascending
  distinct-bin count, bin ids relabelled by descending frequency, then
  lexicographic -- frequent values coalesce into the longest runs.

The permutation maps ordered position to original (simulation) position:
``ordered[i] = original[permutation[i]]``.  Counts and joint histograms
are invariant under a permutation *shared* by every index in a query, so
analysis results are unchanged; element *masks* are not invariant, so
query paths de-permute masks back to simulation order with
:meth:`RowOrdering.unpermute_mask` (and permute spatial region masks
into ordered space with :meth:`RowOrdering.permute_mask`).  The
permutation is persisted next to the bitvectors as a minimal-width
sidecar section in the V2.1 record (:mod:`repro.bitmap.serialization`).
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.wah import WAHBitVector

#: Ordering methods computable from data (``compute_ordering``).
ORDERING_METHODS = ("lex", "gray", "hist")

#: Serialisation tags for the permutation sidecar (uint8; frozen format).
ORDERING_METHOD_TAGS = {"custom": 0, "lex": 1, "gray": 2, "hist": 3}
_TAG_METHODS = {tag: name for name, tag in ORDERING_METHOD_TAGS.items()}


def method_for_tag(tag: int) -> str:
    """Resolve a sidecar method tag; unknown tags raise cleanly."""
    try:
        return _TAG_METHODS[int(tag)]
    except KeyError:
        raise ValueError(
            f"unknown ordering method tag {tag} (known: "
            f"{sorted(ORDERING_METHOD_TAGS.values())})"
        ) from None


class RowOrdering:
    """An invertible row permutation applied before bitmap encoding.

    ``permutation[i]`` is the original (simulation-order) position of the
    row stored at ordered position ``i``; it must be a bijection on
    ``[0, n_rows)``.  ``method`` records how it was computed ("lex",
    "gray", "hist", or "custom" for caller-supplied permutations) --
    informational only; correctness depends solely on the permutation.
    """

    __slots__ = ("method", "permutation", "_inverse", "_digest")

    def __init__(self, method: str, permutation: np.ndarray) -> None:
        perm = np.ascontiguousarray(permutation, dtype=np.int64).ravel()
        if perm.size and (
            perm.min() < 0
            or perm.max() >= perm.size
            or np.bincount(perm, minlength=perm.size).max() != 1
        ):
            raise ValueError(
                f"permutation is not a bijection on [0, {perm.size})"
            )
        if method not in ORDERING_METHOD_TAGS:
            raise ValueError(
                f"unknown ordering method {method!r} "
                f"(known: {sorted(ORDERING_METHOD_TAGS)})"
            )
        self.method = method
        self.permutation = perm
        self._inverse: np.ndarray | None = None
        self._digest: int | None = None

    # -------------------------------------------------------------- rows
    @property
    def n_rows(self) -> int:
        return int(self.permutation.size)

    @property
    def inverse(self) -> np.ndarray:
        """``inverse[original_position] = ordered_position`` (memoised)."""
        if self._inverse is None:
            inv = np.empty_like(self.permutation)
            inv[self.permutation] = np.arange(self.n_rows, dtype=np.int64)
            self._inverse = inv
        return self._inverse

    @property
    def is_identity(self) -> bool:
        return bool(
            np.array_equal(
                self.permutation, np.arange(self.n_rows, dtype=np.int64)
            )
        )

    @property
    def digest(self) -> int:
        """CRC32 of the permutation bytes -- a cheap planner equality
        screen (equal permutations always share a digest; full
        ``np.array_equal`` confirms)."""
        if self._digest is None:
            self._digest = zlib.crc32(self.permutation.tobytes())
        return self._digest

    def apply(self, data: np.ndarray) -> np.ndarray:
        """Reorder flat simulation-order ``data`` into ordered space."""
        flat = np.asarray(data).ravel()
        if flat.size != self.n_rows:
            raise ValueError(
                f"ordering covers {self.n_rows} rows, data has {flat.size}"
            )
        return flat[self.permutation]

    def restore(self, ordered: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`apply`: ordered space back to simulation order."""
        flat = np.asarray(ordered).ravel()
        if flat.size != self.n_rows:
            raise ValueError(
                f"ordering covers {self.n_rows} rows, data has {flat.size}"
            )
        out = np.empty_like(flat)
        out[self.permutation] = flat
        return out

    # ------------------------------------------------------------- masks
    def permute_mask(self, mask: WAHBitVector) -> WAHBitVector:
        """Simulation-order mask -> ordered space (for region predicates
        built from the grid layout, which lives in simulation order)."""
        return WAHBitVector.from_bools(self.apply(mask.to_bools()))

    def unpermute_mask(self, mask) -> WAHBitVector:
        """Ordered-space mask -> simulation order (for query results
        crossing any service/wire boundary).  Accepts any codec's
        bitvector (anything with ``to_bools``)."""
        return WAHBitVector.from_bools(self.restore(mask.to_bools()))

    # ---------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RowOrdering):
            return NotImplemented
        return self.method == other.method and np.array_equal(
            self.permutation, other.permutation
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    __hash__ = None  # mutable ndarray payload

    def __repr__(self) -> str:
        return (
            f"RowOrdering({self.method!r}, n_rows={self.n_rows}, "
            f"digest=0x{self.digest:08x})"
        )


def orderings_compatible(
    a: RowOrdering | None, b: RowOrdering | None
) -> bool:
    """True when joint queries over indices ordered by ``a`` and ``b``
    are row-aligned: both absent, both equal permutations, or one absent
    and the other the identity."""
    if a is None and b is None:
        return True
    if a is None:
        return b.is_identity
    if b is None:
        return a.is_identity
    return a.digest == b.digest and np.array_equal(
        a.permutation, b.permutation
    )


# ------------------------------------------------------- ordering methods
def _as_id_columns(
    id_columns: Sequence[np.ndarray],
) -> list[np.ndarray]:
    if not id_columns:
        raise ValueError("need at least one id column to order rows")
    cols = [
        np.ascontiguousarray(np.asarray(c, dtype=np.int64).ravel())
        for c in id_columns
    ]
    n = cols[0].size
    for c in cols[1:]:
        if c.size != n:
            raise ValueError(
                f"id columns disagree on row count: {c.size} != {n}"
            )
    return cols


def _radices(
    cols: list[np.ndarray], radices: Sequence[int] | None
) -> list[int]:
    if radices is None:
        return [int(c.max(initial=-1)) + 1 for c in cols]
    if len(radices) != len(cols):
        raise ValueError(
            f"{len(radices)} radices for {len(cols)} id columns"
        )
    out = []
    for c, r in zip(cols, radices):
        r = int(r)
        if c.size and (c.min() < 0 or c.max() >= r):
            raise ValueError(f"id column exceeds its radix {r}")
        out.append(r)
    return out


def _lexsort(keys: list[np.ndarray]) -> np.ndarray:
    # np.lexsort treats its *last* key as primary; keys[0] is our most
    # significant column.  Stable, so equal tuples keep simulation order.
    return np.lexsort(tuple(reversed(keys))).astype(np.int64)


def lexicographic_ordering(
    id_columns: Sequence[np.ndarray],
    radices: Sequence[int] | None = None,
) -> RowOrdering:
    """Sort rows by their bin-id tuples, first column most significant."""
    cols = _as_id_columns(id_columns)
    _radices(cols, radices)  # validation only
    return RowOrdering("lex", _lexsort(cols))


def gray_code_ordering(
    id_columns: Sequence[np.ndarray],
    radices: Sequence[int] | None = None,
) -> RowOrdering:
    """Sort rows along the reflected mixed-radix Gray curve.

    Ranking rule: the transformed digit of column ``c`` is ``d_c`` when
    the sum of the *preceding original* digits is even, else
    ``R_c - 1 - d_c`` (the reflection); lexicographic order of the
    transformed digits is exactly reflected-Gray order (verified against
    a brute-force reflected enumeration in the tests).  Consecutive
    tuples on the curve differ in one digit by one step, so secondary
    columns change direction instead of resetting -- longer runs for
    every column than plain lexicographic.
    """
    cols = _as_id_columns(id_columns)
    rads = _radices(cols, radices)
    n = cols[0].size
    keys: list[np.ndarray] = []
    parity = np.zeros(n, dtype=np.int64)
    for ids, radix in zip(cols, rads):
        keys.append(np.where((parity & 1) == 0, ids, radix - 1 - ids))
        parity += ids
    return RowOrdering("gray", _lexsort(keys))


def histogram_aware_ordering(
    id_columns: Sequence[np.ndarray],
    radices: Sequence[int] | None = None,
) -> RowOrdering:
    """Frequency-sorted column/value ordering (histogram-aware sorting).

    Columns are reordered by ascending distinct-bin count (few-valued
    columns make the cheapest long prefixes), each column's bin ids are
    relabelled by descending frequency (ties by original id, so the
    relabelling is deterministic), and the relabelled tuples are sorted
    lexicographically.  The stored bitvectors are unchanged -- only the
    row order moves -- so no query-side remapping is needed beyond the
    shared permutation.
    """
    cols = _as_id_columns(id_columns)
    rads = _radices(cols, radices)
    relabelled: list[np.ndarray] = []
    distinct: list[int] = []
    for ids, radix in zip(cols, rads):
        counts = np.bincount(ids, minlength=max(radix, 1))
        by_freq = np.argsort(-counts, kind="stable")  # ties keep bin id
        rank = np.empty(by_freq.size, dtype=np.int64)
        rank[by_freq] = np.arange(by_freq.size, dtype=np.int64)
        relabelled.append(rank[ids] if ids.size else ids)
        distinct.append(int((counts > 0).sum()))
    col_order = sorted(range(len(cols)), key=lambda c: (distinct[c], c))
    perm = _lexsort([relabelled[c] for c in col_order])
    return RowOrdering("hist", perm)


_ORDERING_FNS = {
    "lex": lexicographic_ordering,
    "gray": gray_code_ordering,
    "hist": histogram_aware_ordering,
}


def compute_ordering(
    data_columns: Sequence[np.ndarray],
    binnings: Sequence[Binning] | Binning,
    method: str,
) -> RowOrdering:
    """Compute a row ordering from raw data columns under their binnings.

    ``data_columns`` are one array per variable (any shape; flattened
    C-order, all the same size); ``binnings`` is one binning per column
    or a single binning shared by all.  ``method`` is one of
    ``ORDERING_METHODS``.  The sort keys are the columns' *bin ids* --
    ordering on ids rather than raw values is what makes every bin's
    bitvector runs coalesce.
    """
    fn = _ORDERING_FNS.get(method)
    if fn is None:
        raise ValueError(
            f"unknown ordering method {method!r} "
            f"(known: {list(ORDERING_METHODS)})"
        )
    if isinstance(binnings, Binning):
        binnings = [binnings] * len(data_columns)
    if len(binnings) != len(data_columns):
        raise ValueError(
            f"{len(binnings)} binnings for {len(data_columns)} data columns"
        )
    cols = [
        b.assign_checked(np.asarray(d).ravel())
        for d, b in zip(data_columns, binnings)
    ]
    return fn(cols, [b.n_bins for b in binnings])
