"""Binning strategies: map raw values to bitvector (bin) ids.

The paper builds one bitvector per *distinct value* for low-cardinality
integer data (Figure 1) and one per *bin* for floating-point data (§2.1,
citing Wu et al. [42]).  The Heat3D experiments use a fixed-precision
binning ("retain 1 digit after the decimal point", §5.1), which yields
64-206 bins depending on the per-time-step value range; Lulesh yields
89-314 bins.

Every strategy maps an array of values to integer bin ids in ``[0, n_bins)``
via :meth:`Binning.assign`, and exposes the bin edges/labels needed to keep
the binning scale *identical* between the full-data and bitmap analysis
paths -- the precondition for the paper's "no accuracy loss" claim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import ensure_1d


class Binning(ABC):
    """Maps values to contiguous integer bin ids."""

    @property
    @abstractmethod
    def n_bins(self) -> int:
        """Number of bins (== number of low-level bitvectors)."""

    @abstractmethod
    def assign(self, values: np.ndarray) -> np.ndarray:
        """Return an ``int64`` array of bin ids, same length as ``values``."""

    @abstractmethod
    def bin_label(self, bin_id: int) -> str:
        """Human-readable label of one bin (a value or a value range)."""

    def assign_checked(self, values: np.ndarray) -> np.ndarray:
        """Like :meth:`assign` but raises if any value falls outside all bins.

        NaNs are rejected explicitly: real datasets carry them (masked
        ocean land cells, sensor dropouts) and they must be handled via
        :mod:`repro.analysis.incomplete`'s missing masks, never silently
        binned.
        """
        flat = np.asarray(values).ravel()
        if np.issubdtype(flat.dtype, np.floating) and np.isnan(flat).any():
            raise ValueError(
                "values contain NaN; mask missing data explicitly "
                "(see repro.analysis.incomplete) before indexing"
            )
        ids = self.assign(values)
        bad = (ids < 0) | (ids >= self.n_bins)
        if np.any(bad):
            v = flat[np.flatnonzero(bad)[0]]
            raise ValueError(f"value {v!r} outside binning domain")
        return ids


@dataclass(frozen=True)
class DistinctValueBinning(Binning):
    """One bin per distinct value -- the integer example of Figure 1."""

    values: np.ndarray

    def __post_init__(self) -> None:
        vals = np.unique(np.asarray(self.values))
        object.__setattr__(self, "values", vals)

    @classmethod
    def from_data(cls, data: np.ndarray) -> "DistinctValueBinning":
        return cls(np.unique(np.asarray(data).ravel()))

    @property
    def n_bins(self) -> int:
        return int(self.values.size)

    def assign(self, values: np.ndarray) -> np.ndarray:
        flat = np.asarray(values).ravel()
        ids = np.searchsorted(self.values, flat)
        ids = np.clip(ids, 0, self.n_bins - 1)
        miss = self.values[ids] != flat
        out = ids.astype(np.int64)
        out[miss] = -1
        return out

    def bin_label(self, bin_id: int) -> str:
        return f"={self.values[bin_id]!r}"


@dataclass(frozen=True)
class EqualWidthBinning(Binning):
    """``n_bins`` equal-width bins over [lo, hi]; hi maps into the last bin."""

    lo: float
    hi: float
    bins: int

    def __post_init__(self) -> None:
        if not self.hi > self.lo:
            raise ValueError(f"need hi > lo, got [{self.lo}, {self.hi}]")
        if self.bins < 1:
            raise ValueError(f"need >= 1 bin, got {self.bins}")

    @classmethod
    def from_data(cls, data: np.ndarray, bins: int) -> "EqualWidthBinning":
        flat = np.asarray(data, dtype=np.float64).ravel()
        lo, hi = float(flat.min()), float(flat.max())
        if hi == lo:
            hi = lo + 1.0
        return cls(lo, hi, bins)

    @property
    def n_bins(self) -> int:
        return self.bins

    @property
    def edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.bins + 1)

    def assign(self, values: np.ndarray) -> np.ndarray:
        flat = np.asarray(values, dtype=np.float64).ravel()
        width = (self.hi - self.lo) / self.bins
        ids = np.floor((flat - self.lo) / width).astype(np.int64)
        ids[flat == self.hi] = self.bins - 1
        ids[(flat < self.lo) | (flat > self.hi)] = -1
        return ids

    def bin_label(self, bin_id: int) -> str:
        e = self.edges
        return f"[{e[bin_id]:.6g}, {e[bin_id + 1]:.6g})"


@dataclass(frozen=True)
class PrecisionBinning(Binning):
    """Fixed-decimal-precision binning -- the Heat3D setting of §5.1.

    ``digits=1`` buckets every value by ``round(v, 1)``: the bin width is
    ``10**-digits`` and the number of bins follows the value range, exactly
    how the paper gets 64-206 bins from varying temperature ranges.
    """

    lo: float
    hi: float
    digits: int = 1

    def __post_init__(self) -> None:
        if not self.hi >= self.lo:
            raise ValueError(f"need hi >= lo, got [{self.lo}, {self.hi}]")

    @classmethod
    def from_data(cls, data: np.ndarray, digits: int = 1) -> "PrecisionBinning":
        flat = np.asarray(data, dtype=np.float64).ravel()
        return cls(float(flat.min()), float(flat.max()), digits)

    @property
    def _scale(self) -> float:
        return 10.0 ** self.digits

    @property
    def _lo_tick(self) -> int:
        return int(np.round(self.lo * self._scale))

    @property
    def n_bins(self) -> int:
        hi_tick = int(np.round(self.hi * self._scale))
        return hi_tick - self._lo_tick + 1

    @property
    def edges(self) -> np.ndarray:
        """Bin boundaries: bin k covers the half-open rounding interval
        ``[(tick_k - 0.5)/scale, (tick_k + 0.5)/scale)``."""
        ticks = self._lo_tick + np.arange(self.n_bins + 1, dtype=np.float64)
        return (ticks - 0.5) / self._scale

    def assign(self, values: np.ndarray) -> np.ndarray:
        flat = np.asarray(values, dtype=np.float64).ravel()
        ticks = np.round(flat * self._scale).astype(np.int64)
        ids = ticks - self._lo_tick
        ids[(ids < 0) | (ids >= self.n_bins)] = -1
        return ids

    def bin_label(self, bin_id: int) -> str:
        return f"~{(self._lo_tick + bin_id) / self._scale:.{max(self.digits, 0)}f}"


@dataclass(frozen=True)
class ExplicitBinning(Binning):
    """Arbitrary monotone bin edges (half-open; final edge closed)."""

    bin_edges: np.ndarray = field()

    def __post_init__(self) -> None:
        edges = ensure_1d("edges", self.bin_edges, dtype=np.float64)
        if edges.size < 2 or np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing with >= 2 entries")
        object.__setattr__(self, "bin_edges", edges)

    @property
    def n_bins(self) -> int:
        return int(self.bin_edges.size - 1)

    @property
    def edges(self) -> np.ndarray:
        return self.bin_edges

    def assign(self, values: np.ndarray) -> np.ndarray:
        flat = np.asarray(values, dtype=np.float64).ravel()
        ids = np.searchsorted(self.bin_edges, flat, side="right") - 1
        ids[flat == self.bin_edges[-1]] = self.n_bins - 1
        ids[(flat < self.bin_edges[0]) | (flat > self.bin_edges[-1])] = -1
        return ids.astype(np.int64)

    def bin_label(self, bin_id: int) -> str:
        e = self.bin_edges
        close = "]" if bin_id == self.n_bins - 1 else ")"
        return f"[{e[bin_id]:.6g}, {e[bin_id + 1]:.6g}{close}"


def common_binning(
    arrays: list[np.ndarray], *, bins: int | None = None, digits: int | None = None
) -> Binning:
    """Build a single binning covering all given arrays.

    The paper requires "the binning range of different time-steps should be
    the same" (§3.1, EMD) -- this helper produces that shared scale.  Pass
    either ``bins`` (equal-width) or ``digits`` (fixed precision).
    """
    if (bins is None) == (digits is None):
        raise ValueError("pass exactly one of bins= or digits=")
    lo = min(float(np.asarray(a).min()) for a in arrays)
    hi = max(float(np.asarray(a).max()) for a in arrays)
    if digits is not None:
        return PrecisionBinning(lo, hi, digits)
    if hi == lo:
        hi = lo + 1.0
    return EqualWidthBinning(lo, hi, bins)
