"""Word-Aligned Hybrid (WAH) compressed bitvectors, paper-faithful layout.

A compressed bitvector is a sequence of 32-bit words.  Following the exact
constants of Algorithm 1 in the paper:

* **Literal word** -- MSB (bit 31) is 0; the low 31 bits hold one 31-bit
  *group* of the bitvector, LSB-first.
* **Fill word** -- MSB is 1; bit 30 is the fill value (1 for a run of ones,
  0 for a run of zeros); the low 30 bits hold the run length **in bits**
  (always a multiple of 31).  So ``0xC000001F`` is a 1-fill of 31 bits and
  ``0x8000001F`` a 0-fill of 31 bits, exactly as pushed by Algorithm 1, and
  extending a fill adds 31 to the count (``LastSeg += 31``).

A fill word can represent at most ``0x3FFFFFFF`` bits (~1 Gbit); longer runs
are split across several fill words.

The logical length ``n_bits`` need not be a multiple of 31; the trailing
padding bits of the final group are always zero (an invariant enforced by
every constructor and checked by :meth:`WAHBitVector.check_invariants`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.bits import (
    GROUP_BITS,
    GROUP_FULL,
    groups_needed,
    last_group_mask,
    pack_bits_to_groups,
    popcount_total,
    popcount_u32,
    unpack_groups_to_bits,
)

#: Fill-word flag (MSB of the 32-bit word).
FILL_FLAG = np.uint32(0x80000000)
#: Fill-value flag (bit 30): set for 1-fills.
FILL_VALUE_FLAG = np.uint32(0x40000000)
#: Low 30 bits of a fill word: run length in bits (multiple of 31).
FILL_COUNT_MASK = np.uint32(0x3FFFFFFF)
#: Largest bit count representable by one fill word, rounded down to a
#: multiple of 31.
MAX_FILL_BITS = int(FILL_COUNT_MASK) - int(FILL_COUNT_MASK) % GROUP_BITS

ONE_FILL_HEADER = np.uint32(0xC0000000)
ZERO_FILL_HEADER = FILL_FLAG


def is_fill(word: int) -> bool:
    """True if ``word`` is a fill word."""
    return bool(np.uint32(word) & FILL_FLAG)


def fill_value(word: int) -> int:
    """Fill value (0 or 1) of a fill word."""
    return int(bool(np.uint32(word) & FILL_VALUE_FLAG))


def fill_bit_count(word: int) -> int:
    """Run length in bits of a fill word."""
    return int(np.uint32(word) & FILL_COUNT_MASK)


def make_fill(value: int, n_bits: int) -> int:
    """Construct a fill word for ``n_bits`` bits of ``value``."""
    if n_bits % GROUP_BITS != 0 or not 0 < n_bits <= MAX_FILL_BITS:
        raise ValueError(f"fill length must be a multiple of 31 in (0, {MAX_FILL_BITS}], got {n_bits}")
    header = ONE_FILL_HEADER if value else ZERO_FILL_HEADER
    return int(header | np.uint32(n_bits))


def _emit_words(
    run_val: np.ndarray, run_len: np.ndarray, run_fill: np.ndarray
) -> np.ndarray:
    """Emit WAH words from merged runs (value, group count, fillable flag).

    Literal runs always have length 1; fill runs emit one word, or several
    for giant runs exceeding :data:`MAX_FILL_BITS`.
    """
    cap_groups = MAX_FILL_BITS // GROUP_BITS
    n_words = np.where(run_fill, -(-run_len // cap_groups), 1)
    total = int(n_words.sum())
    out = np.empty(total, dtype=np.uint32)
    out_pos = np.concatenate(([0], np.cumsum(n_words)[:-1]))

    lit = ~run_fill
    out[out_pos[lit]] = run_val[lit]

    fills = np.flatnonzero(run_fill)
    if fills.size:
        simple = fills[n_words[fills] == 1]
        if simple.size:
            header = np.where(
                run_val[simple] == GROUP_FULL, ONE_FILL_HEADER, ZERO_FILL_HEADER
            ).astype(np.uint32)
            out[out_pos[simple]] = header | (
                run_len[simple].astype(np.uint32) * np.uint32(GROUP_BITS)
            )
        # Rare giant runs: loop only over runs needing splitting.
        for r in fills[n_words[fills] > 1]:
            value = 1 if run_val[r] == GROUP_FULL else 0
            remaining = int(run_len[r])
            pos = int(out_pos[r])
            while remaining > 0:
                take = min(remaining, cap_groups)
                out[pos] = make_fill(value, take * GROUP_BITS)
                pos += 1
                remaining -= take
    return out


def compress_groups(groups: np.ndarray) -> np.ndarray:
    """Run-length encode an array of 31-bit groups into WAH words.

    Fully vectorised: classifies each group as 0-fill / 1-fill / literal,
    finds run boundaries with a change-point scan, and emits one word per
    literal group and one (or more, for giant runs) per fill run.
    """
    groups = np.asarray(groups, dtype=np.uint32)
    m = groups.size
    if m == 0:
        return np.empty(0, dtype=np.uint32)

    fillable = (groups == 0) | (groups == GROUP_FULL)
    # A run starts wherever the value changes, or at any literal (literals
    # are always single-group runs).
    starts = np.empty(m, dtype=bool)
    starts[0] = True
    starts[1:] = (groups[1:] != groups[:-1]) | ~fillable[1:] | ~fillable[:-1]
    start_idx = np.flatnonzero(starts)
    run_len = np.diff(np.append(start_idx, m))
    return _emit_words(groups[start_idx], run_len, fillable[start_idx])


def compress_runs(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Run-length encode (group value, group count) runs into WAH words.

    The run-domain sibling of :func:`compress_groups`: adjacent runs with
    the same fillable value are merged, literal values become literal
    words, and nothing is ever expanded to the group domain -- the cost is
    O(runs), not O(groups).  Zero-length runs are permitted and ignored;
    literal (non-fill) values must have count 1.
    """
    values = np.asarray(values, dtype=np.uint32)
    counts = np.asarray(counts, dtype=np.int64)
    keep = counts > 0
    if not keep.all():
        values, counts = values[keep], counts[keep]
    m = values.size
    if m == 0:
        return np.empty(0, dtype=np.uint32)
    fillable = (values == 0) | (values == GROUP_FULL)
    if np.any(counts[~fillable] != 1):
        raise ValueError("literal runs must have count 1")
    starts = np.empty(m, dtype=bool)
    starts[0] = True
    starts[1:] = (values[1:] != values[:-1]) | ~fillable[1:] | ~fillable[:-1]
    start_idx = np.flatnonzero(starts)
    run_len = np.add.reduceat(counts, start_idx)
    return _emit_words(values[start_idx], run_len, fillable[start_idx])


def decompress_words(words: np.ndarray) -> np.ndarray:
    """Expand WAH words into the flat array of 31-bit groups they encode."""
    words = np.asarray(words, dtype=np.uint32)
    if words.size == 0:
        return np.empty(0, dtype=np.uint32)
    fills = (words & FILL_FLAG) != 0
    counts = np.where(
        fills, (words & FILL_COUNT_MASK) // np.uint32(GROUP_BITS), np.uint32(1)
    ).astype(np.int64)
    values = np.where(
        fills,
        np.where((words & FILL_VALUE_FLAG) != 0, GROUP_FULL, np.uint32(0)),
        words & np.uint32(0x7FFFFFFF),
    ).astype(np.uint32)
    return np.repeat(values, counts)


@dataclass(frozen=True)
class WAHBitVector:
    """An immutable WAH-compressed bitvector of logical length ``n_bits``.

    ``words`` is the compressed word stream; it always encodes exactly
    ``ceil(n_bits / 31)`` groups, and padding bits beyond ``n_bits`` in the
    final group are zero.
    """

    words: np.ndarray
    n_bits: int

    # ---------------------------------------------------------------- ctor
    def __post_init__(self) -> None:
        object.__setattr__(
            self, "words", np.ascontiguousarray(self.words, dtype=np.uint32)
        )
        if self.n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {self.n_bits}")

    @classmethod
    def from_bools(cls, bits: np.ndarray) -> "WAHBitVector":
        """Compress a boolean (or 0/1) array."""
        bits = np.asarray(bits, dtype=bool).ravel()
        groups = pack_bits_to_groups(bits)
        return cls(compress_groups(groups), bits.size)

    @classmethod
    def from_groups(cls, groups: np.ndarray, n_bits: int) -> "WAHBitVector":
        """Compress an already-packed array of 31-bit groups."""
        if np.asarray(groups).size != groups_needed(n_bits):
            raise ValueError(
                f"{np.asarray(groups).size} groups cannot encode {n_bits} bits"
            )
        return cls(compress_groups(groups), n_bits)

    @classmethod
    def from_indices(cls, indices: np.ndarray, n_bits: int) -> "WAHBitVector":
        """Build a bitvector with ones at the given positions."""
        bits = np.zeros(n_bits, dtype=bool)
        bits[np.asarray(indices, dtype=np.int64)] = True
        return cls.from_bools(bits)

    @classmethod
    def zeros(cls, n_bits: int) -> "WAHBitVector":
        """An all-zero bitvector."""
        return cls.from_groups(np.zeros(groups_needed(n_bits), dtype=np.uint32), n_bits)

    @classmethod
    def ones(cls, n_bits: int) -> "WAHBitVector":
        """An all-one bitvector (padding bits still zero)."""
        g = np.full(groups_needed(n_bits), GROUP_FULL, dtype=np.uint32)
        if n_bits:
            g[-1] = np.uint32(g[-1] & last_group_mask(n_bits))
        return cls.from_groups(g, n_bits)

    # ------------------------------------------------------------ content
    def runs(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-run (cumulative group end, group value) decode, memoised.

        ``values[i]`` is the literal payload for literal runs and 0 /
        ``GROUP_FULL`` for fills; ``ends[i]`` is the group offset one past
        run ``i``.  One entry per compressed word, so the decode is
        O(words); the result is cached because the compressed-domain count
        kernels (:mod:`repro.bitmap.ops`) reuse each operand across many
        pairwise merges.  Callers must treat both arrays as read-only.
        """
        cached = self.__dict__.get("_runs")
        if cached is None:
            words = self.words
            fills = (words & FILL_FLAG) != 0
            counts = np.where(
                fills,
                (words & FILL_COUNT_MASK) // np.uint32(GROUP_BITS),
                np.uint32(1),
            ).astype(np.int64)
            values = np.where(
                fills,
                np.where((words & FILL_VALUE_FLAG) != 0, GROUP_FULL, np.uint32(0)),
                words & np.uint32(0x7FFFFFFF),
            ).astype(np.uint32)
            cached = (np.cumsum(counts), values)
            object.__setattr__(self, "_runs", cached)
        return cached

    def to_groups(self) -> np.ndarray:
        """Decompress to the flat array of 31-bit groups."""
        return decompress_words(self.words)

    def to_bools(self) -> np.ndarray:
        """Decompress to a boolean array of length ``n_bits``."""
        return unpack_groups_to_bits(self.to_groups(), self.n_bits)

    def to_indices(self) -> np.ndarray:
        """Positions of the set bits."""
        return np.flatnonzero(self.to_bools())

    def count(self) -> int:
        """Number of set bits, computed on the *compressed* form.

        Literal words contribute their payload popcount; 1-fill words
        contribute their bit count directly -- no decompression.
        """
        words = self.words
        if words.size == 0:
            return 0
        fills = (words & FILL_FLAG) != 0
        lit_total = popcount_total(words[~fills] & np.uint32(0x7FFFFFFF))
        one_fills = words[fills & ((words & FILL_VALUE_FLAG) != 0)]
        fill_total = int((one_fills & FILL_COUNT_MASK).astype(np.int64).sum())
        return lit_total + fill_total

    def density(self) -> float:
        """Fraction of set bits (0 for the empty vector)."""
        return self.count() / self.n_bits if self.n_bits else 0.0

    # ----------------------------------------------------------- geometry
    @property
    def n_words(self) -> int:
        return int(self.words.size)

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes."""
        return int(self.words.nbytes)

    @property
    def n_groups(self) -> int:
        return groups_needed(self.n_bits)

    def compression_ratio(self) -> float:
        """Compressed words / uncompressed groups (lower is better)."""
        g = self.n_groups
        return self.n_words / g if g else 1.0

    # ------------------------------------------------------------- checks
    def check_invariants(self) -> None:
        """Validate the word stream; raises ``AssertionError`` on corruption."""
        words = self.words
        fills = (words & FILL_FLAG) != 0
        counts = words[fills] & FILL_COUNT_MASK
        assert np.all(counts % GROUP_BITS == 0), "fill count not a multiple of 31"
        assert np.all(counts > 0), "empty fill word"
        fill_groups = int(counts.astype(np.int64).sum()) // GROUP_BITS
        groups_encoded = fill_groups + int((~fills).sum())
        assert groups_encoded == self.n_groups, (
            f"words encode {groups_encoded} groups, expected {self.n_groups}"
        )
        if self.n_bits % GROUP_BITS != 0 and words.size:
            groups = self.to_groups()
            pad_mask = np.uint32(~int(last_group_mask(self.n_bits)) & 0x7FFFFFFF)
            assert groups[-1] & pad_mask == 0, "padding bits set in final group"

    # ------------------------------------------------------------ dunders
    def __len__(self) -> int:
        return self.n_bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WAHBitVector):
            return NotImplemented
        return self.n_bits == other.n_bits and np.array_equal(self.words, other.words)

    def __hash__(self) -> int:
        return hash((self.n_bits, self.words.tobytes()))

    def __getitem__(self, pos: int) -> bool:
        """Test a single bit (decompresses up to the containing group)."""
        if not 0 <= pos < self.n_bits:
            raise IndexError(pos)
        target_group, offset = divmod(pos, GROUP_BITS)
        seen = 0
        for w in self.words:
            w = int(w)
            span = fill_bit_count(w) // GROUP_BITS if is_fill(w) else 1
            if seen + span > target_group:
                if is_fill(w):
                    return bool(fill_value(w))
                return bool((w >> offset) & 1)
            seen += span
        raise AssertionError("corrupt word stream")  # pragma: no cover

    def __repr__(self) -> str:
        return (
            f"WAHBitVector(n_bits={self.n_bits}, n_words={self.n_words}, "
            f"count={self.count()})"
        )
