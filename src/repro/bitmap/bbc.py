"""Byte-aligned Bitmap Code (BBC) -- the paper's cited alternative codec.

§2.1 names two run-length schemes: WAH [41] (what Algorithm 1 uses) and
BBC (Antoshenkov [4]).  This module implements a byte-aligned codec in the
BBC family so the WAH-vs-BBC trade-off the literature discusses (BBC
compresses tighter; WAH's word alignment makes operations faster) is
reproducible as an ablation (``benchmarks/bench_ablation_codec.py``).

Encoding (documented variant of the byte-aligned idea):

* **fill atom** -- control byte with MSB set: bit 6 is the fill value,
  bits 0-5 hold a run length of 1..63 *bytes* of ``0x00`` or ``0xFF``
  (longer runs split across atoms);
* **literal atom** -- control byte with MSB clear: bits 0-6 hold a count
  of 1..127 verbatim payload bytes that follow.

Compared to WAH's 31-bit groups, the byte granularity captures shorter
runs (tighter compression on moderately dirty data) at the cost of
unaligned operations.  Logical ops here decode to the byte domain,
apply the numpy kernel and re-encode -- the byte-domain analogue of
:func:`repro.bitmap.ops.logical_op`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

_FILL_FLAG = 0x80
_FILL_VALUE = 0x40
_FILL_LEN_MASK = 0x3F
_LITERAL_MAX = 0x7F
_FILL_MAX = 0x3F

_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def encode_bytes(raw: np.ndarray) -> np.ndarray:
    """Encode a ``uint8`` byte stream into BBC atoms (``uint8`` array)."""
    raw = np.asarray(raw, dtype=np.uint8)
    n = raw.size
    if n == 0:
        return np.empty(0, dtype=np.uint8)

    fillable = (raw == 0) | (raw == 0xFF)
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = (raw[1:] != raw[:-1]) | ~fillable[1:] | ~fillable[:-1]
    # Literal bytes coalesce into blocks: a "run" here is either one fill
    # value repeated, or a maximal stretch of non-fillable bytes.
    run_start = np.flatnonzero(starts)
    run_len = np.diff(np.append(run_start, n))

    out: list[np.ndarray] = []
    pending_lit: list[np.ndarray] = []

    def flush_literals() -> None:
        if not pending_lit:
            return
        lit = np.concatenate(pending_lit)
        pending_lit.clear()
        for i in range(0, lit.size, _LITERAL_MAX):
            chunk = lit[i : i + _LITERAL_MAX]
            out.append(np.asarray([chunk.size], dtype=np.uint8))
            out.append(chunk)

    for s, length in zip(run_start, run_len):
        value = raw[s]
        if fillable[s] and length > 1:
            flush_literals()
            header = _FILL_FLAG | (_FILL_VALUE if value == 0xFF else 0)
            remaining = int(length)
            fills = []
            while remaining > 0:
                take = min(remaining, _FILL_MAX)
                fills.append(header | take)
                remaining -= take
            out.append(np.asarray(fills, dtype=np.uint8))
        else:
            # Single fillable bytes ride along as literals (an atom would
            # cost the same byte anyway).
            pending_lit.append(raw[s : s + length])
    flush_literals()
    return np.concatenate(out) if out else np.empty(0, dtype=np.uint8)


def decode_bytes(atoms: np.ndarray) -> np.ndarray:
    """Decode BBC atoms back into the raw byte stream."""
    atoms = np.asarray(atoms, dtype=np.uint8)
    out: list[np.ndarray] = []
    pos = 0
    n = atoms.size
    while pos < n:
        c = int(atoms[pos])
        pos += 1
        if c & _FILL_FLAG:
            value = 0xFF if c & _FILL_VALUE else 0x00
            length = c & _FILL_LEN_MASK
            if length == 0:
                raise ValueError("corrupt BBC stream: zero-length fill")
            out.append(np.full(length, value, dtype=np.uint8))
        else:
            if c == 0 or pos + c > n:
                raise ValueError("corrupt BBC stream: bad literal block")
            out.append(atoms[pos : pos + c])
            pos += c
    return np.concatenate(out) if out else np.empty(0, dtype=np.uint8)


@dataclass(frozen=True)
class BBCBitVector:
    """An immutable BBC-compressed bitvector (bit 0 of byte 0 first)."""

    atoms: np.ndarray
    n_bits: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "atoms", np.ascontiguousarray(self.atoms, dtype=np.uint8)
        )
        if self.n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {self.n_bits}")

    # ------------------------------------------------------------- builds
    @classmethod
    def from_bools(cls, bits: np.ndarray) -> "BBCBitVector":
        bits = np.asarray(bits, dtype=bool).ravel()
        raw = np.packbits(bits, bitorder="little")
        return cls(encode_bytes(raw), bits.size)

    @classmethod
    def zeros(cls, n_bits: int) -> "BBCBitVector":
        return cls.from_bools(np.zeros(n_bits, dtype=bool))

    @classmethod
    def ones(cls, n_bits: int) -> "BBCBitVector":
        return cls.from_bools(np.ones(n_bits, dtype=bool))

    # ------------------------------------------------------------ content
    def to_raw_bytes(self) -> np.ndarray:
        return decode_bytes(self.atoms)

    def to_bools(self) -> np.ndarray:
        raw = self.to_raw_bytes()
        return np.unpackbits(raw, bitorder="little")[: self.n_bits].astype(bool)

    def count(self) -> int:
        """Popcount on the compressed stream (no full decode).

        Literal payloads contribute table popcounts; 1-fills contribute
        8 bits per run byte.  Padding bits beyond ``n_bits`` are zero by
        construction (``np.packbits`` zero-pads), except that a trailing
        1-fill cannot cover padding, so no correction is needed.
        """
        atoms = self.atoms
        total = 0
        pos = 0
        n = atoms.size
        while pos < n:
            c = int(atoms[pos])
            pos += 1
            if c & _FILL_FLAG:
                if c & _FILL_VALUE:
                    total += 8 * (c & _FILL_LEN_MASK)
            else:
                total += int(_POP8[atoms[pos : pos + c]].sum())
                pos += c
        return total

    @property
    def nbytes(self) -> int:
        return int(self.atoms.nbytes)

    def compression_ratio(self) -> float:
        raw_bytes = -(-self.n_bits // 8)
        return self.nbytes / raw_bytes if raw_bytes else 1.0

    # ------------------------------------------------------------ dunders
    def __len__(self) -> int:
        return self.n_bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BBCBitVector):
            return NotImplemented
        return self.n_bits == other.n_bits and np.array_equal(self.atoms, other.atoms)

    def __hash__(self) -> int:
        return hash((self.n_bits, self.atoms.tobytes()))

    def __repr__(self) -> str:
        return f"BBCBitVector(n_bits={self.n_bits}, nbytes={self.nbytes})"


_BYTE_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


def bbc_logical_op(a: BBCBitVector, b: BBCBitVector, op: str) -> BBCBitVector:
    """Byte-domain logical op (decode -> numpy kernel -> re-encode)."""
    if a.n_bits != b.n_bits:
        raise ValueError(f"operand length mismatch: {a.n_bits} != {b.n_bits}")
    try:
        kernel = _BYTE_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_BYTE_KERNELS)}")
    out = kernel(a.to_raw_bytes(), b.to_raw_bytes())
    return BBCBitVector(encode_bytes(out), a.n_bits)


def bbc_and_count(a: BBCBitVector, b: BBCBitVector) -> int:
    """popcount(a AND b) without re-encoding the result."""
    if a.n_bits != b.n_bits:
        raise ValueError(f"operand length mismatch: {a.n_bits} != {b.n_bits}")
    joint = a.to_raw_bytes() & b.to_raw_bytes()
    return int(_POP8[joint].sum())


def wah_to_bbc(vector) -> BBCBitVector:
    """Transcode a WAH bitvector to BBC (for the codec ablation)."""
    return BBCBitVector.from_bools(vector.to_bools())
