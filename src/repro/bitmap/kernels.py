"""Fused k-way kernels over WAH bitvectors -- the multi-operand hot tier.

The pairwise kernels of :mod:`repro.bitmap.ops` force every multi-operand
combination (OR-ing the bins of a range predicate, AND-ing per-variable
masks, rolling a level up by fanout) through a Python ``reduce`` that
materialises k - 1 intermediate WAH vectors and decodes each of them
again for the next step.  This module fuses those folds:

* :func:`logical_op_many` / :func:`op_count_many` -- the **dense path**:
  each operand is decoded exactly once into a stacked ``(k, chunk)``
  group matrix and reduced with a single ``np.bitwise_or.reduce`` /
  ``bitwise_and.reduce`` / ``bitwise_xor.reduce`` sweep.  The sweep is
  chunked along the group axis so peak extra memory is bounded by
  :data:`KWAY_CHUNK_BYTES` regardless of k or vector length; only the
  single result group array (for the materialising form) spans the full
  length.

* :func:`logical_op_runmerge_many` / :func:`op_count_runmerge_many` --
  the **compressed path**: a multi-cursor run merge.  Every operand's
  memoised run decode (:meth:`~repro.bitmap.wah.WAHBitVector.runs`)
  contributes its boundaries to one sorted union; ``searchsorted``
  advances all k cursors at once, yielding a ``(k, segments)`` value
  matrix that the same ufunc reduce collapses.  A fill x ... x fill
  span contributes O(1) work however many groups it covers, so cost is
  O(sum of runs), never O(k x groups).

* :func:`logical_accumulate` -- the prefix-scan sibling (cumulative
  OR/AND/XOR), feeding :class:`~repro.bitmap.range_index.RangeBitmapIndex`
  construction: one decode per operand, one ``ufunc.accumulate`` sweep
  per chunk, per-chunk recompression stitched with the seam-merging
  concatenator.

* :func:`stack_groups` -- the shared decode-once helper behind
  :meth:`~repro.bitmap.index.BitmapIndex.group_matrix` and the analysis
  layers' joint kernels (rows written straight into one preallocated
  matrix).

:func:`auto_op_many` / :func:`auto_count_many` dispatch between the two
paths with :func:`~repro.bitmap.ops.prefers_runmerge` -- the same
compression-ratio rule the pairwise dispatchers use, with thresholds
recalibrated for hardware popcount and k-way fusion by
``benchmarks/bench_kernel_dispatch.py`` (see DESIGN.md, "Kernel dispatch
policy").

All k-way paths are bit-identical to the pairwise left fold
``reduce(lambda x, y: op(x, y), vectors)`` (property-tested across the
binning families), so dispatch remains purely a performance decision.
The non-associative ``andnot`` keeps left-fold semantics:
``reduce(andnot, [a, b, c]) == a AND NOT (b OR c)``, which is how both
paths evaluate it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bitmap.ops import prefers_runmerge
from repro.bitmap.wah import WAHBitVector, compress_groups, compress_runs
from repro.util.bits import (
    GROUP_BITS,
    GROUP_FULL,
    groups_needed,
    last_group_mask,
    popcount_total,
    popcount_u32,
)

#: Peak bytes the chunked dense sweeps may hold in stacked group form.
#: 8 MiB keeps the working set inside typical L2+L3 while amortising
#: numpy call overhead; the chunk width adapts to the operand count so
#: ``k * chunk_groups * 4`` never exceeds this bound.
KWAY_CHUNK_BYTES = 8 << 20

#: Compression-ratio threshold at or below which *every* operand must sit
#: for the k-way dispatchers to take the multi-cursor run merge.  Far
#: below the pairwise thresholds (0.05): the fused dense sweep costs one
#: hardware-rate pass per operand, while the merge pays an O(sum of runs
#: x log) boundary-union sort that grows with k -- at k = 8 the measured
#: crossover sits near ratio 0.01 (``benchmarks/bench_kernel_dispatch.py``,
#: k-way table; DESIGN.md "Kernel dispatch policy").
KWAY_RUNMERGE_RATIO_THRESHOLD = 0.01

#: Ufuncs whose ``reduce``/``accumulate`` implement the associative ops.
_UFUNCS = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


def _coerce_wah_many(vectors: Sequence) -> Sequence[WAHBitVector]:
    """Convert a possibly-mixed-codec operand list to the WAH word domain.

    The k-way merge boundary of the codec layer
    (:mod:`repro.bitmap.codec`): all-WAH inputs pass through untouched;
    any other codec's vectors are re-encoded as WAH so every fused fold
    produces words independent of how the operands were stored.
    """
    if all(type(v) is WAHBitVector for v in vectors):
        return vectors
    from repro.bitmap.codec import as_wah_all

    return as_wah_all(vectors)


def _check_many(vectors: Sequence[WAHBitVector], op: str) -> None:
    if op not in _UFUNCS and op != "andnot":
        raise ValueError(
            f"unknown op {op!r}; expected one of {sorted(_UFUNCS) + ['andnot']}"
        )
    if not vectors:
        raise ValueError("need at least one operand")
    n_bits = vectors[0].n_bits
    for v in vectors[1:]:
        if v.n_bits != n_bits:
            raise ValueError(
                f"operand length mismatch: {v.n_bits} != {n_bits} bits"
            )


def _chunk_groups_for(k: int, chunk_bytes: int) -> int:
    """Chunk width (in groups) bounding the stacked matrix to chunk_bytes."""
    return max(1, chunk_bytes // (4 * max(1, k)))


def _expand_slice(vec: WAHBitVector, lo: int, hi: int, out: np.ndarray) -> None:
    """Decode groups ``[lo, hi)`` of ``vec`` into ``out`` (length hi-lo).

    Works from the memoised run decode, so a chunked sweep still touches
    each compressed word O(1) times across the whole vector.
    """
    ends, vals = vec.runs()
    i0 = int(np.searchsorted(ends, lo, side="right"))
    i1 = int(np.searchsorted(ends, hi, side="left")) + 1
    sub_ends = np.minimum(ends[i0:i1], hi)
    sub_starts = np.empty(i1 - i0, dtype=np.int64)
    sub_starts[0] = lo
    np.maximum(ends[i0 : i1 - 1], lo, out=sub_starts[1:])
    out[:] = np.repeat(vals[i0:i1], sub_ends - sub_starts)


def stack_groups(
    vectors: Sequence[WAHBitVector],
    n_bits: int | None = None,
    *,
    mask_padding: bool = True,
) -> np.ndarray:
    """Decode each vector once into a ``(k, n_groups)`` uint32 matrix.

    The rows are written straight into one preallocated matrix (no
    intermediate list-of-rows + ``vstack`` copy).  With ``mask_padding``
    the final column is masked to the valid bits of ``n_bits`` --
    callers treating the matrix as a shared working set (the analysis
    layers) want that; the fused sweeps skip it because zero padding is
    already invariant under every supported op.
    """
    if not vectors:
        return np.empty((0, 0), dtype=np.uint32)
    vectors = _coerce_wah_many(vectors)
    if n_bits is None:
        n_bits = vectors[0].n_bits
    n_groups = groups_needed(n_bits)
    out = np.empty((len(vectors), n_groups), dtype=np.uint32)
    for i, v in enumerate(vectors):
        if v.n_bits != n_bits:
            raise ValueError(
                f"operand length mismatch: {v.n_bits} != {n_bits} bits"
            )
        if n_groups:
            _expand_slice(v, 0, n_groups, out[i])
    if mask_padding and out.size and n_bits:
        out[:, -1] &= last_group_mask(n_bits)
    return out


def _reduce_rows(mat: np.ndarray, op: str) -> np.ndarray:
    """Fold ``op`` across axis 0 of a ``(k, m)`` group matrix.

    Left-fold semantics throughout; ``andnot`` folds as
    ``row0 AND NOT (row1 OR ... OR rowk-1)``.
    """
    if op == "andnot":
        if mat.shape[0] == 1:
            return mat[0].copy()
        rest = np.bitwise_or.reduce(mat[1:], axis=0)
        return mat[0] & (rest ^ GROUP_FULL)
    return _UFUNCS[op].reduce(mat, axis=0)


# --------------------------------------------------------------- dense path
def logical_op_many(
    vectors: Sequence[WAHBitVector],
    op: str,
    *,
    chunk_bytes: int = KWAY_CHUNK_BYTES,
) -> WAHBitVector:
    """Fused ``op`` over k operands, decoding each exactly once.

    Equivalent to the pairwise left fold ``reduce(logical_op, vectors)``
    (bit-identical, property-tested) but with one decode per operand and
    one ufunc reduce instead of k - 1 intermediate WAH materialisations.
    Peak extra memory is ``min(k * n_groups, chunk_bytes / 4)`` stacked
    words plus the single result group array.
    """
    _check_many(vectors, op)
    n_bits = vectors[0].n_bits
    n_groups = groups_needed(n_bits)
    if n_groups == 0:
        return WAHBitVector(np.empty(0, dtype=np.uint32), n_bits)
    k = len(vectors)
    if k == 1:
        return vectors[0]
    result = np.empty(n_groups, dtype=np.uint32)
    chunk = _chunk_groups_for(k, chunk_bytes)
    buf = np.empty((k, min(chunk, n_groups)), dtype=np.uint32)
    for lo in range(0, n_groups, chunk):
        hi = min(lo + chunk, n_groups)
        mat = buf[:, : hi - lo]
        for i, v in enumerate(vectors):
            _expand_slice(v, lo, hi, mat[i])
        result[lo:hi] = _reduce_rows(mat, op)
    # Padding bits stay zero for every supported op (all operands keep
    # padding zero; andnot complements only non-leading operands, which
    # the first operand's zero padding masks off) -- no final mask needed.
    return WAHBitVector(compress_groups(result), n_bits)


def op_count_many(
    vectors: Sequence[WAHBitVector],
    op: str,
    *,
    chunk_bytes: int = KWAY_CHUNK_BYTES,
) -> int:
    """``popcount(op(v1, ..., vk))`` without materialising any result.

    The count-only sibling of :func:`logical_op_many`: the reduced chunk
    goes straight to the hardware popcount, so no full-length array of
    any kind is allocated.
    """
    _check_many(vectors, op)
    n_bits = vectors[0].n_bits
    n_groups = groups_needed(n_bits)
    if n_groups == 0:
        return 0
    k = len(vectors)
    if k == 1:
        return vectors[0].count()
    total = 0
    chunk = _chunk_groups_for(k, chunk_bytes)
    buf = np.empty((k, min(chunk, n_groups)), dtype=np.uint32)
    for lo in range(0, n_groups, chunk):
        hi = min(lo + chunk, n_groups)
        mat = buf[:, : hi - lo]
        for i, v in enumerate(vectors):
            _expand_slice(v, lo, hi, mat[i])
        total += popcount_total(_reduce_rows(mat, op))
    return total


# ---------------------------------------------------------- compressed path
def _merged_segments_many(
    vectors: Sequence[WAHBitVector],
) -> tuple[np.ndarray, np.ndarray] | None:
    """Multi-cursor run merge: aligned segments across all k operands.

    Returns ``(seg, vals)`` where segment ``j`` covers ``seg[j]`` groups
    over which operand ``i`` uniformly holds group value ``vals[i, j]``
    (or ``None`` for empty vectors).  The boundary union is one sorted
    ``np.unique`` over every operand's run ends; each operand's covering
    run per segment is a vectorised ``searchsorted`` into its own run
    decode -- the k-cursor generalisation of the pairwise packed-key
    merge, O(sum of runs x log k) with no Python-level cursor stepping.

    Any segment longer than one group is fill-only in *every* operand
    (literal runs span exactly one group and their single boundary would
    have split it), so multi-group segments always reduce to a fillable
    value -- the invariant :func:`~repro.bitmap.wah.compress_runs` needs.
    """
    runs = [v.runs() for v in vectors]
    if any(ends.size == 0 for ends, _ in runs):
        if not all(ends.size == 0 for ends, _ in runs):
            raise AssertionError("operand word streams encode different lengths")
        return None
    total = runs[0][0][-1]
    for ends, _ in runs[1:]:
        if ends[-1] != total:
            raise AssertionError("operand word streams encode different lengths")
    bounds = np.unique(np.concatenate([ends for ends, _ in runs]))
    seg = np.diff(bounds, prepend=0)
    vals = np.empty((len(vectors), bounds.size), dtype=np.uint32)
    for i, (ends, run_vals) in enumerate(runs):
        # The run covering groups (bounds[j-1], bounds[j]] is the first
        # run whose end offset is >= bounds[j].
        vals[i] = run_vals[np.searchsorted(ends, bounds, side="left")]
    return seg, vals


def op_count_runmerge_many(vectors: Sequence[WAHBitVector], op: str) -> int:
    """``popcount(op(v1, ..., vk))`` computed on the compressed streams.

    Each merged segment contributes ``popcount(fold) * segment_groups``;
    nothing is expanded to the group domain, so a billion-bit fill costs
    the same as one literal in every operand.
    """
    _check_many(vectors, op)
    if len(vectors) == 1:
        return vectors[0].count()
    merged = _merged_segments_many(vectors)
    if merged is None:
        return 0
    seg, vals = merged
    out = _reduce_rows(vals, op)
    nz = np.flatnonzero(out)
    if nz.size == 0:
        return 0
    return int((popcount_u32(out[nz]).astype(np.int64) * seg[nz]).sum())


def logical_op_runmerge_many(
    vectors: Sequence[WAHBitVector], op: str
) -> WAHBitVector:
    """Fused ``op`` over k operands without leaving the compressed domain.

    The materialising sibling of :func:`op_count_runmerge_many`: merged
    segment values re-encode straight from run-length form, so cost is
    O(sum of runs), not O(k x groups).
    """
    _check_many(vectors, op)
    if len(vectors) == 1:
        return vectors[0]
    merged = _merged_segments_many(vectors)
    if merged is None:
        return WAHBitVector(np.empty(0, dtype=np.uint32), vectors[0].n_bits)
    seg, vals = merged
    return WAHBitVector(
        compress_runs(_reduce_rows(vals, op), seg), vectors[0].n_bits
    )


# -------------------------------------------------------------- prefix scan
def logical_accumulate(
    vectors: Sequence[WAHBitVector],
    op: str = "or",
    *,
    chunk_bytes: int = KWAY_CHUNK_BYTES,
) -> list[WAHBitVector]:
    """All k prefix folds ``op(v1), op(v1, v2), ..., op(v1, ..., vk)``.

    The fused form of the one-at-a-time accumulation loop (cumulative OR
    is how a range-encoded index is rolled up from an equality-encoded
    one): each operand decodes once per chunk, one ``ufunc.accumulate``
    sweep produces every prefix simultaneously, and per-chunk
    recompressions stitch seam-merged via
    :func:`~repro.bitmap.builder.concatenate_bitvectors` -- bit-identical
    to the pairwise loop (property-tested).  ``andnot`` is not a ufunc
    accumulate; the three associative ops are supported.
    """
    if op not in _UFUNCS:
        raise ValueError(f"unknown accumulate op {op!r}; expected one of {sorted(_UFUNCS)}")
    _check_many(vectors, op)
    from repro.bitmap.builder import concatenate_bitvectors

    n_bits = vectors[0].n_bits
    n_groups = groups_needed(n_bits)
    k = len(vectors)
    if n_groups == 0:
        return [WAHBitVector(np.empty(0, dtype=np.uint32), n_bits) for _ in vectors]
    if k == 1:
        return [vectors[0]]
    chunk = _chunk_groups_for(k, chunk_bytes)
    pieces: list[list[WAHBitVector]] = [[] for _ in range(k)]
    buf = np.empty((k, min(chunk, n_groups)), dtype=np.uint32)
    ufunc = _UFUNCS[op]
    for lo in range(0, n_groups, chunk):
        hi = min(lo + chunk, n_groups)
        mat = buf[:, : hi - lo]
        for i, v in enumerate(vectors):
            _expand_slice(v, lo, hi, mat[i])
        ufunc.accumulate(mat, axis=0, out=mat)
        piece_bits = (
            (hi - lo) * GROUP_BITS
            if hi < n_groups
            else n_bits - lo * GROUP_BITS
        )
        for i in range(k):
            pieces[i].append(
                WAHBitVector(compress_groups(mat[i]), piece_bits)
            )
    return [
        parts[0] if len(parts) == 1 else concatenate_bitvectors(parts)
        for parts in pieces
    ]


# ------------------------------------------------------- density dispatchers
def auto_op_many(
    vectors: Sequence[WAHBitVector],
    op: str,
    *,
    threshold: float | None = None,
) -> WAHBitVector:
    """Fused k-way ``op`` routed by operand density (any codec).

    When *every* operand compresses to at or below
    :data:`KWAY_RUNMERGE_RATIO_THRESHOLD` the multi-cursor run merge
    wins; otherwise the chunked dense sweep runs.  Bit-identical either
    way (property-tested), so dispatch is purely a performance decision.
    Non-WAH operands convert at this merge boundary, so the result words
    never depend on the storage codec.
    """
    vectors = _coerce_wah_many(vectors)
    t = KWAY_RUNMERGE_RATIO_THRESHOLD if threshold is None else threshold
    if prefers_runmerge(vectors, t):
        return logical_op_runmerge_many(vectors, op)
    return logical_op_many(vectors, op)


def auto_count_many(
    vectors: Sequence[WAHBitVector],
    op: str = "and",
    *,
    threshold: float | None = None,
) -> int:
    """``popcount`` of the fused k-way ``op``, routed by operand density
    (any codec; non-WAH operands convert at this merge boundary)."""
    vectors = _coerce_wah_many(vectors)
    t = KWAY_RUNMERGE_RATIO_THRESHOLD if threshold is None else threshold
    if prefers_runmerge(vectors, t):
        return op_count_runmerge_many(vectors, op)
    return op_count_many(vectors, op)
