"""Bitmap indices: single-level and multi-level (Figure 1 of the paper).

A :class:`BitmapIndex` holds one WAH bitvector per bin over ``n_elements``
elements.  Because each bin's popcount *is* the bin's element count, the
value distribution of the indexed data comes for free (§3.2: "the individual
value distributions ... are already generated during the bitmaps generation
process").

A :class:`MultiLevelBitmapIndex` stacks a low-level index with one or more
high-level indices whose bins are unions of consecutive low-level bins
(Figure 1's interval bitvectors).  Correlation mining (§4.2) walks levels
top-down to prune uncorrelated value subsets early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.bitmap.ordering import RowOrdering

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.builder import (
    OnlineBitmapBuilder,
    build_bitvectors,
    encode_bitvectors,
)
from repro.bitmap.kernels import auto_op_many, stack_groups
from repro.bitmap.wah import WAHBitVector
from repro.util.bits import groups_needed

BuildMethod = Literal["vectorized", "online"]


@dataclass
class BitmapIndex:
    """A compressed bitmap index over one variable's data.

    ``bitvectors`` may mix storage codecs (WAH, Roaring, WAH64 -- see
    :mod:`repro.bitmap.codec`); every query path converts to the WAH word
    domain at merge boundaries, so results are codec-independent.

    ``ordering`` (optional) records the row permutation applied before
    encoding (:mod:`repro.bitmap.ordering`): bit ``i`` of every
    bitvector covers simulation row ``ordering.permutation[i]``.  Bin
    counts and joint histograms are ordering-invariant; element masks
    must be mapped back with ``ordering.unpermute_mask`` before they are
    compared or spliced with simulation-order data.
    """

    binning: Binning
    bitvectors: list
    n_elements: int
    ordering: "RowOrdering | None" = None
    _counts: np.ndarray | None = field(default=None, repr=False, compare=False)
    _groups: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.bitvectors) != self.binning.n_bins:
            raise ValueError(
                f"{len(self.bitvectors)} bitvectors != {self.binning.n_bins} bins"
            )
        for v in self.bitvectors:
            if v.n_bits != self.n_elements:
                raise ValueError(
                    f"bitvector length {v.n_bits} != n_elements {self.n_elements}"
                )
        if self.ordering is not None and self.ordering.n_rows != self.n_elements:
            raise ValueError(
                f"ordering covers {self.ordering.n_rows} rows, index covers "
                f"{self.n_elements} elements"
            )

    # ------------------------------------------------------------ building
    @classmethod
    def build(
        cls,
        data: np.ndarray,
        binning: Binning,
        *,
        method: BuildMethod = "vectorized",
        chunk_elements: int = 1 << 20,
        codec: str = "wah",
        ordering: "RowOrdering | str | None" = None,
    ) -> "BitmapIndex":
        """Index ``data`` (any shape, flattened C-order) under ``binning``.

        ``codec`` picks the storage codec per bin: a registered codec
        name, or ``"auto"`` for the density-driven policy
        (:func:`repro.bitmap.codec.select_codec`).  The default
        ``"wah"`` keeps word streams bit-identical to prior builds.

        ``ordering`` optionally permutes rows before encoding
        (:mod:`repro.bitmap.ordering`): a method name ("lex", "gray",
        "hist") computes the permutation from this data's bin ids; a
        prebuilt :class:`~repro.bitmap.ordering.RowOrdering` (e.g. one
        shared across several variables) is applied as-is.  The
        permutation rides with the index and its serialized record, so
        masks map back to simulation order exactly.
        """
        flat = np.asarray(data).ravel()
        if ordering is not None:
            if isinstance(ordering, str):
                from repro.bitmap.ordering import compute_ordering

                ordering = compute_ordering([flat], binning, ordering)
            flat = ordering.apply(flat)
        if method == "vectorized":
            vectors = build_bitvectors(
                flat, binning, chunk_elements=chunk_elements, codec=codec
            )
        elif method == "online":
            builder = OnlineBitmapBuilder(binning)
            for start in range(0, flat.size, chunk_elements):
                builder.push(flat[start : start + chunk_elements])
            vectors = encode_bitvectors(builder.finalize(), codec)
        else:
            raise ValueError(f"unknown build method {method!r}")
        return cls(binning, vectors, flat.size, ordering)

    # ------------------------------------------------------------- queries
    @property
    def n_bins(self) -> int:
        return self.binning.n_bins

    def bin_counts(self) -> np.ndarray:
        """Element count per bin (the value distribution), via popcounts."""
        if self._counts is None:
            self._counts = np.asarray(
                [v.count() for v in self.bitvectors], dtype=np.int64
            )
        return self._counts

    def group_matrix(self) -> np.ndarray:
        """Every bin's 31-bit groups stacked into a (n_bins, n_groups)
        matrix, built at most once per index (memoised).

        Decompressing each bin once turns the m x n pairwise AND/XOR loops
        of §3.2/§4.2 into row-wise numpy kernels when the dense path is
        chosen.  This is a *working-set* expansion (bins x groups words),
        not a per-element expansion.  Callers must treat the matrix as
        read-only -- it is shared across every analysis touching this
        index.
        """
        if self._groups is None:
            # Fused decode: rows are written straight into one
            # preallocated matrix (repro.bitmap.kernels.stack_groups) --
            # no intermediate list-of-rows + vstack copy.
            self._groups = stack_groups(self.bitvectors, self.n_elements)
        return self._groups

    def compression_ratio(self) -> float:
        """Mean serialised ``uint32`` words per uncompressed 31-bit group
        across all bins (lower is better; for all-WAH indices this is the
        dispatch signal of :mod:`repro.bitmap.ops`, unchanged)."""
        total_groups = self.n_bins * groups_needed(self.n_elements)
        if total_groups == 0:
            return 1.0
        if all(isinstance(v, WAHBitVector) for v in self.bitvectors):
            return sum(v.n_words for v in self.bitvectors) / total_groups
        from repro.bitmap.codec import codec_of

        total = sum(codec_of(v).payload_n_words(v) for v in self.bitvectors)
        return total / total_groups

    def distribution(self) -> np.ndarray:
        """Normalised value distribution ``P(bin)``."""
        counts = self.bin_counts()
        total = counts.sum()
        return counts / total if total else counts.astype(np.float64)

    def query_bins(self, bin_ids: np.ndarray) -> WAHBitVector:
        """OR of the chosen bins: elements whose value falls in any of them.

        Fused k-way OR (:func:`~repro.bitmap.kernels.auto_op_many`): one
        decode per bin and one reduce sweep, not k - 1 pairwise merges.
        """
        ids = np.atleast_1d(np.asarray(bin_ids, dtype=np.int64))
        if ids.size == 0:
            return WAHBitVector.zeros(self.n_elements)
        return auto_op_many([self.bitvectors[int(i)] for i in ids], "or")

    def query_value_range(self, lo: float, hi: float) -> WAHBitVector:
        """Elements whose *bin* overlaps [lo, hi] (bin-granular, like FastBit)."""
        return self.query_bins(overlapping_bins(self.binning, lo, hi))

    # ------------------------------------------------------------ geometry
    @property
    def nbytes(self) -> int:
        """Total compressed size in bytes."""
        return sum(v.nbytes for v in self.bitvectors)

    def size_ratio(self, element_bytes: int = 8) -> float:
        """Index size relative to the raw data it summarises (§2.2 claim)."""
        raw = self.n_elements * element_bytes
        return self.nbytes / raw if raw else 0.0

    def check_invariants(self) -> None:
        """Every element is in exactly one bin: bitvectors partition the set."""
        for v in self.bitvectors:
            check = getattr(v, "check_invariants", None)
            if check is not None:  # Roaring containers validate on decode
                check()
        assert int(self.bin_counts().sum()) == self.n_elements, (
            "bin counts do not partition the element set"
        )

    def __repr__(self) -> str:
        return (
            f"BitmapIndex(n_elements={self.n_elements}, n_bins={self.n_bins}, "
            f"nbytes={self.nbytes})"
        )


def overlapping_bins(binning: Binning, lo: float, hi: float) -> np.ndarray:
    """Bin ids whose value range overlaps [lo, hi].

    Needs only the binning, not materialised bitvectors -- this is what
    lets the query service (:mod:`repro.service`) plan the *minimal* set
    of bin loads for a value predicate before touching the store.
    """
    hits = [
        b for b in range(binning.n_bins) if _bin_overlaps(binning, b, lo, hi)
    ]
    return np.asarray(hits, dtype=np.int64)


def _bin_overlaps(binning: Binning, bin_id: int, lo: float, hi: float) -> bool:
    edges = getattr(binning, "edges", None)
    if edges is not None:
        # Bins are half-open [a, b): a bin overlaps [lo, hi] iff a <= hi, b > lo.
        return bool(edges[bin_id] <= hi and edges[bin_id + 1] > lo)
    values = getattr(binning, "values", None)
    if values is not None:
        return bool(lo <= values[bin_id] <= hi)
    raise TypeError(f"binning {type(binning).__name__} exposes no edges/values")


@dataclass
class LevelSpec:
    """One high level: consecutive low-level bins grouped ``fanout`` at a time."""

    fanout: int

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {self.fanout}")


@dataclass
class MultiLevelBitmapIndex:
    """Low-level index plus derived high-level interval indices.

    ``levels[0]`` is the low-level (finest) index; each subsequent level is
    coarser.  :meth:`children` maps a high-level bin back to the bins of the
    level below, which is what top-down correlation mining traverses.
    """

    levels: list[BitmapIndex]
    fanouts: list[int]

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        binning: Binning,
        level_specs: list[LevelSpec] | None = None,
        **build_kwargs,
    ) -> "MultiLevelBitmapIndex":
        """Build the low level from data, then roll up by OR per level spec."""
        low = BitmapIndex.build(data, binning, **build_kwargs)
        specs = level_specs if level_specs is not None else [LevelSpec(4)]
        levels = [low]
        fanouts: list[int] = []
        for spec in specs:
            levels.append(_rollup(levels[-1], spec.fanout))
            fanouts.append(spec.fanout)
        return cls(levels, fanouts)

    @property
    def low(self) -> BitmapIndex:
        return self.levels[0]

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def children(self, level: int, bin_id: int) -> list[int]:
        """Bins of ``level - 1`` covered by ``bin_id`` at ``level``."""
        if level <= 0 or level >= self.n_levels:
            raise ValueError(f"level must be in [1, {self.n_levels - 1}], got {level}")
        fanout = self.fanouts[level - 1]
        lo = bin_id * fanout
        hi = min(lo + fanout, self.levels[level - 1].n_bins)
        return list(range(lo, hi))

    @property
    def nbytes(self) -> int:
        return sum(level.nbytes for level in self.levels)


def _rollup(index: BitmapIndex, fanout: int) -> BitmapIndex:
    """Build a coarser index by fused k-way OR over ``fanout`` bins."""
    from repro.bitmap.binning import ExplicitBinning

    groups: list[WAHBitVector] = []
    edges: list[float] = []
    low_edges = getattr(index.binning, "edges", None)
    for start in range(0, index.n_bins, fanout):
        members = index.bitvectors[start : start + fanout]
        groups.append(auto_op_many(members, "or"))
        if low_edges is not None:
            edges.append(float(low_edges[start]))
    if low_edges is not None:
        edges.append(float(low_edges[-1]))
        binning: Binning = ExplicitBinning(np.asarray(edges))
    else:
        # Distinct-value binnings roll up to synthetic integer intervals.
        n_high = len(groups)
        binning = ExplicitBinning(np.arange(n_high + 1, dtype=np.float64))
    return BitmapIndex(binning, groups, index.n_elements)
