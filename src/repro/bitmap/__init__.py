"""Compressed bitmap index engine (systems S1-S7 of DESIGN.md).

This package is the substrate everything else in :mod:`repro` stands on:
WAH bitvectors with the paper's exact word layout, the single-scan in-situ
builder of Algorithm 1, compressed bitwise operations, binning strategies,
single- and multi-level indices, Z-order layout, and the on-disk format.
"""

from repro.bitmap.adaptive import (
    AdaptivePrecisionIndexer,
    align_indices,
    aligned_metric,
    pad_index,
    union_binning,
)
from repro.bitmap.bbc import (
    BBCBitVector,
    bbc_and_count,
    bbc_logical_op,
    wah_to_bbc,
)
from repro.bitmap.binning import (
    Binning,
    DistinctValueBinning,
    EqualWidthBinning,
    ExplicitBinning,
    PrecisionBinning,
    common_binning,
)
from repro.bitmap.builder import (
    OnlineBitmapBuilder,
    build_bitvectors,
    build_bitvectors_batch,
    build_bitvectors_parallel,
    concatenate_bitvectors,
    splice_bitvectors,
)
from repro.bitmap.index import BitmapIndex, LevelSpec, MultiLevelBitmapIndex
from repro.bitmap.range_index import RangeBitmapIndex
from repro.bitmap.roaring import RoaringBitVector
from repro.bitmap.ops import (
    and_count,
    and_count_streaming,
    auto_count,
    auto_op,
    logical_and,
    logical_andnot,
    logical_not,
    logical_op,
    logical_op_runmerge,
    logical_op_streaming,
    logical_or,
    logical_xor,
    op_count,
    op_count_streaming,
    or_count,
    or_count_streaming,
    xor_count,
    xor_count_streaming,
)
from repro.bitmap.serialization import (
    LazyBitmapIndex,
    index_from_bytes,
    index_to_bytes,
    load_index,
    save_index,
    serialized_size,
)
from repro.bitmap.units import (
    n_units,
    unit_popcounts,
    unit_popcounts_groups,
    unit_sizes,
)
from repro.bitmap.wah import WAHBitVector, compress_groups, decompress_words
from repro.bitmap.zorder import (
    ZOrderLayout,
    morton_decode_2d,
    morton_decode_3d,
    morton_encode_2d,
    morton_encode_3d,
    suggested_unit_cells,
)

__all__ = [
    "AdaptivePrecisionIndexer",
    "align_indices",
    "aligned_metric",
    "pad_index",
    "union_binning",
    "BBCBitVector",
    "bbc_and_count",
    "bbc_logical_op",
    "wah_to_bbc",
    "n_units",
    "unit_popcounts",
    "unit_popcounts_groups",
    "unit_sizes",
    "Binning",
    "DistinctValueBinning",
    "EqualWidthBinning",
    "ExplicitBinning",
    "PrecisionBinning",
    "common_binning",
    "OnlineBitmapBuilder",
    "build_bitvectors",
    "build_bitvectors_batch",
    "build_bitvectors_parallel",
    "concatenate_bitvectors",
    "splice_bitvectors",
    "BitmapIndex",
    "RangeBitmapIndex",
    "RoaringBitVector",
    "LevelSpec",
    "MultiLevelBitmapIndex",
    "and_count",
    "and_count_streaming",
    "auto_count",
    "auto_op",
    "logical_and",
    "logical_andnot",
    "logical_not",
    "logical_op",
    "logical_op_runmerge",
    "logical_op_streaming",
    "logical_or",
    "logical_xor",
    "op_count",
    "op_count_streaming",
    "or_count",
    "or_count_streaming",
    "xor_count",
    "xor_count_streaming",
    "LazyBitmapIndex",
    "index_from_bytes",
    "index_to_bytes",
    "load_index",
    "save_index",
    "serialized_size",
    "WAHBitVector",
    "compress_groups",
    "decompress_words",
    "ZOrderLayout",
    "morton_decode_2d",
    "morton_decode_3d",
    "morton_encode_2d",
    "morton_encode_3d",
    "suggested_unit_cells",
]
