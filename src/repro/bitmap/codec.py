"""The pluggable codec layer: one interface, three bitmap codecs.

Everything above the codec boundary -- the builder, serialization, the
query service, the cluster splice -- speaks to compressed bitvectors
through a :class:`Codec`: ``encode`` / ``decode`` (u32 payload framing),
``logical_op`` / ``op_count`` / ``count``, and geometry accessors.  Three
backends register here:

========  ===  =========================================================
name      tag  backend
========  ===  =========================================================
wah        0   :class:`~repro.bitmap.wah.WAHBitVector` -- the paper's
               32-bit Word-Aligned Hybrid codec (Wu et al.), run-length
               over 31-bit groups.  The *reference* codec: all cross-
               codec differential tests compare against it, and mixed-
               codec operations converge here.
roaring    1   :class:`~repro.bitmap.roaring.RoaringBitVector` -- the
               two-level container codec of Chambi, Lemire et al.,
               "Better bitmap performance with Roaring bitmaps".  Wins
               on dense bins (8 KiB bitset chunks) and on very sparse
               scattered bins (uint16 array chunks).
wah64      2   :class:`~repro.bitmap.wah64.WAH64BitVector` -- 64-bit WAH
               (63-bit groups), the CONCISE-adjacent literal-heavy
               option: mid-density bins that defeat 31-bit run
               detection need roughly half the words.
========  ===  =========================================================

The tag is what the V2.1 record format stores per bitvector (see
:mod:`repro.bitmap.serialization`); :func:`codec_for_tag` raises a clear
error on unknown tags so future codecs fail loudly, not silently.

:func:`select_codec` is the density-driven build-time policy, the codec
sibling of the PR-1 kernel dispatchers: run-structured bins stay WAH
(the streaming kernels win there), dense and very sparse bins go
Roaring, and incompressible mid-density bins go WAH64.  The policy is a
pure function of (compression ratio, density), so index builds remain
deterministic.

Mixed-codec operations (:func:`logical_op_any` / :func:`op_count_any`)
convert operands to the WAH word domain at the merge boundary -- the
same convention the service and cluster layers use, which is what keeps
masks byte-identical across codec choices.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.bitmap.roaring import CHUNK_BITS, _U32_PER_CHUNK, RoaringBitVector
from repro.bitmap.wah import WAHBitVector
from repro.bitmap.wah64 import WAH64BitVector, groups_needed64
from repro.util.bits import groups_needed

#: Any compressed bitvector the codec layer understands.
BitVectorAny = Union[WAHBitVector, RoaringBitVector, WAH64BitVector]

_OPS = ("and", "or", "xor", "andnot")


class Codec:
    """Interface every bitmap codec implements.

    A codec is stateless; vectors themselves are the immutable value
    objects.  Payloads are little-endian ``uint32`` arrays so the record
    framing of :mod:`repro.bitmap.serialization` is codec-uniform.
    """

    name: str
    tag: int
    vector_cls: type

    # ------------------------------------------------------------- encode
    def encode_bools(self, bits: np.ndarray) -> BitVectorAny:
        """Compress a boolean array."""
        return self.vector_cls.from_bools(bits)

    def from_indices(self, indices: np.ndarray, n_bits: int) -> BitVectorAny:
        """Build a vector with ones at the given positions."""
        return self.vector_cls.from_indices(indices, n_bits)

    def zeros(self, n_bits: int) -> BitVectorAny:
        return self.vector_cls.zeros(n_bits)

    def ones(self, n_bits: int) -> BitVectorAny:
        return self.vector_cls.ones(n_bits)

    # -------------------------------------------------------------- wire
    def payload_words(self, vec: BitVectorAny) -> np.ndarray:
        """Serialise ``vec`` to its ``uint32`` payload."""
        raise NotImplementedError

    def decode_payload(self, payload: np.ndarray, n_bits: int) -> BitVectorAny:
        """Rebuild a vector from its ``uint32`` payload."""
        raise NotImplementedError

    def max_payload_words(self, n_bits: int) -> int:
        """Upper bound on payload words for ``n_bits`` -- the corruption
        guard used when validating record headers before reading."""
        raise NotImplementedError

    def payload_n_words(self, vec: BitVectorAny) -> int:
        """Exact payload word count without materialising the payload."""
        raise NotImplementedError

    # ------------------------------------------------------------ algebra
    def count(self, vec: BitVectorAny) -> int:
        return vec.count()

    def logical_op(self, a: BitVectorAny, b: BitVectorAny, op: str) -> BitVectorAny:
        """``op(a, b)`` for two vectors of *this* codec."""
        raise NotImplementedError

    def op_count(self, a: BitVectorAny, b: BitVectorAny, op: str) -> int:
        """``popcount(op(a, b))`` for two vectors of *this* codec."""
        return self.logical_op(a, b, op).count()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Codec {self.name} tag={self.tag}>"


def _check_op(op: str) -> None:
    if op not in _OPS:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_OPS)}")


class WAHCodec(Codec):
    """The paper's 32-bit WAH codec -- tag 0, the reference codec."""

    name = "wah"
    tag = 0
    vector_cls = WAHBitVector

    def payload_words(self, vec: WAHBitVector) -> np.ndarray:
        return vec.words

    def decode_payload(self, payload: np.ndarray, n_bits: int) -> WAHBitVector:
        return WAHBitVector(payload, n_bits)

    def max_payload_words(self, n_bits: int) -> int:
        # Fills only ever shrink the stream: never more words than groups.
        return groups_needed(n_bits)

    def payload_n_words(self, vec: WAHBitVector) -> int:
        return vec.n_words

    def logical_op(self, a: WAHBitVector, b: WAHBitVector, op: str) -> WAHBitVector:
        from repro.bitmap.ops import auto_op

        return auto_op(a, b, op)

    def op_count(self, a: WAHBitVector, b: WAHBitVector, op: str) -> int:
        from repro.bitmap.ops import auto_count

        return auto_count(a, b, op)


class RoaringCodec(Codec):
    """Roaring containers (Chambi, Lemire et al.) -- tag 1."""

    name = "roaring"
    tag = 1
    vector_cls = RoaringBitVector

    def payload_words(self, vec: RoaringBitVector) -> np.ndarray:
        return vec.to_u32_payload()

    def decode_payload(self, payload: np.ndarray, n_bits: int) -> RoaringBitVector:
        return RoaringBitVector.from_u32_payload(payload, n_bits)

    def max_payload_words(self, n_bits: int) -> int:
        # Directory entry + the larger container form, per chunk.
        n_chunks = -(-n_bits // CHUNK_BITS)
        return 1 + n_chunks * (2 + _U32_PER_CHUNK)

    def payload_n_words(self, vec: RoaringBitVector) -> int:
        return vec.n_words

    def logical_op(
        self, a: RoaringBitVector, b: RoaringBitVector, op: str
    ) -> RoaringBitVector:
        _check_op(op)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        return a.andnot(b)

    def op_count(self, a: RoaringBitVector, b: RoaringBitVector, op: str) -> int:
        _check_op(op)
        if op == "and":
            return a.and_count(b)
        if op == "or":
            return a.or_count(b)
        if op == "xor":
            return a.xor_count(b)
        return a.andnot_count(b)


class WAH64Codec(Codec):
    """64-bit WAH (63-bit groups) -- tag 2."""

    name = "wah64"
    tag = 2
    vector_cls = WAH64BitVector

    def payload_words(self, vec: WAH64BitVector) -> np.ndarray:
        return vec.to_u32_payload()

    def decode_payload(self, payload: np.ndarray, n_bits: int) -> WAH64BitVector:
        return WAH64BitVector.from_u32_payload(payload, n_bits)

    def max_payload_words(self, n_bits: int) -> int:
        # At most one uint64 word (= 2 payload words) per 63-bit group.
        return 2 * groups_needed64(n_bits)

    def payload_n_words(self, vec: WAH64BitVector) -> int:
        return 2 * vec.n_words

    def logical_op(
        self, a: WAH64BitVector, b: WAH64BitVector, op: str
    ) -> WAH64BitVector:
        _check_op(op)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        return a.andnot(b)


#: Registered codecs by name.
CODECS: dict[str, Codec] = {
    c.name: c for c in (WAHCodec(), RoaringCodec(), WAH64Codec())
}

#: Registered codecs by on-disk tag.
CODEC_TAGS: dict[int, Codec] = {c.tag: c for c in CODECS.values()}

#: The reference codec all others must agree with.
WAH = CODECS["wah"]

_BY_TYPE: dict[type, Codec] = {c.vector_cls: c for c in CODECS.values()}


def codec_for_name(name: str) -> Codec:
    """Look up a codec by name; unknown names raise a clear error."""
    try:
        return CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; registered codecs: {sorted(CODECS)}"
        ) from None


def codec_for_tag(tag: int) -> Codec:
    """Look up a codec by on-disk tag; unknown tags raise a clear error."""
    try:
        return CODEC_TAGS[tag]
    except KeyError:
        raise ValueError(
            f"unknown codec tag {tag}; registered tags: "
            f"{sorted(CODEC_TAGS)} ({', '.join(c.name for _, c in sorted(CODEC_TAGS.items()))})"
        ) from None


def codec_of(vec: BitVectorAny) -> Codec:
    """The codec a vector belongs to."""
    try:
        return _BY_TYPE[type(vec)]
    except KeyError:
        raise TypeError(
            f"{type(vec).__name__} is not a registered bitvector type"
        ) from None


def to_wah(vec: BitVectorAny) -> WAHBitVector:
    """Convert any codec's vector to the reference WAH form.

    The identity for WAH vectors.  This is the *merge-boundary*
    conversion: dispatchers, the mask splice, and the wire protocol call
    it so that every cross-codec combination lands in one common word
    domain and results stay byte-identical regardless of storage codec.
    """
    if isinstance(vec, WAHBitVector):
        return vec
    return WAHBitVector.from_bools(vec.to_bools())


def convert(vec: BitVectorAny, codec: str | Codec) -> BitVectorAny:
    """Re-encode a vector under another codec (identity if already there)."""
    target = codec_for_name(codec) if isinstance(codec, str) else codec
    if type(vec) is target.vector_cls:
        return vec
    return target.encode_bools(vec.to_bools())


# --------------------------------------------------------- selection policy
#: Compression ratio (WAH words per group) at or below which a bin stays
#: WAH: run-structured data is exactly what the O(runs) streaming kernels
#: and fill words are built for.
SELECT_WAH_RATIO = 0.05

#: Density at or above which an incompressible bin goes Roaring: dense
#: chunks become 8 KiB bitset containers, and chunk-local ops beat WAH's
#: literal-word walk.
SELECT_ROARING_DENSE = 1.0 / 32

#: Density at or below which an incompressible bin goes Roaring: sparse
#: scattered bits pack into uint16 array containers at 2 bytes per set
#: bit, smaller than any literal-word encoding.
SELECT_ROARING_SPARSE = 1.0 / 1024


def select_codec(vec: WAHBitVector) -> Codec:
    """Pick the cheapest codec for one bin from its density profile.

    A pure function of the WAH compression ratio and the set-bit density,
    mirroring the calibrated kernel dispatch rules (DESIGN.md, "Kernel
    dispatch policy"): runs stay WAH, density extremes go Roaring,
    mid-density literal soup goes WAH64.  Deterministic, so two builds of
    the same data always pick the same codecs.
    """
    if vec.n_bits == 0 or vec.compression_ratio() <= SELECT_WAH_RATIO:
        return CODECS["wah"]
    density = vec.density()
    if density >= SELECT_ROARING_DENSE or density <= SELECT_ROARING_SPARSE:
        return CODECS["roaring"]
    return CODECS["wah64"]


# ------------------------------------------------------ mixed-codec algebra
def logical_op_any(a: BitVectorAny, b: BitVectorAny, op: str) -> BitVectorAny:
    """``op(a, b)`` across arbitrary codec combinations.

    Same-codec pairs use the codec's native kernels and stay in that
    codec; mixed pairs convert to the WAH word domain (the merge-boundary
    convention) and return a WAH vector.
    """
    if a.n_bits != b.n_bits:
        raise ValueError(f"operand length mismatch: {a.n_bits} != {b.n_bits} bits")
    ca, cb = codec_of(a), codec_of(b)
    if ca is cb:
        return ca.logical_op(a, b, op)
    from repro.bitmap.ops import auto_op

    return auto_op(to_wah(a), to_wah(b), op)


def op_count_any(a: BitVectorAny, b: BitVectorAny, op: str = "and") -> int:
    """``popcount(op(a, b))`` across arbitrary codec combinations."""
    if a.n_bits != b.n_bits:
        raise ValueError(f"operand length mismatch: {a.n_bits} != {b.n_bits} bits")
    ca, cb = codec_of(a), codec_of(b)
    if ca is cb:
        return ca.op_count(a, b, op)
    from repro.bitmap.ops import auto_count

    return auto_count(to_wah(a), to_wah(b), op)


def as_wah_all(vectors: Sequence[BitVectorAny]) -> list[WAHBitVector]:
    """Convert a sequence to WAH (no-op copies for WAH members)."""
    return [to_wah(v) for v in vectors]
