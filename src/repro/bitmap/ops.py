"""Bitwise operations on WAH-compressed bitvectors.

Two implementations are provided:

* :func:`logical_op` -- the **fast path**: expands both operands to their
  aligned 31-bit groups with ``np.repeat`` (never to per-element booleans),
  applies the numpy bitwise kernel, and re-compresses with the vectorised
  run-length encoder.  This is what the analysis layers use.

* :func:`logical_op_streaming` -- the **reference path**: the classic WAH
  two-cursor run merge operating directly on compressed words, ported from
  the bitmap-index literature (Wu et al. [41]).  It performs no group
  expansion at all and is used as the oracle in the test suite and for
  the ablation benchmarks.

Both paths agree bit-for-bit (property-tested), and both support the four
operations the paper's analyses need: AND (joint distributions, §3.2/§4.2),
XOR (spatial EMD, §3.2), OR (multi-level index construction) and ANDNOT.
NOT is provided for completeness (used by incomplete-data analysis in the
authors' earlier work).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bitmap.wah import (
    FILL_COUNT_MASK,
    FILL_FLAG,
    FILL_VALUE_FLAG,
    WAHBitVector,
    compress_groups,
)
from repro.util.bits import GROUP_BITS, GROUP_FULL, last_group_mask, popcount_total

_NUMPY_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
    "andnot": lambda a, b: np.bitwise_and(a, np.bitwise_xor(b, GROUP_FULL)),
}

_SCALAR_KERNELS: dict[str, Callable[[int, int], int]] = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "andnot": lambda a, b: a & (b ^ 0x7FFFFFFF),
}


def _check_operands(a: WAHBitVector, b: WAHBitVector) -> None:
    if a.n_bits != b.n_bits:
        raise ValueError(
            f"operand length mismatch: {a.n_bits} != {b.n_bits} bits"
        )


# --------------------------------------------------------------- fast path
def logical_op(a: WAHBitVector, b: WAHBitVector, op: str) -> WAHBitVector:
    """Apply ``op`` in {'and','or','xor','andnot'} to two bitvectors."""
    _check_operands(a, b)
    try:
        kernel = _NUMPY_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_NUMPY_KERNELS)}")
    ga, gb = a.to_groups(), b.to_groups()
    out = kernel(ga, gb)
    if a.n_bits and out.size:
        out[-1] &= last_group_mask(a.n_bits)  # never set padding bits
    return WAHBitVector(compress_groups(out), a.n_bits)


def logical_and(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """AND -- joint bins in §3.2 (conditional entropy) and §4.2 (mining)."""
    return logical_op(a, b, "and")


def logical_or(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """OR -- used to roll low-level bins up into high-level interval bins."""
    return logical_op(a, b, "or")


def logical_xor(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """XOR -- per-bin spatial differences for the EMD of §3.2."""
    return logical_op(a, b, "xor")


def logical_andnot(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """``a AND NOT b`` without materialising the complement."""
    return logical_op(a, b, "andnot")


def logical_not(a: WAHBitVector) -> WAHBitVector:
    """Bitwise complement (padding bits stay zero)."""
    g = np.bitwise_xor(a.to_groups(), GROUP_FULL)
    if a.n_bits and g.size:
        g[-1] &= last_group_mask(a.n_bits)
    return WAHBitVector(compress_groups(g), a.n_bits)


# ------------------------------------------------------- count-only kernels
def and_count(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a AND b) without building the result vector.

    This is the hot kernel of conditional-entropy selection: the joint
    distribution only needs the *count* of each pairwise AND.
    """
    _check_operands(a, b)
    out = np.bitwise_and(a.to_groups(), b.to_groups())
    if a.n_bits and out.size:
        out[-1] &= last_group_mask(a.n_bits)
    return popcount_total(out)


def xor_count(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a XOR b) -- the spatial-EMD per-bin difference of §3.2."""
    _check_operands(a, b)
    out = np.bitwise_xor(a.to_groups(), b.to_groups())
    if a.n_bits and out.size:
        out[-1] &= last_group_mask(a.n_bits)
    return popcount_total(out)


# ---------------------------------------------------------- streaming path
class _RunCursor:
    """Iterates a WAH word stream as (n_groups, is_fill, value) runs.

    ``value`` is the literal payload for literal words, or 0 /
    ``GROUP_FULL`` for fills.  The cursor supports consuming a run
    partially, which is what makes the two-pointer merge linear.
    """

    __slots__ = ("words", "pos", "run_groups", "run_value", "run_is_fill")

    def __init__(self, words: np.ndarray) -> None:
        self.words = words
        self.pos = 0
        self.run_groups = 0
        self.run_value = 0
        self.run_is_fill = False
        self._advance()

    def _advance(self) -> None:
        if self.pos >= len(self.words):
            self.run_groups = 0
            return
        w = int(self.words[self.pos])
        self.pos += 1
        if w & int(FILL_FLAG):
            self.run_is_fill = True
            self.run_groups = (w & int(FILL_COUNT_MASK)) // GROUP_BITS
            self.run_value = int(GROUP_FULL) if w & int(FILL_VALUE_FLAG) else 0
        else:
            self.run_is_fill = False
            self.run_groups = 1
            self.run_value = w

    def consume(self, n: int) -> None:
        self.run_groups -= n
        if self.run_groups == 0:
            self._advance()

    @property
    def exhausted(self) -> bool:
        return self.run_groups == 0


class _WordAppender:
    """Builds a compressed word stream, merging adjacent compatible fills."""

    __slots__ = ("out",)

    def __init__(self) -> None:
        self.out: list[int] = []

    def append_fill(self, value: int, n_groups: int) -> None:
        bits = n_groups * GROUP_BITS
        header = 0xC0000000 if value else 0x80000000
        if self.out:
            last = self.out[-1]
            if (last & 0xC0000000) == header:
                have = last & int(FILL_COUNT_MASK)
                room = (int(FILL_COUNT_MASK) - have) // GROUP_BITS * GROUP_BITS
                take = min(bits, room)
                if take:
                    self.out[-1] = header | (have + take)
                    bits -= take
        while bits > 0:
            take = min(bits, int(FILL_COUNT_MASK) // GROUP_BITS * GROUP_BITS)
            self.out.append(header | take)
            bits -= take

    def append_literal(self, value: int) -> None:
        if value == 0:
            self.append_fill(0, 1)
        elif value == int(GROUP_FULL):
            self.append_fill(1, 1)
        else:
            self.out.append(value)

    def words(self) -> np.ndarray:
        return np.asarray(self.out, dtype=np.uint32)


def logical_op_streaming(a: WAHBitVector, b: WAHBitVector, op: str) -> WAHBitVector:
    """Two-cursor run merge on compressed words (reference implementation)."""
    _check_operands(a, b)
    try:
        scalar = _SCALAR_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_SCALAR_KERNELS)}")
    ca, cb = _RunCursor(a.words), _RunCursor(b.words)
    out = _WordAppender()
    while not ca.exhausted and not cb.exhausted:
        n = min(ca.run_groups, cb.run_groups)
        if ca.run_is_fill and cb.run_is_fill:
            value = scalar(ca.run_value, cb.run_value)
            if value == 0:
                out.append_fill(0, n)
            elif value == int(GROUP_FULL):
                out.append_fill(1, n)
            else:  # pragma: no cover - fills only combine to fills
                for _ in range(n):
                    out.append_literal(value)
            ca.consume(n)
            cb.consume(n)
        else:
            # At least one side is a literal: emit one group.
            out.append_literal(scalar(ca.run_value, cb.run_value))
            ca.consume(1)
            cb.consume(1)
    if not (ca.exhausted and cb.exhausted):
        raise AssertionError("operand word streams encode different lengths")
    words = out.words()
    result = WAHBitVector(words, a.n_bits)
    # XOR/ANDNOT against a padded final literal can set padding bits; strip.
    if a.n_bits % GROUP_BITS != 0 and words.size:
        g = result.to_groups()
        masked = np.uint32(g[-1] & last_group_mask(a.n_bits))
        if masked != g[-1]:
            g[-1] = masked
            result = WAHBitVector(compress_groups(g), a.n_bits)
    return result
