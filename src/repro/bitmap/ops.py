"""Bitwise operations on WAH-compressed bitvectors.

Three implementations are provided:

* :func:`logical_op` -- the **dense path**: expands both operands to their
  aligned 31-bit groups with ``np.repeat`` (never to per-element booleans),
  applies the numpy bitwise kernel, and re-compresses with the vectorised
  run-length encoder.

* :func:`logical_op_streaming` -- the **reference path**: the classic WAH
  two-cursor run merge operating directly on compressed words, ported from
  the bitmap-index literature (Wu et al. [41]).  It performs no group
  expansion at all and is used as the oracle in the test suite and for
  the ablation benchmarks.

* :func:`op_count_streaming` (and the :func:`and_count_streaming` /
  :func:`or_count_streaming` / :func:`xor_count_streaming` wrappers) --
  **compressed-domain count kernels**: a vectorised run-boundary merge
  that accumulates popcounts directly from the two compressed word
  streams.  No result vector is built and no group array is
  materialised; a fill x fill span contributes in O(1) per merged run
  regardless of how many groups it covers.  This is the §3.2 claim made
  real: analysis cost scales with the *compressed* size.
  :func:`logical_op_runmerge` is the materialising sibling, re-encoding
  the merged segments straight back to WAH words.

:func:`auto_op` and :func:`auto_count` dispatch between the paths by
operand density: when both vectors compress well (compression ratio at or
below the calibrated thresholds below) the run-merge kernels win because
they touch only O(runs) words; on dense, run-free vectors the numpy group
kernels win because their per-word cost is lower.  The shared rule lives
in :func:`prefers_runmerge` (also used by the fused k-way dispatchers of
:mod:`repro.bitmap.kernels`); the thresholds were calibrated with
``benchmarks/bench_kernel_dispatch.py`` under hardware popcount (see
DESIGN.md, "Kernel dispatch policy").

Multi-operand folds (OR-ing range-predicate bins, AND-ing per-variable
masks, level rollups) should not ``reduce`` over these pairwise kernels:
:mod:`repro.bitmap.kernels` fuses the whole fold into one decode + one
ufunc sweep (``logical_op_many`` / ``op_count_many`` and their
``auto_*_many`` dispatchers).

All paths agree bit-for-bit / count-for-count (property-tested), and all
support the four operations the paper's analyses need: AND (joint
distributions, §3.2/§4.2), XOR (spatial EMD, §3.2), OR (multi-level index
construction) and ANDNOT.  NOT is provided for completeness (used by
incomplete-data analysis in the authors' earlier work).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bitmap.wah import (
    FILL_COUNT_MASK,
    FILL_FLAG,
    FILL_VALUE_FLAG,
    WAHBitVector,
    compress_groups,
    compress_runs,
)
from repro.util.bits import (
    GROUP_BITS,
    GROUP_FULL,
    last_group_mask,
    popcount_total,
    popcount_u32,
)

_NUMPY_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
    "andnot": lambda a, b: np.bitwise_and(a, np.bitwise_xor(b, GROUP_FULL)),
}

_SCALAR_KERNELS: dict[str, Callable[[int, int], int]] = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "andnot": lambda a, b: a & (b ^ 0x7FFFFFFF),
}


def _check_operands(a: WAHBitVector, b: WAHBitVector) -> None:
    if a.n_bits != b.n_bits:
        raise ValueError(
            f"operand length mismatch: {a.n_bits} != {b.n_bits} bits"
        )


# --------------------------------------------------------------- fast path
def logical_op(a: WAHBitVector, b: WAHBitVector, op: str) -> WAHBitVector:
    """Apply ``op`` in {'and','or','xor','andnot'} to two bitvectors."""
    _check_operands(a, b)
    try:
        kernel = _NUMPY_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_NUMPY_KERNELS)}")
    ga, gb = a.to_groups(), b.to_groups()
    out = kernel(ga, gb)
    if a.n_bits and out.size:
        out[-1] &= last_group_mask(a.n_bits)  # never set padding bits
    return WAHBitVector(compress_groups(out), a.n_bits)


def logical_and(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """AND -- joint bins in §3.2 (conditional entropy) and §4.2 (mining)."""
    return logical_op(a, b, "and")


def logical_or(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """OR -- used to roll low-level bins up into high-level interval bins."""
    return logical_op(a, b, "or")


def logical_xor(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """XOR -- per-bin spatial differences for the EMD of §3.2."""
    return logical_op(a, b, "xor")


def logical_andnot(a: WAHBitVector, b: WAHBitVector) -> WAHBitVector:
    """``a AND NOT b`` without materialising the complement."""
    return logical_op(a, b, "andnot")


def logical_not(a: WAHBitVector) -> WAHBitVector:
    """Bitwise complement (padding bits stay zero)."""
    g = np.bitwise_xor(a.to_groups(), GROUP_FULL)
    if a.n_bits and g.size:
        g[-1] &= last_group_mask(a.n_bits)
    return WAHBitVector(compress_groups(g), a.n_bits)


# ------------------------------------------- count-only kernels (dense path)
def op_count(a: WAHBitVector, b: WAHBitVector, op: str) -> int:
    """popcount(op(a, b)) via group expansion, without building the result
    vector (the decompress-then-popcount path)."""
    _check_operands(a, b)
    try:
        kernel = _NUMPY_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_NUMPY_KERNELS)}")
    out = kernel(a.to_groups(), b.to_groups())
    if a.n_bits and out.size:
        out[-1] &= last_group_mask(a.n_bits)
    return popcount_total(out)


def and_count(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a AND b) without building the result vector.

    This is the hot kernel of conditional-entropy selection: the joint
    distribution only needs the *count* of each pairwise AND.
    """
    return op_count(a, b, "and")


def or_count(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a OR b) without building the result vector."""
    return op_count(a, b, "or")


def xor_count(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a XOR b) -- the spatial-EMD per-bin difference of §3.2."""
    return op_count(a, b, "xor")


# ----------------------------------------- compressed-domain run-merge core
def _merged_segments(
    a: WAHBitVector, b: WAHBitVector
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Merge two compressed streams into aligned segments, never expanding.

    Returns ``(seg, va, vb)`` where segment ``k`` covers ``seg[k]`` groups
    over which operand ``a`` uniformly holds group value ``va[k]`` and
    ``b`` holds ``vb[k]`` (or ``None`` for two empty vectors).  Any
    segment longer than one group is necessarily fill x fill, because
    literal runs span exactly one group.  Zero-length segments (duplicate
    boundaries) may appear and are harmless.

    The merge is O(runs_a + runs_b) numpy-vectorised work: run boundaries
    (memoised per vector by :meth:`WAHBitVector.runs`) are combined in one
    sort of packed keys (end_offset << 1 | source) -- a plain int64 sort
    is much cheaper than argsort or per-bound binary search, and the
    source flag both breaks value ties deterministically (a before b) and
    lets prefix sums recover each side's covering-run index.
    """
    ends_a, vals_a = a.runs()
    ends_b, vals_b = b.runs()
    if ends_a.size == 0 or ends_b.size == 0:
        if ends_a.size != ends_b.size:
            raise AssertionError("operand word streams encode different lengths")
        return None
    if ends_a[-1] != ends_b[-1]:
        raise AssertionError("operand word streams encode different lengths")
    packed = np.concatenate((ends_a << 1, (ends_b << 1) | 1))
    packed.sort(kind="stable")
    bounds = packed >> 1
    seg = np.diff(bounds, prepend=0)
    from_b = (packed & 1).astype(bool)
    # The run covering groups (bounds[k-1], bounds[k]] is the first run
    # whose end offset is >= bounds[k], i.e. the count of that side's
    # boundaries strictly below bounds[k].  Inclusive prefix counts give
    # it directly: subtract 1 on the side the boundary came from, and on
    # the a side also when an equal a-boundary precedes (ties sort a
    # first, so a duplicated bound's b entry must discount it).
    cb = np.cumsum(from_b)
    ca = np.arange(1, packed.size + 1) - cb
    dup_prev = np.empty(packed.size, dtype=bool)
    dup_prev[0] = False
    np.equal(bounds[1:], bounds[:-1], out=dup_prev[1:])
    va = vals_a[ca - (~from_b | dup_prev)]
    vb = vals_b[cb - from_b]
    return seg, va, vb


# -------------------------------------- count-only kernels (compressed path)
def op_count_streaming(a: WAHBitVector, b: WAHBitVector, op: str) -> int:
    """popcount(op(a, b)) computed **directly on the compressed streams**.

    Each merged segment contributes ``popcount(op(va, vb)) *
    segment_groups`` -- valid because any segment longer than one group is
    fill x fill, whose result group is uniform (all-zero or all-one).
    Nothing is ever expanded to the group domain, so a billion-bit fill
    costs the same as a 31-bit literal.

    Padding bits need no masking: both operands keep their padding zero,
    and every supported op maps (0, 0) -> 0 (ANDNOT complements only the
    right operand, which the left's zero padding then masks off).
    """
    _check_operands(a, b)
    try:
        kernel = _NUMPY_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_NUMPY_KERNELS)}")
    merged = _merged_segments(a, b)
    if merged is None:
        return 0
    seg, va, vb = merged
    out = kernel(va, vb)
    # Popcount only the segments that can contribute.
    nz = np.flatnonzero(out)
    if nz.size == 0:
        return 0
    return int((popcount_u32(out[nz]).astype(np.int64) * seg[nz]).sum())


def and_count_streaming(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a AND b) on the compressed streams -- Figure 5's hot op."""
    return op_count_streaming(a, b, "and")


def or_count_streaming(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a OR b) on the compressed streams."""
    return op_count_streaming(a, b, "or")


def xor_count_streaming(a: WAHBitVector, b: WAHBitVector) -> int:
    """popcount(a XOR b) on the compressed streams -- Figure 4's hot op."""
    return op_count_streaming(a, b, "xor")


def logical_op_runmerge(a: WAHBitVector, b: WAHBitVector, op: str) -> WAHBitVector:
    """op(a, b) materialised **without leaving the compressed domain**.

    The vectorised sibling of :func:`logical_op_streaming`: the merged
    segments' result values are re-encoded straight from run-length form
    (:func:`~repro.bitmap.wah.compress_runs`), so cost is O(runs), not
    O(groups).  Multi-group segments are fill x fill and thus always
    produce a fillable (all-zero / all-one) value, which is what
    ``compress_runs`` requires.
    """
    _check_operands(a, b)
    try:
        kernel = _NUMPY_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_NUMPY_KERNELS)}")
    merged = _merged_segments(a, b)
    if merged is None:
        return WAHBitVector(np.empty(0, dtype=np.uint32), a.n_bits)
    seg, va, vb = merged
    return WAHBitVector(compress_runs(kernel(va, vb), seg), a.n_bits)


# ------------------------------------------------------- density dispatchers
#: Compression-ratio (words per group, <= 1.0) threshold at or below which
#: ``op_count_streaming`` beats the decompress-then-popcount path.  The
#: run-boundary merge does ~10 vectorised passes over O(runs) words versus
#: the dense path's ~5 passes over O(groups) words -- and hardware popcount
#: (``np.bitwise_count``) made the dense side ~4x cheaper, pulling the
#: crossover down from ~0.42 (pre-hardware, threshold 0.25) to ~0.06;
#: recalibrated with ``benchmarks/bench_kernel_dispatch.py`` on 1.24M-bit
#: vectors (see DESIGN.md, "Kernel dispatch policy", for the
#: before/after table).
STREAMING_COUNT_RATIO_THRESHOLD = 0.05

#: Threshold for the *materialising* run merge
#: (:func:`logical_op_runmerge`): it additionally pays the run-domain
#: re-encode while the dense path's re-compression is already cheap.
#: Pre-hardware-popcount its crossover sat far below the count kernels';
#: hardware popcount moved the *count* crossover down to meet it, so the
#: two thresholds now coincide (recalibration table in DESIGN.md).
STREAMING_OP_RATIO_THRESHOLD = 0.05


def prefers_runmerge(vectors, threshold: float) -> bool:
    """True when *every* operand compresses to at or below ``threshold``
    words per group -- the shared dispatch rule of ``auto_count`` /
    ``auto_op`` and the k-way ``auto_*_many`` dispatchers
    (:mod:`repro.bitmap.kernels`).

    One rule, one place: the run-merge kernels' cost is O(total runs),
    so a single dense operand (ratio near 1.0) drags the merge to
    O(groups) work at a higher per-word constant than the group kernels
    -- *all* operands must compress for the compressed domain to win.
    """
    return all(v.compression_ratio() <= threshold for v in vectors)


def prefers_streaming(
    a: WAHBitVector, b: WAHBitVector, threshold: float | None = None
) -> bool:
    """True when *both* operands compress well enough for the run-merge
    count kernels to win (ratio at or below ``threshold``)."""
    t = STREAMING_COUNT_RATIO_THRESHOLD if threshold is None else threshold
    return prefers_runmerge((a, b), t)


def _coerce_wah_pair(a, b) -> tuple[WAHBitVector, WAHBitVector]:
    """Convert a possibly-mixed-codec operand pair to the WAH word domain.

    The merge-boundary convention of the codec layer
    (:mod:`repro.bitmap.codec`): the pairwise dispatchers accept any
    registered codec and converge on WAH, so results are byte-identical
    regardless of how the operands were stored.  WAH pairs pass through
    untouched (no import, no copy).
    """
    if type(a) is WAHBitVector and type(b) is WAHBitVector:
        return a, b
    from repro.bitmap.codec import to_wah

    return to_wah(a), to_wah(b)


def auto_count(
    a, b, op: str = "and", *,
    threshold: float | None = None,
) -> int:
    """popcount(op(a, b)) routed by operand density (any codec).

    The default hot path of the analysis layers: highly compressible
    operand pairs take :func:`op_count_streaming`; dense pairs take the
    vectorised group kernel.  Both routes return identical counts
    (property-tested), so the dispatch is purely a performance decision.
    Non-WAH operands are converted at this merge boundary.
    """
    a, b = _coerce_wah_pair(a, b)
    t = STREAMING_COUNT_RATIO_THRESHOLD if threshold is None else threshold
    if prefers_runmerge((a, b), t):
        return op_count_streaming(a, b, op)
    return op_count(a, b, op)


def auto_op(
    a, b, op: str, *,
    threshold: float | None = None,
) -> WAHBitVector:
    """op(a, b) routed by operand density (any codec; materialises a WAH
    result).

    Compressible pairs take the vectorised run merge
    (:func:`logical_op_runmerge`); dense pairs take the group-expansion
    path.  Results are bit-identical either way (property-tested), and
    non-WAH operands convert at this merge boundary so the result words
    never depend on the storage codec.
    """
    a, b = _coerce_wah_pair(a, b)
    t = STREAMING_OP_RATIO_THRESHOLD if threshold is None else threshold
    if prefers_runmerge((a, b), t):
        return logical_op_runmerge(a, b, op)
    return logical_op(a, b, op)


# ---------------------------------------------------------- streaming path
class _RunCursor:
    """Iterates a WAH word stream as (n_groups, is_fill, value) runs.

    ``value`` is the literal payload for literal words, or 0 /
    ``GROUP_FULL`` for fills.  The cursor supports consuming a run
    partially, which is what makes the two-pointer merge linear.
    """

    __slots__ = ("words", "pos", "run_groups", "run_value", "run_is_fill")

    def __init__(self, words: np.ndarray) -> None:
        self.words = words
        self.pos = 0
        self.run_groups = 0
        self.run_value = 0
        self.run_is_fill = False
        self._advance()

    def _advance(self) -> None:
        if self.pos >= len(self.words):
            self.run_groups = 0
            return
        w = int(self.words[self.pos])
        self.pos += 1
        if w & int(FILL_FLAG):
            self.run_is_fill = True
            self.run_groups = (w & int(FILL_COUNT_MASK)) // GROUP_BITS
            self.run_value = int(GROUP_FULL) if w & int(FILL_VALUE_FLAG) else 0
        else:
            self.run_is_fill = False
            self.run_groups = 1
            self.run_value = w

    def consume(self, n: int) -> None:
        self.run_groups -= n
        if self.run_groups == 0:
            self._advance()

    @property
    def exhausted(self) -> bool:
        return self.run_groups == 0


class _WordAppender:
    """Builds a compressed word stream, merging adjacent compatible fills."""

    __slots__ = ("out",)

    def __init__(self) -> None:
        self.out: list[int] = []

    def append_fill(self, value: int, n_groups: int) -> None:
        bits = n_groups * GROUP_BITS
        header = 0xC0000000 if value else 0x80000000
        if self.out:
            last = self.out[-1]
            if (last & 0xC0000000) == header:
                have = last & int(FILL_COUNT_MASK)
                room = (int(FILL_COUNT_MASK) - have) // GROUP_BITS * GROUP_BITS
                take = min(bits, room)
                if take:
                    self.out[-1] = header | (have + take)
                    bits -= take
        while bits > 0:
            take = min(bits, int(FILL_COUNT_MASK) // GROUP_BITS * GROUP_BITS)
            self.out.append(header | take)
            bits -= take

    def append_literal(self, value: int) -> None:
        if value == 0:
            self.append_fill(0, 1)
        elif value == int(GROUP_FULL):
            self.append_fill(1, 1)
        else:
            self.out.append(value)

    def words(self) -> np.ndarray:
        return np.asarray(self.out, dtype=np.uint32)


def logical_op_streaming(a: WAHBitVector, b: WAHBitVector, op: str) -> WAHBitVector:
    """Two-cursor run merge on compressed words (reference implementation)."""
    _check_operands(a, b)
    try:
        scalar = _SCALAR_KERNELS[op]
    except KeyError:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(_SCALAR_KERNELS)}")
    ca, cb = _RunCursor(a.words), _RunCursor(b.words)
    out = _WordAppender()
    while not ca.exhausted and not cb.exhausted:
        n = min(ca.run_groups, cb.run_groups)
        if ca.run_is_fill and cb.run_is_fill:
            value = scalar(ca.run_value, cb.run_value)
            if value == 0:
                out.append_fill(0, n)
            elif value == int(GROUP_FULL):
                out.append_fill(1, n)
            else:  # pragma: no cover - fills only combine to fills
                for _ in range(n):
                    out.append_literal(value)
            ca.consume(n)
            cb.consume(n)
        else:
            # At least one side is a literal: emit one group.
            out.append_literal(scalar(ca.run_value, cb.run_value))
            ca.consume(1)
            cb.consume(1)
    if not (ca.exhausted and cb.exhausted):
        raise AssertionError("operand word streams encode different lengths")
    words = out.words()
    result = WAHBitVector(words, a.n_bits)
    # XOR/ANDNOT against a padded final literal can set padding bits; strip.
    if a.n_bits % GROUP_BITS != 0 and words.size:
        g = result.to_groups()
        masked = np.uint32(g[-1] & last_group_mask(a.n_bits))
        if masked != g[-1]:
            g[-1] = masked
            result = WAHBitVector(compress_groups(g), a.n_bits)
    return result
