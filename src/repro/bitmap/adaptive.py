"""Per-time-step adaptive binning with tick-aligned comparability.

§5.1: "The number of bitvectors (bins) we used ranged from 64 to 206,
depending on the temperature range of different time-steps.  The binning
scale is set to retain 1 digit after the decimal point."

That is: each step gets its *own* bin count (its own value range), but all
steps share one absolute scale -- every bin is a fixed-width tick interval
anchored at multiples of ``10**-digits``.  Two steps' bitmaps are then
comparable by *aligning ticks*, not by sharing one pre-declared binning:

* :class:`AdaptivePrecisionIndexer` builds a minimal
  :class:`~repro.bitmap.binning.PrecisionBinning` per step;
* :func:`align_indices` pads two tick-aligned indices onto their union
  range (inserted bins are all-zero bitvectors -- free), after which every
  bitmap metric applies with the usual exactness guarantee;
* :func:`aligned_metric` wraps a :class:`~repro.selection.metrics.SelectionMetric`
  bitmap backend so greedy selection runs directly on per-step indices.

This removes the pipeline's need to know the global value range up front
-- the genuinely in-situ setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap.binning import PrecisionBinning
from repro.bitmap.index import BitmapIndex
from repro.bitmap.wah import WAHBitVector


@dataclass(frozen=True)
class AdaptivePrecisionIndexer:
    """Builds one tick-anchored precision index per time-step."""

    digits: int = 1
    method: str = "vectorized"

    def binning_for(self, data: np.ndarray) -> PrecisionBinning:
        """The minimal tick-aligned binning covering ``data``."""
        return PrecisionBinning.from_data(np.asarray(data), digits=self.digits)

    def index(self, data: np.ndarray) -> BitmapIndex:
        """Index one step under its own minimal binning."""
        flat = np.asarray(data).ravel()
        return BitmapIndex.build(
            flat, self.binning_for(flat), method=self.method  # type: ignore[arg-type]
        )


def _ticks(binning: PrecisionBinning) -> tuple[int, int, float]:
    """(lo_tick, n_bins, scale) of a precision binning."""
    return binning._lo_tick, binning.n_bins, binning._scale


def union_binning(a: PrecisionBinning, b: PrecisionBinning) -> PrecisionBinning:
    """The minimal precision binning covering both operands' ranges."""
    if a.digits != b.digits:
        raise ValueError(
            f"cannot align binnings with different precision: "
            f"{a.digits} vs {b.digits} digits"
        )
    lo = min(a.lo, b.lo)
    hi = max(a.hi, b.hi)
    return PrecisionBinning(lo, hi, a.digits)


def pad_index(index: BitmapIndex, target: PrecisionBinning) -> BitmapIndex:
    """Re-express a tick-aligned index under a wider tick-aligned binning.

    Bins outside the original range receive all-zero bitvectors; bins
    inside are reused verbatim (no recompression).  The result's counts
    and bitwise behaviour are identical to having indexed the data under
    ``target`` in the first place (tested).
    """
    binning = index.binning
    if not isinstance(binning, PrecisionBinning):
        raise TypeError("pad_index requires PrecisionBinning-indexed data")
    lo_tick, n_bins, scale = _ticks(binning)
    t_lo, t_bins, t_scale = _ticks(target)
    if scale != t_scale:
        raise ValueError("precision mismatch between index and target binning")
    offset = lo_tick - t_lo
    if offset < 0 or offset + n_bins > t_bins:
        raise ValueError("target binning does not cover the index's range")
    zero = WAHBitVector.zeros(index.n_elements)
    vectors = (
        [zero] * offset
        + list(index.bitvectors)
        + [zero] * (t_bins - offset - n_bins)
    )
    return BitmapIndex(target, vectors, index.n_elements)


def align_indices(
    index_a: BitmapIndex, index_b: BitmapIndex
) -> tuple[BitmapIndex, BitmapIndex]:
    """Pad two tick-aligned indices onto their shared union binning."""
    if not isinstance(index_a.binning, PrecisionBinning) or not isinstance(
        index_b.binning, PrecisionBinning
    ):
        raise TypeError("align_indices requires PrecisionBinning on both sides")
    target = union_binning(index_a.binning, index_b.binning)
    return pad_index(index_a, target), pad_index(index_b, target)


def aligned_metric(metric):
    """Wrap a SelectionMetric so its bitmap backend aligns ticks first.

    Returns a new :class:`~repro.selection.metrics.SelectionMetric` whose
    ``bitmap(prev, cand)`` pads both operands onto their union binning --
    letting greedy/DP/streaming selection run over per-step adaptive
    indices with unchanged semantics.
    """
    from repro.selection.metrics import SelectionMetric

    def bitmap(prev: BitmapIndex, cand: BitmapIndex) -> float:
        pa, pb = align_indices(prev, cand)
        return metric.bitmap(pa, pb)

    return SelectionMetric(f"{metric.name}@adaptive", metric.full, bitmap)
