"""Spatial-unit popcounts: 1-bit distributions over partitioned bitvectors.

§4.2 step 3 partitions each joint bitvector into "basic sub-spatial units"
(contiguous bit ranges = Z-order blocks) and needs the 1-bit count of every
unit.  When the unit size is a multiple of 31 this is a pure word-level
computation (popcount per group, reduce per unit) -- the case the paper's
Z-order granularity choice guarantees in practice; otherwise we fall back
to bit unpacking.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.wah import WAHBitVector
from repro.util.bits import GROUP_BITS, last_group_mask, popcount_u32


def n_units(n_bits: int, unit_bits: int) -> int:
    """Number of units covering ``n_bits`` (last unit may be partial)."""
    if unit_bits < 1:
        raise ValueError(f"unit_bits must be >= 1, got {unit_bits}")
    return -(-n_bits // unit_bits)


def unit_popcounts(vector: WAHBitVector, unit_bits: int) -> np.ndarray:
    """Count of set bits within each consecutive ``unit_bits``-bit unit."""
    count = n_units(vector.n_bits, unit_bits)
    if vector.n_bits == 0:
        return np.zeros(0, dtype=np.int64)
    groups = vector.to_groups()
    groups = groups.copy()
    groups[-1] &= last_group_mask(vector.n_bits)
    if unit_bits % GROUP_BITS == 0:
        per_group = popcount_u32(groups).astype(np.int64)
        gpu = unit_bits // GROUP_BITS  # groups per unit
        pad = (-per_group.size) % gpu
        if pad:
            per_group = np.concatenate([per_group, np.zeros(pad, dtype=np.int64)])
        return per_group.reshape(-1, gpu).sum(axis=1)
    # General case: expand to bits once.
    bits = vector.to_bools().astype(np.int64)
    pad = count * unit_bits - bits.size
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.int64)])
    return bits.reshape(count, unit_bits).sum(axis=1)


def unit_popcounts_groups(
    groups: np.ndarray, n_bits: int, unit_bits: int
) -> np.ndarray:
    """Like :func:`unit_popcounts` but on an already-decompressed group array.

    Hot path for correlation mining, which holds every bin's groups in a
    matrix and evaluates many joint vectors; requires ``unit_bits`` to be a
    multiple of 31 (callers fall back to :func:`unit_popcounts` otherwise).
    """
    if unit_bits % GROUP_BITS != 0:
        raise ValueError(f"unit_bits must be a multiple of 31, got {unit_bits}")
    count = n_units(n_bits, unit_bits)
    per_group = popcount_u32(np.asarray(groups, dtype=np.uint32)).astype(np.int64)
    gpu = unit_bits // GROUP_BITS
    pad = (-per_group.size) % gpu
    if pad:
        per_group = np.concatenate([per_group, np.zeros(pad, dtype=np.int64)])
    out = per_group.reshape(-1, gpu).sum(axis=1)
    return out[:count]


def unit_sizes(n_bits: int, unit_bits: int) -> np.ndarray:
    """Number of *valid* bits in each unit (all ``unit_bits`` except maybe last)."""
    count = n_units(n_bits, unit_bits)
    sizes = np.full(count, unit_bits, dtype=np.int64)
    rem = n_bits % unit_bits
    if count and rem:
        sizes[-1] = rem
    return sizes
