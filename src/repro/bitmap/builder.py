"""In-situ bitmap construction -- Algorithm 1 of the paper.

The paper's contribution is a *single-scan, in-place* compressor: data is
consumed 31 elements (one segment) at a time, the segment's uncompressed
bitvectors live in ``BinNum`` machine words, and each segment is merged into
the growing compressed bitvectors immediately.  Peak extra memory is
``O(BinNum)`` words plus the compressed output -- never the ``n x m`` bits
of the full uncompressed index.

Two builders are provided:

* :class:`OnlineBitmapBuilder` -- a line-by-line scalar port of Algorithm 1,
  including its exact word constants.  It additionally supports *chunked*
  feeding (``push`` may be called repeatedly) so the in-situ pipeline can
  hand over data as the simulation produces it and free it right after, the
  "memory keeps increasing as bitmaps are generating" behaviour of §2.3.

* :func:`build_bitvectors` -- a numpy-vectorised equivalent used as the
  production fast path.  It produces *identical word streams* (tested
  against the scalar builder) by packing positions into 31-bit groups with
  one ``bincount`` per chunk and run-length-encoding per bin.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.wah import WAHBitVector, compress_groups
from repro.util.bits import GROUP_BITS, GROUP_FULL, groups_needed

_SEG_FULL = 0x7FFFFFFF
_FILL_MASK = 0xC0000000
_ONE_FILL = 0xC0000000
_ZERO_FILL = 0x80000000
_MAX_FILL = 0x3FFFFFFF - (0x3FFFFFFF % GROUP_BITS)


class OnlineBitmapBuilder:
    """Scalar Algorithm 1 with chunked feeding.

    Usage::

        builder = OnlineBitmapBuilder(binning)
        for chunk in stream:          # e.g. per simulation sub-block
            builder.push(chunk)
        vectors = builder.finalize()  # list[WAHBitVector], one per bin
    """

    def __init__(self, binning: Binning) -> None:
        self.binning = binning
        self._result: list[list[int]] = [[] for _ in range(binning.n_bins)]
        self._carry: np.ndarray = np.empty(0, dtype=np.int64)  # bin ids < 31
        self._n_bits = 0
        self._finalized = False

    @property
    def n_bits(self) -> int:
        """Elements consumed so far."""
        return self._n_bits

    def push(self, data: np.ndarray) -> None:
        """Consume one chunk of raw values (any shape; flattened C-order)."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        ids = self.binning.assign_checked(np.asarray(data).ravel())
        self._n_bits += ids.size
        ids = np.concatenate([self._carry, ids]) if self._carry.size else ids
        n_full = ids.size // GROUP_BITS * GROUP_BITS
        self._carry = ids[n_full:]
        self._consume_segments(ids[:n_full])

    def _consume_segments(self, ids: np.ndarray) -> None:
        """Lines 4-28 of Algorithm 1 for each complete 31-element segment."""
        bin_num = self.binning.n_bins
        result = self._result
        for seg_start in range(0, ids.size, GROUP_BITS):
            segments = [0] * bin_num  # line 5: initialise to 0
            for j in range(GROUP_BITS):  # lines 6-9
                vector_id = int(ids[seg_start + j])
                segments[vector_id] |= 1 << j
            for j in range(bin_num):  # lines 10-27
                self._merge_segment(result[j], segments[j], GROUP_BITS)

    @staticmethod
    def _merge_segment(out: list[int], segment: int, seg_bits: int) -> None:
        """Merge one (possibly partial) segment into a compressed vector."""
        if segment == _SEG_FULL and seg_bits == GROUP_BITS:  # lines 12-17
            if out and (out[-1] & _FILL_MASK) == _ONE_FILL and (
                (out[-1] & 0x3FFFFFFF) + GROUP_BITS <= _MAX_FILL
            ):
                out[-1] += GROUP_BITS
            else:
                out.append(_ONE_FILL | GROUP_BITS)  # 0xC000001F
        elif segment == 0:  # lines 18-23
            if out and (out[-1] & _FILL_MASK) == _ZERO_FILL and (
                (out[-1] & 0x3FFFFFFF) + GROUP_BITS <= _MAX_FILL
            ):
                out[-1] += GROUP_BITS
            else:
                out.append(_ZERO_FILL | GROUP_BITS)  # 0x8000001F
        else:  # lines 24-26
            out.append(segment)

    def finalize(self) -> list[WAHBitVector]:
        """Flush the partial trailing segment and return the bitvectors."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        self._finalized = True
        if self._carry.size:
            bin_num = self.binning.n_bins
            segments = [0] * bin_num
            for j, vector_id in enumerate(self._carry.tolist()):
                segments[vector_id] |= 1 << j
            for j in range(bin_num):
                # A partial all-zero tail still compresses to a 0-fill of one
                # group (padding bits are zero by construction).
                self._merge_segment(self._result[j], segments[j], self._carry.size)
            self._carry = np.empty(0, dtype=np.int64)
        return [
            WAHBitVector(np.asarray(words, dtype=np.uint32), self._n_bits)
            for words in self._result
        ]

    def memory_words(self) -> int:
        """Current builder state size in 32-bit words (the O(BinNum) claim)."""
        return sum(len(w) for w in self._result) + self.binning.n_bins


def _append_words(dst: list[np.ndarray], new: np.ndarray, carry: list[int]) -> None:
    """Append a compressed word block, merging the fill at the boundary.

    ``carry`` holds the single boundary word (as a 1-element list) so that a
    0-fill ending chunk ``k`` merges with a 0-fill starting chunk ``k+1``.
    """
    if new.size == 0:
        return
    if carry[0] != -1:
        prev = carry[0]
        first = int(new[0])
        if (
            prev & 0x80000000
            and first & 0x80000000
            and (prev & _FILL_MASK) == (first & _FILL_MASK)
            and (prev & 0x3FFFFFFF) + (first & 0x3FFFFFFF) <= _MAX_FILL
        ):
            merged = (prev & _FILL_MASK) | ((prev & 0x3FFFFFFF) + (first & 0x3FFFFFFF))
            new = new.copy()
            new[0] = merged
        else:
            dst.append(np.asarray([prev], dtype=np.uint32))
    if new.size > 1:
        dst.append(new[:-1])
    carry[0] = int(new[-1])


def encode_bitvectors(vectors: list[WAHBitVector], codec: str) -> list:
    """Re-encode built WAH bitvectors under a storage codec (post-pass).

    ``codec`` is a registered codec name (``"wah"`` is the identity), or
    ``"auto"`` for the density-driven per-bin policy
    (:func:`repro.bitmap.codec.select_codec`).  Algorithm 1 always builds
    WAH first -- density is only known once a bin is complete -- and this
    pass converts whole bins afterwards, so builds stay deterministic and
    the WAH word streams feeding the policy are identical to an untagged
    build.
    """
    if codec == "wah":
        return vectors
    from repro.bitmap import codec as codec_mod

    if codec == "auto":
        return [
            codec_mod.convert(v, codec_mod.select_codec(v)) for v in vectors
        ]
    target = codec_mod.codec_for_name(codec)
    return [codec_mod.convert(v, target) for v in vectors]


def build_bitvectors(
    data: np.ndarray,
    binning: Binning,
    *,
    chunk_elements: int = 1 << 20,
    codec: str = "wah",
) -> list:
    """Vectorised chunked bitmap construction (production fast path).

    Equivalent to :class:`OnlineBitmapBuilder` but ~100x faster: per chunk it
    computes each element's (bin, group, bit) coordinate and accumulates the
    31-bit groups of *all* bins with a single ``np.bincount``, then
    run-length-encodes each bin's groups.

    ``chunk_elements`` is rounded down to a multiple of 31 so chunk
    boundaries coincide with segment boundaries.

    ``codec`` selects the storage codec of the returned vectors: a
    registered codec name, or ``"auto"`` to pick per bin from bin density
    (see :func:`encode_bitvectors`).  The default ``"wah"`` is the
    paper's codec and keeps the word streams bit-identical to prior
    builds.
    """
    flat = np.asarray(data).ravel()
    n = flat.size
    n_bins = binning.n_bins
    chunk = max(GROUP_BITS, chunk_elements - chunk_elements % GROUP_BITS)

    blocks: list[list[np.ndarray]] = [[] for _ in range(n_bins)]
    carries: list[list[int]] = [[-1] for _ in range(n_bins)]

    bit_weights = (1 << np.arange(GROUP_BITS, dtype=np.int64)).astype(np.float64)
    for start in range(0, n, chunk):
        part = flat[start : start + chunk]
        ids = binning.assign_checked(part)
        m = part.size
        n_groups = -(-m // GROUP_BITS)
        pos = np.arange(m, dtype=np.int64)
        group = pos // GROUP_BITS
        bit = pos % GROUP_BITS
        key = ids * n_groups + group
        acc = np.bincount(key, weights=bit_weights[bit], minlength=n_bins * n_groups)
        groups_matrix = acc.astype(np.int64).astype(np.uint32).reshape(n_bins, n_groups)
        for b in range(n_bins):
            _append_words(blocks[b], compress_groups(groups_matrix[b]), carries[b])

    vectors: list[WAHBitVector] = []
    for b in range(n_bins):
        parts = blocks[b]
        if carries[b][0] != -1:
            parts = parts + [np.asarray([carries[b][0]], dtype=np.uint32)]
        words = np.concatenate(parts) if parts else np.empty(0, dtype=np.uint32)
        vectors.append(WAHBitVector(words, n))
    return encode_bitvectors(vectors, codec)


def concatenate_bitvectors(parts: list[WAHBitVector]) -> WAHBitVector:
    """Concatenate bitvectors end to end, merging fills at the seams.

    Only defined when every part except the last covers a multiple of 31
    bits (so group boundaries align) -- which is how Figure 2's sub-block
    partitioning is arranged.  Used by the parallel builder to stitch
    per-core results into one vector identical to a serial build.
    """
    if not parts:
        return WAHBitVector(np.empty(0, dtype=np.uint32), 0)
    for p in parts[:-1]:
        if p.n_bits % GROUP_BITS != 0:
            raise ValueError(
                "all parts but the last must cover a multiple of 31 bits, "
                f"got {p.n_bits}"
            )
    blocks: list[np.ndarray] = []
    carry = [-1]
    for p in parts:
        _append_words(blocks, p.words, carry)
    if carry[0] != -1:
        blocks.append(np.asarray([carry[0]], dtype=np.uint32))
    words = np.concatenate(blocks) if blocks else np.empty(0, dtype=np.uint32)
    return WAHBitVector(words, sum(p.n_bits for p in parts))


def splice_bitvectors(parts: list) -> WAHBitVector:
    """Concatenate bitvectors split at *arbitrary* bit boundaries.

    Generalises :func:`concatenate_bitvectors` to ragged parts whose
    lengths need not be multiples of 31 -- the situation for cluster slab
    decompositions, where each rank's slab is ``rows x ny x nz`` elements
    and row counts are whatever ``linspace`` hands out.  Misaligned parts
    are decompressed to the group domain, bit-shifted into place, and the
    union stream is recompressed; because the final words come from the
    same ``compress_groups`` pass a serial build would use, the result is
    word-identical to building over the concatenated data directly.

    Aligned inputs take the O(words) seam-merge fast path.  Parts stored
    under any registered codec are accepted -- non-WAH parts convert at
    this merge boundary, so the spliced WAH words are identical whatever
    codec each shard chose.
    """
    if not parts:
        return WAHBitVector(np.empty(0, dtype=np.uint32), 0)
    if any(not isinstance(p, WAHBitVector) for p in parts):
        from repro.bitmap.codec import to_wah

        parts = [to_wah(p) for p in parts]
    if all(p.n_bits % GROUP_BITS == 0 for p in parts[:-1]):
        return concatenate_bitvectors(parts)
    total = sum(p.n_bits for p in parts)
    out = np.zeros(groups_needed(total), dtype=np.uint64)
    offset = 0
    for p in parts:
        if p.n_bits == 0:
            continue
        g = p.to_groups().astype(np.uint64)
        q, r = divmod(offset, GROUP_BITS)
        if r == 0:
            out[q : q + g.size] |= g
        else:
            out[q : q + g.size] |= (g << np.uint64(r)) & np.uint64(GROUP_FULL)
            # Bits spilling into the next group; anything past the end of
            # ``out`` is padding (zero by the WAH invariant), safe to clip.
            spill = out[q + 1 : q + 1 + g.size]
            spill |= g[: spill.size] >> np.uint64(GROUP_BITS - r)
        offset += p.n_bits
    return WAHBitVector.from_groups(out.astype(np.uint32), total)


def bitvectors_to_buffers(vectors: list[WAHBitVector]) -> tuple[int, list[bytes]]:
    """Flatten a partial build into ``(n_bits, per-bin raw word buffers)``.

    The buffers are the bitvectors' little-endian ``uint32`` word streams
    as ``bytes`` -- cheap to pickle across a process boundary (no numpy
    array or dataclass overhead), and reversible with
    :func:`bitvectors_from_buffers`.
    """
    n_bits = vectors[0].n_bits if vectors else 0
    return n_bits, [v.words.tobytes() for v in vectors]


def bitvectors_from_buffers(n_bits: int, buffers: list[bytes]) -> list[WAHBitVector]:
    """Rehydrate :func:`bitvectors_to_buffers` output (zero-copy views)."""
    return [
        WAHBitVector(np.frombuffer(buf, dtype=np.uint32), n_bits)
        for buf in buffers
    ]


def stitch_buffer_parts(
    parts: list[tuple[int, list[bytes]]],
) -> list[WAHBitVector]:
    """Stitch ordered per-block partial builds shipped as raw buffers.

    ``parts[k]`` is :func:`bitvectors_to_buffers` output for sub-block
    ``k``; every block except the last must cover a multiple of 31 bits.
    Returns one stitched vector per bin, word-identical to a serial build
    over the concatenated blocks.
    """
    decoded = [bitvectors_from_buffers(nb, bufs) for nb, bufs in parts]
    if not decoded:
        return []
    n_bins = len(decoded[0])
    if any(len(d) != n_bins for d in decoded):
        raise ValueError("all parts must carry the same number of bins")
    return [
        concatenate_bitvectors([d[b] for d in decoded]) for b in range(n_bins)
    ]


def build_bitvectors_parallel(
    data: np.ndarray,
    binning: Binning,
    *,
    n_workers: int,
    chunk_elements: int = 1 << 20,
    executor: str = "threads",
) -> list[WAHBitVector]:
    """Figure 2's parallel generation: sub-blocks built concurrently.

    The data is "logically partitioned into (n - m) sub-blocks" (one per
    worker here), each worker builds compressed bitvectors for its block
    "without having any dependency among different cores", and the blocks
    are stitched with :func:`concatenate_bitvectors`.  The result is
    word-identical to a serial build (tested).

    ``executor='threads'`` suits numpy-land one-shot calls (the
    binning/bincount kernels release the GIL for their bulk work);
    ``executor='processes'`` routes through the shared-memory
    :class:`~repro.insitu.parallel.SharedCoresEngine`, paying a pool
    start-up cost per call -- hold an engine open instead when building
    many steps.
    """
    from concurrent.futures import ThreadPoolExecutor

    flat = np.asarray(data).ravel()
    n = flat.size
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if executor not in ("threads", "processes"):
        raise ValueError(f"unknown executor {executor!r}")
    if n_workers == 1 or n < n_workers * GROUP_BITS:
        return build_bitvectors(flat, binning, chunk_elements=chunk_elements)
    if executor == "processes":
        from repro.insitu.parallel import build_bitvectors_processes

        return build_bitvectors_processes(
            flat, binning, n_workers=n_workers, chunk_elements=chunk_elements
        )

    # Block boundaries on 31-bit group boundaries.
    per_block = -(-n // n_workers)
    per_block += (-per_block) % GROUP_BITS
    bounds = list(range(0, n, per_block)) + [n]
    blocks = [flat[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        results = list(
            pool.map(
                lambda block: build_bitvectors(
                    block, binning, chunk_elements=chunk_elements
                ),
                blocks,
            )
        )
    return [
        concatenate_bitvectors([r[b] for r in results])
        for b in range(binning.n_bins)
    ]


def build_bitvectors_batch(data: np.ndarray, binning: Binning) -> list[WAHBitVector]:
    """One-shot reference builder: materialise each bin's boolean mask.

    This is the *naive* approach the paper rejects for in-situ use (it holds
    one uncompressed bitvector at a time); kept as a correctness oracle and
    for the online-vs-batch ablation benchmark.
    """
    flat = np.asarray(data).ravel()
    ids = binning.assign_checked(flat)
    return [WAHBitVector.from_bools(ids == b) for b in range(binning.n_bins)]
