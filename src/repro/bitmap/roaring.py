"""A Roaring-style two-level bitmap container (modern comparison codec).

Roaring bitmaps (Chambi, Lemire et al., 2014 -- contemporaneous with the
paper) partition the bit space into 2^16-bit *chunks* and store each chunk
in whichever container is smaller:

* **array container** -- sorted ``uint16`` positions, for sparse chunks
  (< 4096 set bits);
* **bitmap container** -- a packed 8 KiB bitset, for dense chunks.

This simplified-but-faithful implementation exists for the codec ablation
(`benchmarks/bench_ablation_codec.py`): WAH (the paper's choice) excels on
*run-structured* data; Roaring adapts per region and wins when density
varies without long runs.  Operations dispatch on container-type pairs,
exactly like the real thing:

* array x array  -- sorted intersection/union (numpy ``intersect1d``);
* array x bitmap -- membership lookups;
* bitmap x bitmap -- word-wise logical ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

CHUNK_BITS = 1 << 16  # 65536
_ARRAY_MAX = 4096  # container flips to bitmap above this cardinality
_WORDS_PER_CHUNK = CHUNK_BITS // 64
_U32_PER_CHUNK = CHUNK_BITS // 32


@dataclass(frozen=True)
class ArrayContainer:
    """Sparse chunk: sorted uint16 offsets of the set bits."""

    positions: np.ndarray  # uint16, sorted, unique

    @property
    def cardinality(self) -> int:
        return int(self.positions.size)

    @property
    def nbytes(self) -> int:
        return int(self.positions.nbytes)


@dataclass(frozen=True)
class BitmapContainer:
    """Dense chunk: a fixed 1024-word (8 KiB) bitset."""

    words: np.ndarray  # uint64, length 1024

    @property
    def cardinality(self) -> int:
        return int(np.unpackbits(self.words.view(np.uint8)).sum())

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)


Container = Union[ArrayContainer, BitmapContainer]


def _make_container(offsets: np.ndarray) -> Container:
    """Pick the cheaper container for a chunk's set-bit offsets."""
    if offsets.size < _ARRAY_MAX:
        return ArrayContainer(offsets.astype(np.uint16))
    bits = np.zeros(CHUNK_BITS, dtype=np.uint8)
    bits[offsets] = 1
    words = np.packbits(bits, bitorder="little").view(np.uint64)
    return BitmapContainer(words.copy())


def _container_positions(c: Container) -> np.ndarray:
    if isinstance(c, ArrayContainer):
        return c.positions.astype(np.int64)
    bits = np.unpackbits(c.words.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits).astype(np.int64)


@dataclass(frozen=True)
class RoaringBitVector:
    """A two-level compressed bitvector over ``n_bits`` positions."""

    containers: dict[int, Container]  # chunk id -> container
    n_bits: int

    # ------------------------------------------------------------- builds
    @classmethod
    def from_indices(cls, indices: np.ndarray, n_bits: int) -> "RoaringBitVector":
        idx = np.unique(np.asarray(indices, dtype=np.int64))
        if idx.size and (idx[0] < 0 or idx[-1] >= n_bits):
            raise ValueError("indices out of range")
        containers: dict[int, Container] = {}
        if idx.size:
            chunk_ids = idx >> 16
            for cid in np.unique(chunk_ids):
                offsets = idx[chunk_ids == cid] & 0xFFFF
                containers[int(cid)] = _make_container(offsets)
        return cls(containers, n_bits)

    @classmethod
    def from_bools(cls, bits: np.ndarray) -> "RoaringBitVector":
        bits = np.asarray(bits, dtype=bool).ravel()
        return cls.from_indices(np.flatnonzero(bits), bits.size)

    @classmethod
    def zeros(cls, n_bits: int) -> "RoaringBitVector":
        return cls({}, n_bits)

    @classmethod
    def ones(cls, n_bits: int) -> "RoaringBitVector":
        containers: dict[int, Container] = {}
        full = None
        for cid in range(-(-n_bits // CHUNK_BITS)):
            width = min(CHUNK_BITS, n_bits - (cid << 16))
            if width == CHUNK_BITS:
                if full is None:
                    full = _make_container(np.arange(CHUNK_BITS, dtype=np.int64))
                containers[cid] = full  # containers are immutable; sharing is safe
            else:
                containers[cid] = _make_container(np.arange(width, dtype=np.int64))
        return cls(containers, n_bits)

    # ------------------------------------------------------------ content
    def to_indices(self) -> np.ndarray:
        parts = [
            (cid << 16) + _container_positions(c)
            for cid, c in sorted(self.containers.items())
        ]
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    def to_bools(self) -> np.ndarray:
        out = np.zeros(self.n_bits, dtype=bool)
        out[self.to_indices()] = True
        return out

    def count(self) -> int:
        return sum(c.cardinality for c in self.containers.values())

    @property
    def nbytes(self) -> int:
        """Payload bytes plus 8 bytes of key/offset bookkeeping per chunk."""
        return sum(c.nbytes + 8 for c in self.containers.values())

    @property
    def n_words(self) -> int:
        """Serialised size in ``uint32`` words (see :meth:`to_u32_payload`)."""
        total = 1 + 2 * len(self.containers)
        for c in self.containers.values():
            if isinstance(c, ArrayContainer):
                total += (c.cardinality + 1) // 2
            else:
                total += _U32_PER_CHUNK
        return total

    def __contains__(self, position: int) -> bool:
        if not 0 <= position < self.n_bits:
            raise IndexError(position)
        c = self.containers.get(position >> 16)
        if c is None:
            return False
        offset = position & 0xFFFF
        if isinstance(c, ArrayContainer):
            i = int(np.searchsorted(c.positions, offset))
            return i < c.positions.size and int(c.positions[i]) == offset
        word = int(c.words[offset >> 6])
        return bool((word >> (offset & 63)) & 1)

    # ------------------------------------------------------------ algebra
    def __and__(self, other: "RoaringBitVector") -> "RoaringBitVector":
        self._check(other)
        out: dict[int, Container] = {}
        for cid in self.containers.keys() & other.containers.keys():
            offsets = _intersect(self.containers[cid], other.containers[cid])
            if offsets.size:
                out[cid] = _make_container(offsets)
        return RoaringBitVector(out, self.n_bits)

    def __or__(self, other: "RoaringBitVector") -> "RoaringBitVector":
        self._check(other)
        out: dict[int, Container] = {}
        for cid in self.containers.keys() | other.containers.keys():
            a = self.containers.get(cid)
            b = other.containers.get(cid)
            if a is None:
                out[cid] = b  # containers are immutable; sharing is safe
            elif b is None:
                out[cid] = a
            else:
                out[cid] = _make_container(_union(a, b))
        return RoaringBitVector(out, self.n_bits)

    def __xor__(self, other: "RoaringBitVector") -> "RoaringBitVector":
        self._check(other)
        out: dict[int, Container] = {}
        for cid in self.containers.keys() | other.containers.keys():
            a = self.containers.get(cid)
            b = other.containers.get(cid)
            if a is None:
                out[cid] = b
            elif b is None:
                out[cid] = a
            else:
                offsets = np.setxor1d(
                    _container_positions(a), _container_positions(b)
                )
                if offsets.size:
                    out[cid] = _make_container(offsets)
        return RoaringBitVector(out, self.n_bits)

    def andnot(self, other: "RoaringBitVector") -> "RoaringBitVector":
        self._check(other)
        out: dict[int, Container] = {}
        for cid, a in self.containers.items():
            b = other.containers.get(cid)
            if b is None:
                out[cid] = a
            else:
                offsets = np.setdiff1d(
                    _container_positions(a), _container_positions(b)
                )
                if offsets.size:
                    out[cid] = _make_container(offsets)
        return RoaringBitVector(out, self.n_bits)

    def and_count(self, other: "RoaringBitVector") -> int:
        self._check(other)
        total = 0
        for cid in self.containers.keys() & other.containers.keys():
            total += _intersect(self.containers[cid], other.containers[cid]).size
        return total

    def or_count(self, other: "RoaringBitVector") -> int:
        return self.count() + other.count() - self.and_count(other)

    def xor_count(self, other: "RoaringBitVector") -> int:
        return self.count() + other.count() - 2 * self.and_count(other)

    def andnot_count(self, other: "RoaringBitVector") -> int:
        return self.count() - self.and_count(other)

    # --------------------------------------------------------------- wire
    def to_u32_payload(self) -> np.ndarray:
        """Serialise to a flat little-endian ``uint32`` payload.

        Layout: ``[n_containers]``, then per container (key order) a
        ``[key, cardinality]`` pair, then the payloads in the same order --
        array containers as ``uint16`` positions padded to a 4-byte
        boundary, bitmap containers as 2048 ``uint32`` words.  The
        container type is implied by the cardinality (< ``_ARRAY_MAX`` is
        an array), which is an invariant of :func:`_make_container`.
        """
        keys = sorted(self.containers)
        parts = [np.array([len(keys)], dtype="<u4")]
        header = np.empty(2 * len(keys), dtype="<u4")
        for i, cid in enumerate(keys):
            header[2 * i] = cid
            header[2 * i + 1] = self.containers[cid].cardinality
        parts.append(header)
        for cid in keys:
            c = self.containers[cid]
            if isinstance(c, ArrayContainer):
                pos = c.positions.astype("<u2")
                if pos.size % 2:
                    pos = np.append(pos, np.uint16(0))
                parts.append(pos.view("<u4"))
            else:
                parts.append(c.words.astype("<u8").view("<u4"))
        return np.concatenate(parts).astype(np.uint32, copy=False)

    @classmethod
    def from_u32_payload(
        cls, payload: np.ndarray, n_bits: int
    ) -> "RoaringBitVector":
        """Rebuild from :meth:`to_u32_payload` output, validating layout."""
        payload = np.asarray(payload, dtype=np.uint32)
        if payload.size < 1:
            raise ValueError("Roaring payload truncated: missing container count")
        n_containers = int(payload[0])
        pos = 1 + 2 * n_containers
        if payload.size < pos:
            raise ValueError("Roaring payload truncated: container directory")
        directory = payload[1:pos].reshape(n_containers, 2)
        keys = directory[:, 0].astype(np.int64)
        cards = directory[:, 1].astype(np.int64)
        max_chunks = -(-n_bits // CHUNK_BITS)
        if n_containers:
            if np.any(np.diff(keys) <= 0):
                raise ValueError("Roaring container keys not strictly increasing")
            if keys[0] < 0 or keys[-1] >= max_chunks:
                raise ValueError(
                    f"Roaring container key out of range for n_bits={n_bits}"
                )
            if np.any(cards < 1) or np.any(cards > CHUNK_BITS):
                raise ValueError("Roaring container cardinality out of [1, 65536]")
        containers: dict[int, Container] = {}
        for cid, card in zip(keys, cards):
            if card < _ARRAY_MAX:
                words = (card + 1) // 2
                if payload.size < pos + words:
                    raise ValueError("Roaring payload truncated: array container")
                raw = payload[pos : pos + words].astype("<u4").view("<u2")[:card]
                pos += words
                positions = raw.astype(np.uint16)
                if card > 1 and np.any(np.diff(positions.astype(np.int64)) <= 0):
                    raise ValueError(
                        "Roaring array container positions not sorted unique"
                    )
                containers[int(cid)] = ArrayContainer(positions)
            else:
                if payload.size < pos + _U32_PER_CHUNK:
                    raise ValueError("Roaring payload truncated: bitmap container")
                words = (
                    payload[pos : pos + _U32_PER_CHUNK].astype("<u4").view("<u8")
                ).astype(np.uint64)
                pos += _U32_PER_CHUNK
                container = BitmapContainer(words)
                if container.cardinality != card:
                    raise ValueError(
                        "Roaring bitmap container cardinality mismatch"
                    )
                containers[int(cid)] = container
        if pos != payload.size:
            raise ValueError(
                f"Roaring payload has {payload.size - pos} trailing words"
            )
        vec = cls(containers, n_bits)
        idx = vec.to_indices()
        if idx.size and idx[-1] >= n_bits:
            raise ValueError("Roaring payload sets bits beyond n_bits")
        return vec

    def _check(self, other: "RoaringBitVector") -> None:
        if self.n_bits != other.n_bits:
            raise ValueError(
                f"operand length mismatch: {self.n_bits} != {other.n_bits}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitVector):
            return NotImplemented
        return self.n_bits == other.n_bits and np.array_equal(
            self.to_indices(), other.to_indices()
        )

    def __hash__(self) -> int:
        return hash((self.n_bits, self.to_indices().tobytes()))

    def __repr__(self) -> str:
        kinds = sum(isinstance(c, BitmapContainer) for c in self.containers.values())
        return (
            f"RoaringBitVector(n_bits={self.n_bits}, count={self.count()}, "
            f"chunks={len(self.containers)} ({kinds} dense))"
        )


def _intersect(a: Container, b: Container) -> np.ndarray:
    if isinstance(a, ArrayContainer) and isinstance(b, ArrayContainer):
        return np.intersect1d(a.positions, b.positions).astype(np.int64)
    if isinstance(a, BitmapContainer) and isinstance(b, BitmapContainer):
        words = a.words & b.words
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits).astype(np.int64)
    arr, bm = (a, b) if isinstance(a, ArrayContainer) else (b, a)
    assert isinstance(bm, BitmapContainer)
    pos = arr.positions.astype(np.int64)
    words = bm.words[pos >> 6]
    hit = (words >> (pos & 63).astype(np.uint64)) & np.uint64(1)
    return pos[hit.astype(bool)]


def _union(a: Container, b: Container) -> np.ndarray:
    return np.union1d(_container_positions(a), _container_positions(b))
