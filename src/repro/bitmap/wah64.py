"""64-bit Word-Aligned Hybrid (WAH64) compressed bitvectors.

The 64-bit sibling of :mod:`repro.bitmap.wah`: the same run-length scheme
with twice the word width, so each literal carries a 63-bit *group* and
mid-density data that defeats 31-bit run detection needs roughly half the
words.  Layout, mirroring the 32-bit constants:

* **Literal word** -- bit 63 is 0; the low 63 bits hold one 63-bit group of
  the bitvector, LSB-first.
* **Fill word** -- bit 63 is 1; bit 62 is the fill value; the low 62 bits
  hold the run length **in bits** (always a multiple of 63).

The logical length ``n_bits`` need not be a multiple of 63; trailing
padding bits of the final group are always zero.

On disk a WAH64 payload is stored as little-endian ``uint32`` pairs (low
word first) so the record framing of :mod:`repro.bitmap.serialization`
stays uniform across codecs; see :meth:`WAH64BitVector.to_u32_payload`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.bits import HAS_HARDWARE_POPCOUNT, _popcount_u32_table

#: Number of payload bits per WAH64 group / literal word.
GROUP_BITS64 = 63

#: All 63 payload bits set -- a group that is entirely ones.
GROUP_FULL64 = np.uint64(0x7FFFFFFFFFFFFFFF)

#: Fill-word flag (MSB of the 64-bit word).
FILL_FLAG64 = np.uint64(1 << 63)
#: Fill-value flag (bit 62): set for 1-fills.
FILL_VALUE_FLAG64 = np.uint64(1 << 62)
#: Low 62 bits of a fill word: run length in bits (multiple of 63).
FILL_COUNT_MASK64 = np.uint64((1 << 62) - 1)
#: Largest bit count representable by one fill word, rounded down to a
#: multiple of 63.
MAX_FILL_BITS64 = int(FILL_COUNT_MASK64) - int(FILL_COUNT_MASK64) % GROUP_BITS64

ONE_FILL_HEADER64 = FILL_FLAG64 | FILL_VALUE_FLAG64
ZERO_FILL_HEADER64 = FILL_FLAG64


def groups_needed64(n_bits: int) -> int:
    """Number of 63-bit groups required to hold ``n_bits`` bits."""
    return -(-n_bits // GROUP_BITS64)


def last_group_mask64(n_bits: int) -> np.uint64:
    """Mask of *valid* (non-padding) bits in the final group."""
    rem = n_bits % GROUP_BITS64
    if rem == 0:
        return GROUP_FULL64
    return np.uint64((1 << rem) - 1)


def popcount_total64(words: np.ndarray) -> int:
    """Total number of set bits across a ``uint64`` array."""
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return 0
    if HAS_HARDWARE_POPCOUNT:
        return int(np.bitwise_count(words).sum(dtype=np.uint64))
    halves = words.view(np.uint32)
    return int(_popcount_u32_table(halves).sum(dtype=np.uint64))


def pack_bits_to_groups64(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array into 63-bit groups (``uint64`` array).

    Same trick as the 31-bit packer: rows of 64 bits with the top bit of
    every row forced to zero, packed little-endian and viewed as one
    ``uint64`` per group.
    """
    bits = np.asarray(bits, dtype=bool).ravel()
    n = bits.size
    n_groups = groups_needed64(n) if n else 0
    if n_groups == 0:
        return np.empty(0, dtype=np.uint64)
    payload = np.zeros(n_groups * GROUP_BITS64, dtype=np.uint8)
    payload[:n] = bits
    padded = np.zeros((n_groups, 64), dtype=np.uint8)
    padded[:, :GROUP_BITS64] = payload.reshape(n_groups, GROUP_BITS64)
    packed = np.packbits(padded, axis=1, bitorder="little")
    return packed.reshape(n_groups, 8).view("<u8").reshape(n_groups).astype(np.uint64)


def unpack_groups_to_bits64(groups: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack 63-bit groups back into a boolean array of length ``n_bits``."""
    groups = np.asarray(groups, dtype=np.uint64)
    if n_bits == 0:
        return np.empty(0, dtype=bool)
    need = groups_needed64(n_bits)
    if groups.size < need:
        raise ValueError(
            f"need {need} groups to produce {n_bits} bits, got {groups.size}"
        )
    raw = groups[:need].astype("<u8").view(np.uint8).reshape(need, 8)
    bits = np.unpackbits(raw, axis=1, bitorder="little")[:, :GROUP_BITS64]
    return bits.reshape(-1)[:n_bits].astype(bool)


def make_fill64(value: int, n_bits: int) -> int:
    """Construct a fill word for ``n_bits`` bits of ``value``."""
    if n_bits % GROUP_BITS64 != 0 or not 0 < n_bits <= MAX_FILL_BITS64:
        raise ValueError(
            f"fill length must be a multiple of 63 in (0, {MAX_FILL_BITS64}], got {n_bits}"
        )
    header = ONE_FILL_HEADER64 if value else ZERO_FILL_HEADER64
    return int(header | np.uint64(n_bits))


def compress_groups64(groups: np.ndarray) -> np.ndarray:
    """Run-length encode an array of 63-bit groups into WAH64 words.

    The vectorised change-point scan of :func:`repro.bitmap.wah.compress_groups`
    at 64-bit width.  Giant runs exceeding :data:`MAX_FILL_BITS64` cannot
    occur for any realistic ``n_bits`` (2^62 bits) so no splitting loop is
    needed, but the bound is still asserted.
    """
    groups = np.asarray(groups, dtype=np.uint64)
    m = groups.size
    if m == 0:
        return np.empty(0, dtype=np.uint64)

    fillable = (groups == 0) | (groups == GROUP_FULL64)
    starts = np.empty(m, dtype=bool)
    starts[0] = True
    starts[1:] = (groups[1:] != groups[:-1]) | ~fillable[1:] | ~fillable[:-1]
    start_idx = np.flatnonzero(starts)
    run_len = np.diff(np.append(start_idx, m))
    if int(run_len.max(initial=0)) * GROUP_BITS64 > MAX_FILL_BITS64:  # pragma: no cover
        raise ValueError("run exceeds the 62-bit fill counter")

    run_val = groups[start_idx]
    run_fill = fillable[start_idx]
    out = np.empty(start_idx.size, dtype=np.uint64)
    lit = ~run_fill
    out[lit] = run_val[lit]
    header = np.where(
        run_val[run_fill] == GROUP_FULL64, ONE_FILL_HEADER64, ZERO_FILL_HEADER64
    ).astype(np.uint64)
    out[run_fill] = header | (
        run_len[run_fill].astype(np.uint64) * np.uint64(GROUP_BITS64)
    )
    return out


def decompress_words64(words: np.ndarray) -> np.ndarray:
    """Expand WAH64 words into the flat array of 63-bit groups they encode."""
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return np.empty(0, dtype=np.uint64)
    fills = (words & FILL_FLAG64) != 0
    counts = np.where(
        fills, (words & FILL_COUNT_MASK64) // np.uint64(GROUP_BITS64), np.uint64(1)
    ).astype(np.int64)
    values = np.where(
        fills,
        np.where((words & FILL_VALUE_FLAG64) != 0, GROUP_FULL64, np.uint64(0)),
        words & GROUP_FULL64,
    ).astype(np.uint64)
    return np.repeat(values, counts)


@dataclass(frozen=True)
class WAH64BitVector:
    """An immutable WAH64-compressed bitvector of logical length ``n_bits``.

    ``words`` is the compressed ``uint64`` stream; it always encodes exactly
    ``ceil(n_bits / 63)`` groups, and padding bits beyond ``n_bits`` in the
    final group are zero.
    """

    words: np.ndarray
    n_bits: int

    # ---------------------------------------------------------------- ctor
    def __post_init__(self) -> None:
        object.__setattr__(
            self, "words", np.ascontiguousarray(self.words, dtype=np.uint64)
        )
        if self.n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {self.n_bits}")

    @classmethod
    def from_bools(cls, bits: np.ndarray) -> "WAH64BitVector":
        """Compress a boolean (or 0/1) array."""
        bits = np.asarray(bits, dtype=bool).ravel()
        return cls(compress_groups64(pack_bits_to_groups64(bits)), bits.size)

    @classmethod
    def from_groups(cls, groups: np.ndarray, n_bits: int) -> "WAH64BitVector":
        """Compress an already-packed array of 63-bit groups."""
        if np.asarray(groups).size != groups_needed64(n_bits):
            raise ValueError(
                f"{np.asarray(groups).size} groups cannot encode {n_bits} bits"
            )
        return cls(compress_groups64(groups), n_bits)

    @classmethod
    def from_indices(cls, indices: np.ndarray, n_bits: int) -> "WAH64BitVector":
        """Build a bitvector with ones at the given positions."""
        bits = np.zeros(n_bits, dtype=bool)
        bits[np.asarray(indices, dtype=np.int64)] = True
        return cls.from_bools(bits)

    @classmethod
    def zeros(cls, n_bits: int) -> "WAH64BitVector":
        """An all-zero bitvector."""
        return cls.from_groups(
            np.zeros(groups_needed64(n_bits), dtype=np.uint64), n_bits
        )

    @classmethod
    def ones(cls, n_bits: int) -> "WAH64BitVector":
        """An all-one bitvector (padding bits still zero)."""
        g = np.full(groups_needed64(n_bits), GROUP_FULL64, dtype=np.uint64)
        if n_bits:
            g[-1] = np.uint64(g[-1] & last_group_mask64(n_bits))
        return cls.from_groups(g, n_bits)

    # ------------------------------------------------------------ content
    def to_groups(self) -> np.ndarray:
        """Decompress to the flat array of 63-bit groups."""
        return decompress_words64(self.words)

    def to_bools(self) -> np.ndarray:
        """Decompress to a boolean array of length ``n_bits``."""
        return unpack_groups_to_bits64(self.to_groups(), self.n_bits)

    def to_indices(self) -> np.ndarray:
        """Positions of the set bits."""
        return np.flatnonzero(self.to_bools())

    def count(self) -> int:
        """Number of set bits, computed on the *compressed* form."""
        words = self.words
        if words.size == 0:
            return 0
        fills = (words & FILL_FLAG64) != 0
        lit_total = popcount_total64(words[~fills] & GROUP_FULL64)
        one_fills = words[fills & ((words & FILL_VALUE_FLAG64) != 0)]
        fill_total = int((one_fills & FILL_COUNT_MASK64).astype(np.int64).sum())
        return lit_total + fill_total

    def density(self) -> float:
        """Fraction of set bits (0 for the empty vector)."""
        return self.count() / self.n_bits if self.n_bits else 0.0

    # ------------------------------------------------------------ algebra
    def _binary(self, other: "WAH64BitVector", op) -> "WAH64BitVector":
        if self.n_bits != other.n_bits:
            raise ValueError(
                f"operand length mismatch: {self.n_bits} != {other.n_bits}"
            )
        groups = op(self.to_groups(), other.to_groups())
        if self.n_bits and groups.size:
            groups[-1] &= last_group_mask64(self.n_bits)
        return WAH64BitVector(compress_groups64(groups), self.n_bits)

    def __and__(self, other: "WAH64BitVector") -> "WAH64BitVector":
        return self._binary(other, np.bitwise_and)

    def __or__(self, other: "WAH64BitVector") -> "WAH64BitVector":
        return self._binary(other, np.bitwise_or)

    def __xor__(self, other: "WAH64BitVector") -> "WAH64BitVector":
        return self._binary(other, np.bitwise_xor)

    def andnot(self, other: "WAH64BitVector") -> "WAH64BitVector":
        return self._binary(other, lambda a, b: a & ~b)

    # ----------------------------------------------------------- geometry
    @property
    def n_words(self) -> int:
        return int(self.words.size)

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes."""
        return int(self.words.nbytes)

    @property
    def n_groups(self) -> int:
        return groups_needed64(self.n_bits)

    def compression_ratio(self) -> float:
        """Compressed words / uncompressed groups (lower is better)."""
        g = self.n_groups
        return self.n_words / g if g else 1.0

    # -------------------------------------------------------------- wire
    def to_u32_payload(self) -> np.ndarray:
        """Serialise the word stream as little-endian ``uint32`` pairs.

        Each 64-bit word contributes its low half then its high half, so
        the payload length is always even and the on-disk record framing
        (which counts ``uint32`` words) stays codec-uniform.
        """
        return (
            self.words.astype("<u8", copy=False).view("<u4").astype(np.uint32)
        )

    @classmethod
    def from_u32_payload(cls, payload: np.ndarray, n_bits: int) -> "WAH64BitVector":
        """Rebuild from the ``uint32``-pair payload of :meth:`to_u32_payload`.

        This is the untrusted-input boundary (disk records, replica
        pushes), so the word stream is validated *before* anything
        decompresses it: the 62-bit fill counters of a corrupt stream
        could otherwise demand an arbitrarily large group allocation.
        """
        payload = np.asarray(payload, dtype=np.uint32)
        if payload.size % 2 != 0:
            raise ValueError(
                f"WAH64 payload must have an even uint32 count, got {payload.size}"
            )
        words = payload.astype("<u4", copy=False).view("<u8").astype(np.uint64)
        n_groups = groups_needed64(n_bits)
        if words.size > n_groups:
            raise ValueError(
                f"corrupt WAH64 stream: {words.size} words cannot encode "
                f"{n_bits} bits ({n_groups} groups max)"
            )
        fills = (words & FILL_FLAG64) != 0
        counts = words[fills] & FILL_COUNT_MASK64
        if counts.size and (
            np.any(counts == np.uint64(0))
            or np.any(counts % np.uint64(GROUP_BITS64) != 0)
        ):
            raise ValueError(
                "corrupt WAH64 stream: fill count not a positive multiple of 63"
            )
        # Safe uint64 sum: every term is <= n_groups (words.size is too),
        # so overflow would need a physically impossible payload size.
        total = int(
            (counts // np.uint64(GROUP_BITS64)).sum(dtype=np.uint64)
        ) + int(np.count_nonzero(~fills))
        if total != n_groups:
            raise ValueError(
                f"corrupt WAH64 stream: encodes {total} groups, "
                f"{n_bits} bits need {n_groups}"
            )
        return cls(words, n_bits)

    # ------------------------------------------------------------- checks
    def check_invariants(self) -> None:
        """Validate the word stream; raises ``AssertionError`` on corruption."""
        words = self.words
        fills = (words & FILL_FLAG64) != 0
        counts = words[fills] & FILL_COUNT_MASK64
        assert np.all(counts % np.uint64(GROUP_BITS64) == 0), (
            "fill count not a multiple of 63"
        )
        assert np.all(counts > 0), "empty fill word"
        fill_groups = int(counts.astype(np.int64).sum()) // GROUP_BITS64
        groups_encoded = fill_groups + int((~fills).sum())
        assert groups_encoded == self.n_groups, (
            f"words encode {groups_encoded} groups, expected {self.n_groups}"
        )
        if self.n_bits % GROUP_BITS64 != 0 and words.size:
            groups = self.to_groups()
            pad_mask = np.uint64(
                ~int(last_group_mask64(self.n_bits)) & int(GROUP_FULL64)
            )
            assert groups[-1] & pad_mask == 0, "padding bits set in final group"

    # ------------------------------------------------------------ dunders
    def __len__(self) -> int:
        return self.n_bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WAH64BitVector):
            return NotImplemented
        return self.n_bits == other.n_bits and np.array_equal(self.words, other.words)

    def __hash__(self) -> int:
        return hash((self.n_bits, self.words.tobytes()))

    def __repr__(self) -> str:
        return (
            f"WAH64BitVector(n_bits={self.n_bits}, n_words={self.n_words}, "
            f"count={self.count()})"
        )
