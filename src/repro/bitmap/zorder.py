"""Z-order (Morton) curve linearisation -- §4.2 optimisation 1.

The paper iterates multi-dimensional data in Z-order while building bitmaps
so that, when a joint bitvector is later partitioned into spatial units, a
*contiguous bit range* corresponds to a compact spatial block ("the basic
spatial unit is the size of the smallest unit of Z orders").

Encoding is fully vectorised with the standard bit-interleaving magic
numbers on ``uint64``; arbitrary (non power-of-two) grid shapes are handled
by computing Morton codes over the bounding power-of-two box and arg-sorting
-- the resulting permutation is cached by :class:`ZOrderLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of each value: bit i -> bit 2i."""
    x = x.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value: bit i -> bit 3i."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_encode_2d(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Interleave two coordinate arrays into Morton codes (y gets odd bits)."""
    return _part1by1(np.asarray(x)) | (_part1by1(np.asarray(y)) << np.uint64(1))


def morton_encode_3d(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Interleave three coordinate arrays into Morton codes."""
    return (
        _part1by2(np.asarray(x))
        | (_part1by2(np.asarray(y)) << np.uint64(1))
        | (_part1by2(np.asarray(z)) << np.uint64(2))
    )


def _compact1by1(code: np.ndarray) -> np.ndarray:
    x = code.astype(np.uint64) & np.uint64(0x5555555555555555)
    x = (x | (x >> np.uint64(1))) & np.uint64(0x3333333333333333)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0xFFFFFFFF)
    return x


def _compact1by2(code: np.ndarray) -> np.ndarray:
    x = code.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_decode_2d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode_2d`."""
    code = np.asarray(code, dtype=np.uint64)
    return _compact1by1(code), _compact1by1(code >> np.uint64(1))


def morton_decode_3d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode_3d`."""
    code = np.asarray(code, dtype=np.uint64)
    return (
        _compact1by2(code),
        _compact1by2(code >> np.uint64(1)),
        _compact1by2(code >> np.uint64(2)),
    )


@dataclass(frozen=True)
class ZOrderLayout:
    """Cached Morton permutation for a fixed grid shape.

    ``flatten`` reorders a grid array into Z-order 1-D; ``unflatten``
    restores the grid.  For power-of-two shapes the permutation is the exact
    Z curve; otherwise it is the Z curve of the bounding box restricted to
    valid cells (still spatially coherent, codes stay sorted).
    """

    shape: tuple[int, ...]
    permutation: np.ndarray  # grid flat (C-order) index for each Z position

    @classmethod
    def for_shape(cls, shape: tuple[int, ...]) -> "ZOrderLayout":
        if len(shape) == 1:
            perm = np.arange(shape[0], dtype=np.int64)
            return cls(tuple(shape), perm)
        if len(shape) not in (2, 3):
            raise ValueError(f"Z-order layout supports 1-3 dims, got {len(shape)}")
        axes = [np.arange(s, dtype=np.uint64) for s in shape]
        coords = np.meshgrid(*axes, indexing="ij")
        flat = [c.ravel() for c in coords]
        if len(shape) == 2:
            codes = morton_encode_2d(flat[0], flat[1])
        else:
            codes = morton_encode_3d(flat[0], flat[1], flat[2])
        perm = np.argsort(codes, kind="stable").astype(np.int64)
        return cls(tuple(shape), perm)

    @property
    def n_cells(self) -> int:
        return int(self.permutation.size)

    def flatten(self, grid: np.ndarray) -> np.ndarray:
        """Grid array -> Z-ordered 1-D array."""
        grid = np.asarray(grid)
        if grid.shape != self.shape:
            raise ValueError(f"expected shape {self.shape}, got {grid.shape}")
        return grid.reshape(-1)[self.permutation]

    def unflatten(self, zdata: np.ndarray) -> np.ndarray:
        """Z-ordered 1-D array -> grid array."""
        zdata = np.asarray(zdata)
        if zdata.size != self.n_cells:
            raise ValueError(f"expected {self.n_cells} values, got {zdata.size}")
        out = np.empty(self.n_cells, dtype=zdata.dtype)
        out[self.permutation] = zdata
        return out.reshape(self.shape)

    def unit_of(self, z_positions: np.ndarray, unit_cells: int) -> np.ndarray:
        """Spatial-unit id of each Z position for units of ``unit_cells`` cells."""
        return np.asarray(z_positions, dtype=np.int64) // int(unit_cells)

    def unit_bounds(self, unit_id: int, unit_cells: int) -> tuple[np.ndarray, np.ndarray]:
        """Grid-coordinate bounding box (min, max inclusive) of one unit."""
        lo = unit_id * unit_cells
        hi = min(lo + unit_cells, self.n_cells)
        flat_idx = self.permutation[lo:hi]
        coords = np.unravel_index(flat_idx, self.shape)
        mins = np.asarray([c.min() for c in coords], dtype=np.int64)
        maxs = np.asarray([c.max() for c in coords], dtype=np.int64)
        return mins, maxs


def suggested_unit_cells(shape: tuple[int, ...], target_side: int = 8) -> int:
    """Unit size (in cells) whose Z-block is a ``target_side``-wide cube."""
    side = 1
    while side * 2 <= target_side:
        side *= 2
    return side ** len(shape)
