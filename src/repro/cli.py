"""Command-line interface: ``repro <subcommand>``.

Subcommands mirror the library's main entry points so the system is usable
without writing Python:

* ``repro insitu``  -- run the in-situ pipeline on a built-in workload;
* ``repro index``   -- build a bitmap index from a ``.npy`` array;
* ``repro query``   -- inspect stored indices, or run SQL against them;
* ``repro serve``   -- serve SQL queries over a bitmap store: batch mode
  (``--sql``) through the query service, or a sharded network server
  (``--port``/``--shards``) speaking length-prefixed JSON over TCP,
  optionally with hot-set replication (``--replicate``);
* ``repro serve-stats`` -- print a running network server's live
  counters (admission, per-shard dispatch, cache hit rates, hot set);
* ``repro mine``    -- correlation mining on the POP-like ocean data;
* ``repro model``   -- print a modelled figure table (Figures 7-13/15);
* ``repro cluster`` -- run the multi-rank cluster pipeline, optionally
  verifying it against a single-node reference run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'In-Situ Bitmaps Generation and Efficient Data "
            "Analysis based on Bitmaps' (HPDC'15)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("insitu", help="run the in-situ pipeline on a workload")
    p.add_argument("--workload", choices=["heat3d", "lulesh"], default="heat3d")
    p.add_argument("--shape", default="12,12,32", help="grid, e.g. 12,12,32")
    p.add_argument("--steps", type=int, default=20)
    p.add_argument("--select", type=int, default=5)
    p.add_argument(
        "--mode", choices=["bitmap", "fulldata", "sampling"], default="bitmap"
    )
    p.add_argument("--metric", choices=["conditional_entropy", "emd_count",
                                        "emd_spatial"], default=None,
                   help="default: conditional_entropy (heat3d) / emd_spatial (lulesh)")
    p.add_argument("--sample-fraction", type=float, default=0.15)
    p.add_argument("--bins", type=int, default=64)
    p.add_argument("--out", type=Path, default=None, help="output directory")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="total worker count; > 1 runs the parallel engine "
                        "(bitmap mode only)")
    p.add_argument("--allocation", choices=["shared", "separate", "auto"],
                   default="shared",
                   help="core-allocation strategy for --workers > 1 "
                        "(auto calibrates the Eq. 1-2 split)")
    p.add_argument("--executor", choices=["threads", "processes"],
                   default="processes",
                   help="parallel engine backend (processes = shared-memory "
                        "multi-core; threads = GIL-bound escape hatch)")
    p.add_argument("--queue-mb", type=float, default=64.0,
                   help="separate-cores data-queue capacity in MiB")
    p.add_argument("--ordering", choices=["lex", "gray", "hist"], default=None,
                   help="row-order every step's payload before encoding "
                        "(compression-maximizing; permutation persisted as "
                        "a sidecar so queries map back exactly)")

    p = sub.add_parser("index", help="build a bitmap index from a .npy file")
    p.add_argument("input", type=Path)
    p.add_argument("output", type=Path)
    group = p.add_mutually_exclusive_group()
    group.add_argument("--bins", type=int, default=64)
    group.add_argument("--digits", type=int, default=None,
                       help="fixed-decimal binning instead of equal-width")
    p.add_argument("--zorder", action="store_true",
                   help="linearise multi-dimensional input in Z-order")
    p.add_argument("--ordering", choices=["lex", "gray", "hist"], default=None,
                   help="reorder rows for compression before encoding; the "
                        "inverse permutation rides with the index record")
    p.add_argument("--codec", choices=["wah", "roaring", "wah64", "auto"],
                   default="wah",
                   help="storage codec per bin (auto = density-driven)")

    p = sub.add_parser(
        "query", help="inspect stored bitmap indices or run SQL against them"
    )
    p.add_argument("index", type=Path, nargs="+")
    p.add_argument("--range", nargs=2, type=float, metavar=("LO", "HI"),
                   default=None, help="count elements with value in [LO, HI]")
    p.add_argument("--sql", default=None, metavar="QUERY",
                   help="run an analysis SQL string against the indices "
                        "(variable names are the file stems)")
    p.add_argument("--zorder-shape", default=None, metavar="SHAPE",
                   help="grid shape for REGION predicates, e.g. 8,16,32")

    p = sub.add_parser("mine", help="correlation mining on ocean-like data")
    p.add_argument("--shape", default="8,48,96")
    p.add_argument("--bins", type=int, default=16)
    p.add_argument("--value-threshold", type=float, default=0.002)
    p.add_argument("--spatial-threshold", type=float, default=0.05)
    p.add_argument("--unit-bits", type=int, default=512)
    p.add_argument("--seed", type=int, default=13)
    p.add_argument("--baseline", action="store_true",
                   help="also run the full-data miner and compare")

    p = sub.add_parser("model", help="print a modelled evaluation table")
    p.add_argument("figure", choices=["fig7", "fig8", "fig9", "fig10",
                                      "fig12", "fig13", "fig15"])

    p = sub.add_parser(
        "calibrate",
        help="measure this host's kernel rates for the performance model",
    )
    p.add_argument("--shape", default="16,32,64")
    p.add_argument("--repeats", type=int, default=3)

    p = sub.add_parser(
        "serve",
        help="serve SQL queries over a bitmap store: batch mode (--sql) "
             "or a sharded network server (--port)",
    )
    p.add_argument("root", type=Path, help="bitmap store directory")
    p.add_argument("--sql", action="append", metavar="QUERY",
                   help="batch mode: query to run (repeatable)")
    p.add_argument("--step", type=int, default=None,
                   help="time step to query (default: latest stored)")
    p.add_argument("--repeat", type=int, default=1,
                   help="run the batch N times (warm-cache demonstration)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--max-pending", type=int, default=32)
    p.add_argument("--cache-mb", type=float, default=64.0,
                   help="bitvector cache budget in MiB "
                        "(network mode: per shard)")
    p.add_argument("--zorder-shape", default=None, metavar="SHAPE",
                   help="grid shape for REGION predicates, e.g. 8,16,32")
    p.add_argument("--port", type=int, default=None,
                   help="network mode: listen on this TCP port (0 = pick)")
    p.add_argument("--host", default="127.0.0.1",
                   help="network mode: bind address")
    p.add_argument("--shards", type=int, default=1,
                   help="network mode: query worker process count")
    p.add_argument("--replicate", action="store_true",
                   help="network mode: enable hot-set replication -- "
                        "access-driven replica placement on non-owner "
                        "shards plus least-loaded adaptive routing")
    p.add_argument("--hotset-budget", type=float, default=8.0,
                   metavar="MIB",
                   help="per-shard replica slot budget in MiB "
                        "(with --replicate)")
    p.add_argument("--rebalance-interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="seconds between replica placement cycles "
                        "(with --replicate)")

    p = sub.add_parser(
        "serve-stats",
        help="fetch and print live counters from a running network server",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)

    p = sub.add_parser("store", help="inspect a bitmap time-series store")
    p.add_argument("root", type=Path)
    p.add_argument("--pairwise", metavar="VARIABLE", default=None,
                   help="walk consecutive steps with count-EMD and "
                        "conditional entropy")

    p = sub.add_parser(
        "cluster",
        help="run the cluster-scale in-situ pipeline (one process per rank)",
    )
    p.add_argument("--ranks", type=int, default=2)
    p.add_argument("--shape", default="8,6,6", help="grid, e.g. 8,6,6")
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--select", type=int, default=3)
    p.add_argument("--metric", choices=["conditional_entropy", "emd_count",
                                        "emd_spatial"],
                   default="conditional_entropy")
    p.add_argument("--partitioning", choices=["fixed", "info_volume"],
                   default="fixed")
    p.add_argument("--adaptive", action="store_true",
                   help="per-step adaptive precision binning (global "
                        "min/max allreduce) instead of the fixed heat3d "
                        "binning")
    p.add_argument("--digits", type=int, default=1,
                   help="decimal digits for --adaptive binning")
    p.add_argument("--engine", choices=["serial", "shared", "separate"],
                   default="serial", help="per-rank bitmap build engine")
    p.add_argument("--workers-per-rank", type=int, default=1)
    p.add_argument("--transport", choices=["local", "mpi"], default="local")
    p.add_argument("--out", type=Path, default=None,
                   help="store root for rank_*/step_*/ output + manifest")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="collective timeout in seconds")
    p.add_argument("--on-fault", choices=["fail", "respawn", "shrink"],
                   default="fail",
                   help="rank-fault policy: fail the run (default), "
                        "re-spawn a replacement process, or shrink onto "
                        "a surviving host (local transport only)")
    p.add_argument("--max-recoveries", type=int, default=4,
                   help="recovery budget before the run is declared lost")
    p.add_argument("--inject", action="append", default=None,
                   metavar="RANK:KIND[:COLLECTIVE[:CALL_INDEX]]",
                   help="inject a fault for demonstration, e.g. "
                        "1:die:allreduce:0 (kinds: die, raise, delay, "
                        "drop; repeatable)")
    p.add_argument("--verify", action="store_true",
                   help="also run the single-node pipeline and check the "
                        "selection matches and reassembled stores are "
                        "bit-identical (exit 1 on mismatch)")
    return parser


def _parse_shape(text: str, dims: int = 3) -> tuple[int, ...]:
    parts = tuple(int(x) for x in text.split(","))
    if len(parts) != dims:
        raise SystemExit(f"--shape needs {dims} comma-separated ints, got {text!r}")
    return parts


# ------------------------------------------------------------- subcommands
def _cmd_insitu(args: argparse.Namespace) -> int:
    from repro.insitu import InSituPipeline, OutputWriter, Sampler
    from repro.selection import get_metric
    from repro.sims import Heat3D, LuleshProxy

    shape = _parse_shape(args.shape)
    if args.workload == "heat3d":
        sim = Heat3D(shape, seed=args.seed)
        from repro.bitmap import PrecisionBinning

        binning = PrecisionBinning(19.0, 101.0, digits=1)
        metric_name = args.metric or "conditional_entropy"
    else:
        sim = LuleshProxy(shape, seed=args.seed)
        probe = LuleshProxy(shape, seed=args.seed)
        from repro.bitmap import common_binning

        payloads = [s.concatenated() for s in probe.run(args.steps)]
        binning = common_binning(payloads, bins=args.bins)
        metric_name = args.metric or "emd_spatial"

    writer = OutputWriter(args.out) if args.out else None
    sampler = (
        Sampler(args.sample_fraction, mode="random", seed=args.seed)
        if args.mode == "sampling"
        else None
    )
    pipe = InSituPipeline(
        sim, binning, get_metric(metric_name), mode=args.mode,
        sampler=sampler, writer=writer, ordering=args.ordering,
    )
    if args.workers > 1:
        if args.mode != "bitmap":
            raise SystemExit("--workers > 1 requires --mode bitmap")
        from repro.insitu import resolve_allocation

        result = pipe.run_parallel(
            args.steps,
            args.select,
            allocation=resolve_allocation(args.allocation, args.workers),
            n_workers=args.workers,
            executor=args.executor,
            queue_capacity_bytes=int(args.queue_mb * 2**20),
        )
        if result.queue_stats is not None:
            print(f"queue: {result.queue_stats}")
    else:
        result = pipe.run(args.steps, args.select)
    print(result.summary())
    print(result.memory.report())
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.bitmap import (
        BitmapIndex,
        EqualWidthBinning,
        PrecisionBinning,
        ZOrderLayout,
        save_index,
    )

    data = np.load(args.input)
    if args.zorder and data.ndim > 1:
        layout = ZOrderLayout.for_shape(data.shape)
        flat = layout.flatten(data)
    else:
        flat = data.ravel()
    if args.digits is not None:
        binning = PrecisionBinning.from_data(flat, digits=args.digits)
    else:
        binning = EqualWidthBinning.from_data(flat, args.bins)
    index = BitmapIndex.build(
        flat, binning, codec=args.codec, ordering=args.ordering
    )
    written = save_index(args.output, index)
    ratio = index.size_ratio(data.dtype.itemsize)
    ordered = f", ordering={args.ordering}" if args.ordering else ""
    print(
        f"indexed {data.size} elements into {binning.n_bins} bins{ordered}; "
        f"wrote {written} bytes ({ratio:.1%} of raw) to {args.output}"
    )
    return 0


def _parse_layout(text: str | None):
    if text is None:
        return None
    from repro.bitmap import ZOrderLayout

    return ZOrderLayout.for_shape(tuple(int(x) for x in text.split(",")))


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.bitmap import load_index
    from repro.metrics import shannon_entropy_bitmap

    for path in args.index:
        index = load_index(path)
        print(
            f"{path}: {index.n_elements} elements, {index.n_bins} bins, "
            f"{index.nbytes} bytes, entropy {shannon_entropy_bitmap(index):.4f} bits"
        )
        if args.range is not None:
            lo, hi = args.range
            hits = index.query_value_range(lo, hi)
            print(f"values in [{lo}, {hi}] (bin-granular): {hits.count()} elements")
    if args.sql is not None:
        from repro.service import Catalog, QueryService

        catalog = Catalog.from_files(args.index)
        with QueryService(
            catalog, layout=_parse_layout(args.zorder_shape)
        ) as service:
            result = service.execute(args.sql)
            print(f"{result.metric} = {result.value:.6g}")
            print(f"  {result.stats.summary()}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    import time

    from repro.bitmap import BitmapIndex, EqualWidthBinning, ZOrderLayout
    from repro.mining import correlation_mining, correlation_mining_fulldata
    from repro.sims import OceanDataGenerator

    shape = _parse_shape(args.shape)
    gen = OceanDataGenerator(shape, seed=args.seed)
    snap = gen.advance()
    layout = ZOrderLayout.for_shape(shape)
    tz = layout.flatten(snap.fields["temperature"])
    sz = layout.flatten(snap.fields["salinity"])
    bt = EqualWidthBinning.from_data(tz, args.bins)
    bs = EqualWidthBinning.from_data(sz, args.bins)
    it = BitmapIndex.build(tz, bt)
    is_ = BitmapIndex.build(sz, bs)
    kw = dict(
        value_threshold=args.value_threshold,
        spatial_threshold=args.spatial_threshold,
        unit_bits=args.unit_bits,
    )
    t0 = time.perf_counter()
    result = correlation_mining(it, is_, **kw)
    elapsed = time.perf_counter() - t0
    print(f"bitmap mining: {result} in {elapsed:.3f}s")
    for hit in result.value_hits[:10]:
        print(
            f"  value subset A={bt.bin_label(hit.a_bin)} x "
            f"B={bs.bin_label(hit.b_bin)}: joint={hit.joint_count} "
            f"MI={hit.mutual_information:.4f}"
        )
    if args.baseline:
        t0 = time.perf_counter()
        fd = correlation_mining_fulldata(tz, sz, bt, bs, **kw)
        t_fd = time.perf_counter() - t0
        same = len(fd.value_hits) == len(result.value_hits)
        print(
            f"full-data baseline: {t_fd:.3f}s "
            f"(speedup {t_fd / max(elapsed, 1e-9):.2f}x, hits equal: {same})"
        )
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from repro.perfmodel import (
        MIC60,
        OAKLEY_NODE,
        XEON32,
        ClusterScenario,
        InSituScenario,
        model_sampling,
        model_bitmaps,
        scalability_series,
        speedup_over_cores,
        sweep_allocations,
    )
    from repro.perfmodel.rates import (
        HEAT3D_CLUSTER_RATES,
        HEAT3D_RATES,
        LULESH_RATES,
    )

    if args.figure in ("fig7", "fig8", "fig9", "fig10"):
        configs = {
            "fig7": (XEON32, HEAT3D_RATES, 800e6, [1, 2, 4, 8, 16, 32]),
            "fig8": (MIC60, HEAT3D_RATES, 200e6, [1, 4, 16, 56]),
            "fig9": (XEON32, LULESH_RATES, 6.14e9 / 8, [1, 4, 16, 32]),
            "fig10": (MIC60, LULESH_RATES, 0.768e9 / 8, [1, 16, 56]),
        }
        machine, rates, elems, cores = configs[args.figure]
        sc = InSituScenario(machine, rates, elems)
        print(f"{args.figure}: {rates.name} on {machine.name}")
        for c, full, bm, sp in speedup_over_cores(sc, cores):
            print(
                f"  cores={c:3d} fulldata={full.total:9.1f}s "
                f"bitmaps={bm.total:9.1f}s speedup={sp:.2f}x"
            )
    elif args.figure == "fig12":
        sc = InSituScenario(XEON32.with_cores(28), HEAT3D_RATES, 800e6)
        print("fig12a: heat3d on 28-core xeon")
        for o in sweep_allocations(sc, stride=3):
            print(f"  {o.label:>8s} {o.total_seconds:9.1f}s")
    elif args.figure == "fig13":
        base = InSituScenario(OAKLEY_NODE, HEAT3D_CLUSTER_RATES, 800e6)
        for row in scalability_series(ClusterScenario(OAKLEY_NODE, base),
                                      [1, 2, 4, 8, 16, 32]):
            print(
                f"  nodes={int(row['nodes']):3d} "
                f"local {row['speedup_local']:.2f}x  "
                f"remote {row['speedup_remote']:.2f}x"
            )
    elif args.figure == "fig15":
        sc = InSituScenario(XEON32, HEAT3D_RATES, 800e6)
        bm = model_bitmaps(sc, 32)
        print(f"  bitmaps    {bm.total:9.1f}s")
        for frac in (0.30, 0.15, 0.05, 0.01):
            s = model_sampling(sc, 32, frac)
            print(f"  sample-{frac:4.0%} {s.total:9.1f}s")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.perfmodel import measure_rates
    from repro.perfmodel.rates import HEAT3D_RATES

    shape = _parse_shape(args.shape)
    rates = measure_rates(shape=shape, repeats=args.repeats)
    print(f"measured per-element rates on this host (Heat3D {shape}):")
    for name in ("simulate", "bitmap_gen", "select_full", "select_bitmap", "sample"):
        measured = getattr(rates, name)
        default = getattr(HEAT3D_RATES, name)
        print(f"  {name:14s} {measured:.3e} s/elem  (model default {default:.3e})")
    print(f"  {'size_fraction':14s} {rates.bitmap_size_fraction:.3f}       "
          f"(model default {HEAT3D_RATES.bitmap_size_fraction:.3f})")
    print("\nuse programmatically:  InSituScenario(machine, measure_rates(), elems)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.port is not None:
        return _cmd_serve_network(args)
    if not args.sql:
        print("serve: batch mode needs --sql (or use --port for the "
              "network server)", file=sys.stderr)
        return 2
    from repro.service import QueryService

    with QueryService(
        args.root,
        cache_bytes=int(args.cache_mb * 2**20),
        max_workers=args.workers,
        max_pending=args.max_pending,
        layout=_parse_layout(args.zorder_shape),
    ) as service:
        print(f"serving {service.catalog!r}")
        for round_id in range(max(1, args.repeat)):
            label = "cold" if round_id == 0 else f"warm#{round_id}"
            results = service.execute_many(args.sql, step=args.step)
            for result in results:
                print(
                    f"[{label}] step={result.step} {result.metric} = "
                    f"{result.value:.6g}  ({result.text})"
                )
                print(f"  {result.stats.summary()}")
        print(f"cache: {service.cache.stats()!r}")
        stats = service.service_stats()
        print(
            f"served={stats['served']} rejected={stats['rejected']} "
            f"file_reads={service.file_reads()} "
            f"file_bytes_read={service.file_bytes_read()}"
        )
    return 0


def _cmd_serve_network(args: argparse.Namespace) -> int:
    from repro.service import QueryServer

    server = QueryServer(
        args.root,
        shards=args.shards,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        cache_bytes=int(args.cache_mb * 2**20),
        layout=_parse_layout(args.zorder_shape),
        replicate=args.replicate,
        hotset_budget=int(args.hotset_budget * 2**20),
        rebalance_interval=args.rebalance_interval,
    )
    try:
        server.launch()
        replication = (
            f" replicate(budget={args.hotset_budget:g}MiB "
            f"every {args.rebalance_interval:g}s)"
            if args.replicate
            else ""
        )
        print(
            f"serving {server.catalog!r}\n"
            f"listening on {server.host}:{server.port} "
            f"shards={args.shards} max_pending={server.max_pending}"
            f"{replication}",
            flush=True,
        )
        try:
            while True:
                server._thread.join(timeout=1.0)
                if not server._thread.is_alive():
                    break
        except KeyboardInterrupt:
            print("\nshutting down ...", flush=True)
        stats = server.server_stats()
        print(
            f"served={stats['served']} rejected={stats['rejected']} "
            f"errors={stats['errors']} connections={stats['connections']}"
        )
    finally:
        server.close()
    return 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    """Fetch the ``stats`` frame from a live server and pretty-print it."""
    from repro.service import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        stats = client.stats()
    server = stats["server"]
    print(
        f"server {args.host}:{args.port}: served={server['served']} "
        f"rejected={server['rejected']} errors={server['errors']} "
        f"pending={server['pending']}/{server['max_pending']} "
        f"connections={server['connections']}"
    )
    replication = server.get("replication", {})
    if replication.get("enabled"):
        last = replication.get("last_cycle") or {}
        print(
            f"replication: epoch={replication['epoch']} "
            f"cycles={replication['cycles']} "
            f"routes={len(replication.get('routes', {}))} "
            f"last(installed={last.get('installed', 0)} "
            f"dropped={last.get('dropped', 0)} "
            f"hot_keys={last.get('hot_keys', 0)})"
        )
        for rank, holders in sorted(replication.get("routes", {}).items()):
            print(f"  route {rank} -> shards {holders}")
    else:
        print("replication: disabled")
    dispatch = server.get("dispatch", [])
    respawns = server.get("respawns", [])
    for shard in stats.get("shards", []):
        cache = shard["cache"]
        hotset = shard.get("hotset", {})
        replicas = hotset.get("replicas", {})
        sid = shard["shard"]
        print(
            f"shard {sid}: dispatched="
            f"{dispatch[sid] if sid < len(dispatch) else '?'} "
            f"respawns={respawns[sid] if sid < len(respawns) else '?'} "
            f"served={shard['service']['served']} "
            f"cache_hit_rate={cache['hit_rate']:.1%} "
            f"cached={cache['entries']} entries/{cache['bytes_cached']}B "
            f"replicas={len(replicas.get('keys', []))} "
            f"({replicas.get('bytes', 0)}B, hits={replicas.get('hits', 0)}) "
            f"hot_keys={len(hotset.get('access', {}).get('keys', []))}"
        )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.io.timeseries import BitmapStore
    from repro.metrics import conditional_entropy_bitmap, emd_count_bitmap

    store = BitmapStore(args.root)
    steps = store.steps()
    print(f"{args.root}: {len(steps)} steps, "
          f"{store.total_bytes() / 2**20:.2f} MiB of bitmaps")
    for key, value in store.attrs.items():
        print(f"  {key} = {value}")
    for step in steps:
        names = ", ".join(store.variables(step))
        print(f"  step {step:5d}: {names}")
    if args.pairwise is not None:
        print(f"\npairwise walk over {args.pairwise!r}:")
        emd_rows = store.pairwise_metric(args.pairwise, emd_count_bitmap)
        ce_rows = store.pairwise_metric(args.pairwise, conditional_entropy_bitmap)
        for (a, b, emd), (_, _, ce) in zip(emd_rows, ce_rows):
            print(f"  {a:5d} -> {b:5d}:  EMD={emd:12.1f}  H(next|prev)={ce:.4f}")
    return 0


def _parse_fault_specs(specs: list[str] | None):
    """``RANK:KIND[:COLLECTIVE[:CALL_INDEX]]`` strings -> FaultPlan tuple."""
    if not specs:
        return None
    from repro.cluster import FaultPlan

    plans = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise SystemExit(
                f"--inject needs RANK:KIND[:COLLECTIVE[:CALL_INDEX]], "
                f"got {spec!r}"
            )
        try:
            rank = int(parts[0])
            collective = parts[2] if len(parts) > 2 and parts[2] else None
            call_index = int(parts[3]) if len(parts) > 3 else 0
            plans.append(
                FaultPlan(rank, parts[1], collective=collective,
                          call_index=call_index)
            )
        except ValueError as exc:
            raise SystemExit(f"bad --inject spec {spec!r}: {exc}") from exc
    return tuple(plans)


def _cmd_cluster(args: argparse.Namespace) -> int:
    import functools
    import tempfile

    from repro.bitmap import PrecisionBinning
    from repro.cluster import ClusterFailed, ClusterSpec, run_cluster
    from repro.sims import DecomposedHeat3D

    shape = _parse_shape(args.shape)
    if args.ranks < 1:
        raise SystemExit("--ranks must be >= 1")
    fault = _parse_fault_specs(args.inject)
    factory = functools.partial(
        DecomposedHeat3D, shape, n_ranks=args.ranks, seed=args.seed
    )
    binning = None if args.adaptive else PrecisionBinning(19.0, 101.0, digits=1)
    out = args.out
    tmp = None
    if out is None and args.verify:
        tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        out = Path(tmp.name) / "store"
    try:
        spec = ClusterSpec(
            factory,
            args.steps,
            args.select,
            metric=args.metric,
            binning=binning,
            adaptive_digits=args.digits,
            partitioning=args.partitioning,
            out=str(out) if out is not None else None,
            engine=args.engine,
            workers_per_rank=args.workers_per_rank,
            on_fault=args.on_fault,
            max_recoveries=args.max_recoveries,
        )
        try:
            result = run_cluster(
                spec,
                args.ranks,
                transport=args.transport,
                collective_timeout=args.timeout,
                fault=fault,
            )
        except ClusterFailed as exc:
            raise SystemExit(f"cluster failed: {exc}") from exc
        if args.transport == "mpi" and result.reports[0].rank != 0:
            return 0  # non-root MPI ranks stay quiet
        selection = result.selection
        print(
            f"cluster: {args.ranks} ranks over {shape}, "
            f"{args.steps} steps, metric={selection.metric_name}"
        )
        print(f"  selected steps: {result.selected_steps}")
        print(f"  scores: {[f'{s:.4f}' for s in selection.scores[1:]]}")
        for report in result.reports:
            lo, hi = report.flat_bounds
            print(
                f"  rank {report.rank}: rows {report.row_bounds}, "
                f"{hi - lo} elements, {report.nbytes} bytes written"
            )
        if result.manifest_path is not None:
            print(f"  manifest: {result.manifest_path}")
        if result.recovery:
            total = sum(e.elapsed_s for e in result.recovery)
            print(
                f"  recovery: {len(result.recovery)} event(s), "
                f"{total:.2f}s total"
            )
            for event in result.recovery:
                where = (
                    f" onto rank {event.host_rank}"
                    if event.host_rank is not None
                    else ""
                )
                print(
                    f"    rank {event.rank} {event.reason} after "
                    f"{event.at_collective} collective(s) -> {event.mode}"
                    f"{where} (incarnation {event.incarnation}, "
                    f"{event.elapsed_s:.2f}s, "
                    f"{'ok' if event.recovered else 'FAILED'})"
                )
        elif args.on_fault != "fail":
            print(f"  recovery: 0 events (policy {args.on_fault})")
        if args.verify:
            return _verify_cluster(args, factory, binning, result, out)
        return 0
    finally:
        if tmp is not None:
            tmp.cleanup()


def _verify_cluster(args, factory, binning, result, out) -> int:
    """Differential check: cluster run vs. single-node reference."""
    import tempfile

    from repro.bitmap import save_index
    from repro.cluster import assemble_global_index
    from repro.insitu import InSituPipeline, OutputWriter
    from repro.selection import get_metric

    with tempfile.TemporaryDirectory(prefix="repro-serial-") as td:
        serial_out = Path(td) / "serial"
        pipe = InSituPipeline(
            factory(),
            binning,
            get_metric(args.metric),
            writer=OutputWriter(serial_out),
            partitioning=args.partitioning,
            adaptive_digits=args.digits,
        )
        ref = pipe.run(args.steps, args.select)
        ok = result.selection.selected == ref.selection.selected
        print(
            f"  verify selection: cluster={result.selected_steps} "
            f"serial={[s for s in ref.selection.selected]} "
            f"{'MATCH' if ok else 'MISMATCH'}"
        )
        if out is not None:
            for step in result.selected_steps:
                assembled = assemble_global_index(out, step)
                spliced = Path(td) / "assembled.rbmp"
                save_index(spliced, assembled)
                serial_file = serial_out / f"step_{step:05d}" / "payload.rbmp"
                same = spliced.read_bytes() == serial_file.read_bytes()
                ok = ok and same
                print(
                    f"  verify step {step}: reassembled store "
                    f"{'bit-identical' if same else 'DIFFERS'}"
                )
        if not ok:
            print("  VERIFICATION FAILED")
            return 1
        print("  verification passed")
        return 0


_HANDLERS = {
    "insitu": _cmd_insitu,
    "index": _cmd_index,
    "query": _cmd_query,
    "mine": _cmd_mine,
    "model": _cmd_model,
    "calibrate": _cmd_calibrate,
    "serve": _cmd_serve,
    "serve-stats": _cmd_serve_stats,
    "store": _cmd_store,
    "cluster": _cmd_cluster,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
