"""Additional distribution divergences from the cited literature.

The information-theory toolkit of §3.1 cites Cover & Thomas [8]; beyond
the four metrics the paper's selector uses, analyses in the surrounding
literature (Biswas et al. [5], Wang et al. [35]) lean on:

* **KL divergence** ``D(P||Q)`` -- asymmetric distribution distance;
* **Jensen-Shannon divergence** -- its bounded, symmetric cousin;
* **normalised mutual information** -- MI scaled to [0, 1] for comparing
  variable pairs with different entropies (Biswas et al.'s grouping
  criterion).

All are distribution-level (shared by both backends) with convenience
wrappers over bitmap indices -- maintaining the repository invariant that
every metric is computable from bitmaps alone.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.index import BitmapIndex
from repro.metrics.bitmap_metrics import joint_counts
from repro.metrics.entropy import (
    mutual_information_from_joint,
    shannon_entropy_from_counts,
)
from repro.metrics.histogram import normalize


def kl_divergence_from_counts(
    counts_p: np.ndarray, counts_q: np.ndarray
) -> float:
    """``D(P || Q)`` in bits; infinite where P has mass but Q does not."""
    p = normalize(counts_p)
    q = normalize(counts_q)
    if p.shape != q.shape:
        raise ValueError(f"histograms must align: {p.shape} != {q.shape}")
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float((p[mask] * np.log2(p[mask] / q[mask])).sum())


def js_divergence_from_counts(
    counts_p: np.ndarray, counts_q: np.ndarray
) -> float:
    """Jensen-Shannon divergence in bits; symmetric, bounded by 1."""
    p = normalize(counts_p)
    q = normalize(counts_q)
    if p.shape != q.shape:
        raise ValueError(f"histograms must align: {p.shape} != {q.shape}")
    m = (p + q) / 2.0

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float((a[mask] * np.log2(a[mask] / b[mask])).sum())

    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)


def normalized_mutual_information_from_joint(joint: np.ndarray) -> float:
    """``I(A;B) / sqrt(H(A) H(B))`` in [0, 1]; 0 when either is constant."""
    joint = np.asarray(joint, dtype=np.float64)
    h_a = shannon_entropy_from_counts(joint.sum(axis=1))
    h_b = shannon_entropy_from_counts(joint.sum(axis=0))
    if h_a <= 0 or h_b <= 0:
        return 0.0
    return mutual_information_from_joint(joint) / float(np.sqrt(h_a * h_b))


# ------------------------------------------------------------ bitmap layer
def kl_divergence_bitmap(index_p: BitmapIndex, index_q: BitmapIndex) -> float:
    """KL between two indexed value distributions (same binning scale)."""
    if index_p.n_bins != index_q.n_bins:
        raise ValueError(
            f"KL needs a shared binning scale: {index_p.n_bins} != {index_q.n_bins}"
        )
    return kl_divergence_from_counts(index_p.bin_counts(), index_q.bin_counts())


def js_divergence_bitmap(index_p: BitmapIndex, index_q: BitmapIndex) -> float:
    """JS divergence between two indexed value distributions."""
    if index_p.n_bins != index_q.n_bins:
        raise ValueError(
            f"JS needs a shared binning scale: {index_p.n_bins} != {index_q.n_bins}"
        )
    return js_divergence_from_counts(index_p.bin_counts(), index_q.bin_counts())


def normalized_mutual_information_bitmap(
    index_a: BitmapIndex, index_b: BitmapIndex
) -> float:
    """NMI of two aligned variables, from the AND-derived joint."""
    return normalized_mutual_information_from_joint(joint_counts(index_a, index_b))
