"""Analysis metrics computed *purely from bitmaps* -- §3.2 of the paper.

No function in this module ever touches raw data; everything is popcounts
and compressed bitwise operations on :class:`~repro.bitmap.index.BitmapIndex`
objects whose raw arrays have long been discarded:

* individual value distributions -- each bin's popcount (free at build time);
* joint value distributions -- ``popcount(AND)`` over bin pairs;
* count-based EMD -- differences of bin popcounts;
* spatial EMD -- ``popcount(XOR)`` per aligned bin pair;
* Shannon entropy / mutual information / conditional entropy -- the shared
  distribution-level formulas of :mod:`repro.metrics.entropy` applied to
  bitmap-derived counts.

At equal binning every value equals its full-data counterpart exactly
(property-tested) -- the paper's central "no accuracy loss" claim.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import (
    STREAMING_COUNT_RATIO_THRESHOLD,
    and_count_streaming,
    xor_count_streaming,
)
from repro.metrics.emd import emd_from_counts, emd_from_diffs
from repro.metrics.entropy import (
    conditional_entropy_from_joint,
    mutual_information_from_joint,
    shannon_entropy_from_counts,
)
from repro.util.bits import popcount_u32


def _check_aligned(index_a: BitmapIndex, index_b: BitmapIndex) -> None:
    if index_a.n_elements != index_b.n_elements:
        raise ValueError(
            "indices cover different element sets: "
            f"{index_a.n_elements} != {index_b.n_elements}"
        )


def _group_matrix(index: BitmapIndex) -> np.ndarray:
    """The index's memoised (n_bins, n_groups) decompressed matrix.

    Delegates to :meth:`BitmapIndex.group_matrix`, which builds it at most
    once per index -- the dense-path working set shared by every analysis.
    """
    return index.group_matrix()


def _joint_counts_dense(index_a: BitmapIndex, index_b: BitmapIndex) -> np.ndarray:
    """Dense route: row-wise vectorised ANDs over the group matrices."""
    ga = _group_matrix(index_a)
    gb = _group_matrix(index_b)
    out = np.zeros((index_a.n_bins, index_b.n_bins), dtype=np.int64)
    counts_b = index_b.bin_counts()
    nonempty_b = counts_b > 0
    for i in range(index_a.n_bins):
        row = ga[i]
        # Sparsity cut: bin i only intersects B inside its own nonzero
        # groups (each element lives in exactly one bin, so rows are
        # sparse whenever bins outnumber a handful) -- the same effect WAH
        # fill-skipping gives the paper's word-level ANDs.
        cols = np.flatnonzero(row)
        if cols.size == 0:
            continue
        if cols.size < row.size // 2:
            sub = row[cols][None, :] & gb[:, cols][nonempty_b]
        else:
            sub = row[None, :] & gb[nonempty_b]
        out[i, nonempty_b] = popcount_u32(sub).sum(axis=1, dtype=np.int64)
    return out


def _joint_counts_streaming(index_a: BitmapIndex, index_b: BitmapIndex) -> np.ndarray:
    """Compressed route: m x n run-merge count kernels, no decompression."""
    out = np.zeros((index_a.n_bins, index_b.n_bins), dtype=np.int64)
    counts_a = index_a.bin_counts()
    counts_b = index_b.bin_counts()
    nonempty_j = np.flatnonzero(counts_b)
    for i in range(index_a.n_bins):
        if counts_a[i] == 0:
            continue
        va = index_a.bitvectors[i]
        for j in nonempty_j:
            out[i, j] = and_count_streaming(va, index_b.bitvectors[j])
    return out


def joint_counts(
    index_a: BitmapIndex, index_b: BitmapIndex, *, threshold: float | None = None
) -> np.ndarray:
    """Joint histogram ``J[i, j] = popcount(A_i AND B_j)`` -- Figure 5.

    The bitmap replacement for scanning both arrays to build the joint
    value distribution, dispatched by density: when both indices compress
    well the ``m x n`` ANDs run entirely in the compressed domain
    (run-merge count kernels); otherwise each is a vectorised row op over
    the memoised group matrices.  Both routes return identical counts.
    """
    _check_aligned(index_a, index_b)
    t = STREAMING_COUNT_RATIO_THRESHOLD if threshold is None else threshold
    if index_a.compression_ratio() <= t and index_b.compression_ratio() <= t:
        return _joint_counts_streaming(index_a, index_b)
    return _joint_counts_dense(index_a, index_b)


def shannon_entropy_bitmap(index: BitmapIndex) -> float:
    """Equation 4 from bin popcounts (the free value distribution)."""
    return shannon_entropy_from_counts(index.bin_counts())


def mutual_information_bitmap(index_a: BitmapIndex, index_b: BitmapIndex) -> float:
    """Equation 5 from the AND-derived joint distribution."""
    return mutual_information_from_joint(joint_counts(index_a, index_b))


def conditional_entropy_bitmap(index_a: BitmapIndex, index_b: BitmapIndex) -> float:
    """Equation 6, ``H(A|B)``, computed entirely from bitmaps (Figure 5)."""
    return conditional_entropy_from_joint(joint_counts(index_a, index_b))


def emd_count_bitmap(index_a: BitmapIndex, index_b: BitmapIndex) -> float:
    """Count-based EMD: per-bin popcount differences, then Equation 3.

    Requires both indices to share one binning scale (same bin count), as
    the paper requires for time-steps under comparison.
    """
    _check_aligned(index_a, index_b)
    if index_a.n_bins != index_b.n_bins:
        raise ValueError(
            f"EMD needs a shared binning scale: {index_a.n_bins} != {index_b.n_bins} bins"
        )
    return emd_from_counts(index_a.bin_counts(), index_b.bin_counts())


def spatial_bin_differences_bitmap(
    index_a: BitmapIndex, index_b: BitmapIndex, *, threshold: float | None = None
) -> np.ndarray:
    """Per-bin ``popcount(A_j XOR B_j)`` -- Figure 4's m XOR operations.

    Density-dispatched like :func:`joint_counts`: compressible index pairs
    run the m XORs as run-merge count kernels; dense pairs XOR the
    memoised group matrices row-wise.
    """
    _check_aligned(index_a, index_b)
    if index_a.n_bins != index_b.n_bins:
        raise ValueError(
            f"EMD needs a shared binning scale: {index_a.n_bins} != {index_b.n_bins} bins"
        )
    t = STREAMING_COUNT_RATIO_THRESHOLD if threshold is None else threshold
    if index_a.compression_ratio() <= t and index_b.compression_ratio() <= t:
        return np.asarray(
            [
                xor_count_streaming(va, vb)
                for va, vb in zip(index_a.bitvectors, index_b.bitvectors)
            ],
            dtype=np.int64,
        )
    ga = _group_matrix(index_a)
    gb = _group_matrix(index_b)
    return popcount_u32(ga ^ gb).sum(axis=1, dtype=np.int64)


def emd_spatial_bitmap(index_a: BitmapIndex, index_b: BitmapIndex) -> float:
    """Spatial EMD from XOR popcounts (Figure 4), Equation 3 accumulation."""
    return emd_from_diffs(spatial_bin_differences_bitmap(index_a, index_b))
