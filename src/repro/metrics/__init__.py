"""Correlation metrics (S8-S9): full-data and bitmap-only implementations.

Equations 3-6 of the paper, each with two back ends that agree exactly at
equal binning: a raw-data scan (the *full data* baseline) and a
popcount/bitwise path over :class:`~repro.bitmap.index.BitmapIndex`.
"""

from repro.metrics.bitmap_metrics import (
    conditional_entropy_bitmap,
    emd_count_bitmap,
    emd_spatial_bitmap,
    joint_counts,
    mutual_information_bitmap,
    shannon_entropy_bitmap,
    spatial_bin_differences_bitmap,
)
from repro.metrics.divergences import (
    js_divergence_bitmap,
    js_divergence_from_counts,
    kl_divergence_bitmap,
    kl_divergence_from_counts,
    normalized_mutual_information_bitmap,
    normalized_mutual_information_from_joint,
)
from repro.metrics.emd import (
    emd_count_based,
    emd_from_counts,
    emd_from_diffs,
    emd_spatial,
    spatial_bin_differences,
)
from repro.metrics.entropy import (
    conditional_entropy,
    conditional_entropy_from_joint,
    mi_term_from_cell,
    mutual_information,
    mutual_information_from_joint,
    shannon_entropy,
    shannon_entropy_from_counts,
)
from repro.metrics.histogram import (
    bin_membership_masks,
    histogram,
    joint_histogram,
    normalize,
)

__all__ = [
    "js_divergence_bitmap",
    "js_divergence_from_counts",
    "kl_divergence_bitmap",
    "kl_divergence_from_counts",
    "normalized_mutual_information_bitmap",
    "normalized_mutual_information_from_joint",
    "conditional_entropy_bitmap",
    "emd_count_bitmap",
    "emd_spatial_bitmap",
    "joint_counts",
    "mutual_information_bitmap",
    "shannon_entropy_bitmap",
    "spatial_bin_differences_bitmap",
    "emd_count_based",
    "emd_from_counts",
    "emd_from_diffs",
    "emd_spatial",
    "spatial_bin_differences",
    "conditional_entropy",
    "conditional_entropy_from_joint",
    "mi_term_from_cell",
    "mutual_information",
    "mutual_information_from_joint",
    "shannon_entropy",
    "shannon_entropy_from_counts",
    "histogram",
    "joint_histogram",
    "normalize",
    "bin_membership_masks",
]
