"""Information-theory metrics: Equations 4-6 of the paper.

Two API layers:

* distribution-level (``*_from_counts`` / ``*_from_joint``) -- pure
  functions of (joint) histograms, shared verbatim by the full-data and
  bitmap paths, which is *why* the two paths agree exactly;
* data-level (``shannon_entropy`` etc.) -- the full-data method: scan the
  raw arrays, bin, then call the distribution-level function.

All entropies are in bits (``log2``), matching Equation 4; mutual
information uses the same base so that Equation 6
(``H(A|B) = H(A) - I(A;B)``) is internally consistent.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.binning import Binning
from repro.metrics.histogram import histogram, joint_histogram, normalize


# ------------------------------------------------------- from distributions
def shannon_entropy_from_counts(counts: np.ndarray) -> float:
    """Equation 4: ``H = -sum_j P(x_j) log2 P(x_j)``."""
    p = normalize(counts)
    nz = p[p > 0]
    return float(-(nz * np.log2(nz)).sum()) if nz.size else 0.0


def mutual_information_from_joint(joint: np.ndarray) -> float:
    """Equation 5 from the joint histogram (marginals are its row/col sums)."""
    joint = np.asarray(joint, dtype=np.float64)
    total = joint.sum()
    if total <= 0:
        return 0.0
    p_ab = joint / total
    p_a = p_ab.sum(axis=1, keepdims=True)
    p_b = p_ab.sum(axis=0, keepdims=True)
    mask = p_ab > 0
    ratio = np.zeros_like(p_ab)
    ratio[mask] = p_ab[mask] / (p_a * p_b + 0.0)[mask]
    out = np.zeros_like(p_ab)
    out[mask] = p_ab[mask] * np.log2(ratio[mask])
    return float(out.sum())


def conditional_entropy_from_joint(joint: np.ndarray) -> float:
    """Equation 6: ``H(A|B) = H(A) - I(A;B)`` from the joint histogram.

    Row marginal = A's distribution, so ``H(A)`` comes from ``joint.sum(1)``.
    """
    joint = np.asarray(joint, dtype=np.float64)
    h_a = shannon_entropy_from_counts(joint.sum(axis=1))
    return h_a - mutual_information_from_joint(joint)


def mi_term_from_cell(
    joint_count: float, row_count: float, col_count: float, total: float
) -> float:
    """One ``I(A_j; B_k)`` term of Equation 7 (used by correlation mining).

    Non-negative terms are summed by the miner; this exposes a single cell
    so pruning can evaluate candidate value subsets individually.
    """
    if joint_count <= 0 or total <= 0:
        return 0.0
    p_ab = joint_count / total
    p_a = row_count / total
    p_b = col_count / total
    return float(p_ab * np.log2(p_ab / (p_a * p_b)))


# ----------------------------------------------------------- from raw data
def shannon_entropy(data: np.ndarray, binning: Binning) -> float:
    """Full-data Shannon entropy: scan + bin + Equation 4."""
    return shannon_entropy_from_counts(histogram(data, binning))


def mutual_information(
    a: np.ndarray, b: np.ndarray, binning_a: Binning, binning_b: Binning
) -> float:
    """Full-data mutual information of two aligned arrays."""
    return mutual_information_from_joint(joint_histogram(a, b, binning_a, binning_b))


def conditional_entropy(
    a: np.ndarray, b: np.ndarray, binning_a: Binning, binning_b: Binning
) -> float:
    """Full-data ``H(A|B)``: the paper's time-step selection metric."""
    return conditional_entropy_from_joint(joint_histogram(a, b, binning_a, binning_b))
