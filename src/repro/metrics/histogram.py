"""Full-data histograms: the baseline path the paper compares against.

The *full data* method of §3 must scan the raw arrays to bin them and to
build individual/joint value distributions; these functions are that scan,
numpy-vectorised.  The bitmap path in
:mod:`repro.metrics.bitmap_metrics` must produce *identical* counts for the
same binning -- that equality is the paper's exactness claim and is enforced
by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.binning import Binning


def histogram(data: np.ndarray, binning: Binning) -> np.ndarray:
    """Per-bin element counts of ``data`` under ``binning`` (``int64``)."""
    ids = binning.assign_checked(np.asarray(data).ravel())
    return np.bincount(ids, minlength=binning.n_bins).astype(np.int64)


def joint_histogram(
    a: np.ndarray,
    b: np.ndarray,
    binning_a: Binning,
    binning_b: Binning,
) -> np.ndarray:
    """Joint counts ``J[i, j] = #{k : a_k in bin i and b_k in bin j}``.

    ``a`` and ``b`` must be position-aligned (same element order), as in the
    paper's joint distribution of two time-steps or two variables.
    """
    fa = np.asarray(a).ravel()
    fb = np.asarray(b).ravel()
    if fa.size != fb.size:
        raise ValueError(f"arrays must align: {fa.size} != {fb.size} elements")
    ia = binning_a.assign_checked(fa)
    ib = binning_b.assign_checked(fb)
    nb = binning_b.n_bins
    key = ia * nb + ib
    counts = np.bincount(key, minlength=binning_a.n_bins * nb)
    return counts.reshape(binning_a.n_bins, nb).astype(np.int64)


def normalize(counts: np.ndarray) -> np.ndarray:
    """Counts -> probability distribution (all-zero input stays zero)."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    return counts / total if total > 0 else counts


def bin_membership_masks(data: np.ndarray, binning: Binning) -> np.ndarray:
    """Boolean matrix ``M[bin, position]`` -- the uncompressed bitmap.

    Used only by full-data *spatial* comparisons (and as a test oracle);
    this is exactly the n x m bits the paper avoids materialising.
    """
    ids = binning.assign_checked(np.asarray(data).ravel())
    return ids[None, :] == np.arange(binning.n_bins, dtype=np.int64)[:, None]
