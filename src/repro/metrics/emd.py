"""Earth Mover's Distance -- Equation 3 and §3.2 of the paper.

The paper defines EMD over the *binned* representations of two time-steps
sharing one binning scale, with two variants of the per-bin difference
``Diff``:

* **count-based** -- ``Diff(j)`` is the (signed) difference of bin ``j``'s
  element counts; the cumulative sums ``CFP(j)`` then reproduce the classic
  1-D EMD between the two value distributions.  We accumulate ``|CFP(j)|``
  so the result is a true distance.

* **spatial** -- ``Diff(j)`` is the number of *positions* whose membership
  in bin ``j`` differs between the two time-steps ("for each bin pair ...
  find if there is a match at the same position").  Each ``Diff(j)`` is
  non-negative, and EMD is the cumulative-sum-of-cumulative-sums of
  Equation 3.

Both variants are implemented against raw data here; the bitmap
equivalents (popcount differences / XOR popcounts, §3.2) live in
:mod:`repro.metrics.bitmap_metrics` and agree exactly.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.binning import Binning
from repro.metrics.histogram import histogram


def emd_from_counts(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """Count-based EMD from two aligned histograms (Equation 3)."""
    counts_a = np.asarray(counts_a, dtype=np.float64)
    counts_b = np.asarray(counts_b, dtype=np.float64)
    if counts_a.shape != counts_b.shape:
        raise ValueError(f"histograms must align: {counts_a.shape} != {counts_b.shape}")
    cfp = np.cumsum(counts_a - counts_b)
    return float(np.abs(cfp).sum())


def emd_from_diffs(diffs: np.ndarray) -> float:
    """Equation 3 over non-negative per-bin differences (spatial variant).

    ``CFP(j) = CFP(j-1) + Diff(j)`` and ``EMD = sum_j CFP(j)``.
    """
    diffs = np.asarray(diffs, dtype=np.float64)
    if np.any(diffs < 0):
        raise ValueError("spatial differences must be non-negative")
    return float(np.cumsum(diffs).sum())


def emd_count_based(a: np.ndarray, b: np.ndarray, binning: Binning) -> float:
    """Full-data count-based EMD of two time-steps under a shared binning."""
    return emd_from_counts(histogram(a, binning), histogram(b, binning))


def spatial_bin_differences(
    a: np.ndarray, b: np.ndarray, binning: Binning
) -> np.ndarray:
    """Per-bin count of positions whose bin-``j`` membership differs.

    The full-data method: bin both arrays and compare membership
    element-by-element for every bin ("scan each data element inside one
    bin and find if there is a match at the same position of another bin").
    Equals ``popcount(bitvector_a[j] XOR bitvector_b[j])`` on the bitmap
    path.
    """
    fa = np.asarray(a).ravel()
    fb = np.asarray(b).ravel()
    if fa.size != fb.size:
        raise ValueError(f"arrays must align: {fa.size} != {fb.size} elements")
    ia = binning.assign_checked(fa)
    ib = binning.assign_checked(fb)
    differs = ia != ib
    # A differing position contributes to *both* of its bins (1 XOR 0 on
    # each side), which one bincount per side captures.
    n = binning.n_bins
    diff_a = np.bincount(ia[differs], minlength=n)
    diff_b = np.bincount(ib[differs], minlength=n)
    return (diff_a + diff_b).astype(np.int64)


def emd_spatial(a: np.ndarray, b: np.ndarray, binning: Binning) -> float:
    """Full-data spatial EMD of two aligned time-steps."""
    return emd_from_diffs(spatial_bin_differences(a, b, binning))
