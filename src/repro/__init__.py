"""repro: reproduction of "In-Situ Bitmaps Generation and Efficient Data
Analysis based on Bitmaps" (Su, Wang, Agrawal -- HPDC 2015).

The package builds the paper's full stack from scratch:

* :mod:`repro.bitmap` -- WAH-compressed bitmap indices with the paper's
  exact word layout, Algorithm 1's single-scan in-situ builder, compressed
  bitwise operations, multi-level indices, Z-order layout, on-disk format;
* :mod:`repro.metrics` -- Equations 3-6 (EMD, Shannon entropy, mutual
  information, conditional entropy) with exact-at-equal-binning full-data
  and bitmap-only back ends;
* :mod:`repro.selection` -- greedy (Wang et al.) and DP (Tong et al.)
  time-step selection over either back end;
* :mod:`repro.mining` -- Algorithm 2 correlation mining, multi-level
  top-down pruning, and the exhaustive full-data baseline;
* :mod:`repro.analysis` -- subset queries, approximate aggregation, CFP
  accuracy curves;
* :mod:`repro.sims` -- Heat3D, a LULESH-like hydro proxy, and a POP-like
  ocean data generator (the paper's three workloads);
* :mod:`repro.insitu` -- the reduce-select-write pipeline, Shared/Separate
  core allocation, bounded data queue, memory accounting, sampling
  baseline;
* :mod:`repro.perfmodel` -- calibrated machine/cluster performance models
  regenerating the hardware axes of Figures 7-13;
* :mod:`repro.io` -- dataset container and simulated storage.

See DESIGN.md for the full inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.bitmap import (
    BitmapIndex,
    Binning,
    DistinctValueBinning,
    EqualWidthBinning,
    ExplicitBinning,
    MultiLevelBitmapIndex,
    OnlineBitmapBuilder,
    PrecisionBinning,
    WAHBitVector,
    ZOrderLayout,
    common_binning,
    load_index,
    save_index,
)
from repro.insitu import InSituPipeline, OutputWriter, Sampler
from repro.metrics import (
    conditional_entropy,
    conditional_entropy_bitmap,
    emd_count_based,
    emd_count_bitmap,
    emd_spatial,
    emd_spatial_bitmap,
    mutual_information,
    mutual_information_bitmap,
    shannon_entropy,
    shannon_entropy_bitmap,
)
from repro.mining import correlation_mining, correlation_mining_fulldata
from repro.selection import (
    CONDITIONAL_ENTROPY,
    EMD_COUNT,
    EMD_SPATIAL,
    select_timesteps_bitmap,
    select_timesteps_full,
)
from repro.sims import Heat3D, LuleshProxy, OceanDataGenerator

__version__ = "1.0.0"

__all__ = [
    "BitmapIndex",
    "Binning",
    "DistinctValueBinning",
    "EqualWidthBinning",
    "ExplicitBinning",
    "MultiLevelBitmapIndex",
    "OnlineBitmapBuilder",
    "PrecisionBinning",
    "WAHBitVector",
    "ZOrderLayout",
    "common_binning",
    "load_index",
    "save_index",
    "InSituPipeline",
    "OutputWriter",
    "Sampler",
    "conditional_entropy",
    "conditional_entropy_bitmap",
    "emd_count_based",
    "emd_count_bitmap",
    "emd_spatial",
    "emd_spatial_bitmap",
    "mutual_information",
    "mutual_information_bitmap",
    "shannon_entropy",
    "shannon_entropy_bitmap",
    "correlation_mining",
    "correlation_mining_fulldata",
    "CONDITIONAL_ENTROPY",
    "EMD_COUNT",
    "EMD_SPATIAL",
    "select_timesteps_bitmap",
    "select_timesteps_full",
    "Heat3D",
    "LuleshProxy",
    "OceanDataGenerator",
    "__version__",
]
