"""Cluster-scale in-situ model: Figure 13's parallel environment.

§5.3 runs Heat3D on 1..32 Oakley nodes (8 cores each), with two storage
targets:

* **local** -- each node writes its own share of the output to its local
  disk (parallel, aggregate bandwidth scales with nodes);
* **remote** -- every node ships output to *one* remote data server over a
  ~100 MB/s link; transfers serialise on the server, so the full-data
  method's big output volume hurts more the more nodes produce it.

The simulation requires MPI halo exchanges per step; the cost model
charges them to the network (they are small -- two faces per internal
boundary -- but grow with node count, which is why the simulation does
not scale perfectly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.des import Environment, Resource
from repro.perfmodel.insitu_model import InSituScenario, _compute_time
from repro.perfmodel.machine import MachineSpec


@dataclass(frozen=True)
class ClusterScenario:
    """A multi-node run of one workload."""

    node: MachineSpec
    base: InSituScenario  # per-problem totals (whole-domain sizes)
    cores_per_node: int = 8
    halo_bytes_per_boundary: float = 8e6  # two 1000^2-cell faces * 8 B / 2
    remote_bw: float = 100e6

    def per_node_elements(self, n_nodes: int) -> float:
        return self.base.elements_per_step / n_nodes


@dataclass(frozen=True)
class ClusterTimes:
    """One (method, nodes, target) cell of Figure 13."""

    simulate: float
    reduce: float
    select: float
    output: float

    @property
    def total(self) -> float:
        return self.simulate + self.reduce + self.select + self.output


def _node_phase(
    scenario: ClusterScenario, n_nodes: int, rate: float, serial: float
) -> float:
    """Per-step compute time of one node's share on its cores."""
    return _compute_time(
        scenario.per_node_elements(n_nodes),
        rate,
        serial,
        scenario.node,
        scenario.cores_per_node,
    )


def _simulate_phase(scenario: ClusterScenario, n_nodes: int) -> float:
    """Per-step simulation time including halo exchange."""
    sc = scenario.base
    compute = _node_phase(scenario, n_nodes, sc.rates.simulate, sc.rates.simulate_serial)
    if n_nodes > 1:
        # Each internal boundary exchanges ghost faces both ways per step.
        halo = 2.0 * scenario.halo_bytes_per_boundary / scenario.node.network_bw
        compute += halo
    return compute


def _output_time(
    scenario: ClusterScenario, n_nodes: int, total_bytes: float, *, remote: bool
) -> float:
    """Write/transfer the selected outputs.

    Local: nodes write their shares in parallel to their own disks.
    Remote: one shared server; transfers serialise (modelled on the DES
    with a FIFO resource, equivalent to total_bytes / remote_bw but kept
    event-driven so per-node finish times are observable).
    """
    per_node = total_bytes / n_nodes
    if not remote:
        return per_node / scenario.node.disk_write_bw
    env = Environment()
    server = Resource(env)
    finish = {"at": 0.0}

    def sender(nbytes: float):
        yield server.acquire()
        yield env.timeout(nbytes / scenario.remote_bw)
        server.release()
        finish["at"] = max(finish["at"], env.now)

    for _ in range(n_nodes):
        env.process(sender(per_node), "sender")
    env.run()
    return finish["at"]


def model_cluster(
    scenario: ClusterScenario, n_nodes: int, *, method: str, remote: bool
) -> ClusterTimes:
    """Total Figure-13 time for ``method`` in {'full', 'bitmap'}."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if method not in ("full", "bitmap"):
        raise ValueError(f"method must be 'full' or 'bitmap', got {method!r}")
    sc = scenario.base
    simulate = sc.n_steps * _simulate_phase(scenario, n_nodes)

    if method == "bitmap":
        reduce = sc.n_steps * _node_phase(
            scenario, n_nodes, sc.rates.bitmap_gen, sc.rates.bitmap_gen_serial
        )
        select_rate = sc.rates.select_bitmap
        out_bytes = sc.select_k * sc.step_bytes * sc.rates.bitmap_size_fraction
    else:
        reduce = 0.0
        select_rate = sc.rates.select_full
        out_bytes = sc.select_k * sc.step_bytes

    select = (sc.n_steps - 1) * _compute_time(
        2.0 * scenario.per_node_elements(n_nodes),
        select_rate,
        sc.rates.select_serial,
        scenario.node,
        scenario.cores_per_node,
    )
    output = _output_time(scenario, n_nodes, out_bytes, remote=remote)
    return ClusterTimes(simulate, reduce, select, output)


def scalability_series(
    scenario: ClusterScenario, node_counts: list[int]
) -> list[dict[str, float]]:
    """Figure 13 rows: every method x storage target at each node count."""
    rows = []
    for n in node_counts:
        row: dict[str, float] = {"nodes": float(n)}
        for method in ("full", "bitmap"):
            for remote in (False, True):
                key = f"{method}_{'remote' if remote else 'local'}"
                row[key] = model_cluster(scenario, n, method=method, remote=remote).total
        row["speedup_local"] = row["full_local"] / row["bitmap_local"]
        row["speedup_remote"] = row["full_remote"] / row["bitmap_remote"]
        rows.append(row)
    return rows
