"""Modelled in-situ run times: the machinery behind Figures 7-10 and 15.

For a given machine, workload, method and core count, produce the stacked
phase times the paper plots:

* **full data**: simulate + select(full) + write(K raw steps);
* **bitmaps**:   simulate + bitmap generation + select(bitmap) +
  write(K compressed indices);
* **sampling**:  simulate + down-sample + select(full, on the sample) +
  write(K samples, values + positions).

Compute phases scale with cores through Amdahl's law (per-phase serial
fractions); the output phase is ``bytes / disk bandwidth`` and does not
scale -- which is the entire story of the crossovers: at low core counts
the extra bitmap-generation phase loses (0.79x), at high core counts the
6.78x-smaller write dominates and bitmaps win (2.37x on Xeon, 3.28x on
the I/O-starved MIC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MachineSpec, amdahl_speedup
from repro.perfmodel.rates import WorkloadRates


@dataclass(frozen=True)
class InSituScenario:
    """One experiment configuration (a Figure-7-style panel)."""

    machine: MachineSpec
    rates: WorkloadRates
    elements_per_step: float  # e.g. 6.4 GB / 8 bytes
    n_steps: int = 100
    select_k: int = 25

    @property
    def step_bytes(self) -> float:
        return self.elements_per_step * 8.0

    @property
    def bitmap_bytes(self) -> float:
        return self.step_bytes * self.rates.bitmap_size_fraction


@dataclass(frozen=True)
class PhaseTimes:
    """Stacked bar contents for one (method, cores) point."""

    simulate: float
    reduce: float  # bitmap generation / sampling; 0 for full data
    select: float
    output: float

    @property
    def total(self) -> float:
        return self.simulate + self.reduce + self.select + self.output

    def as_dict(self) -> dict[str, float]:
        return {
            "simulate": self.simulate,
            "reduce": self.reduce,
            "select": self.select,
            "output": self.output,
            "total": self.total,
        }


def _compute_time(
    elements: float,
    rate: float,
    serial: float,
    machine: MachineSpec,
    cores: int,
) -> float:
    return elements * rate / (machine.core_speed * amdahl_speedup(cores, serial))


def simulate_time(sc: InSituScenario, cores: int) -> float:
    """All N simulation steps."""
    return sc.n_steps * _compute_time(
        sc.elements_per_step, sc.rates.simulate, sc.rates.simulate_serial,
        sc.machine, cores,
    )


def bitmap_generation_time(sc: InSituScenario, cores: int) -> float:
    """All N per-step bitmap builds."""
    return sc.n_steps * _compute_time(
        sc.elements_per_step, sc.rates.bitmap_gen, sc.rates.bitmap_gen_serial,
        sc.machine, cores,
    )


def selection_time(sc: InSituScenario, cores: int, *, method: str) -> float:
    """Greedy selection: N-1 pairwise evaluations over two steps each."""
    # The bitmap rate already encodes that operations scan compressed
    # words rather than raw elements (it is calibrated as an effective
    # per-raw-element cost, matching how §5.1 reports selection speedups).
    rate = sc.rates.select_full if method == "full" else sc.rates.select_bitmap
    elements = 2.0 * sc.elements_per_step  # each evaluation touches 2 steps
    per_eval = _compute_time(
        elements, rate, sc.rates.select_serial, sc.machine, cores
    )
    return (sc.n_steps - 1) * per_eval


def sampling_time(sc: InSituScenario, cores: int, fraction: float) -> float:
    """Down-sampling all N steps (a cheap strided copy)."""
    return sc.n_steps * _compute_time(
        sc.elements_per_step, sc.rates.sample, 0.02, sc.machine, cores
    )


def output_time_bytes(sc: InSituScenario, total_bytes: float) -> float:
    """Sequential write of the selected artifacts -- never parallelises."""
    return total_bytes / sc.machine.disk_write_bw


def model_full_data(sc: InSituScenario, cores: int) -> PhaseTimes:
    """The full-data method at ``cores`` cores."""
    return PhaseTimes(
        simulate=simulate_time(sc, cores),
        reduce=0.0,
        select=selection_time(sc, cores, method="full"),
        output=output_time_bytes(sc, sc.select_k * sc.step_bytes),
    )


def model_bitmaps(sc: InSituScenario, cores: int) -> PhaseTimes:
    """The bitmaps method at ``cores`` cores."""
    return PhaseTimes(
        simulate=simulate_time(sc, cores),
        reduce=bitmap_generation_time(sc, cores),
        select=selection_time(sc, cores, method="bitmap"),
        output=output_time_bytes(sc, sc.select_k * sc.bitmap_bytes),
    )


def model_sampling(sc: InSituScenario, cores: int, fraction: float) -> PhaseTimes:
    """The in-situ sampling method at ``cores`` cores and sample fraction."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    sample_elements = sc.elements_per_step * fraction
    select = (sc.n_steps - 1) * _compute_time(
        2.0 * sample_elements, sc.rates.select_full, sc.rates.select_serial,
        sc.machine, cores,
    )
    # samples store value + position (8 + 8 bytes per kept element)
    sample_bytes = sc.select_k * sample_elements * 16.0
    return PhaseTimes(
        simulate=simulate_time(sc, cores),
        reduce=sampling_time(sc, cores, fraction),
        select=select,
        output=output_time_bytes(sc, sample_bytes),
    )


def speedup_over_cores(
    sc: InSituScenario, core_counts: list[int]
) -> list[tuple[int, PhaseTimes, PhaseTimes, float]]:
    """(cores, full, bitmaps, speedup) rows -- one Figure 7/8/9/10 series."""
    rows = []
    for c in core_counts:
        full = model_full_data(sc, c)
        bm = model_bitmaps(sc, c)
        rows.append((c, full, bm, full.total / bm.total))
    return rows
