"""Performance model (S19): machines, DES, in-situ/pipeline/cluster models.

The DESIGN.md substitution for the paper's Xeon/MIC/Oakley hardware: a
calibrated discrete-event cost model producing the same figure shapes.
"""

from repro.perfmodel.calibrate import measure_rates
from repro.perfmodel.cluster import (
    ClusterScenario,
    ClusterTimes,
    model_cluster,
    scalability_series,
)
from repro.perfmodel.des import Environment, Resource, Store, Timeout, pipeline_makespan
from repro.perfmodel.insitu_model import (
    InSituScenario,
    PhaseTimes,
    model_bitmaps,
    model_full_data,
    model_sampling,
    speedup_over_cores,
)
from repro.perfmodel.machine import (
    MIC60,
    OAKLEY_NODE,
    PRESETS,
    XEON32,
    MachineSpec,
    amdahl_speedup,
)
from repro.perfmodel.pipeline_model import (
    AllocationOutcome,
    best_allocation,
    equation_allocation_outcome,
    model_separate_cores,
    model_shared_cores,
    queue_capacity_steps,
    sweep_allocations,
)
from repro.perfmodel.tradeoff import (
    breakeven_size_fraction,
    crossover_cores,
    io_bound_fraction,
    max_window_steps,
    min_disk_bw_for_fulldata,
)
from repro.perfmodel.rates import (
    HEAT3D_RATES,
    LULESH_RATES,
    OCEAN_RATES,
    WORKLOADS,
    WorkloadRates,
)

__all__ = [
    "breakeven_size_fraction",
    "crossover_cores",
    "io_bound_fraction",
    "max_window_steps",
    "min_disk_bw_for_fulldata",
    "measure_rates",
    "ClusterScenario",
    "ClusterTimes",
    "model_cluster",
    "scalability_series",
    "Environment",
    "Resource",
    "Store",
    "Timeout",
    "pipeline_makespan",
    "InSituScenario",
    "PhaseTimes",
    "model_bitmaps",
    "model_full_data",
    "model_sampling",
    "speedup_over_cores",
    "MIC60",
    "OAKLEY_NODE",
    "PRESETS",
    "XEON32",
    "MachineSpec",
    "amdahl_speedup",
    "AllocationOutcome",
    "best_allocation",
    "equation_allocation_outcome",
    "model_separate_cores",
    "model_shared_cores",
    "queue_capacity_steps",
    "sweep_allocations",
    "HEAT3D_RATES",
    "LULESH_RATES",
    "OCEAN_RATES",
    "WORKLOADS",
    "WorkloadRates",
]
