"""Core-allocation pipeline model: Figure 12's Shared vs Separate Cores.

*Shared Cores*: every step runs simulation on all cores, pauses, then runs
bitmap generation on all cores -- total time is the plain sum.

*Separate Cores*: the two phases run concurrently on disjoint core pools
with a bounded data queue between them (memory capacity / step size).  We
play the interleaving out on the discrete-event engine: a producer process
simulates steps, a consumer process builds bitmaps; the queue's
backpressure is what makes bad splits slow in *both* directions (too few
simulation cores starve the consumer; too few bitmap cores stall the
producer on a full queue).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.insitu.allocation import (
    SeparateCores,
    SharedCores,
    enumerate_separate_allocations,
    equation_1_2_allocation,
)
from repro.perfmodel.des import Environment, Store
from repro.perfmodel.insitu_model import InSituScenario, _compute_time


def step_sim_time(sc: InSituScenario, cores: int) -> float:
    """One simulation step on ``cores`` cores."""
    return _compute_time(
        sc.elements_per_step, sc.rates.simulate, sc.rates.simulate_serial,
        sc.machine, cores,
    )


def step_bitmap_time(sc: InSituScenario, cores: int) -> float:
    """One per-step bitmap build on ``cores`` cores."""
    return _compute_time(
        sc.elements_per_step, sc.rates.bitmap_gen, sc.rates.bitmap_gen_serial,
        sc.machine, cores,
    )


def queue_capacity_steps(sc: InSituScenario) -> int:
    """How many raw steps fit in memory ("limited by the memory capacity").

    Reserves half the memory for the simulation itself and its resident
    state; at least one slot always exists.
    """
    budget = sc.machine.memory_bytes / 2.0
    return max(1, int(budget // sc.step_bytes))


@dataclass(frozen=True)
class AllocationOutcome:
    """Total time of 100-steps simulate+bitmap under one allocation."""

    label: str
    total_seconds: float
    sim_core_seconds: float
    bitmap_core_seconds: float


def model_shared_cores(sc: InSituScenario) -> AllocationOutcome:
    """Alternating phases on all cores."""
    strategy = SharedCores(sc.machine.n_cores)
    t_sim = step_sim_time(sc, strategy.total_cores)
    t_bm = step_bitmap_time(sc, strategy.total_cores)
    total = sc.n_steps * (t_sim + t_bm)
    return AllocationOutcome(strategy.label, total, t_sim * sc.n_steps, t_bm * sc.n_steps)


def model_separate_cores(
    sc: InSituScenario, allocation: SeparateCores
) -> AllocationOutcome:
    """Bounded-queue producer/consumer pipeline on the DES."""
    if allocation.total_cores > sc.machine.n_cores:
        raise ValueError(
            f"allocation {allocation.label} exceeds {sc.machine.n_cores} cores"
        )
    t_sim = step_sim_time(sc, allocation.sim_cores)
    t_bm = step_bitmap_time(sc, allocation.bitmap_cores)
    env = Environment()
    queue = Store(env, queue_capacity_steps(sc))
    done = {"finish": 0.0}

    def producer():
        for i in range(sc.n_steps):
            yield env.timeout(t_sim)
            yield queue.put(i)

    def consumer():
        for _ in range(sc.n_steps):
            yield queue.get()
            yield env.timeout(t_bm)
        done["finish"] = env.now

    env.process(producer(), "simulate")
    env.process(consumer(), "bitmap")
    env.run()
    return AllocationOutcome(
        allocation.label, done["finish"], t_sim * sc.n_steps, t_bm * sc.n_steps
    )


def sweep_allocations(
    sc: InSituScenario, *, include_shared: bool = True, stride: int = 1
) -> list[AllocationOutcome]:
    """Every split (plus shared cores) -- the bars of Figure 12."""
    outcomes: list[AllocationOutcome] = []
    if include_shared:
        outcomes.append(model_shared_cores(sc))
    for alloc in enumerate_separate_allocations(sc.machine.n_cores)[::stride]:
        outcomes.append(model_separate_cores(sc, alloc))
    return outcomes


def best_allocation(sc: InSituScenario) -> AllocationOutcome:
    """The fastest separate-cores split (ground truth for Eq. 1-2)."""
    candidates = [
        model_separate_cores(sc, a)
        for a in enumerate_separate_allocations(sc.machine.n_cores)
    ]
    return min(candidates, key=lambda o: o.total_seconds)


def equation_allocation_outcome(sc: InSituScenario) -> AllocationOutcome:
    """What the paper's Equations 1-2 would pick, evaluated on the model.

    The calibration measurement uses single-phase times at an initial
    even split, exactly like the paper's warm-up run.
    """
    half = max(1, sc.machine.n_cores // 2)
    t_sim = step_sim_time(sc, half)
    t_bm = step_bitmap_time(sc, sc.machine.n_cores - half)
    alloc = equation_1_2_allocation(sc.machine.n_cores, t_sim, t_bm)
    return model_separate_cores(sc, alloc)
