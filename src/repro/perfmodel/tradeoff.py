"""Closed-form trade-off analysis over the in-situ cost model.

The DES models *play out* scenarios; this module answers the inverse
questions analytically, using the same cost structure:

* :func:`crossover_cores` -- at how many cores do bitmaps start winning?
* :func:`min_disk_bw_for_fulldata` -- how fast must the disk be for the
  full-data method to stay competitive at a given core count?
* :func:`max_window_steps` -- how many time-steps fit in memory under each
  method (the Figure 11 question inverted);
* :func:`breakeven_size_fraction` -- how small must bitmaps be to win at a
  given core count?

These are the numbers a deployment would actually compute before choosing
a strategy, and they double as independent checks on the DES results
(property-tested against :mod:`repro.perfmodel.insitu_model`).
"""

from __future__ import annotations

from repro.perfmodel.insitu_model import (
    InSituScenario,
    model_bitmaps,
    model_full_data,
)


def crossover_cores(sc: InSituScenario, max_cores: int | None = None) -> int | None:
    """Smallest core count at which the bitmaps method wins, or None.

    Total times are monotone in cores for both methods but their
    difference is not analytically invertible under Amdahl, so this scans
    -- it is exact, not approximate.
    """
    limit = max_cores if max_cores is not None else sc.machine.n_cores
    for cores in range(1, limit + 1):
        if model_bitmaps(sc, cores).total < model_full_data(sc, cores).total:
            return cores
    return None


def min_disk_bw_for_fulldata(sc: InSituScenario, cores: int) -> float:
    """Disk bandwidth above which full data ties bitmaps at ``cores``.

    Solves ``full(compute) + K*S/bw == bitmap(compute) + K*S*f/bw`` for
    ``bw``; returns ``inf`` when bitmaps win on compute alone.
    """
    full = model_full_data(sc, cores)
    bm = model_bitmaps(sc, cores)
    compute_gap = (bm.simulate + bm.reduce + bm.select) - (
        full.simulate + full.select
    )
    if compute_gap <= 0:
        return float("inf")  # bitmaps cheaper even before I/O
    write_gap_bytes = sc.select_k * sc.step_bytes * (
        1.0 - sc.rates.bitmap_size_fraction
    )
    return write_gap_bytes / compute_gap


def max_window_steps(sc: InSituScenario, *, method: str) -> int:
    """Largest selection window fitting in node memory (Figure 11 inverted).

    Uses the paper's resident-set inventory: full data keeps the window in
    raw steps plus one selected step and one intermediate; bitmaps keep
    the window as compressed indices plus one raw step, one intermediate
    and one selected bitmap.
    """
    mem = sc.machine.memory_bytes
    step = sc.step_bytes
    bitmap = sc.bitmap_bytes
    if method == "full":
        fixed = 2 * step  # previous selected + intermediate
        per = step
    elif method == "bitmap":
        fixed = 2 * step + bitmap  # current raw + intermediate + prev bitmap
        per = bitmap
    else:
        raise ValueError(f"method must be 'full' or 'bitmap', got {method!r}")
    remaining = mem - fixed
    if remaining < per:
        return 0
    return int(remaining // per)


def breakeven_size_fraction(sc: InSituScenario, cores: int) -> float | None:
    """Largest bitmap size fraction at which bitmaps still tie full data.

    Solves the total-time equality for the fraction; returns None when no
    fraction in (0, 1) achieves parity (compute overhead too large).
    """
    full = model_full_data(sc, cores)
    bm = model_bitmaps(sc, cores)
    # bm.total(f) = C_bm + K*S*f/bw  with C_bm independent of f
    compute_bm = bm.simulate + bm.reduce + bm.select
    write_full = full.output
    budget = full.total - compute_bm  # what the bitmap write may cost
    if budget <= 0:
        return None
    fraction = budget / write_full
    if fraction <= 0:
        return None
    return float(min(fraction, 1.0))


def io_bound_fraction(sc: InSituScenario, cores: int, *, method: str) -> float:
    """Share of total time spent writing -- the bottleneck indicator.

    The paper's "data writing time becomes the major bottleneck" claim,
    quantified: > 0.5 means the run is I/O-bound.
    """
    times = (
        model_full_data(sc, cores) if method == "full" else model_bitmaps(sc, cores)
    )
    return times.output / times.total if times.total else 0.0
