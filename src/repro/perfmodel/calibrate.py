"""Calibrate model rates from this repository's real kernels.

The default :mod:`repro.perfmodel.rates` constants are fixed (calibrated
to the paper's reported phase ratios) so every benchmark is deterministic.
When absolute host realism matters, :func:`measure_rates` times the actual
implementations -- Heat3D stepping, vectorised bitmap construction,
conditional-entropy evaluation on raw arrays and on bitmaps, sampling --
at a small scale and returns a :class:`WorkloadRates` with the measured
per-element costs (per DESIGN.md's measured-vs-modelled split).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bitmap.binning import PrecisionBinning
from repro.bitmap.index import BitmapIndex
from repro.insitu.sampling import Sampler
from repro.metrics.bitmap_metrics import conditional_entropy_bitmap
from repro.metrics.entropy import conditional_entropy
from repro.perfmodel.rates import HEAT3D_RATES, WorkloadRates
from repro.sims.heat3d import Heat3D


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_rates(
    *,
    shape: tuple[int, int, int] = (16, 32, 64),
    warm_steps: int = 5,
    repeats: int = 3,
    base: WorkloadRates = HEAT3D_RATES,
) -> WorkloadRates:
    """Measure Heat3D-workload per-element rates on this host.

    Serial fractions and the bitmap size fraction are taken from
    measurements where possible (size fraction is measured; scaling
    fractions cannot be measured on one core and keep their defaults).
    """
    sim = Heat3D(shape, seed=0)
    n = int(np.prod(shape))
    for _ in range(warm_steps):
        step = sim.advance()
    data_a = step.fields["temperature"]

    t_sim = _best_of(lambda: sim.advance(), repeats)
    data_b = sim.advance().fields["temperature"]

    binning = PrecisionBinning.from_data(
        np.concatenate([data_a.ravel(), data_b.ravel()]), digits=1
    )
    t_bitmap = _best_of(lambda: BitmapIndex.build(data_a, binning), repeats)
    index_a = BitmapIndex.build(data_a, binning)
    index_b = BitmapIndex.build(data_b, binning)
    size_fraction = min(0.95, max(0.01, index_a.nbytes / data_a.nbytes))

    t_select_full = _best_of(
        lambda: conditional_entropy(data_a, data_b, binning, binning), repeats
    )
    t_select_bitmap = _best_of(
        lambda: conditional_entropy_bitmap(index_a, index_b), repeats
    )
    sampler = Sampler(0.1)
    t_sample = _best_of(lambda: sampler.sample(data_a), repeats)

    return base.scaled(
        simulate=max(t_sim / n, 1e-12),
        bitmap_gen=max(t_bitmap / n, 1e-12),
        select_full=max(t_select_full / (2 * n), 1e-12),
        select_bitmap=max(t_select_bitmap / (2 * n), 1e-12),
        sample=max(t_sample / n, 1e-12),
        bitmap_size_fraction=size_fraction,
    )
