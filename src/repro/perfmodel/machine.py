"""Machine specifications for the performance model (§5's three platforms).

We do not have a 32-core Xeon node, a 60-core Xeon Phi, or the Oakley
cluster; the DESIGN.md substitution rule replaces them with explicit
parameterisations.  A :class:`MachineSpec` captures exactly the properties
the paper's figures depend on:

* core count (the x axis of Figures 7-10),
* relative per-core speed (MIC cores are individually much slower),
* memory capacity (bounds the Separate-Cores data queue),
* disk write bandwidth (the non-parallelisable output bar),
* network bandwidth (the Figure 13 remote data server link).

Presets mirror the paper's hardware section; bandwidth values are chosen
to reproduce the paper's reported *ratios* (e.g. the 6.78x write-time
advantage and the 0.79x-3.28x total-time band), as recorded per experiment
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineSpec:
    """A single node's modelled hardware."""

    name: str
    n_cores: int
    core_speed: float  # relative to the reference core (Xeon x5650 = 1.0)
    memory_bytes: float
    disk_write_bw: float  # bytes/second, sequential write
    network_bw: float  # bytes/second to a remote data server

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        for field_name in ("core_speed", "memory_bytes", "disk_write_bw", "network_bw"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def with_cores(self, n_cores: int) -> "MachineSpec":
        """The same machine restricted to ``n_cores`` cores."""
        return replace(self, n_cores=n_cores)


def amdahl_speedup(n_cores: int, serial_fraction: float) -> float:
    """Amdahl's law: speedup of ``n_cores`` given a serial fraction.

    Models the paper's observation that Heat3D "does not scale well with
    increasing number of cores" (1.3x from 12 to 28 cores => serial
    fraction ~0.1) while bitmap generation scales almost linearly
    ("without having any dependency among different cores").
    """
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0, 1], got {serial_fraction}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n_cores)


#: The OSC node of §5: 32 Intel Xeon x5650 cores, 1 TB memory.
XEON32 = MachineSpec(
    name="xeon32",
    n_cores=32,
    core_speed=1.0,
    memory_bytes=1e12,
    disk_write_bw=400e6,
    network_bw=100e6,
)

#: The Intel MIC node of §5: 60 slow cores, 8 GB memory, weak disk I/O
#: ("the I/O bandwidth is even lower").
MIC60 = MachineSpec(
    name="mic60",
    n_cores=60,
    core_speed=0.3,
    memory_bytes=8e9,
    disk_write_bw=80e6,
    network_bw=100e6,
)

#: One Oakley cluster node of §5.3: 12 Xeon cores, 48 GB memory.
OAKLEY_NODE = MachineSpec(
    name="oakley",
    n_cores=12,
    core_speed=1.0,
    memory_bytes=48e9,
    disk_write_bw=110e6,  # per-node spinning disk
    network_bw=100e6,  # "around 100 MB/sec bandwidth" to the data server
)

PRESETS: dict[str, MachineSpec] = {
    m.name: m for m in (XEON32, MIC60, OAKLEY_NODE)
}
