"""A compact discrete-event simulation engine (generator coroutines).

The performance models need to play out *interleavings*: a simulation
producer and a bitmap consumer sharing a bounded queue (Figure 12), or 32
nodes contending for one remote data server (Figure 13).  This is a
minimal simpy-flavoured engine:

* :class:`Environment` -- the event loop and virtual clock;
* processes are plain generators that ``yield`` events;
* :class:`Timeout` -- resume after virtual seconds;
* :class:`Store` -- a bounded buffer with blocking put/get events;
* :class:`Resource` -- an exclusive server with FIFO queueing (models the
  single remote disk: requests serialise, exactly like shared-bandwidth
  writes at full utilisation).

Determinism: ties in event time are broken by insertion order, so the
models are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Generator

ProcessGen = Generator["BaseEvent", Any, None]


class BaseEvent:
    """Something a process can wait on."""

    __slots__ = ("callbacks", "triggered", "value")

    def __init__(self) -> None:
        self.callbacks: list = []
        self.triggered = False
        self.value: Any = None

    def _succeed(self, env: "Environment", value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self.callbacks:
            env._ready(cb, self)
        self.callbacks.clear()


class Timeout(BaseEvent):
    """Resume after ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        super().__init__()
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = delay


class Process(BaseEvent):
    """A running generator; completes when the generator returns."""

    __slots__ = ("gen", "name")

    def __init__(self, gen: ProcessGen, name: str) -> None:
        super().__init__()
        self.gen = gen
        self.name = name


class Environment:
    """Event loop with a virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, object]] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------ plumbing
    def _push(self, at: float, item: object) -> None:
        heapq.heappush(self._heap, (at, next(self._counter), item))

    def _ready(self, process: "Process", event: BaseEvent) -> None:
        """Schedule a process to resume now with the event's value."""
        self._push(self.now, (process, event))

    # ------------------------------------------------------------- public
    def process(self, gen: ProcessGen, name: str = "proc") -> Process:
        proc = Process(gen, name)
        self._push(self.now, (proc, None))
        return proc

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    def run(self, until: float | None = None) -> float:
        """Run until no events remain (or the clock passes ``until``)."""
        while self._heap:
            at, _, item = heapq.heappop(self._heap)
            if until is not None and at > until:
                self.now = until
                return self.now
            self.now = at
            proc, event = item
            self._step(proc, event)
        return self.now

    def _step(self, proc: Process, event: BaseEvent | None) -> None:
        try:
            value = event.value if event is not None else None
            nxt = proc.gen.send(value)
        except StopIteration:
            proc._succeed(self, None)
            return
        if isinstance(nxt, Timeout):
            self._push(self.now + nxt.delay, (proc, nxt))
            nxt.triggered = True
        elif isinstance(nxt, BaseEvent):
            if nxt.triggered:
                self._push(self.now, (proc, nxt))
            else:
                nxt.callbacks.append(proc)
        else:
            raise TypeError(f"process {proc.name} yielded {nxt!r}")


class Store:
    """Bounded FIFO buffer of items (capacity in item count)."""

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._putters: deque[tuple[BaseEvent, Any]] = deque()
        self._getters: deque[BaseEvent] = deque()

    def put(self, item: Any) -> BaseEvent:
        ev = BaseEvent()
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev._succeed(self.env)
            self._serve_getters()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> BaseEvent:
        ev = BaseEvent()
        if self.items:
            ev._succeed(self.env, self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(ev)
        return ev

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft()._succeed(self.env, self.items.popleft())
            self._serve_putters()

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev._succeed(self.env)
            self._serve_getters()


class Resource:
    """An exclusive FIFO server (e.g. the single remote data server)."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._busy = False
        self._waiters: deque[BaseEvent] = deque()
        self.busy_seconds = 0.0
        self._acquired_at = 0.0

    def acquire(self) -> BaseEvent:
        ev = BaseEvent()
        if not self._busy:
            self._busy = True
            self._acquired_at = self.env.now
            ev._succeed(self.env)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._busy:
            raise RuntimeError("release of an idle resource")
        self.busy_seconds += self.env.now - self._acquired_at
        if self._waiters:
            self._acquired_at = self.env.now
            self._waiters.popleft()._succeed(self.env)
        else:
            self._busy = False


def pipeline_makespan(
    t_produce: float, t_consume: float, n_items: int, queue_capacity: int
) -> float:
    """Closed-form two-stage bounded-buffer pipeline makespan (oracle).

    With producer time ``a``, consumer time ``b`` and a buffer of ``Q``
    items, the steady state is governed by ``max(a, b)``; the closed form
    is used to cross-check the DES in tests.
    """
    if n_items == 0:
        return 0.0
    a, b, q = t_produce, t_consume, queue_capacity
    # Convention (matches the Store semantics): a put occupies a slot when
    # it completes; a get frees the slot when the consumer takes the item.
    put_done = [0.0] * n_items
    taken = [0.0] * n_items
    consumed = [0.0] * n_items
    for i in range(n_items):
        computed = (put_done[i - 1] if i else 0.0) + a
        room = taken[i - q] if i >= q else 0.0
        put_done[i] = max(computed, room)
        taken[i] = max(consumed[i - 1] if i else 0.0, put_done[i])
        consumed[i] = taken[i] + b
    return consumed[-1]
