"""Per-element cost rates driving the performance model.

Every modelled phase time has the form

    time = elements * rate / (core_speed * amdahl_speedup(cores, serial)),

except I/O, which is ``bytes / bandwidth`` and does not parallelise (the
critical structural fact behind Figures 7-10: compute shrinks with cores,
the output bar does not).

The default rates below are **calibrated to the paper's reported per-phase
ratios** (bitmap generation somewhat more expensive than a Heat3D step;
conditional-entropy selection 1.38-1.50x faster on bitmaps; EMD selection
3.45-3.81x faster; write volume ~6.78x smaller), not to any absolute
seconds -- see EXPERIMENTS.md.  :func:`repro.perfmodel.calibrate.measure_rates`
re-derives the compute rates from this repository's real kernels on the
host machine when absolute realism is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkloadRates:
    """Seconds-per-element rates for one workload on the reference core."""

    name: str
    #: simulation cost per element per time-step
    simulate: float
    #: serial fraction of the simulation (Amdahl)
    simulate_serial: float
    #: bitmap construction (binning + WAH compression) per element
    bitmap_gen: float
    #: serial fraction of bitmap generation (near-perfectly parallel)
    bitmap_gen_serial: float
    #: full-data selection cost per element per pairwise evaluation
    #: (scan + bin two arrays)
    select_full: float
    #: bitmap selection cost per element per pairwise evaluation
    select_bitmap: float
    #: serial fraction of selection
    select_serial: float
    #: in-situ down-sampling cost per element
    sample: float
    #: compressed bitmap size as a fraction of raw data size
    bitmap_size_fraction: float

    def __post_init__(self) -> None:
        for f in (
            "simulate", "bitmap_gen", "select_full", "select_bitmap", "sample",
        ):
            if getattr(self, f) <= 0:
                raise ValueError(f"rate {f} must be positive")
        if not 0 < self.bitmap_size_fraction < 1:
            raise ValueError("bitmap_size_fraction must be in (0, 1)")

    def scaled(self, **overrides: float) -> "WorkloadRates":
        """Copy with selected fields replaced."""
        return replace(self, **overrides)


#: Heat3D: a cheap 7-point stencil; selection metric = conditional entropy.
#: select_bitmap reproduces the paper's 1.38-1.50x CE selection speedup
#: (the m x m joint-AND sweep keeps the bitmap win modest).
HEAT3D_RATES = WorkloadRates(
    name="heat3d",
    simulate=6.0e-9,
    simulate_serial=0.10,  # "the speedup is only 1.3x ... 28 vs 12 cores"
    bitmap_gen=1.5e-8,
    bitmap_gen_serial=0.02,
    select_full=6.0e-9,
    select_bitmap=4.2e-9,  # ~1.43x faster
    select_serial=0.02,
    sample=1.5e-9,
    bitmap_size_fraction=0.147,  # => the 6.78x write reduction of §5.1
)

#: Lulesh: ~10x heavier simulation; selection metric = spatial EMD, where
#: bitmaps only need m XOR+popcounts (3.45-3.81x faster than raw scans).
LULESH_RATES = WorkloadRates(
    name="lulesh",
    simulate=6.0e-8,
    simulate_serial=0.03,
    bitmap_gen=2.5e-8,  # 12 arrays, more bins (89-314) than Heat3D
    bitmap_gen_serial=0.02,
    select_full=6.0e-9,
    select_bitmap=1.67e-9,  # ~3.6x faster (paper: 3.45x-3.81x)
    select_serial=0.02,
    sample=1.5e-9,
    bitmap_size_fraction=0.22,  # 12 mixed-distribution arrays compress less
)

#: POP-like ocean data (offline mining; simulate = data loading cost).
OCEAN_RATES = WorkloadRates(
    name="ocean",
    simulate=2.0e-9,
    simulate_serial=0.05,
    bitmap_gen=1.2e-8,
    bitmap_gen_serial=0.02,
    select_full=6.0e-9,
    select_bitmap=4.2e-9,
    select_serial=0.02,
    sample=1.5e-9,
    bitmap_size_fraction=0.20,
)

#: Heat3D in the §5.3 cluster setting: the stock MPI code of [1] with
#: per-step boundary exchange is far slower per element than the tuned
#: single-node kernel, which is what makes Figure 13's full-data remote
#: transfer (25 x 6.4 GB at 100 MB/s) *not* dominate at small node counts
#: (the paper's 1.24x low end implies compute >> transfer at 1 node).
HEAT3D_CLUSTER_RATES = HEAT3D_RATES.scaled(name="heat3d-cluster", simulate=2.4e-7)

WORKLOADS: dict[str, WorkloadRates] = {
    r.name: r
    for r in (HEAT3D_RATES, LULESH_RATES, OCEAN_RATES, HEAT3D_CLUSTER_RATES)
}
