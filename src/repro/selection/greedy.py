"""Greedy importance-driven time-step selection (Wang et al., §3.1).

The algorithm of Figure 3:

1. partition the ``N`` time-steps into ``K`` intervals (the first interval
   is always ``{T0}``, which is always selected);
2. for each subsequent interval, compute the correlation between the
   previously selected step and every step in the interval;
3. select the step with minimum correlation (= maximum distinctness) and
   carry it forward as the new reference.

Both back ends are provided: :func:`select_timesteps_full` scans raw
arrays (and therefore needs them all resident -- the memory cost of
Figure 11's full-data bars) and :func:`select_timesteps_bitmap` consumes
only :class:`~repro.bitmap.index.BitmapIndex` objects.  With a shared
binning scale the two produce identical selections (tested), which is the
paper's exactness claim applied end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.metrics.bitmap_metrics import shannon_entropy_bitmap
from repro.metrics.entropy import shannon_entropy
from repro.selection.metrics import SelectionMetric
from repro.selection.partitioning import (
    fixed_length_partitions,
    information_volume_partitions,
    validate_partitions,
)

Partitioning = Literal["fixed", "info_volume"]


@dataclass
class SelectionResult:
    """Outcome of a time-step selection run."""

    selected: list[int]
    #: distinctness of each selected step w.r.t. its predecessor
    #: (first entry is NaN: T0 is selected unconditionally).
    scores: list[float]
    intervals: list[range] = field(default_factory=list)
    metric_name: str = ""
    #: number of pairwise metric evaluations performed (the work the
    #: bitmap path accelerates).
    n_evaluations: int = 0

    def __post_init__(self) -> None:
        if len(self.selected) != len(self.scores):
            raise ValueError("selected and scores must align")

    @property
    def k(self) -> int:
        return len(self.selected)


def _partitions(
    n_steps: int,
    k: int,
    partitioning: Partitioning,
    importance: np.ndarray | None,
) -> list[range]:
    if partitioning == "fixed":
        parts = fixed_length_partitions(n_steps, k)
    elif partitioning == "info_volume":
        if importance is None:
            raise ValueError("info_volume partitioning needs per-step importance")
        parts = information_volume_partitions(np.asarray(importance), k)
    else:
        raise ValueError(f"unknown partitioning {partitioning!r}")
    validate_partitions(parts, n_steps)
    return parts


def _greedy(parts: list[range], distinctness) -> tuple[list[int], list[float], int]:
    selected = [0]
    scores = [float("nan")]
    evaluations = 0
    prev = 0
    for interval in parts[1:]:
        best_step = -1
        best_score = -np.inf
        for cand in interval:
            score = distinctness(prev, cand)
            evaluations += 1
            if score > best_score:
                best_score = score
                best_step = cand
        selected.append(best_step)
        scores.append(best_score)
        prev = best_step
    return selected, scores, evaluations


def select_timesteps_full(
    steps: Sequence[np.ndarray],
    k: int,
    metric: SelectionMetric,
    binning: Binning,
    *,
    partitioning: Partitioning = "fixed",
) -> SelectionResult:
    """Full-data greedy selection: every comparison scans two raw arrays."""
    importance = None
    if partitioning == "info_volume":
        importance = np.asarray([shannon_entropy(s, binning) for s in steps])
    parts = _partitions(len(steps), k, partitioning, importance)
    selected, scores, n_eval = _greedy(
        parts, lambda p, c: metric.full(steps[p], steps[c], binning)
    )
    return SelectionResult(selected, scores, parts, metric.name, n_eval)


def select_timesteps_bitmap(
    indices: Sequence[BitmapIndex],
    k: int,
    metric: SelectionMetric,
    *,
    partitioning: Partitioning = "fixed",
) -> SelectionResult:
    """Bitmap-only greedy selection: raw data may already be discarded."""
    importance = None
    if partitioning == "info_volume":
        importance = np.asarray([shannon_entropy_bitmap(i) for i in indices])
    parts = _partitions(len(indices), k, partitioning, importance)
    selected, scores, n_eval = _greedy(
        parts, lambda p, c: metric.bitmap(indices[p], indices[c])
    )
    return SelectionResult(selected, scores, parts, metric.name, n_eval)
