"""Selection metrics with paired full-data and bitmap back ends (§3.1-3.2).

The greedy selector asks one question: *how distinct is candidate time-step
C from the previously selected step P?*  The paper phrases it as picking
the **minimum correlation**; we represent each metric as a *distinctness*
score (= negated correlation) so the selector always maximises, and bundle
the two computation paths so tests can assert they agree exactly:

* ``full(prev, cand, binning)`` -- raw arrays (the full-data baseline);
* ``bitmap(prev_index, cand_index)`` -- bitmaps only.

Built-ins: Earth Mover's Distance (count-based and spatial, used for
Lulesh in §5.1) and Conditional Entropy ``H(cand | prev)`` (used for
Heat3D), whose bitmap path is Figure 5's AND-based joint distribution.

The bitmap paths inherit density dispatch from
:mod:`repro.metrics.bitmap_metrics`: when both indices compress below
:data:`~repro.bitmap.ops.STREAMING_COUNT_RATIO_THRESHOLD`, the joint-AND
(conditional entropy) and per-bin-XOR (spatial EMD) popcounts run
entirely in the compressed domain via the ``*_count_streaming`` kernels;
dense indices keep the memoised group-matrix row ops.  Either route
returns bit-identical counts, so the full/bitmap equality contract is
unaffected by dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.metrics.bitmap_metrics import (
    conditional_entropy_bitmap,
    emd_count_bitmap,
    emd_spatial_bitmap,
)
from repro.metrics.emd import emd_count_based, emd_spatial
from repro.metrics.entropy import conditional_entropy


@dataclass(frozen=True)
class SelectionMetric:
    """A distinctness metric with equivalent full-data and bitmap paths.

    Higher return value = candidate carries more new information relative
    to the previously selected step (select the max per interval ==
    paper's "minimum correlation").
    """

    name: str
    full: Callable[[np.ndarray, np.ndarray, Binning], float]
    bitmap: Callable[[BitmapIndex, BitmapIndex], float]


def _ce_full(prev: np.ndarray, cand: np.ndarray, binning: Binning) -> float:
    # H(cand | prev): information in the candidate not explained by prev.
    return conditional_entropy(cand, prev, binning, binning)


def _ce_bitmap(prev: BitmapIndex, cand: BitmapIndex) -> float:
    return conditional_entropy_bitmap(cand, prev)


#: Conditional entropy H(candidate | previous) -- Heat3D's metric in §5.1.
CONDITIONAL_ENTROPY = SelectionMetric(
    "conditional_entropy",
    _ce_full,
    _ce_bitmap,
)

#: Count-based Earth Mover's Distance (first method of §3.2).
EMD_COUNT = SelectionMetric(
    "emd_count",
    lambda prev, cand, binning: emd_count_based(prev, cand, binning),
    emd_count_bitmap,
)

#: Spatial Earth Mover's Distance via XOR popcounts -- Lulesh's metric.
EMD_SPATIAL = SelectionMetric(
    "emd_spatial",
    lambda prev, cand, binning: emd_spatial(prev, cand, binning),
    emd_spatial_bitmap,
)

BUILTIN_METRICS: dict[str, SelectionMetric] = {
    m.name: m for m in (CONDITIONAL_ENTROPY, EMD_COUNT, EMD_SPATIAL)
}


def get_metric(name: str) -> SelectionMetric:
    """Look up a built-in metric by name."""
    try:
        return BUILTIN_METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; built-ins: {sorted(BUILTIN_METRICS)}"
        )
