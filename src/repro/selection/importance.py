"""Per-time-step importance measures (§3.1's first aspect).

"The importance of a time-step is determined in two aspects: First, the
output for the time-step itself may contain a high amount of information.
Second, the time-step may convey a distinct type of information with
respect to the other time-steps."

This module covers the *first* aspect as pluggable scorers -- used by
information-volume partitioning and as a standalone profiling tool --
each with full-data and bitmap backends:

* ``entropy``       -- Shannon entropy of the step's value distribution;
* ``distinct_bins`` -- number of occupied bins (value-space coverage);
* ``evolution``     -- distinctness from the previous step (count EMD),
  the "how much happened" signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.metrics.bitmap_metrics import emd_count_bitmap, shannon_entropy_bitmap
from repro.metrics.emd import emd_count_based
from repro.metrics.entropy import shannon_entropy
from repro.metrics.histogram import histogram


@dataclass(frozen=True)
class ImportanceMeasure:
    """A per-step importance scorer with paired backends.

    ``full(steps, binning)`` / ``bitmap(indices)`` return one non-negative
    score per step.
    """

    name: str
    full: Callable[[Sequence[np.ndarray], Binning], np.ndarray]
    bitmap: Callable[[Sequence[BitmapIndex]], np.ndarray]


def _entropy_full(steps: Sequence[np.ndarray], binning: Binning) -> np.ndarray:
    return np.asarray([shannon_entropy(s, binning) for s in steps])


def _entropy_bitmap(indices: Sequence[BitmapIndex]) -> np.ndarray:
    return np.asarray([shannon_entropy_bitmap(i) for i in indices])


def _distinct_full(steps: Sequence[np.ndarray], binning: Binning) -> np.ndarray:
    return np.asarray(
        [float((histogram(s, binning) > 0).sum()) for s in steps]
    )


def _distinct_bitmap(indices: Sequence[BitmapIndex]) -> np.ndarray:
    return np.asarray([float((i.bin_counts() > 0).sum()) for i in indices])


def _evolution_full(steps: Sequence[np.ndarray], binning: Binning) -> np.ndarray:
    scores = [0.0]
    for prev, cur in zip(steps, steps[1:]):
        scores.append(emd_count_based(prev, cur, binning))
    return np.asarray(scores)


def _evolution_bitmap(indices: Sequence[BitmapIndex]) -> np.ndarray:
    scores = [0.0]
    for prev, cur in zip(indices, indices[1:]):
        scores.append(emd_count_bitmap(prev, cur))
    return np.asarray(scores)


ENTROPY_IMPORTANCE = ImportanceMeasure("entropy", _entropy_full, _entropy_bitmap)
DISTINCT_BINS_IMPORTANCE = ImportanceMeasure(
    "distinct_bins", _distinct_full, _distinct_bitmap
)
EVOLUTION_IMPORTANCE = ImportanceMeasure(
    "evolution", _evolution_full, _evolution_bitmap
)

IMPORTANCE_MEASURES: dict[str, ImportanceMeasure] = {
    m.name: m
    for m in (ENTROPY_IMPORTANCE, DISTINCT_BINS_IMPORTANCE, EVOLUTION_IMPORTANCE)
}


def get_importance(name: str) -> ImportanceMeasure:
    """Look up a built-in importance measure by name."""
    try:
        return IMPORTANCE_MEASURES[name]
    except KeyError:
        raise ValueError(
            f"unknown importance measure {name!r}; "
            f"built-ins: {sorted(IMPORTANCE_MEASURES)}"
        )


def importance_profile_bitmap(
    indices: Sequence[BitmapIndex], measures: Sequence[str] | None = None
) -> dict[str, np.ndarray]:
    """Score every step under several measures at once (bitmaps only)."""
    names = list(measures) if measures is not None else sorted(IMPORTANCE_MEASURES)
    return {name: get_importance(name).bitmap(indices) for name in names}
