"""DTW-based salient time-step selection (Tong et al. [31]).

§3.1's "other possibility": Tong et al. select salient time-steps "with
dynamic time warping" -- pick the K-step subsequence whose DTW distance to
the full sequence is minimal, so the reduced sequence *traces* the
original evolution instead of greedily maximising local novelty.

Implementation:

1. summarise each time-step as its histogram (from bitmaps: bin
   popcounts -- free) or raw data;
2. pairwise step distance = L1 between normalised histograms;
3. dynamic programming over (sequence position, selected count) that
   minimises the total assignment cost when every original step is
   *represented by* (warped onto) its nearest selected step, subject to
   monotone assignment -- the standard DTW-reduction formulation.

Step 0 is always selected (consistent with the greedy selector).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.metrics.histogram import histogram, normalize
from repro.selection.greedy import SelectionResult


def step_signatures_bitmap(indices: Sequence[BitmapIndex]) -> np.ndarray:
    """(n_steps, n_bins) matrix of normalised value distributions."""
    return np.vstack([normalize(i.bin_counts()) for i in indices])


def step_signatures_full(
    steps: Sequence[np.ndarray], binning: Binning
) -> np.ndarray:
    """Full-data equivalent of :func:`step_signatures_bitmap`."""
    return np.vstack([normalize(histogram(s, binning)) for s in steps])


def _pairwise_l1(signatures: np.ndarray) -> np.ndarray:
    """Distance matrix ``D[i, j] = ||sig_i - sig_j||_1`` (vectorised)."""
    return np.abs(signatures[:, None, :] - signatures[None, :, :]).sum(axis=2)


def select_timesteps_dtw(
    signatures: np.ndarray, k: int
) -> SelectionResult:
    """Minimal-representation-cost selection of ``k`` steps.

    DP state: ``cost[j][i]`` = minimal total distance of representing
    steps ``0..i`` using ``j+1`` selected steps, the last selected being
    ``i`` and representing a suffix of ``0..i``.  Each original step is
    assigned to the *last selected step at or before it* -- the monotone
    (DTW-style) warping of the reduced sequence onto the original.
    """
    signatures = np.asarray(signatures, dtype=np.float64)
    n = signatures.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n < k:
        raise ValueError(f"cannot select {k} of {n} time-steps")
    dist = _pairwise_l1(signatures)

    # suffix_cost[s][i]: cost of representing steps s..i by step s.
    # Computed incrementally: cumulative sums along rows.
    cum = np.cumsum(dist, axis=1)  # cum[s, i] = sum_{t<=i} dist[s, t]

    def represent_cost(s: int, lo: int, hi: int) -> float:
        """Cost of step s representing original steps lo..hi inclusive."""
        base = cum[s, hi] - (cum[s, lo - 1] if lo > 0 else 0.0)
        return float(base)

    INF = np.inf
    cost = np.full((k, n), INF)
    parent = np.full((k, n), -1, dtype=np.int64)
    # One selected step (step 0 pinned) represents the whole prefix.
    for i in range(n):
        if i == 0:
            cost[0, 0] = 0.0
    # cost[0, i] only valid for i == 0 (selection 0 is step 0); the
    # representation of later steps happens when we close the chain.
    for j in range(1, k):
        for i in range(j, n):
            best, arg = INF, -1
            for p in range(j - 1, i):
                if cost[j - 1, p] == INF:
                    continue
                # steps p..i-1 are represented by selection p
                c = cost[j - 1, p] + represent_cost(p, p, i - 1)
                if c < best:
                    best, arg = c, p
            cost[j, i] = best
            parent[j, i] = arg

    # Close the chain: the last selected step represents the tail.
    if k == 1:
        total = represent_cost(0, 0, n - 1)
        return SelectionResult([0], [float("nan")], [], "dtw", n)
    closing = np.full(n, INF)
    for i in range(k - 1, n):
        if cost[k - 1, i] < INF:
            closing[i] = cost[k - 1, i] + represent_cost(i, i, n - 1)
    end = int(np.argmin(closing))
    chain = [end]
    for j in range(k - 1, 0, -1):
        chain.append(int(parent[j, chain[-1]]))
    chain.reverse()
    scores = [float("nan")] + [
        float(dist[a, b]) for a, b in zip(chain, chain[1:])
    ]
    return SelectionResult(chain, scores, [], "dtw", int(n * (n - 1) // 2))


def select_timesteps_dtw_bitmap(
    indices: Sequence[BitmapIndex], k: int
) -> SelectionResult:
    """DTW-style selection from bitmap signatures."""
    return select_timesteps_dtw(step_signatures_bitmap(indices), k)


def select_timesteps_dtw_full(
    steps: Sequence[np.ndarray], k: int, binning: Binning
) -> SelectionResult:
    """DTW-style selection from raw data."""
    return select_timesteps_dtw(step_signatures_full(steps, binning), k)


def representation_cost(signatures: np.ndarray, selected: list[int]) -> float:
    """Total cost of a selection: each step charged to the last selected
    step at or before it (the objective :func:`select_timesteps_dtw`
    minimises).  Useful for comparing selectors."""
    signatures = np.asarray(signatures, dtype=np.float64)
    n = signatures.shape[0]
    if not selected or selected[0] != 0:
        raise ValueError("selection must start at step 0")
    dist = _pairwise_l1(signatures)
    total = 0.0
    reps = sorted(selected)
    ptr = 0
    for i in range(n):
        while ptr + 1 < len(reps) and reps[ptr + 1] <= i:
            ptr += 1
        total += dist[reps[ptr], i]
    return float(total)
