"""Streaming greedy time-step selection with O(1) resident artifacts.

The batch selectors in :mod:`repro.selection.greedy` hold all ``N``
artifacts until the end.  In a real in-situ run the interval structure is
known up front (``N`` and ``K`` are configured), so the greedy recurrence
can be evaluated *online*: as each step's bitmap arrives, compare it with
the previously *committed* selection, track only the best candidate of the
current interval, and discard everything else immediately.

Resident state is exactly three artifacts (previous selection, current
interval's best, the arriving step) -- the memory regime Figure 11
assumes -- and the output is **identical** to the batch greedy selector
(property-tested), because greedy only ever looks backwards at the last
committed step.
"""

from __future__ import annotations

from typing import Generic, TypeVar

import numpy as np

from repro.selection.greedy import SelectionResult
from repro.selection.partitioning import fixed_length_partitions, validate_partitions

Artifact = TypeVar("Artifact")


class StreamingSelector(Generic[Artifact]):
    """Online greedy selector over a known (n_steps, k) schedule.

    ``distinctness(prev, cand)`` scores how much new information the
    candidate artifact carries vs the previously selected one (higher =
    keep), exactly like the batch selector's metric.

    Usage::

        sel = StreamingSelector(n_steps=100, k=25, distinctness=score)
        for artifact in stream:     # bitmaps arriving step by step
            sel.push(artifact)
        result = sel.finalize()     # == batch greedy selection
    """

    def __init__(self, n_steps: int, k: int, distinctness) -> None:
        parts = fixed_length_partitions(n_steps, k)
        validate_partitions(parts, n_steps)
        self._intervals = parts
        self._distinctness = distinctness
        self.n_steps = n_steps
        self.k = k

        self._next_step = 0
        self._interval_idx = 0
        self._prev_artifact: Artifact | None = None
        self._best_step = -1
        self._best_score = -np.inf
        self._best_artifact: Artifact | None = None
        self._selected: list[int] = []
        self._scores: list[float] = []
        self._evaluations = 0
        self._finalized = False

    # ------------------------------------------------------------- stream
    @property
    def resident_artifacts(self) -> int:
        """How many artifacts the selector currently retains (<= 2)."""
        return len(self.resident())

    def resident(self) -> list[Artifact]:
        """The artifacts currently retained: the previously committed
        selection and/or the running interval's best, at most two.  Lets
        callers account the *actual* retained bytes instead of assuming
        every artifact is the same size as the newest one."""
        out = []
        if self._prev_artifact is not None:
            out.append(self._prev_artifact)
        if self._best_artifact is not None:
            out.append(self._best_artifact)
        return out

    def push(self, artifact: Artifact) -> None:
        """Consume the next time-step's artifact (order is implicit)."""
        if self._finalized:
            raise RuntimeError("selector already finalized")
        step = self._next_step
        if step >= self.n_steps:
            raise RuntimeError(f"received more than {self.n_steps} steps")
        self._next_step += 1

        interval = self._intervals[self._interval_idx]
        if step == 0:
            # T0 is committed unconditionally; it seeds the recurrence.
            self._commit(0, float("nan"), artifact)
        elif self._interval_idx > 0:
            # Steps after T0 inside interval 0 (k=1 only) are never
            # selectable, so they need no scoring.
            score = self._distinctness(self._prev_artifact, artifact)
            self._evaluations += 1
            if score > self._best_score:
                self._best_score = score
                self._best_step = step
                self._best_artifact = artifact

        # Interval boundary: commit the interval's winner.
        if step == interval.stop - 1 and self._interval_idx > 0:
            self._commit(self._best_step, self._best_score, self._best_artifact)

        if step == interval.stop - 1 and self._interval_idx + 1 < len(self._intervals):
            self._interval_idx += 1
            self._best_step = -1
            self._best_score = -np.inf
            self._best_artifact = None

    def _commit(self, step: int, score: float, artifact: Artifact | None) -> None:
        self._selected.append(step)
        self._scores.append(score)
        self._prev_artifact = artifact
        self._best_artifact = None

    # ------------------------------------------------------------- result
    def finalize(self) -> SelectionResult:
        """Return the selection; all steps must have been pushed."""
        if self._next_step != self.n_steps:
            raise RuntimeError(
                f"saw {self._next_step} of {self.n_steps} steps before finalize"
            )
        self._finalized = True
        return SelectionResult(
            self._selected,
            self._scores,
            self._intervals,
            "streaming",
            self._evaluations,
        )
