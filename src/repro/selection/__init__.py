"""Time-step selection (S10): greedy (Wang et al.) and DP (Tong et al.).

Online analysis of §3: pick ``K`` representative time-steps of ``N`` using
correlation metrics evaluated on either raw data or bitmaps.
"""

from repro.selection.dp import select_timesteps_dp_bitmap, select_timesteps_dp_full
from repro.selection.dtw import (
    select_timesteps_dtw,
    select_timesteps_dtw_bitmap,
    select_timesteps_dtw_full,
)
from repro.selection.importance import (
    IMPORTANCE_MEASURES,
    ImportanceMeasure,
    get_importance,
    importance_profile_bitmap,
)
from repro.selection.greedy import (
    SelectionResult,
    select_timesteps_bitmap,
    select_timesteps_full,
)
from repro.selection.metrics import (
    BUILTIN_METRICS,
    CONDITIONAL_ENTROPY,
    EMD_COUNT,
    EMD_SPATIAL,
    SelectionMetric,
    get_metric,
)
from repro.selection.partitioning import (
    fixed_length_partitions,
    information_volume_partitions,
    validate_partitions,
)
from repro.selection.streaming import StreamingSelector

__all__ = [
    "StreamingSelector",
    "select_timesteps_dtw",
    "select_timesteps_dtw_bitmap",
    "select_timesteps_dtw_full",
    "IMPORTANCE_MEASURES",
    "ImportanceMeasure",
    "get_importance",
    "importance_profile_bitmap",
    "SelectionResult",
    "select_timesteps_bitmap",
    "select_timesteps_full",
    "select_timesteps_dp_bitmap",
    "select_timesteps_dp_full",
    "BUILTIN_METRICS",
    "CONDITIONAL_ENTROPY",
    "EMD_COUNT",
    "EMD_SPATIAL",
    "SelectionMetric",
    "get_metric",
    "fixed_length_partitions",
    "information_volume_partitions",
    "validate_partitions",
]
