"""Dynamic-programming time-step selection (Tong et al. [31]).

§3.1 notes that besides the greedy method "Tong et al proposed a method
that uses dynamic programming", and that bitmaps can accelerate *any* such
algorithm because they only change how pairwise correlations are computed.
This module implements that alternative: choose ``K`` of ``N`` steps
(always including step 0) maximising the total distinctness along the
selected chain,

    max  sum_{i=1}^{K-1}  d(s_{i-1}, s_i)   with  s_0 = 0 < s_1 < ... .

``d`` is any :class:`~repro.selection.metrics.SelectionMetric` back end.
The DP is O(N^2 K) metric evaluations; a memoised pairwise cache keeps
each pair computed once.  Used by the ablation benchmark comparing greedy
vs DP selection quality.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.selection.greedy import SelectionResult
from repro.selection.metrics import SelectionMetric


def _dp_select(
    n_steps: int, k: int, distinctness: Callable[[int, int], float]
) -> tuple[list[int], list[float], int]:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n_steps < k:
        raise ValueError(f"cannot select {k} of {n_steps} time-steps")
    if k == 1:
        return [0], [float("nan")], 0

    cache: dict[tuple[int, int], float] = {}
    evaluations = 0

    def dist(a: int, b: int) -> float:
        nonlocal evaluations
        key = (a, b)
        if key not in cache:
            cache[key] = distinctness(a, b)
            evaluations += 1
        return cache[key]

    # score[j][i]: best total distinctness of a chain of j+1 selections
    # ending at step i (selection 0 is pinned to step 0).
    neg = -np.inf
    score = np.full((k, n_steps), neg)
    parent = np.full((k, n_steps), -1, dtype=np.int64)
    score[0, 0] = 0.0
    for j in range(1, k):
        # chains of j+1 picks need at least j steps before position i
        for i in range(j, n_steps - (k - 1 - j)):
            best, arg = neg, -1
            for p in range(j - 1, i):
                if score[j - 1, p] == neg:
                    continue
                cand = score[j - 1, p] + dist(p, i)
                if cand > best:
                    best, arg = cand, p
            score[j, i] = best
            parent[j, i] = arg

    end = int(np.argmax(score[k - 1]))
    if score[k - 1, end] == neg:
        raise AssertionError("DP table unreachable; bug in bounds")
    chain = [end]
    for j in range(k - 1, 0, -1):
        chain.append(int(parent[j, chain[-1]]))
    chain.reverse()
    scores = [float("nan")] + [dist(a, b) for a, b in zip(chain, chain[1:])]
    return chain, scores, evaluations


def select_timesteps_dp_full(
    steps: Sequence[np.ndarray],
    k: int,
    metric: SelectionMetric,
    binning: Binning,
) -> SelectionResult:
    """DP selection on raw arrays."""
    chain, scores, n_eval = _dp_select(
        len(steps), k, lambda a, b: metric.full(steps[a], steps[b], binning)
    )
    return SelectionResult(chain, scores, [], f"dp:{metric.name}", n_eval)


def select_timesteps_dp_bitmap(
    indices: Sequence[BitmapIndex],
    k: int,
    metric: SelectionMetric,
) -> SelectionResult:
    """DP selection on bitmaps only."""
    chain, scores, n_eval = _dp_select(
        len(indices), k, lambda a, b: metric.bitmap(indices[a], indices[b])
    )
    return SelectionResult(chain, scores, [], f"dp:{metric.name}", n_eval)
