"""Interval partitioning for greedy time-step selection (§3.1).

Wang et al.'s greedy selector first splits the ``N`` time-steps into ``K``
intervals, always anchoring the first interval to just the first time-step
(Figure 3: interval 1 = {T0}, the remaining steps split across the other
intervals), then picks one representative per interval.

Two partitioners, exactly as the paper lists them:

* **fixed-length** -- the remaining ``N - 1`` steps split into ``K - 1``
  intervals of (near-)equal length;
* **information-volume** -- interval boundaries chosen so that each
  interval accumulates (approximately) the same total *importance*
  (per-step Shannon entropy by default).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ensure_1d


def _check(n_steps: int, k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n_steps < k:
        raise ValueError(f"cannot select {k} of {n_steps} time-steps")


def fixed_length_partitions(n_steps: int, k: int) -> list[range]:
    """``K`` intervals over ``range(n_steps)``; the first is ``{0}``."""
    _check(n_steps, k)
    if k == 1:
        # Only T0 is selected; the single interval spans everything.
        return [range(0, n_steps)]
    rest = n_steps - 1
    intervals: list[range] = [range(0, 1)]
    # Spread `rest` steps over k-1 intervals, long intervals first.
    base, extra = divmod(rest, k - 1)
    start = 1
    for i in range(k - 1):
        length = base + (1 if i < extra else 0)
        intervals.append(range(start, start + length))
        start += length
    return intervals


def information_volume_partitions(importance: np.ndarray, k: int) -> list[range]:
    """Intervals of (approximately) equal cumulative importance.

    ``importance[i]`` is the per-step importance value (non-negative); the
    first interval is still ``{0}``, and boundaries are placed where the
    running sum over steps ``1..N-1`` crosses multiples of ``total/(K-1)``.
    Every interval is guaranteed non-empty.
    """
    imp = ensure_1d("importance", importance, dtype=np.float64)
    n_steps = imp.size
    _check(n_steps, k)
    if np.any(imp < 0):
        raise ValueError("importance values must be non-negative")
    if k == 1:
        return [range(0, n_steps)]

    rest = imp[1:]
    total = float(rest.sum())
    if total <= 0:  # degenerate: fall back to fixed-length
        return fixed_length_partitions(n_steps, k)

    intervals: list[range] = [range(0, 1)]
    target = total / (k - 1)
    start = 1
    acc = 0.0
    boundary = 1
    for i in range(k - 1):
        if i == k - 2:
            end = n_steps  # last interval takes the remainder
        else:
            want = (i + 1) * target
            while boundary < n_steps and acc + imp[boundary] <= want:
                acc += imp[boundary]
                boundary += 1
            # Never leave fewer steps than remaining intervals need.
            remaining_intervals = (k - 1) - (i + 1)
            boundary = min(boundary, n_steps - remaining_intervals)
            end = max(boundary, start + 1)
            boundary = end
        intervals.append(range(start, end))
        start = end
    return intervals


def validate_partitions(intervals: list[range], n_steps: int) -> None:
    """Assert the intervals tile ``range(n_steps)`` without gaps/overlaps."""
    pos = 0
    for iv in intervals:
        if iv.start != pos or len(iv) == 0:
            raise AssertionError(f"interval {iv} breaks the tiling at {pos}")
        pos = iv.stop
    if pos != n_steps:
        raise AssertionError(f"intervals cover {pos} of {n_steps} steps")
