"""Concurrent SQL-query executor over stored bitmap indices.

This is the serving path the paper's offline-analysis story implies
(§2.3, §4): once the in-situ pipeline has written selected indices, every
later query runs against those files -- never against raw data.  The
:class:`QueryService` takes the query strings of :mod:`repro.analysis.sql`
and executes them against a :class:`~repro.service.catalog.Catalog` in
four phases, each timed into :class:`QueryStats`:

* **parse** -- :func:`repro.analysis.sql.parse_query`;
* **plan** -- resolve FROM variables through the catalog, validate
  predicates, and compile them to the *minimal* set of bin vectors:
  a ``COUNT`` query touches only the bins its predicates overlap, while
  distribution metrics (``MI``/``CE``/``EMD``) need every bin of both
  variables for the joint histogram;
* **load** -- fetch each planned bitvector through the shared
  :class:`~repro.service.cache.BitvectorCache`; misses fall through to
  :class:`~repro.bitmap.serialization.LazyBitmapIndex`, reading only that
  record's byte range;
* **execute** -- combine masks with the fused k-way density-dispatched
  kernels (:func:`~repro.bitmap.kernels.auto_op_many` /
  :func:`~repro.bitmap.kernels.auto_count_many`: every operand decodes
  once into a single reduce sweep) and evaluate the metric.

Concurrency: queries run on a thread pool behind a *bounded* admission
count -- both :meth:`QueryService.submit` and :meth:`QueryService.execute`
raise :class:`ServiceOverloadError` once ``max_pending`` queries are in
flight instead of queueing without bound, so an overloaded server degrades
by rejecting, not by dying.  The check and the increment happen atomically
under one lock, so hammering the boundary from many threads can never
admit more than ``max_pending`` queries.

Two capabilities feed the sharded network server
(:mod:`repro.service.server`):

* **mask results** -- :meth:`QueryService.execute_mask` returns the
  WHERE clause's combined element bitvector (the SELECT result *set*)
  alongside its popcount;
* **global variables** -- over a cluster store (``rank_NNNN/<var>``
  slabs) an *unqualified* variable name scatter-gathers across every
  rank: per-slab partials merge via
  :func:`~repro.bitmap.builder.splice_bitvectors` (masks) and exact
  integer count-merge (COUNT and the joint histograms behind MI/CE/EMD),
  so results are bit-identical to a single-node evaluation over the
  undecomposed data.  :meth:`QueryService.rank_partial` exposes one
  rank's contribution -- the unit of work a shard worker executes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.queries import spatial_subset_mask
from repro.analysis.sql import (
    Query,
    QueryError,
    clamp_subset,
    execute_query,
    finish_metric,
    parse_query,
    query_joint_counts,
)
from repro.bitmap.builder import splice_bitvectors
from repro.bitmap.codec import BitVectorAny
from repro.bitmap.index import BitmapIndex, overlapping_bins
from repro.bitmap.kernels import auto_count_many, auto_op_many
from repro.bitmap.ordering import RowOrdering, orderings_compatible
from repro.bitmap.serialization import LazyBitmapIndex
from repro.bitmap.wah import WAHBitVector
from repro.bitmap.zorder import ZOrderLayout
from repro.cluster.merge import merge_query_counts
from repro.service.cache import BitvectorCache, CacheKey
from repro.service.catalog import Catalog, CatalogEntry, CatalogError


class ServiceOverloadError(RuntimeError):
    """Raised when a query is rejected because the service is saturated."""

    def __init__(self, pending: int, capacity: int) -> None:
        super().__init__(
            f"query rejected: {pending} queries already in flight "
            f"(capacity {capacity}); retry later"
        )
        self.pending = pending
        self.capacity = capacity


@dataclass
class QueryStats:
    """Per-query cost accounting across the four execution phases."""

    parse_s: float = 0.0
    plan_s: float = 0.0
    load_s: float = 0.0
    execute_s: float = 0.0
    bytes_loaded: int = 0  # record bytes read from disk (cache misses)
    bitvectors_planned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_s(self) -> float:
        return self.parse_s + self.plan_s + self.load_s + self.execute_s

    def absorb(self, other: "QueryStats") -> None:
        """Accumulate another phase breakdown into this one.

        The scatter-gather front end sums the per-shard stats: the result
        reads as cumulative work across every process that touched the
        query (so phase times can exceed wall clock, like CPU time).
        """
        self.parse_s += other.parse_s
        self.plan_s += other.plan_s
        self.load_s += other.load_s
        self.execute_s += other.execute_s
        self.bytes_loaded += other.bytes_loaded
        self.bitvectors_planned += other.bitvectors_planned
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses

    def as_dict(self) -> dict:
        """JSON-ready form for the wire protocol."""
        return {
            "parse_s": self.parse_s,
            "plan_s": self.plan_s,
            "load_s": self.load_s,
            "execute_s": self.execute_s,
            "total_s": self.total_s,
            "bytes_loaded": self.bytes_loaded,
            "bitvectors_planned": self.bitvectors_planned,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def summary(self) -> str:
        return (
            f"total={self.total_s * 1e3:.2f}ms "
            f"(parse={self.parse_s * 1e3:.2f} plan={self.plan_s * 1e3:.2f} "
            f"load={self.load_s * 1e3:.2f} exec={self.execute_s * 1e3:.2f}) "
            f"bitvectors={self.bitvectors_planned} "
            f"cache={self.cache_hits}h/{self.cache_misses}m "
            f"loaded={self.bytes_loaded}B"
        )


@dataclass
class QueryResult:
    """A finished query: its value plus where the time and bytes went.

    ``mask`` is populated only by :meth:`QueryService.execute_mask` (and
    the server's ``mask`` op): the combined WHERE bitvector whose
    popcount is ``value``.
    """

    value: float
    text: str
    metric: str
    step: int
    stats: QueryStats
    mask: WAHBitVector | None = None


@dataclass
class RankPartial:
    """One rank slab's contribution to a global scatter-gather query.

    Exactly one of ``count`` / ``joint`` / ``mask`` is set, per ``kind``:
    ``"count"`` for COUNT queries, ``"joint"`` for metric queries
    (MI/CE/EMD joint histograms), ``"mask"`` for mask queries.  Partials
    merge with :func:`merge_rank_partials`; ``same_scale`` carries the
    per-rank EMD binning-scale check to the merge point.
    """

    rank: str
    kind: str
    count: float | None = None
    joint: np.ndarray | None = None
    mask: WAHBitVector | None = None
    same_scale: bool = True
    stats: QueryStats = field(default_factory=QueryStats)


@dataclass(frozen=True)
class GlobalQuery:
    """A query over unqualified (multi-rank) variables: the resolved
    step plus the rank directories to scatter over, in slab order."""

    step: int
    ranks: tuple[str, ...]


def partial_kind(metric: str, want_mask: bool) -> str:
    """Which partial a rank must produce for a metric."""
    if want_mask:
        return "mask"
    return "count" if metric == "COUNT" else "joint"


def qualify_query(query: Query, rank: str) -> Query:
    """Rewrite a global query onto one rank's qualified variable names."""
    prefix = f"{rank}/"
    return Query(
        metric=query.metric,
        var_a=prefix + query.var_a,
        var_b=prefix + query.var_b,
        value_predicates={
            prefix + var: subset
            for var, subset in query.value_predicates.items()
        },
        region=query.region,
        text=query.text,
    )


def resolve_global(
    catalog: Catalog, query: Query, step: int | None
) -> GlobalQuery | None:
    """Decide whether a query needs the scatter-gather path.

    Returns ``None`` when ``var_a`` resolves directly (single-file
    queries, including explicitly rank-qualified names -- the direct
    name always wins over a global interpretation).  Otherwise looks for
    rank-qualified members; both FROM variables must decompose over the
    same rank set at one step.  Raises :class:`QueryError` for global
    queries that cannot merge (REGION clauses, mismatched rank sets).
    Shared by the in-process service and the network front end so both
    route identically.
    """
    try:
        catalog.resolve(query.var_a, step)
        return None
    except CatalogError:
        pass
    members_a = catalog.rank_members(query.var_a, step)
    if not members_a:
        return None
    resolved_step = members_a[0].step
    for var in query.value_predicates:
        if var not in (query.var_a, query.var_b):
            raise QueryError(
                f"predicate on {var!r}, which is not in the FROM clause"
            )
    if query.region is not None:
        raise QueryError(
            "REGION is not supported for multi-rank variables: a Z-order "
            "layout does not span a slab-decomposed store"
        )
    ranks_a = tuple(e.variable.split("/", 1)[0] for e in members_a)
    if query.var_b == query.var_a:
        return GlobalQuery(step=resolved_step, ranks=ranks_a)
    members_b = catalog.rank_members(query.var_b, resolved_step)
    ranks_b = tuple(e.variable.split("/", 1)[0] for e in members_b)
    if ranks_b != ranks_a:
        raise QueryError(
            f"FROM variables decompose over different rank sets: "
            f"{query.var_a!r} on {list(ranks_a)}, "
            f"{query.var_b!r} on {list(ranks_b)}"
        )
    return GlobalQuery(step=resolved_step, ranks=ranks_a)


def merge_rank_partials(
    metric: str, want_mask: bool, partials: list[RankPartial]
) -> tuple[float, WAHBitVector | None]:
    """Gather per-rank partials into the final result.

    Masks splice in rank (slab) order via
    :func:`~repro.bitmap.builder.splice_bitvectors` -- byte-identical to
    a mask computed over the undecomposed store; COUNT and joint
    histograms merge by exact integer summation
    (:func:`~repro.cluster.merge.merge_query_counts`) before the metric
    formula runs once on the global counts.  Used verbatim by both the
    in-process path and the network front end.
    """
    if not partials:
        raise QueryError("global query produced no rank partials")
    if want_mask:
        mask = splice_bitvectors([p.mask for p in partials])
        return float(mask.count()), mask
    if metric == "COUNT":
        return float(sum(p.count for p in partials)), None
    if metric == "EMD" and not all(p.same_scale for p in partials):
        raise QueryError("EMD requires both variables on one binning scale")
    joint = merge_query_counts([p.joint for p in partials])
    return finish_metric(metric, joint), None


@contextmanager
def _timed(stats: QueryStats, phase: str):
    t0 = time.perf_counter()
    try:
        yield
    finally:
        setattr(stats, phase, getattr(stats, phase) + time.perf_counter() - t0)


@dataclass
class _Plan:
    """Resolved execution plan: which bins of which stored files to load."""

    query: Query
    step: int
    entries: dict[str, CatalogEntry]
    lazies: dict[str, LazyBitmapIndex]
    #: variable -> bin ids to load (minimal for COUNT, all bins otherwise)
    needed: dict[str, np.ndarray]
    #: variable -> bin ids forming that variable's predicate mask
    predicate_bins: dict[str, np.ndarray]
    count_only: bool = False
    n_elements: int = 0
    #: shared row ordering of the stored files (None = simulation order).
    #: Bin vectors live in ordered space; result masks are de-permuted
    #: back to simulation order before they cross any boundary.
    ordering: RowOrdering | None = None


class QueryService:
    """Serves :mod:`repro.analysis.sql` queries from a stored catalog.

    Parameters
    ----------
    catalog:
        A :class:`Catalog`, or a store root path to open one over.
    cache:
        Shared :class:`BitvectorCache`; built from ``cache_bytes`` when
        omitted.
    max_workers:
        Thread-pool width for :meth:`submit`.
    max_pending:
        Hard cap on in-flight (queued + running) submitted queries;
        beyond it :meth:`submit` raises :class:`ServiceOverloadError`.
    layout:
        Optional :class:`ZOrderLayout` for ``REGION`` predicates.
    access:
        Optional :class:`~repro.service.hotset.AccessStats` recording
        every bitvector lookup (threaded into the cache) -- the hot-set
        replication subsystem's accounting feed.
    replicas:
        Optional :class:`~repro.service.hotset.ReplicaStore` consulted
        before the cache; holds manager-placed copies of hot bitvectors
        from rank slabs this service does not own.
    """

    def __init__(
        self,
        catalog: Catalog | Path | str,
        *,
        cache: BitvectorCache | None = None,
        cache_bytes: int = 64 << 20,
        max_workers: int = 4,
        max_pending: int = 32,
        layout: ZOrderLayout | None = None,
        access=None,
        replicas=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"need >= 1 worker, got {max_workers}")
        if max_pending < 1:
            raise ValueError(f"need max_pending >= 1, got {max_pending}")
        self.catalog = (
            catalog if isinstance(catalog, Catalog) else Catalog.open(catalog)
        )
        self.cache = cache if cache is not None else BitvectorCache(cache_bytes)
        self.access = access
        if access is not None and self.cache.access is None:
            self.cache.access = access
        self.replicas = replicas
        self.layout = layout
        self.max_pending = int(max_pending)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._admission = threading.Lock()
        self._pending = 0
        self._files_lock = threading.Lock()
        self._files: dict[str, LazyBitmapIndex] = {}
        self._served = 0
        self._rejected = 0
        self._busy_s = 0.0
        self._closed = False

    # ----------------------------------------------------------- admission
    def _admit(self) -> None:
        """Atomically claim one admission slot or reject.

        Both the check and the increment happen under ``_admission``, so
        any mix of concurrent :meth:`execute` / :meth:`execute_mask` /
        :meth:`submit` callers can never push the in-flight count past
        ``max_pending``.
        """
        with self._admission:
            if self._pending >= self.max_pending:
                self._rejected += 1
                raise ServiceOverloadError(self._pending, self.max_pending)
            self._pending += 1

    def _unadmit(self) -> None:
        with self._admission:
            self._pending -= 1

    # ----------------------------------------------------------- frontend
    def execute(self, sql: str, *, step: int | None = None) -> QueryResult:
        """Run one query synchronously in the calling thread.

        Counts against ``max_pending`` like :meth:`submit` does: a server
        fanning synchronous ``execute`` calls across its own threads gets
        the same bounded-admission guarantee as the pool path.
        """
        self._admit()
        try:
            return self._run(sql, step)
        finally:
            self._unadmit()

    def execute_mask(self, sql: str, *, step: int | None = None) -> QueryResult:
        """Run a COUNT query and also return its WHERE bitvector.

        The result's ``mask`` is the combined predicate bitvector -- the
        query's element *set* -- and ``value`` is its popcount.  Only
        ``COUNT`` queries have a mask result (a metric's result is a
        scalar over a joint histogram, not a row set).
        """
        self._admit()
        try:
            return self._run(sql, step, want_mask=True)
        finally:
            self._unadmit()

    def submit(self, sql: str, *, step: int | None = None) -> "Future[QueryResult]":
        """Enqueue one query on the pool; bounded, rejecting on overload."""
        if self._closed:
            raise RuntimeError("QueryService is closed")
        self._admit()
        try:
            future = self._pool.submit(self._run, sql, step)
        except BaseException:
            self._unadmit()
            raise
        future.add_done_callback(lambda _f: self._unadmit())
        return future

    def execute_many(
        self, sqls: list[str], *, step: int | None = None
    ) -> list[QueryResult]:
        """Run a batch concurrently (blocking); admission still applies."""
        futures = [self.submit(sql, step=step) for sql in sqls]
        return [f.result() for f in futures]

    def rank_partial(
        self,
        sql: str,
        *,
        rank: str,
        step: int | None = None,
        want_mask: bool = False,
    ) -> RankPartial:
        """One rank slab's partial for a global query -- the shard unit.

        Parses ``sql``, rewrites it onto ``rank``'s qualified variables,
        and evaluates just that slab, returning the summable partial
        (count / joint histogram / slab mask) for
        :func:`merge_rank_partials`.  Called by shard workers
        (:mod:`repro.service.shard`); also the building block of this
        service's own in-process global path, which keeps the two
        byte-identical by construction.
        """
        query = parse_query(sql)
        if want_mask and query.metric != "COUNT":
            raise QueryError(
                f"mask results require COUNT, not {query.metric}"
            )
        t0 = time.thread_time()
        for attempt in (0, 1):
            try:
                partial = self._rank_partial(query, rank, step, want_mask)
                self._busy_s += time.thread_time() - t0
                return partial
            except FileNotFoundError as exc:
                if attempt:
                    raise QueryError(
                        f"store file vanished and rebuild did not recover "
                        f"it: {exc}"
                    ) from exc
                self._refresh_catalog()

    # ------------------------------------------------------------- phases
    def _run(
        self, sql: str, step: int | None, want_mask: bool = False
    ) -> QueryResult:
        t0 = time.thread_time()
        stats = QueryStats()
        with _timed(stats, "parse_s"):
            query = parse_query(sql)
        if want_mask and query.metric != "COUNT":
            raise QueryError(
                f"mask results require COUNT, not {query.metric}"
            )
        # A lookup can trip over files deleted after catalog.json was
        # written.  The manifest is derived state: rebuild it once and
        # retry; a second failure means the data is really gone and
        # surfaces as a clean QueryError from the re-plan.
        for attempt in (0, 1):
            try:
                result = self._attempt(query, step, want_mask, stats)
                break
            except FileNotFoundError as exc:
                if attempt:
                    raise QueryError(
                        f"store file vanished and rebuild did not recover "
                        f"it: {exc}"
                    ) from exc
                self._refresh_catalog()
        self._served += 1
        self._busy_s += time.thread_time() - t0
        return result

    def _attempt(
        self,
        query: Query,
        step: int | None,
        want_mask: bool,
        stats: QueryStats,
    ) -> QueryResult:
        glob = resolve_global(self.catalog, query, step)
        if glob is not None:
            return self._run_global(query, glob, want_mask, stats)

        with _timed(stats, "plan_s"):
            plan = self._plan(query, step)
        with _timed(stats, "load_s"):
            loaded = self._load(plan, stats)
        with _timed(stats, "execute_s"):
            if want_mask:
                mask = self._mask_vector(plan, loaded)
                value, result_mask = float(mask.count()), mask
            else:
                value, result_mask = self._execute(plan, loaded), None
        return QueryResult(
            value=value,
            text=query.text,
            metric=query.metric,
            step=plan.step,
            stats=stats,
            mask=result_mask,
        )

    def _run_global(
        self,
        query: Query,
        glob: GlobalQuery,
        want_mask: bool,
        stats: QueryStats,
    ) -> QueryResult:
        """Scatter over rank slabs in-process, then the exact merge."""
        partials = [
            self._rank_partial(query, rank, glob.step, want_mask)
            for rank in glob.ranks
        ]
        for partial in partials:
            stats.absorb(partial.stats)
        with _timed(stats, "execute_s"):
            value, mask = merge_rank_partials(query.metric, want_mask, partials)
        return QueryResult(
            value=value,
            text=query.text,
            metric=query.metric,
            step=glob.step,
            stats=stats,
            mask=mask,
        )

    def _rank_partial(
        self, query: Query, rank: str, step: int | None, want_mask: bool
    ) -> RankPartial:
        stats = QueryStats()
        local = qualify_query(query, rank)
        with _timed(stats, "plan_s"):
            plan = self._plan(local, step)
        with _timed(stats, "load_s"):
            loaded = self._load(plan, stats)
        kind = partial_kind(query.metric, want_mask)
        with _timed(stats, "execute_s"):
            if kind == "mask":
                return RankPartial(
                    rank=rank,
                    kind=kind,
                    mask=self._mask_vector(plan, loaded),
                    stats=stats,
                )
            if kind == "count":
                return RankPartial(
                    rank=rank,
                    kind=kind,
                    count=self._execute_count(plan, loaded),
                    stats=stats,
                )
            joint, same_scale = self._joint_partial(plan, loaded)
            return RankPartial(
                rank=rank,
                kind=kind,
                joint=joint,
                same_scale=same_scale,
                stats=stats,
            )

    def _plan(self, query: Query, step: int | None) -> _Plan:
        try:
            entry_a = self.catalog.resolve(query.var_a, step)
            resolved_step = entry_a.step if step is None else step
            entry_b = self.catalog.resolve(query.var_b, resolved_step)
        except CatalogError as exc:
            raise QueryError(f"unknown variable in FROM clause: {exc}") from exc
        entries = {query.var_a: entry_a, query.var_b: entry_b}
        if entry_a.n_elements != entry_b.n_elements:
            raise QueryError("FROM variables cover different element sets")
        for var in query.value_predicates:
            if var not in entries:
                raise QueryError(
                    f"predicate on {var!r}, which is not in the FROM clause"
                )
        if query.region is not None and self.layout is None:
            raise QueryError("REGION clause requires a ZOrderLayout")

        lazies = {var: self._open(entries[var]) for var in entries}
        ordering_a = lazies[query.var_a].ordering
        ordering_b = lazies[query.var_b].ordering
        if not orderings_compatible(ordering_a, ordering_b):
            raise QueryError(
                "FROM variables are stored under different row orderings; "
                "joint results would not be row-aligned"
            )
        predicate_bins: dict[str, np.ndarray] = {}
        for var, subset in query.value_predicates.items():
            clamped = clamp_subset(subset, lazies[var].binning)
            predicate_bins[var] = overlapping_bins(
                lazies[var].binning, clamped.lo, clamped.hi
            )

        count_only = query.metric == "COUNT"
        if count_only:
            needed = {var: bins for var, bins in predicate_bins.items()}
        else:
            needed = {
                var: np.arange(lazies[var].n_bins, dtype=np.int64)
                for var in entries
            }
        return _Plan(
            query=query,
            step=resolved_step,
            entries=entries,
            lazies=lazies,
            needed=needed,
            predicate_bins=predicate_bins,
            count_only=count_only,
            n_elements=entry_a.n_elements,
            ordering=ordering_a if ordering_a is not None else ordering_b,
        )

    def _load(
        self, plan: _Plan, stats: QueryStats
    ) -> dict[str, dict[int, BitVectorAny]]:
        loaded: dict[str, dict[int, BitVectorAny]] = {}
        for var, bins in plan.needed.items():
            entry = plan.entries[var]
            lazy = plan.lazies[var]
            path = str(self.catalog.path_of(entry))
            vectors: dict[int, BitVectorAny] = {}
            for bin_id in bins:
                bin_id = int(bin_id)
                key = CacheKey.for_bin(path, var, bin_id)
                if self.replicas is not None:
                    replica = self.replicas.get(key)
                    if replica is not None:
                        # Manager-placed copy: counts as a hit (no disk
                        # touched) and still feeds the access accounting.
                        if self.access is not None:
                            self.access.record(key)
                        stats.cache_hits += 1
                        vectors[bin_id] = replica
                        continue
                vector, hit = self.cache.get_or_load(
                    key, lambda b=bin_id: lazy.get(b)
                )
                if hit:
                    stats.cache_hits += 1
                else:
                    stats.cache_misses += 1
                    stats.bytes_loaded += lazy.nbytes_of(bin_id)
                vectors[bin_id] = vector
            stats.bitvectors_planned += len(vectors)
            loaded[var] = vectors
        return loaded

    def _execute(
        self, plan: _Plan, loaded: dict[str, dict[int, BitVectorAny]]
    ) -> float:
        query = plan.query
        if plan.count_only:
            return self._execute_count(plan, loaded)
        indices = {
            var: BitmapIndex(
                plan.lazies[var].binning,
                [loaded[var][b] for b in range(plan.lazies[var].n_bins)],
                plan.n_elements,
                plan.lazies[var].ordering,
            )
            for var in plan.entries
        }
        return execute_query(query, indices, layout=self.layout)

    def _execute_count(
        self, plan: _Plan, loaded: dict[str, dict[int, BitVectorAny]]
    ) -> float:
        """COUNT from the minimal bin set: OR within a predicate, AND across.

        Matches ``execute_query``'s ``joint.sum()`` exactly -- the bins
        partition the element set, so the joint histogram's total is the
        popcount of the combined mask -- without ever touching bins the
        predicates don't overlap.  Both folds run on the fused k-way
        kernels (:mod:`repro.bitmap.kernels`): each bin vector decodes
        once into one reduce sweep, and the final AND never materialises
        a result vector at all (``auto_count_many``).
        """
        n = plan.n_elements
        masks: list[WAHBitVector] = []
        for var, bins in plan.predicate_bins.items():
            if bins.size == 0:
                return 0.0  # predicate overlaps no bin: empty result set
            vectors = [loaded[var][int(b)] for b in bins]
            masks.append(auto_op_many(vectors, "or"))
        if plan.query.region is not None:
            region = spatial_subset_mask(n, plan.query.region, self.layout)
            if plan.ordering is not None:
                # Bin vectors live in ordered space; the grid layout
                # lives in simulation order.  Move the region predicate
                # into ordered space (counts are space-invariant).
                region = plan.ordering.permute_mask(region)
            masks.append(region)
        if not masks:
            return float(n)
        if len(masks) == 1:
            return float(masks[0].count())
        return float(auto_count_many(masks, "and"))

    def _mask_vector(
        self, plan: _Plan, loaded: dict[str, dict[int, BitVectorAny]]
    ) -> WAHBitVector:
        """The combined WHERE bitvector from the minimal COUNT plan.

        Same combination as :meth:`_execute_count` (OR within each
        variable's predicate bins, AND across variables and the region)
        but materialising the vector instead of short-circuiting to a
        popcount.

        The returned mask is always in *simulation* order: when the
        stored file was row-ordered, the combined ordered-space vector is
        de-permuted here, rank-locally -- so splice, the wire protocol,
        and every caller stay ordering-agnostic, even when a store mixes
        ordered and unordered ranks.
        """
        n = plan.n_elements
        masks: list[WAHBitVector] = []
        for var, bins in plan.predicate_bins.items():
            if bins.size == 0:
                return WAHBitVector.zeros(n)
            vectors = [loaded[var][int(b)] for b in bins]
            masks.append(auto_op_many(vectors, "or"))
        if plan.query.region is not None:
            region = spatial_subset_mask(n, plan.query.region, self.layout)
            if plan.ordering is not None:
                region = plan.ordering.permute_mask(region)
            masks.append(region)
        if not masks:
            return WAHBitVector.ones(n)
        mask = auto_op_many(masks, "and") if len(masks) > 1 else masks[0]
        if plan.ordering is not None:
            mask = plan.ordering.unpermute_mask(mask)
        return mask

    def _joint_partial(
        self, plan: _Plan, loaded: dict[str, dict[int, BitVectorAny]]
    ) -> tuple[np.ndarray, bool]:
        """One slab's restricted joint histogram (+ binning-scale flag)."""
        indices = {
            var: BitmapIndex(
                plan.lazies[var].binning,
                [loaded[var][b] for b in range(plan.lazies[var].n_bins)],
                plan.n_elements,
                plan.lazies[var].ordering,
            )
            for var in plan.entries
        }
        index_a = indices[plan.query.var_a]
        index_b = indices[plan.query.var_b]
        joint = query_joint_counts(
            plan.query, index_a, index_b, layout=self.layout
        )
        return joint, index_a.binning == index_b.binning

    def fetch_bitvector(
        self, file: str, variable: str, bin_id: int, level: int = 0
    ) -> BitVectorAny:
        """Load one bitvector by cache identity -- the replication unit.

        The owner-side half of a replica push: the manager asks the
        owning shard for the raw vector (served from replica slot, cache,
        or a single-record disk read) and forwards its word buffer to the
        holders.  ``file`` must be a store file this service can open.
        """
        key = CacheKey.for_bin(file, variable, bin_id, level)
        if self.replicas is not None:
            replica = self.replicas.get(key)
            if replica is not None:
                return replica
        with self._files_lock:
            lazy = self._files.get(key.file)
            if lazy is None:
                lazy = LazyBitmapIndex(key.file)
                self._files[key.file] = lazy
        vector, _ = self.cache.get_or_load(key, lambda: lazy.get(key.bin))
        return vector

    # ------------------------------------------------------------ backend
    def _open(self, entry: CatalogEntry) -> LazyBitmapIndex:
        """Shared per-file lazy reader (header parsed once, then reused)."""
        path = str(self.catalog.path_of(entry))
        with self._files_lock:
            lazy = self._files.get(path)
            if lazy is None:
                lazy = LazyBitmapIndex(path)
                self._files[path] = lazy
            return lazy

    def _refresh_catalog(self) -> None:
        """Recover from store files vanishing behind the manifest.

        Closes and drops every open reader whose file is gone (an open
        handle would keep serving deleted bytes on POSIX, silently
        answering queries from a directory that no longer exists), evicts
        their cache entries, then rebuilds the catalog from what is still
        on disk.
        """
        with self._files_lock:
            vanished = [
                path for path in self._files if not Path(path).exists()
            ]
            for path in vanished:
                self._files.pop(path).close()
        for path in vanished:
            self.cache.invalidate_file(path)
        if self.replicas is not None:
            # Replica bytes were read from files that may have been
            # rewritten; past a rebuild they are not trusted.
            self.replicas.clear()
        self.catalog.refresh()

    def file_bytes_read(self) -> int:
        """Total record bytes read from disk across every open file."""
        with self._files_lock:
            return sum(lazy.bytes_read for lazy in self._files.values())

    def file_reads(self) -> int:
        """Total bitvector record reads issued against the store."""
        with self._files_lock:
            return sum(lazy.reads for lazy in self._files.values())

    def service_stats(self) -> dict[str, int]:
        with self._admission:
            pending = self._pending
        return {
            "served": self._served,
            "rejected": self._rejected,
            "pending": pending,
            "open_files": len(self._files),
            "busy_s": self._busy_s,
        }

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        with self._files_lock:
            for lazy in self._files.values():
                lazy.close()
            self._files.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryService({self.catalog!r}, cache={self.cache.stats()!r}, "
            f"stats={self.service_stats()!r})"
        )
