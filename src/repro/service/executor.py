"""Concurrent SQL-query executor over stored bitmap indices.

This is the serving path the paper's offline-analysis story implies
(§2.3, §4): once the in-situ pipeline has written selected indices, every
later query runs against those files -- never against raw data.  The
:class:`QueryService` takes the query strings of :mod:`repro.analysis.sql`
and executes them against a :class:`~repro.service.catalog.Catalog` in
four phases, each timed into :class:`QueryStats`:

* **parse** -- :func:`repro.analysis.sql.parse_query`;
* **plan** -- resolve FROM variables through the catalog, validate
  predicates, and compile them to the *minimal* set of bin vectors:
  a ``COUNT`` query touches only the bins its predicates overlap, while
  distribution metrics (``MI``/``CE``/``EMD``) need every bin of both
  variables for the joint histogram;
* **load** -- fetch each planned bitvector through the shared
  :class:`~repro.service.cache.BitvectorCache`; misses fall through to
  :class:`~repro.bitmap.serialization.LazyBitmapIndex`, reading only that
  record's byte range;
* **execute** -- combine masks with the density-dispatched kernels
  (:func:`~repro.bitmap.ops.auto_op` / :func:`~repro.bitmap.ops.auto_count`)
  and evaluate the metric.

Concurrency: queries run on a thread pool behind a *bounded* admission
count -- :meth:`QueryService.submit` raises :class:`ServiceOverloadError`
once ``max_pending`` queries are in flight instead of queueing without
bound, so an overloaded server degrades by rejecting, not by dying.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import reduce
from pathlib import Path

import numpy as np

from repro.analysis.queries import spatial_subset_mask
from repro.analysis.sql import Query, QueryError, clamp_subset, execute_query, parse_query
from repro.bitmap.index import BitmapIndex, overlapping_bins
from repro.bitmap.ops import auto_count, auto_op
from repro.bitmap.serialization import LazyBitmapIndex
from repro.bitmap.wah import WAHBitVector
from repro.bitmap.zorder import ZOrderLayout
from repro.service.cache import BitvectorCache, CacheKey
from repro.service.catalog import Catalog, CatalogEntry, CatalogError


class ServiceOverloadError(RuntimeError):
    """Raised when a query is rejected because the service is saturated."""

    def __init__(self, pending: int, capacity: int) -> None:
        super().__init__(
            f"query rejected: {pending} queries already in flight "
            f"(capacity {capacity}); retry later"
        )
        self.pending = pending
        self.capacity = capacity


@dataclass
class QueryStats:
    """Per-query cost accounting across the four execution phases."""

    parse_s: float = 0.0
    plan_s: float = 0.0
    load_s: float = 0.0
    execute_s: float = 0.0
    bytes_loaded: int = 0  # record bytes read from disk (cache misses)
    bitvectors_planned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_s(self) -> float:
        return self.parse_s + self.plan_s + self.load_s + self.execute_s

    def summary(self) -> str:
        return (
            f"total={self.total_s * 1e3:.2f}ms "
            f"(parse={self.parse_s * 1e3:.2f} plan={self.plan_s * 1e3:.2f} "
            f"load={self.load_s * 1e3:.2f} exec={self.execute_s * 1e3:.2f}) "
            f"bitvectors={self.bitvectors_planned} "
            f"cache={self.cache_hits}h/{self.cache_misses}m "
            f"loaded={self.bytes_loaded}B"
        )


@dataclass
class QueryResult:
    """A finished query: its value plus where the time and bytes went."""

    value: float
    text: str
    metric: str
    step: int
    stats: QueryStats


@dataclass
class _Plan:
    """Resolved execution plan: which bins of which stored files to load."""

    query: Query
    step: int
    entries: dict[str, CatalogEntry]
    lazies: dict[str, LazyBitmapIndex]
    #: variable -> bin ids to load (minimal for COUNT, all bins otherwise)
    needed: dict[str, np.ndarray]
    #: variable -> bin ids forming that variable's predicate mask
    predicate_bins: dict[str, np.ndarray]
    count_only: bool = False
    n_elements: int = 0


class QueryService:
    """Serves :mod:`repro.analysis.sql` queries from a stored catalog.

    Parameters
    ----------
    catalog:
        A :class:`Catalog`, or a store root path to open one over.
    cache:
        Shared :class:`BitvectorCache`; built from ``cache_bytes`` when
        omitted.
    max_workers:
        Thread-pool width for :meth:`submit`.
    max_pending:
        Hard cap on in-flight (queued + running) submitted queries;
        beyond it :meth:`submit` raises :class:`ServiceOverloadError`.
    layout:
        Optional :class:`ZOrderLayout` for ``REGION`` predicates.
    """

    def __init__(
        self,
        catalog: Catalog | Path | str,
        *,
        cache: BitvectorCache | None = None,
        cache_bytes: int = 64 << 20,
        max_workers: int = 4,
        max_pending: int = 32,
        layout: ZOrderLayout | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"need >= 1 worker, got {max_workers}")
        if max_pending < 1:
            raise ValueError(f"need max_pending >= 1, got {max_pending}")
        self.catalog = (
            catalog if isinstance(catalog, Catalog) else Catalog.open(catalog)
        )
        self.cache = cache if cache is not None else BitvectorCache(cache_bytes)
        self.layout = layout
        self.max_pending = int(max_pending)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._admission = threading.Lock()
        self._pending = 0
        self._files_lock = threading.Lock()
        self._files: dict[str, LazyBitmapIndex] = {}
        self._served = 0
        self._rejected = 0
        self._closed = False

    # ----------------------------------------------------------- frontend
    def execute(self, sql: str, *, step: int | None = None) -> QueryResult:
        """Run one query synchronously in the calling thread."""
        return self._run(sql, step)

    def submit(self, sql: str, *, step: int | None = None) -> "Future[QueryResult]":
        """Enqueue one query on the pool; bounded, rejecting on overload."""
        if self._closed:
            raise RuntimeError("QueryService is closed")
        with self._admission:
            if self._pending >= self.max_pending:
                self._rejected += 1
                raise ServiceOverloadError(self._pending, self.max_pending)
            self._pending += 1
        try:
            future = self._pool.submit(self._run, sql, step)
        except BaseException:
            with self._admission:
                self._pending -= 1
            raise
        future.add_done_callback(self._release)
        return future

    def execute_many(
        self, sqls: list[str], *, step: int | None = None
    ) -> list[QueryResult]:
        """Run a batch concurrently (blocking); admission still applies."""
        futures = [self.submit(sql, step=step) for sql in sqls]
        return [f.result() for f in futures]

    def _release(self, _future: "Future[QueryResult]") -> None:
        with self._admission:
            self._pending -= 1

    # ------------------------------------------------------------- phases
    def _run(self, sql: str, step: int | None) -> QueryResult:
        stats = QueryStats()
        t0 = time.perf_counter()
        query = parse_query(sql)
        stats.parse_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        plan = self._plan(query, step)
        stats.plan_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        loaded = self._load(plan, stats)
        stats.load_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        value = self._execute(plan, loaded)
        stats.execute_s = time.perf_counter() - t0
        self._served += 1
        return QueryResult(
            value=value,
            text=query.text,
            metric=query.metric,
            step=plan.step,
            stats=stats,
        )

    def _plan(self, query: Query, step: int | None) -> _Plan:
        try:
            entry_a = self.catalog.resolve(query.var_a, step)
            resolved_step = entry_a.step if step is None else step
            entry_b = self.catalog.resolve(query.var_b, resolved_step)
        except CatalogError as exc:
            raise QueryError(f"unknown variable in FROM clause: {exc}") from exc
        entries = {query.var_a: entry_a, query.var_b: entry_b}
        if entry_a.n_elements != entry_b.n_elements:
            raise QueryError("FROM variables cover different element sets")
        for var in query.value_predicates:
            if var not in entries:
                raise QueryError(
                    f"predicate on {var!r}, which is not in the FROM clause"
                )
        if query.region is not None and self.layout is None:
            raise QueryError("REGION clause requires a ZOrderLayout")

        lazies = {var: self._open(entries[var]) for var in entries}
        predicate_bins: dict[str, np.ndarray] = {}
        for var, subset in query.value_predicates.items():
            clamped = clamp_subset(subset, lazies[var].binning)
            predicate_bins[var] = overlapping_bins(
                lazies[var].binning, clamped.lo, clamped.hi
            )

        count_only = query.metric == "COUNT"
        if count_only:
            needed = {var: bins for var, bins in predicate_bins.items()}
        else:
            needed = {
                var: np.arange(lazies[var].n_bins, dtype=np.int64)
                for var in entries
            }
        return _Plan(
            query=query,
            step=resolved_step,
            entries=entries,
            lazies=lazies,
            needed=needed,
            predicate_bins=predicate_bins,
            count_only=count_only,
            n_elements=entry_a.n_elements,
        )

    def _load(
        self, plan: _Plan, stats: QueryStats
    ) -> dict[str, dict[int, WAHBitVector]]:
        loaded: dict[str, dict[int, WAHBitVector]] = {}
        for var, bins in plan.needed.items():
            entry = plan.entries[var]
            lazy = plan.lazies[var]
            path = str(self.catalog.path_of(entry))
            vectors: dict[int, WAHBitVector] = {}
            for bin_id in bins:
                bin_id = int(bin_id)
                key = CacheKey.for_bin(path, var, bin_id)
                vector, hit = self.cache.get_or_load(
                    key, lambda b=bin_id: lazy.get(b)
                )
                if hit:
                    stats.cache_hits += 1
                else:
                    stats.cache_misses += 1
                    stats.bytes_loaded += lazy.nbytes_of(bin_id)
                vectors[bin_id] = vector
            stats.bitvectors_planned += len(vectors)
            loaded[var] = vectors
        return loaded

    def _execute(
        self, plan: _Plan, loaded: dict[str, dict[int, WAHBitVector]]
    ) -> float:
        query = plan.query
        if plan.count_only:
            return self._execute_count(plan, loaded)
        indices = {
            var: BitmapIndex(
                plan.lazies[var].binning,
                [loaded[var][b] for b in range(plan.lazies[var].n_bins)],
                plan.n_elements,
            )
            for var in plan.entries
        }
        return execute_query(query, indices, layout=self.layout)

    def _execute_count(
        self, plan: _Plan, loaded: dict[str, dict[int, WAHBitVector]]
    ) -> float:
        """COUNT from the minimal bin set: OR within a predicate, AND across.

        Matches ``execute_query``'s ``joint.sum()`` exactly -- the bins
        partition the element set, so the joint histogram's total is the
        popcount of the combined mask -- without ever touching bins the
        predicates don't overlap.
        """
        n = plan.n_elements
        masks: list[WAHBitVector] = []
        for var, bins in plan.predicate_bins.items():
            if bins.size == 0:
                return 0.0  # predicate overlaps no bin: empty result set
            vectors = [loaded[var][int(b)] for b in bins]
            masks.append(reduce(lambda x, y: auto_op(x, y, "or"), vectors))
        if plan.query.region is not None:
            masks.append(
                spatial_subset_mask(n, plan.query.region, self.layout)
            )
        if not masks:
            return float(n)
        if len(masks) == 1:
            return float(masks[0].count())
        acc = reduce(lambda x, y: auto_op(x, y, "and"), masks[:-1])
        return float(auto_count(acc, masks[-1], "and"))

    # ------------------------------------------------------------ backend
    def _open(self, entry: CatalogEntry) -> LazyBitmapIndex:
        """Shared per-file lazy reader (header parsed once, then reused)."""
        path = str(self.catalog.path_of(entry))
        with self._files_lock:
            lazy = self._files.get(path)
            if lazy is None:
                lazy = LazyBitmapIndex(path)
                self._files[path] = lazy
            return lazy

    def file_bytes_read(self) -> int:
        """Total record bytes read from disk across every open file."""
        with self._files_lock:
            return sum(lazy.bytes_read for lazy in self._files.values())

    def file_reads(self) -> int:
        """Total bitvector record reads issued against the store."""
        with self._files_lock:
            return sum(lazy.reads for lazy in self._files.values())

    def service_stats(self) -> dict[str, int]:
        with self._admission:
            pending = self._pending
        return {
            "served": self._served,
            "rejected": self._rejected,
            "pending": pending,
            "open_files": len(self._files),
        }

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        with self._files_lock:
            for lazy in self._files.values():
                lazy.close()
            self._files.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryService({self.catalog!r}, cache={self.cache.stats()!r}, "
            f"stats={self.service_stats()!r})"
        )
