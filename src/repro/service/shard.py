"""Shard layer: the query service partitioned across worker processes.

The network front end (:mod:`repro.service.server`) does not execute
queries itself; it routes them to a pool of *shard workers*, each a
forked process running its own :class:`~repro.service.executor.QueryService`
(private bitvector cache, private file handles) over the shared store
root.  Partitioning is by **rank directory**: rank ``rank_NNNN`` belongs
to shard ``NNNN mod n_shards``, so a cluster store's slabs spread evenly
and a global query becomes a scatter -- each owning shard computes its
ranks' :class:`~repro.service.executor.RankPartial`\\ s -- followed by the
exact gather of :func:`~repro.service.executor.merge_rank_partials`.
Single-file queries (unsharded stores, or explicitly rank-qualified
names) hash to one worker.  Ownership is a routing policy, not a
visibility boundary: every worker can read the whole store, which is what
makes the policy free to change without data movement.

Two adaptive layers sit on the static map:

* **hot-set replication** (:mod:`repro.service.hotset`) -- each worker
  keeps decaying access counters and byte-budgeted replica slots; the
  pool exposes the pipe ops the :class:`~repro.service.hotset.ReplicaManager`
  uses to snapshot accounting, fetch codec-tagged payload buffers from
  owners,
  and install/drop replicas on holders.  Request methods accept a
  ``route`` (candidate shards from the
  :class:`~repro.service.hotset.RoutingTable`) and pick the least-loaded
  holder, falling back to the owner on any shard fault.
* **respawn on death** -- a worker that dies takes no state with it
  (workers are stateless over the shared store), so a dead pipe is
  detected at the next request, the worker is respawned on its rank
  set, the in-flight request is retried once on the fresh process, and
  nothing is replayed.  Its replica slots come back empty and are
  re-filled by the manager's next reconciliation cycle.

Transport is one :func:`multiprocessing.Pipe` per worker carrying pickled
request dicts and replies (``RankPartial`` / ``QueryResult`` objects ride
the pickle; replica pushes carry raw little-endian ``uint32`` word
buffers as bytes).  A per-handle lock serializes each pipe; cross-shard
parallelism comes from the front end fanning requests from different
threads.  Workers are spawned *before* the asyncio loop starts (fork
safety) and answer until told to stop.
"""

from __future__ import annotations

import re
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro.analysis.sql import QueryError
from repro.bitmap.codec import codec_for_name, codec_of
from repro.bitmap.zorder import ZOrderLayout
from repro.insitu.parallel import _pick_context
from repro.service.cache import CacheKey
from repro.service.executor import QueryResult, QueryService, RankPartial
from repro.service.hotset import AccessStats, ReplicaStore

_RANK_RE = re.compile(r"^rank_(\d+)$")


class ShardError(RuntimeError):
    """A shard worker failed outside the query's own fault domain."""


def shard_for_rank(rank: str, n_shards: int) -> int:
    """Owning shard of one rank directory: ``rank id mod n_shards``.

    Deterministic and density-free -- consecutive ranks round-robin
    across shards, so slab-ordered scatters land evenly.
    """
    m = _RANK_RE.match(rank)
    if m:
        return int(m.group(1)) % n_shards
    return zlib.crc32(rank.encode()) % n_shards


def shard_for_variable(variable: str, n_shards: int) -> int:
    """Owning shard of a single-file query: stable hash of ``var_a``.

    A ``rank_NNNN/<var>`` qualified name routes to the rank's owner so
    qualified and global access to the same slab warm the same worker's
    cache.
    """
    head = variable.split("/", 1)[0]
    if _RANK_RE.match(head):
        return shard_for_rank(head, n_shards)
    return zlib.crc32(variable.encode()) % n_shards


def _worker_main(
    conn,
    root: str,
    shard_id: int,
    cache_bytes: int,
    layout: ZOrderLayout | None,
    hotset_budget: int,
) -> None:
    """Shard worker loop: serve pickled requests until ``stop``.

    Every fault is converted to a reply -- the worker never dies on a bad
    query, so one malformed request cannot take a shard (and every rank it
    owns) out of rotation.
    """
    access = AccessStats()
    replicas = ReplicaStore(hotset_budget)
    service = QueryService(
        root,
        cache_bytes=cache_bytes,
        max_workers=1,
        # The front end owns admission; a worker pipe carries one request
        # at a time, so its own bound never binds.
        max_pending=1_000_000,
        layout=layout,
        access=access,
        replicas=replicas,
    )
    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            op = request.get("op")
            try:
                if op == "stop":
                    conn.send({"ok": True})
                    break
                elif op == "partial":
                    partial = service.rank_partial(
                        request["sql"],
                        rank=request["rank"],
                        step=request.get("step"),
                        want_mask=bool(request.get("want_mask")),
                    )
                    conn.send({"ok": True, "partial": partial})
                elif op == "query":
                    if request.get("want_mask"):
                        result = service.execute_mask(
                            request["sql"], step=request.get("step")
                        )
                    else:
                        result = service.execute(
                            request["sql"], step=request.get("step")
                        )
                    conn.send({"ok": True, "result": result})
                elif op == "stats":
                    conn.send({
                        "ok": True,
                        "stats": {
                            "shard": shard_id,
                            "service": service.service_stats(),
                            "cache": service.cache.stats().as_dict(),
                            "file_reads": service.file_reads(),
                            "file_bytes_read": service.file_bytes_read(),
                            "hotset": {
                                "access": access.snapshot(),
                                "replicas": replicas.inventory(),
                            },
                        },
                    })
                elif op == "hotset":
                    # Accounting snapshot + replica inventory, decaying
                    # the counters once per policy cycle.
                    factor = request.get("decay")
                    if factor is not None:
                        access.decay(float(factor))
                    conn.send({
                        "ok": True,
                        "access": access.snapshot(),
                        "replicas": replicas.inventory(),
                    })
                elif op == "fetch":
                    vector = service.fetch_bitvector(
                        request["file"],
                        request["variable"],
                        int(request["bin"]),
                        int(request.get("level", 0)),
                    )
                    codec = codec_of(vector)
                    payload = np.ascontiguousarray(
                        codec.payload_words(vector), dtype="<u4"
                    )
                    conn.send({
                        "ok": True,
                        "words": payload.tobytes(),
                        "n_bits": int(vector.n_bits),
                        "codec": codec.name,
                    })
                elif op == "install":
                    installed = 0
                    for item in request["replicas"]:
                        f, v, b, lv, words, n_bits, codec_name = item
                        codec = codec_for_name(codec_name)
                        buf = np.frombuffer(words, dtype="<u4").astype(
                            np.uint32
                        )
                        key = CacheKey(f, v, int(b), int(lv))
                        if replicas.install(
                            key, codec.decode_payload(buf, int(n_bits))
                        ):
                            installed += 1
                    conn.send({
                        "ok": True,
                        "installed": installed,
                        "bytes": replicas.bytes_held,
                    })
                elif op == "drop":
                    keys = [
                        CacheKey(f, v, int(b), int(lv))
                        for f, v, b, lv in request["keys"]
                    ]
                    conn.send({"ok": True, "dropped": replicas.drop(keys)})
                elif op == "clear_replicas":
                    conn.send({"ok": True, "dropped": replicas.clear()})
                elif op == "refresh":
                    service._refresh_catalog()
                    conn.send({"ok": True})
                else:
                    conn.send({
                        "ok": False,
                        "kind": "protocol",
                        "message": f"unknown shard op {op!r}",
                    })
            except QueryError as exc:
                conn.send({"ok": False, "kind": "query", "message": str(exc)})
            except Exception as exc:  # noqa: BLE001 - worker must survive
                conn.send({
                    "ok": False,
                    "kind": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                })
    finally:
        service.close()
        conn.close()


@dataclass
class _ShardHandle:
    """One worker: its process, pipe end, the pipe's serializer, and the
    load/respawn bookkeeping the routed dispatch reads."""

    shard_id: int
    process: Any
    conn: Any
    lock: threading.Lock
    pool: "ShardPool"
    #: requests currently queued on / executing over this pipe
    inflight: int = 0
    #: lifetime requests dispatched to this shard (stats op)
    dispatched: int = 0
    #: times the worker was respawned after dying
    respawns: int = 0

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request; detect a dead worker, respawn, retry once.

        Workers are stateless over the shared store, so a respawn replays
        nothing -- the fresh process answers the retried request from
        disk.  A second failure surfaces as :class:`ShardError`.
        """
        with self.lock:
            for attempt in (0, 1):
                if not self.process.is_alive():
                    self._respawn()
                try:
                    self.conn.send(payload)
                    return self.conn.recv()
                except (EOFError, OSError, BrokenPipeError) as exc:
                    if attempt:
                        raise ShardError(
                            f"shard {self.shard_id} died mid-request and "
                            f"its respawn failed too"
                        ) from exc
                    self._respawn()
        raise AssertionError("unreachable")

    def _respawn(self) -> None:
        """Replace a dead worker with a fresh process on the same pipe
        role (caller holds ``lock``)."""
        if self.pool._closed:
            raise ShardError(
                f"shard {self.shard_id} worker died (pool closed)"
            )
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        self.process, self.conn = self.pool._spawn(self.shard_id)
        self.respawns += 1


class ShardPool:
    """N forked shard workers over one store root.

    Spawn the pool before starting any event loop (workers fork from the
    calling process).  Request methods are thread-safe; concurrent
    requests to *different* shards run in parallel, requests to the same
    shard serialize on its pipe.
    """

    def __init__(
        self,
        root: Path | str,
        n_shards: int,
        *,
        cache_bytes: int = 64 << 20,
        layout: ZOrderLayout | None = None,
        start_method: str | None = None,
        hotset_budget: int = 8 << 20,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need >= 1 shard, got {n_shards}")
        self.root = str(root)
        self.n_shards = int(n_shards)
        self.cache_bytes = int(cache_bytes)
        self.hotset_budget = int(hotset_budget)
        self._layout = layout
        self._ctx = _pick_context(start_method)
        self._load_lock = threading.Lock()
        self._closed = False
        self._handles: list[_ShardHandle] = []
        for shard_id in range(self.n_shards):
            process, parent = self._spawn(shard_id)
            self._handles.append(
                _ShardHandle(shard_id, process, parent, threading.Lock(), self)
            )

    def _spawn(self, shard_id: int):
        """Start one worker process; returns (process, parent pipe end)."""
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child, self.root, shard_id, self.cache_bytes,
                  self._layout, self.hotset_budget),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child.close()
        return process, parent

    # ------------------------------------------------------------ routing
    def handle_for_rank(self, rank: str) -> _ShardHandle:
        return self._handles[shard_for_rank(rank, self.n_shards)]

    def handle_for_variable(self, variable: str) -> _ShardHandle:
        return self._handles[shard_for_variable(variable, self.n_shards)]

    def _pick(
        self, owner: int, route: Sequence[int] | None
    ) -> tuple[_ShardHandle, _ShardHandle]:
        """Least-loaded candidate from ``route`` (owner always included);
        returns ``(picked, owner_handle)`` for the fault fallback."""
        owner_handle = self._handles[owner]
        if not route:
            return owner_handle, owner_handle
        candidates = {owner}
        candidates.update(
            s for s in route if isinstance(s, int) and 0 <= s < self.n_shards
        )
        with self._load_lock:
            picked = min(
                (self._handles[s] for s in candidates),
                key=lambda h: (h.inflight, h.shard_id),
            )
        return picked, owner_handle

    def _tracked_request(
        self, handle: _ShardHandle, payload: dict[str, Any]
    ) -> dict[str, Any]:
        with self._load_lock:
            handle.inflight += 1
            handle.dispatched += 1
        try:
            return handle.request(payload)
        finally:
            with self._load_lock:
                handle.inflight -= 1

    def _routed_request(
        self, owner: int, route: Sequence[int] | None, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """Dispatch to the least-loaded route candidate; a holder-side
        shard fault falls back to the owner (stale routes degrade to the
        static map, never to an error the owner could have avoided)."""
        picked, owner_handle = self._pick(owner, route)
        try:
            return self._tracked_request(picked, payload)
        except ShardError:
            if picked is owner_handle:
                raise
            return self._tracked_request(owner_handle, payload)

    # ----------------------------------------------------------- requests
    @staticmethod
    def _unwrap(reply: dict[str, Any]) -> dict[str, Any]:
        if reply.get("ok"):
            return reply
        kind = reply.get("kind", "internal")
        message = reply.get("message", "shard failure")
        if kind == "query":
            raise QueryError(message)
        raise ShardError(f"[{kind}] {message}")

    def partial(
        self,
        sql: str,
        rank: str,
        *,
        step: int | None = None,
        want_mask: bool = False,
        route: Sequence[int] | None = None,
    ) -> RankPartial:
        """One rank's partial, computed on its owner or a replica holder."""
        reply = self._routed_request(
            shard_for_rank(rank, self.n_shards),
            route,
            {
                "op": "partial",
                "sql": sql,
                "rank": rank,
                "step": step,
                "want_mask": want_mask,
            },
        )
        return self._unwrap(reply)["partial"]

    def query(
        self,
        sql: str,
        variable: str,
        *,
        step: int | None = None,
        want_mask: bool = False,
        route: Sequence[int] | None = None,
    ) -> QueryResult:
        """A single-file query, routed by ``var_a``'s stable hash (or to
        the least-loaded replica holder when ``route`` names some)."""
        reply = self._routed_request(
            shard_for_variable(variable, self.n_shards),
            route,
            {
                "op": "query",
                "sql": sql,
                "step": step,
                "want_mask": want_mask,
            },
        )
        return self._unwrap(reply)["result"]

    def stats(self) -> list[dict[str, Any]]:
        """Per-shard service/cache/hot-set counters, in shard order."""
        out = []
        for handle in self._handles:
            stats = self._unwrap(
                self._tracked_request(handle, {"op": "stats"})
            )["stats"]
            stats["dispatched"] = handle.dispatched
            stats["respawns"] = handle.respawns
            out.append(stats)
        return out

    # ----------------------------------------------------------- hot set
    def hotset(self, *, decay: float | None = None) -> list[dict[str, Any]]:
        """Every worker's access snapshot + replica inventory (shard
        order), optionally decaying the counters -- one policy gather."""
        payload: dict[str, Any] = {"op": "hotset"}
        if decay is not None:
            payload["decay"] = float(decay)
        return [
            self._unwrap(self._tracked_request(handle, dict(payload)))
            for handle in self._handles
        ]

    def fetch_vector(
        self, shard_id: int, key: CacheKey
    ) -> tuple[bytes, int, str]:
        """One bitvector's codec payload (raw ``uint32`` words as bytes,
        bit length, codec name) from ``shard_id``'s service."""
        reply = self._unwrap(
            self._tracked_request(
                self._handles[shard_id],
                {
                    "op": "fetch",
                    "file": key.file,
                    "variable": key.variable,
                    "bin": key.bin,
                    "level": key.level,
                },
            )
        )
        return reply["words"], reply["n_bits"], reply["codec"]

    def install_replicas(
        self,
        shard_id: int,
        items: Sequence[tuple[CacheKey, bytes, int, str]],
    ) -> int:
        """Push ``(key, raw words, n_bits, codec name)`` replicas onto one
        worker."""
        reply = self._unwrap(
            self._tracked_request(
                self._handles[shard_id],
                {
                    "op": "install",
                    "replicas": [
                        (k.file, k.variable, k.bin, k.level, words, n_bits,
                         codec_name)
                        for k, words, n_bits, codec_name in items
                    ],
                },
            )
        )
        return reply["installed"]

    def drop_replicas(
        self, shard_id: int, keys: Iterable[CacheKey]
    ) -> int:
        reply = self._unwrap(
            self._tracked_request(
                self._handles[shard_id],
                {
                    "op": "drop",
                    "keys": [
                        (k.file, k.variable, k.bin, k.level) for k in keys
                    ],
                },
            )
        )
        return reply["dropped"]

    def clear_replicas(self) -> int:
        """Drop every replica on every worker (epoch invalidation)."""
        dropped = 0
        for handle in self._handles:
            reply = self._unwrap(
                self._tracked_request(handle, {"op": "clear_replicas"})
            )
            dropped += reply["dropped"]
        return dropped

    def refresh_workers(self) -> None:
        """Force every worker to rebuild its catalog view of the store."""
        for handle in self._handles:
            self._unwrap(self._tracked_request(handle, {"op": "refresh"}))

    def dispatch_counts(self) -> list[int]:
        """Lifetime per-shard dispatch counters, in shard order."""
        with self._load_lock:
            return [h.dispatched for h in self._handles]

    def respawn_counts(self) -> list[int]:
        """Per-shard worker respawns, in shard order."""
        return [h.respawns for h in self._handles]

    # ---------------------------------------------------------- lifecycle
    def close(self, *, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                with handle.lock:
                    if handle.process.is_alive():
                        handle.conn.send({"op": "stop"})
                        handle.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                handle.conn.close()
        for handle in self._handles:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        alive = sum(1 for h in self._handles if h.process.is_alive())
        return (
            f"ShardPool({self.root!r}, shards={self.n_shards}, alive={alive})"
        )
