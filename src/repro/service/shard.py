"""Shard layer: the query service partitioned across worker processes.

The network front end (:mod:`repro.service.server`) does not execute
queries itself; it routes them to a pool of *shard workers*, each a
forked process running its own :class:`~repro.service.executor.QueryService`
(private bitvector cache, private file handles) over the shared store
root.  Partitioning is by **rank directory**: rank ``rank_NNNN`` belongs
to shard ``NNNN mod n_shards``, so a cluster store's slabs spread evenly
and a global query becomes a scatter -- each owning shard computes its
ranks' :class:`~repro.service.executor.RankPartial`\\ s -- followed by the
exact gather of :func:`~repro.service.executor.merge_rank_partials`.
Single-file queries (unsharded stores, or explicitly rank-qualified
names) hash to one worker.  Ownership is a routing policy, not a
visibility boundary: every worker can read the whole store, which is what
makes the policy free to change without data movement.

Transport is one :func:`multiprocessing.Pipe` per worker carrying pickled
request dicts and replies (``RankPartial`` / ``QueryResult`` objects ride
the pickle).  A per-handle lock serializes each pipe; cross-shard
parallelism comes from the front end fanning requests from different
threads.  Workers are spawned *before* the asyncio loop starts (fork
safety) and answer until told to stop.
"""

from __future__ import annotations

import multiprocessing as mp
import re
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis.sql import QueryError
from repro.bitmap.zorder import ZOrderLayout
from repro.insitu.parallel import _pick_context
from repro.service.executor import QueryResult, QueryService, RankPartial

_RANK_RE = re.compile(r"^rank_(\d+)$")


class ShardError(RuntimeError):
    """A shard worker failed outside the query's own fault domain."""


def shard_for_rank(rank: str, n_shards: int) -> int:
    """Owning shard of one rank directory: ``rank id mod n_shards``.

    Deterministic and density-free -- consecutive ranks round-robin
    across shards, so slab-ordered scatters land evenly.
    """
    m = _RANK_RE.match(rank)
    if m:
        return int(m.group(1)) % n_shards
    return zlib.crc32(rank.encode()) % n_shards


def shard_for_variable(variable: str, n_shards: int) -> int:
    """Owning shard of a single-file query: stable hash of ``var_a``.

    A ``rank_NNNN/<var>`` qualified name routes to the rank's owner so
    qualified and global access to the same slab warm the same worker's
    cache.
    """
    head = variable.split("/", 1)[0]
    if _RANK_RE.match(head):
        return shard_for_rank(head, n_shards)
    return zlib.crc32(variable.encode()) % n_shards


def _worker_main(
    conn,
    root: str,
    shard_id: int,
    cache_bytes: int,
    layout: ZOrderLayout | None,
) -> None:
    """Shard worker loop: serve pickled requests until ``stop``.

    Every fault is converted to a reply -- the worker never dies on a bad
    query, so one malformed request cannot take a shard (and every rank it
    owns) out of rotation.
    """
    service = QueryService(
        root,
        cache_bytes=cache_bytes,
        max_workers=1,
        # The front end owns admission; a worker pipe carries one request
        # at a time, so its own bound never binds.
        max_pending=1_000_000,
        layout=layout,
    )
    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            op = request.get("op")
            try:
                if op == "stop":
                    conn.send({"ok": True})
                    break
                elif op == "partial":
                    partial = service.rank_partial(
                        request["sql"],
                        rank=request["rank"],
                        step=request.get("step"),
                        want_mask=bool(request.get("want_mask")),
                    )
                    conn.send({"ok": True, "partial": partial})
                elif op == "query":
                    if request.get("want_mask"):
                        result = service.execute_mask(
                            request["sql"], step=request.get("step")
                        )
                    else:
                        result = service.execute(
                            request["sql"], step=request.get("step")
                        )
                    conn.send({"ok": True, "result": result})
                elif op == "stats":
                    conn.send({
                        "ok": True,
                        "stats": {
                            "shard": shard_id,
                            "service": service.service_stats(),
                            "cache": service.cache.stats().as_dict(),
                            "file_reads": service.file_reads(),
                            "file_bytes_read": service.file_bytes_read(),
                        },
                    })
                else:
                    conn.send({
                        "ok": False,
                        "kind": "protocol",
                        "message": f"unknown shard op {op!r}",
                    })
            except QueryError as exc:
                conn.send({"ok": False, "kind": "query", "message": str(exc)})
            except Exception as exc:  # noqa: BLE001 - worker must survive
                conn.send({
                    "ok": False,
                    "kind": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                })
    finally:
        service.close()
        conn.close()


@dataclass
class _ShardHandle:
    """One worker: its process, pipe end, and the pipe's serializer."""

    shard_id: int
    process: Any
    conn: Any
    lock: threading.Lock

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        with self.lock:
            if not self.process.is_alive():
                raise ShardError(
                    f"shard {self.shard_id} worker died "
                    f"(exitcode {self.process.exitcode})"
                )
            self.conn.send(payload)
            try:
                return self.conn.recv()
            except EOFError as exc:
                raise ShardError(
                    f"shard {self.shard_id} closed mid-request"
                ) from exc


class ShardPool:
    """N forked shard workers over one store root.

    Spawn the pool before starting any event loop (workers fork from the
    calling process).  Request methods are thread-safe; concurrent
    requests to *different* shards run in parallel, requests to the same
    shard serialize on its pipe.
    """

    def __init__(
        self,
        root: Path | str,
        n_shards: int,
        *,
        cache_bytes: int = 64 << 20,
        layout: ZOrderLayout | None = None,
        start_method: str | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need >= 1 shard, got {n_shards}")
        self.root = str(root)
        self.n_shards = int(n_shards)
        ctx = _pick_context(start_method)
        self._handles: list[_ShardHandle] = []
        for shard_id in range(self.n_shards):
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child, self.root, shard_id, cache_bytes, layout),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child.close()
            self._handles.append(
                _ShardHandle(shard_id, process, parent, threading.Lock())
            )
        self._closed = False

    # ------------------------------------------------------------ routing
    def handle_for_rank(self, rank: str) -> _ShardHandle:
        return self._handles[shard_for_rank(rank, self.n_shards)]

    def handle_for_variable(self, variable: str) -> _ShardHandle:
        return self._handles[shard_for_variable(variable, self.n_shards)]

    # ----------------------------------------------------------- requests
    @staticmethod
    def _unwrap(reply: dict[str, Any]) -> dict[str, Any]:
        if reply.get("ok"):
            return reply
        kind = reply.get("kind", "internal")
        message = reply.get("message", "shard failure")
        if kind == "query":
            raise QueryError(message)
        raise ShardError(f"[{kind}] {message}")

    def partial(
        self,
        sql: str,
        rank: str,
        *,
        step: int | None = None,
        want_mask: bool = False,
    ) -> RankPartial:
        """One rank's partial, computed on its owning shard."""
        reply = self.handle_for_rank(rank).request({
            "op": "partial",
            "sql": sql,
            "rank": rank,
            "step": step,
            "want_mask": want_mask,
        })
        return self._unwrap(reply)["partial"]

    def query(
        self,
        sql: str,
        variable: str,
        *,
        step: int | None = None,
        want_mask: bool = False,
    ) -> QueryResult:
        """A single-file query, routed by ``var_a``'s stable hash."""
        reply = self.handle_for_variable(variable).request({
            "op": "query",
            "sql": sql,
            "step": step,
            "want_mask": want_mask,
        })
        return self._unwrap(reply)["result"]

    def stats(self) -> list[dict[str, Any]]:
        """Per-shard service/cache counters, in shard order."""
        return [
            self._unwrap(handle.request({"op": "stats"}))["stats"]
            for handle in self._handles
        ]

    # ---------------------------------------------------------- lifecycle
    def close(self, *, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                with handle.lock:
                    if handle.process.is_alive():
                        handle.conn.send({"op": "stop"})
                        handle.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                handle.conn.close()
        for handle in self._handles:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        alive = sum(1 for h in self._handles if h.process.is_alive())
        return (
            f"ShardPool({self.root!r}, shards={self.n_shards}, alive={alive})"
        )
