"""Wire protocol for the networked query server: length-prefixed JSON.

Every message -- request or response -- is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Framing first means the stream never needs a sentinel scan, a partial
read is always detectable, and a malformed payload poisons exactly one
frame, not the connection.

Requests are objects with an ``op``:

* ``{"op": "query", "sql": "...", "step": 40}`` -- evaluate, return the
  scalar;
* ``{"op": "mask", "sql": "...", "step": 40}`` -- COUNT queries only:
  also return the WHERE bitvector (compressed words, base64);
* ``{"op": "stats"}`` -- live counters: the server block (served /
  rejected / errors, per-shard dispatch counts and respawns, and the
  replication state -- epoch, routes, last placement cycle) plus one
  entry per shard worker (service counters, cache hit rates, and the
  hot-set snapshot: access frequencies and replica inventory).
  ``repro serve-stats`` renders this payload;
* ``{"op": "ping"}`` -- liveness.

Responses carry ``{"ok": true, ...}`` or a structured error
``{"ok": false, "error": {"type": ..., "message": ...}}`` where ``type``
is one of ``overload`` (admission rejected -- retry later), ``query``
(the SQL is at fault), ``protocol`` (the frame is at fault), or
``internal``.  The server answers *every* well-framed request -- errors
are data, never dropped connections -- which is what lets a load
generator distinguish rejection from failure.

Bitvectors cross the wire compressed: the WAH word array is sent verbatim
(base64 of the little-endian ``uint32`` buffer), so the network cost of a
mask result tracks its compressed size, the same economy the paper's
storage argument makes.

Both asyncio (server side) and blocking-socket (client side) frame
helpers live here, plus :class:`ServiceClient`, the minimal client the
CLI examples and the load generator use.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any

import numpy as np

from repro.bitmap.wah import WAHBitVector

#: Frame length header: 4-byte big-endian unsigned.
_HEADER = struct.Struct(">I")
#: Hard per-frame ceiling; a length beyond this is a protocol error, not
#: an allocation.  Masks are WAH-compressed, so real frames sit far below.
MAX_FRAME_BYTES = 64 << 20

PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """Raised for malformed frames or payloads."""


# ------------------------------------------------------------------ frames
def encode_frame(payload: dict[str, Any]) -> bytes:
    """One message -> header + JSON bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict[str, Any]:
    """JSON bytes -> message, with protocol-typed failures."""
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds limit {MAX_FRAME_BYTES}"
        )
    return length


async def read_frame(reader) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed mid-header")
        header += more
    length = check_length(_HEADER.unpack(header)[0])
    try:
        body = await reader.readexactly(length)
    except Exception as exc:  # IncompleteReadError and friends
        raise ProtocolError(f"connection closed mid-frame: {exc}") from exc
    return decode_body(body)


async def write_frame(writer, payload: dict[str, Any]) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(payload))
    await writer.drain()


def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Blocking-socket frame write (client side)."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking-socket frame read; ``None`` on clean EOF at a boundary."""
    header = b""
    while len(header) < _HEADER.size:
        chunk = sock.recv(_HEADER.size - len(header))
        if not chunk:
            if header:
                raise ProtocolError("connection closed mid-header")
            return None
        header += chunk
    length = check_length(_HEADER.unpack(header)[0])
    body = b""
    while len(body) < length:
        chunk = sock.recv(min(1 << 16, length - len(body)))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        body += chunk
    return decode_body(body)


# ------------------------------------------------------------- bitvectors
def encode_mask(vector: WAHBitVector) -> dict[str, Any]:
    """WAH bitvector -> JSON-safe payload (compressed words, base64)."""
    words = np.ascontiguousarray(vector.words, dtype="<u4")
    return {
        "n_bits": int(vector.n_bits),
        "words": base64.b64encode(words.tobytes()).decode("ascii"),
    }


def decode_mask(payload: dict[str, Any]) -> WAHBitVector:
    """Inverse of :func:`encode_mask`; word-exact round trip."""
    try:
        raw = base64.b64decode(payload["words"], validate=True)
        n_bits = int(payload["n_bits"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad mask payload: {exc}") from exc
    if len(raw) % 4:
        raise ProtocolError(f"mask byte length {len(raw)} not word-aligned")
    words = np.frombuffer(raw, dtype="<u4").astype(np.uint32)
    return WAHBitVector(words, n_bits)


# ----------------------------------------------------------------- errors
def error_response(kind: str, message: str) -> dict[str, Any]:
    """The structured failure shape every error takes on the wire."""
    return {"ok": False, "error": {"type": kind, "message": message}}


class RemoteQueryError(RuntimeError):
    """Client-side image of a server-reported error."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class RemoteOverloadError(RemoteQueryError):
    """The server's admission control rejected the query; retry later."""

    def __init__(self, message: str) -> None:
        super().__init__("overload", message)


def raise_for_error(response: dict[str, Any]) -> dict[str, Any]:
    """Return ``response`` if ok, else raise the matching client error."""
    if response.get("ok"):
        return response
    err = response.get("error") or {}
    kind = err.get("type", "internal")
    message = err.get("message", "unknown server error")
    if kind == "overload":
        raise RemoteOverloadError(message)
    raise RemoteQueryError(kind, message)


# ----------------------------------------------------------------- client
class ServiceClient:
    """Minimal blocking client for the query server.

    One socket, sequential request/response::

        with ServiceClient("127.0.0.1", 7421) as client:
            result = client.query("SELECT MI FROM temperature, salinity")
            print(result["value"], result["stats"]["total_s"])

    Raises :class:`RemoteOverloadError` when the server sheds load and
    :class:`RemoteQueryError` for query/protocol faults, mirroring the
    in-process service's exception split.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7421, *, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def _call(self, request: dict[str, Any]) -> dict[str, Any]:
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        return raise_for_error(response)

    def query(self, sql: str, *, step: int | None = None) -> dict[str, Any]:
        """Evaluate ``sql``; returns the response dict (``value`` etc.)."""
        return self._call({"op": "query", "sql": sql, "step": step})

    def mask(self, sql: str, *, step: int | None = None) -> dict[str, Any]:
        """COUNT query returning the WHERE bitvector.

        The response's ``mask`` field is decoded to a
        :class:`~repro.bitmap.wah.WAHBitVector` in place.
        """
        response = self._call({"op": "mask", "sql": sql, "step": step})
        response["mask"] = decode_mask(response["mask"])
        return response

    def stats(self) -> dict[str, Any]:
        return self._call({"op": "stats"})

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("ok"))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
