"""Byte-budget LRU cache for individually loaded bitvectors.

Sits directly under every lazy load the query service performs: keys are
``(file, variable, bin, level)``, values are decoded bitvectors of any
registered codec (WAH, Roaring, WAH64 -- see :mod:`repro.bitmap.codec`),
and the budget is expressed in *compressed bytes held* so a server's
memory footprint is bounded by configuration, not by query history.
Hits, misses, and evictions are counted -- the service surfaces them per
query (``QueryStats``) and
globally (``repro serve`` prints the totals).

Thread-safe: the service executes queries on a pool and all queries share
one cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, NamedTuple

from repro.bitmap.codec import BitVectorAny


class CacheKey(NamedTuple):
    """Identity of one cached bitvector."""

    file: str
    variable: str
    bin: int
    level: int = 0

    @classmethod
    def for_bin(
        cls, file: Path | str, variable: str, bin_id: int, level: int = 0
    ) -> "CacheKey":
        return cls(str(file), variable, int(bin_id), int(level))


@dataclass
class CacheStats:
    """Counter snapshot (copies, safe to hold across operations)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes_cached: int = 0
    budget_bytes: int = 0
    #: get_or_load calls that waited for another thread's in-flight load
    #: instead of decoding the same bitvector again (counted as hits).
    coalesced: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the network server's ``stats`` op)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes_cached": self.bytes_cached,
            "budget_bytes": self.budget_bytes,
            "hit_rate": self.hit_rate,
            "coalesced": self.coalesced,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, entries={self.entries}, "
            f"bytes={self.bytes_cached}/{self.budget_bytes}, "
            f"hit_rate={self.hit_rate:.1%}, coalesced={self.coalesced})"
        )


class _InFlightLoad:
    """One key's pending load: waiters park on the event, then share
    ``vector`` (``None`` means the leader failed; waiters retry)."""

    __slots__ = ("event", "vector")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.vector: BitVectorAny | None = None


class BitvectorCache:
    """An LRU over decoded bitvectors, bounded by compressed bytes held.

    A value's cost is its compressed ``nbytes`` (the dominant resident
    cost; decoded group expansions are transient).  Values larger than
    the whole budget are served but never retained, so one giant
    bitvector cannot flush the working set.
    """

    def __init__(self, budget_bytes: int = 64 << 20, *, access=None) -> None:
        if budget_bytes <= 0:
            raise ValueError(f"budget must be positive, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        #: Optional :class:`repro.service.hotset.AccessStats` recording
        #: every lookup (hit or miss) -- the hot-set accounting feed.
        self.access = access
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, BitVectorAny] = OrderedDict()
        self._inflight: dict[CacheKey, _InFlightLoad] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._coalesced = 0

    # ------------------------------------------------------------- access
    def get(self, key: CacheKey) -> BitVectorAny | None:
        """Look up one bitvector, refreshing its recency on a hit."""
        if self.access is not None:
            self.access.record(key)
        with self._lock:
            vector = self._entries.get(key)
            if vector is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return vector

    def put(self, key: CacheKey, vector: BitVectorAny) -> None:
        """Insert (or refresh) one bitvector, evicting LRU past budget."""
        cost = vector.nbytes
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            if cost > self.budget_bytes:
                return  # larger than the whole budget: serve, don't retain
            self._entries[key] = vector
            self._bytes += cost
            while self._bytes > self.budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._evictions += 1

    def get_or_load(
        self, key: CacheKey, loader: Callable[[], BitVectorAny]
    ) -> tuple[BitVectorAny, bool]:
        """Fetch from cache or ``loader`` -- returns ``(vector, was_hit)``.

        Single-flight per key: concurrent misses on the same key elect one
        *leader* whose loader runs (outside the global lock, so unrelated
        keys keep loading in parallel) while every other caller waits and
        shares the result -- the same bitvector is never decoded twice
        concurrently.  Waiters count as hits (plus the ``coalesced``
        counter).  If the leader's loader raises, the exception propagates
        to the leader only; waiters retry, and one of them becomes the
        next leader.
        """
        if self.access is not None:
            self.access.record(key)
        while True:
            with self._lock:
                vector = self._entries.get(key)
                if vector is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return vector, True
                pending = self._inflight.get(key)
                if pending is None:
                    pending = self._inflight[key] = _InFlightLoad()
                    leader = True
                else:
                    leader = False
            if not leader:
                pending.event.wait()
                if pending.vector is not None:
                    with self._lock:
                        self._hits += 1
                        self._coalesced += 1
                    return pending.vector, True
                continue  # leader failed; contend for leadership again
            try:
                vector = loader()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                pending.event.set()  # vector stays None: waiters retry
                raise
            # Publish to waiters before (and regardless of) retention --
            # an over-budget vector is served even though it is never
            # cached.
            self.put(key, vector)
            with self._lock:
                self._inflight.pop(key, None)
                self._misses += 1
            pending.vector = vector
            pending.event.set()
            return vector, False

    # ---------------------------------------------------------- lifecycle
    def invalidate_file(self, file: Path | str) -> int:
        """Drop every entry loaded from ``file`` (e.g. after a rewrite)."""
        name = str(file)
        with self._lock:
            doomed = [k for k in self._entries if k.file == name]
            for k in doomed:
                self._bytes -= self._entries.pop(k).nbytes
            return len(doomed)

    def invalidate_prefix(self, prefix: Path | str) -> int:
        """Drop every entry whose file path sits under ``prefix``.

        Directory-granular invalidation: when a ``step_*``/``rank_*``
        store directory is deleted behind the server's back, the stale
        catalog handler evicts everything loaded from it in one pass.
        """
        name = str(prefix).rstrip("/") + "/"
        with self._lock:
            doomed = [
                k for k in self._entries
                if k.file.startswith(name) or k.file == name[:-1]
            ]
            for k in doomed:
                self._bytes -= self._entries.pop(k).nbytes
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes_cached=self._bytes,
                budget_bytes=self.budget_bytes,
                coalesced=self._coalesced,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"BitvectorCache({self.stats()!r})"
