"""Hot-set replication: access accounting, replica placement, routing.

The sharded server's ownership map (:func:`repro.service.shard.shard_for_rank`)
is static -- ``rank NNNN mod n_shards`` -- so a workload skewed onto one
rank bottlenecks on one worker process no matter how many shards exist.
This module makes the read path *adaptive* in three layers, each usable
and testable on its own:

* :class:`AccessStats` -- a lock-cheap decaying counter of bitvector
  accesses, keyed by the cache identity ``(file, variable, bin, level)``
  and aggregated per rank directory.  Threaded through
  :class:`~repro.service.cache.BitvectorCache` (every lookup is one dict
  increment) and snapshotable over the shard pipe / the TCP ``stats``
  op, so placement decisions are made from *observed* frequencies, the
  way the in-situ partitioning line of work makes its decisions online
  rather than post-hoc.

* :class:`ReplicaStore` + :class:`ReplicaManager` -- the policy loop.
  Periodically the manager gathers every worker's decayed access
  snapshot, ranks keys by frequency, and pushes the top-K hot
  bitvectors' codec-tagged payload buffers over the existing pipe RPC into
  byte-budgeted replica slots on the non-owner workers.  Keys that cool
  below the promotion floor are demoted (dropped from replica slots);
  a catalog refresh or stale-store rebuild clears every replica, since
  the bytes may no longer match the store.  Per-bin bitvectors are the
  replication unit for the paper's reason: they are small, individually
  addressable, and cheap to move compressed.

* :class:`RoutingTable` -- a versioned map ``rank -> replica-holding
  shards`` the front end consults on every dispatch.  Updates are
  epoch-stamped: an invalidation (catalog refresh) bumps the epoch, so
  any route computed against the old placement is *stale* and lookups
  fall back to the owner shard instead of erroring.

Safety argument (why results stay byte-identical with replication on or
off): shard ownership has always been a routing policy, not a visibility
boundary -- every worker can read the whole store and runs the same
:class:`~repro.service.executor.QueryService` code.  A replica is a
pre-warmed cache entry whose bytes came from the owner's disk read, and
a routed query that lands on a holder missing some bins simply reads
them from the shared store.  Any shard therefore computes the exact
result; routing changes only *where* the work runs.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.bitmap.codec import BitVectorAny
from repro.service.cache import CacheKey

if TYPE_CHECKING:  # circular at runtime: shard imports executor imports cache
    from repro.service.shard import ShardPool

_RANK_RE = re.compile(r"^rank_(\d+)$")


def rank_of_variable(variable: str) -> str | None:
    """The rank directory a qualified variable name lives in, if any."""
    head = variable.split("/", 1)[0]
    return head if _RANK_RE.match(head) else None


# ------------------------------------------------------------- accounting
class AccessStats:
    """Decaying access-frequency counters for bitvector loads.

    ``record`` is the hot-path operation -- one lock acquisition and two
    dict increments -- called by the cache on every bitvector lookup.
    ``decay`` multiplies every counter by a factor in ``(0, 1]`` and
    prunes entries that fell below ``prune_below``; the policy loop calls
    it once per cycle, so a counter reads as an exponentially weighted
    access frequency, not an all-time total.
    """

    def __init__(self, *, prune_below: float = 0.05) -> None:
        self.prune_below = float(prune_below)
        self._lock = threading.Lock()
        self._keys: dict[CacheKey, float] = {}
        self._ranks: dict[str, float] = {}

    def record(self, key: CacheKey, weight: float = 1.0) -> None:
        """Count one access to ``key`` (and to its rank, if qualified)."""
        rank = rank_of_variable(key.variable)
        with self._lock:
            self._keys[key] = self._keys.get(key, 0.0) + weight
            if rank is not None:
                self._ranks[rank] = self._ranks.get(rank, 0.0) + weight

    def decay(self, factor: float = 0.5) -> None:
        """Age every counter; drop the ones that decayed to noise."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"decay factor must be in (0, 1], got {factor}")
        with self._lock:
            for table in (self._keys, self._ranks):
                doomed = []
                for k in table:
                    table[k] *= factor
                    if table[k] < self.prune_below:
                        doomed.append(k)
                for k in doomed:
                    del table[k]

    def top_keys(self, k: int) -> list[tuple[CacheKey, float]]:
        """The ``k`` most-accessed keys, hottest first."""
        with self._lock:
            items = sorted(self._keys.items(), key=lambda kv: -kv[1])
        return items[: max(0, int(k))]

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe copy: ``{"keys": [[file, var, bin, level, count]...],
        "ranks": {rank: count}}`` -- the wire form of the counters."""
        with self._lock:
            return {
                "keys": [
                    [key.file, key.variable, key.bin, key.level, count]
                    for key, count in self._keys.items()
                ],
                "ranks": dict(self._ranks),
            }

    def clear(self) -> None:
        with self._lock:
            self._keys.clear()
            self._ranks.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"AccessStats(keys={len(self._keys)}, "
                f"ranks={len(self._ranks)})"
            )


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Any]],
) -> tuple[dict[CacheKey, float], dict[str, float]]:
    """Sum per-worker :meth:`AccessStats.snapshot` payloads into global
    key and rank frequency tables (the manager's view of the cluster)."""
    keys: dict[CacheKey, float] = {}
    ranks: dict[str, float] = {}
    for snap in snapshots:
        for file, variable, bin_id, level, count in snap.get("keys", []):
            key = CacheKey(file, variable, int(bin_id), int(level))
            keys[key] = keys.get(key, 0.0) + float(count)
        for rank, count in snap.get("ranks", {}).items():
            ranks[rank] = ranks.get(rank, 0.0) + float(count)
    return keys, ranks


# --------------------------------------------------------------- replicas
class ReplicaStore:
    """A worker's byte-budgeted replica slots, keyed like the cache.

    Unlike :class:`~repro.service.cache.BitvectorCache`, nothing is
    evicted by recency: entries come and go only by explicit manager
    decision (install / drop / clear), so a replica survives any query
    pattern until the policy demotes it.  ``install`` refuses entries
    past the byte budget -- the manager's placement must fit or shrink.
    """

    def __init__(self, budget_bytes: int = 8 << 20) -> None:
        if budget_bytes <= 0:
            raise ValueError(f"budget must be positive, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        self._entries: dict[CacheKey, BitVectorAny] = {}
        self._bytes = 0
        self.hits = 0

    def get(self, key: CacheKey) -> BitVectorAny | None:
        with self._lock:
            vector = self._entries.get(key)
            if vector is not None:
                self.hits += 1
            return vector

    def install(self, key: CacheKey, vector: BitVectorAny) -> bool:
        """Hold ``vector`` under ``key``; ``False`` if it would not fit."""
        cost = vector.nbytes
        with self._lock:
            old = self._entries.get(key)
            held = self._bytes - (old.nbytes if old is not None else 0)
            if held + cost > self.budget_bytes:
                return False
            self._entries[key] = vector
            self._bytes = held + cost
            return True

    def drop(self, keys: Iterable[CacheKey]) -> int:
        with self._lock:
            dropped = 0
            for key in keys:
                vector = self._entries.pop(key, None)
                if vector is not None:
                    self._bytes -= vector.nbytes
                    dropped += 1
            return dropped

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            return dropped

    def inventory(self) -> dict[str, Any]:
        """JSON-safe holdings summary the manager reconciles against."""
        with self._lock:
            return {
                "keys": [
                    [k.file, k.variable, k.bin, k.level]
                    for k in self._entries
                ],
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
            }

    @property
    def bytes_held(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ReplicaStore({len(self._entries)} entries, "
                f"{self._bytes}/{self.budget_bytes}B, hits={self.hits})"
            )


# ---------------------------------------------------------------- routing
class RoutingTable:
    """Versioned ``rank -> candidate shards`` map with stale-safe reads.

    Every publish is stamped with the epoch the placement was computed
    against; :meth:`invalidate` bumps the epoch, which makes *every*
    existing entry stale in one O(1) step and discards any in-flight
    publish computed before the bump.  A stale (or absent) lookup
    returns ``None`` and the dispatcher falls back to the owner shard --
    the worst case is the old static routing, never a wrong answer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        self._routes: dict[str, tuple[int, ...]] = {}

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def publish(
        self, routes: Mapping[str, Sequence[int]], epoch: int
    ) -> bool:
        """Atomically replace the route map, unless ``epoch`` is stale."""
        with self._lock:
            if epoch != self._epoch:
                return False
            self._routes = {
                rank: tuple(dict.fromkeys(shards))
                for rank, shards in routes.items()
                if len(shards) > 0
            }
            return True

    def lookup(self, rank: str) -> tuple[int, ...] | None:
        """Candidate shards for ``rank``, or ``None`` (use the owner)."""
        with self._lock:
            return self._routes.get(rank)

    def invalidate(self) -> int:
        """Drop every route and bump the epoch; returns the new epoch."""
        with self._lock:
            self._epoch += 1
            self._routes.clear()
            return self._epoch

    def routes(self) -> dict[str, list[int]]:
        """JSON-safe copy for the ``stats`` op."""
        with self._lock:
            return {rank: list(s) for rank, s in self._routes.items()}

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"RoutingTable(epoch={self._epoch}, "
                f"routes={len(self._routes)})"
            )


# ----------------------------------------------------------------- policy
@dataclass
class ReplicationReport:
    """What one :meth:`ReplicaManager.rebalance` cycle did."""

    epoch: int
    hot_keys: int = 0
    installed: int = 0
    dropped: int = 0
    fetch_failures: int = 0
    published: bool = False
    #: rank -> candidate shards after this cycle (owner first)
    routes: dict[str, list[int]] = field(default_factory=dict)
    #: shard id -> replica bytes desired there after this cycle
    placement_bytes: dict[int, int] = field(default_factory=dict)


class ReplicaManager:
    """The placement policy loop tying accounting to routing.

    One :meth:`rebalance` cycle, run periodically on a daemon thread (or
    called directly by tests and benchmarks):

    1. **gather** -- pull every worker's decayed access snapshot and
       replica inventory over the pipe RPC;
    2. **rank** -- merge the snapshots, keep the globally top-``top_k``
       keys at or above ``min_count`` (rank-qualified keys only: an
       unsharded store has one worker and nothing to spread);
    3. **place** -- for each hot key, hottest first, desire a copy on
       every non-owner shard whose byte budget still fits it; fetch the
       codec-tagged payload once from the owner, push to holders that
       miss it,
       drop holdings that are no longer desired (demote-on-cooldown);
    4. **publish** -- routes ``rank -> [owner] + holders``, stamped with
       the epoch observed at gather time, so a refresh racing this cycle
       discards the whole update and dispatch stays on the owners.

    Reconciliation is state-less: desired placement is recomputed from
    live snapshots each cycle, so a respawned (empty) worker is simply
    re-pushed its share on the next pass.
    """

    def __init__(
        self,
        pool: "ShardPool",
        routing: RoutingTable,
        *,
        budget_bytes: int = 8 << 20,
        top_k: int = 16,
        decay: float = 0.5,
        min_count: float = 1.0,
        interval_s: float = 2.0,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"need top_k >= 1, got {top_k}")
        self.pool = pool
        self.routing = routing
        self.budget_bytes = int(budget_bytes)
        self.top_k = int(top_k)
        self.decay = float(decay)
        self.min_count = float(min_count)
        self.interval_s = float(interval_s)
        self.cycles = 0
        self.cycle_errors = 0
        self.last_report: ReplicationReport | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- policy
    def rebalance(self) -> ReplicationReport:
        """Run one gather -> rank -> place -> publish cycle."""
        from repro.service.shard import shard_for_rank

        epoch = self.routing.epoch
        report = ReplicationReport(epoch=epoch)
        workers = self.pool.hotset(decay=self.decay)
        keys, _ranks = merge_snapshots(w["access"] for w in workers)
        held: dict[int, set[CacheKey]] = {
            shard: {
                CacheKey(f, v, int(b), int(lv))
                for f, v, b, lv in w["replicas"]["keys"]
            }
            for shard, w in enumerate(workers)
        }

        hot = [
            (key, count)
            for key, count in sorted(keys.items(), key=lambda kv: -kv[1])
            if count >= self.min_count and rank_of_variable(key.variable)
        ][: self.top_k]
        report.hot_keys = len(hot)

        n = self.pool.n_shards
        desired: dict[int, set[CacheKey]] = {s: set() for s in range(n)}
        budget_left = {s: self.budget_bytes for s in range(n)}
        installs: dict[int, list[tuple[CacheKey, bytes, int, str]]] = {
            s: [] for s in range(n)
        }
        fetched: dict[CacheKey, tuple[bytes, int, str]] = {}
        for key, _count in hot:
            rank = rank_of_variable(key.variable)
            owner = shard_for_rank(rank, n)
            for target in range(n):
                if target == owner:
                    continue
                payload = fetched.get(key)
                if payload is None:
                    try:
                        payload = self.pool.fetch_vector(owner, key)
                    except Exception:
                        report.fetch_failures += 1
                        break  # owner cannot produce it; skip this key
                    fetched[key] = payload
                words, n_bits, codec_name = payload
                if len(words) > budget_left[target]:
                    continue
                budget_left[target] -= len(words)
                desired[target].add(key)
                if key not in held[target]:
                    installs[target].append((key, words, n_bits, codec_name))

        for shard in range(n):
            stale = held[shard] - desired[shard]
            if stale:
                report.dropped += self.pool.drop_replicas(shard, stale)
            if installs[shard]:
                report.installed += self.pool.install_replicas(
                    shard, installs[shard]
                )
            report.placement_bytes[shard] = (
                self.budget_bytes - budget_left[shard]
            )

        routes: dict[str, list[int]] = {}
        for shard, keyset in desired.items():
            for key in keyset:
                rank = rank_of_variable(key.variable)
                owner = shard_for_rank(rank, n)
                entry = routes.setdefault(rank, [owner])
                if shard not in entry:
                    entry.append(shard)
        report.routes = {r: sorted(s) for r, s in routes.items()}
        report.published = self.routing.publish(routes, epoch)
        self.cycles += 1
        self.last_report = report
        return report

    def reset(self) -> None:
        """Invalidate everything: routes stale, every replica dropped.

        Called on catalog refresh -- replica bytes were read from files
        that may have been rewritten, so they are not trusted past the
        epoch they were placed in.
        """
        self.routing.invalidate()
        self.pool.clear_replicas()

    # ---------------------------------------------------------- lifecycle
    def start(self) -> "ReplicaManager":
        """Run the policy loop on a daemon thread every ``interval_s``."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.rebalance()
                except Exception:  # policy is advisory; serving continues
                    self.cycle_errors += 1

        self._thread = threading.Thread(
            target=loop, name="repro-replicator", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def stats(self) -> dict[str, Any]:
        report = self.last_report
        return {
            "cycles": self.cycles,
            "cycle_errors": self.cycle_errors,
            "epoch": self.routing.epoch,
            "routes": self.routing.routes(),
            "budget_bytes": self.budget_bytes,
            "top_k": self.top_k,
            "last_cycle": None
            if report is None
            else {
                "hot_keys": report.hot_keys,
                "installed": report.installed,
                "dropped": report.dropped,
                "fetch_failures": report.fetch_failures,
                "published": report.published,
                "placement_bytes": dict(report.placement_bytes),
            },
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaManager(shards={self.pool.n_shards}, "
            f"budget={self.budget_bytes}B, top_k={self.top_k}, "
            f"cycles={self.cycles})"
        )
