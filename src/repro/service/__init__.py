"""Query serving over persisted bitmap stores (systems layer above S1-S7).

The paper's §2.3/§4 endgame -- *stored bitmaps replace raw data for
offline analysis* -- needs more than a file format: it needs an
addressable catalog of compressed segments, lazy per-bitvector loads, a
bounded cache, and an executor that turns a SQL string into the minimal
set of bitvector reads.  This package provides that serving path:

* :class:`~repro.service.catalog.Catalog` -- persisted manifest of a
  store directory (variable x step -> file, sizes, checksums);
* :class:`~repro.service.cache.BitvectorCache` -- byte-budget LRU under
  all lazy loads, with hit/miss/eviction counters;
* :class:`~repro.service.executor.QueryService` -- concurrent executor
  for :mod:`repro.analysis.sql` query strings with per-query
  :class:`~repro.service.executor.QueryStats` and overload rejection;
* :class:`~repro.service.server.QueryServer` -- networked front end
  (length-prefixed JSON over TCP, :mod:`repro.service.protocol`)
  scatter-gathering across :class:`~repro.service.shard.ShardPool`
  worker processes, exact w.r.t. the in-process service;
* :mod:`repro.service.hotset` -- hot-set replication: decaying
  :class:`~repro.service.hotset.AccessStats` accounting in the cache,
  a :class:`~repro.service.hotset.ReplicaManager` policy loop placing
  hot bitvectors into byte-budgeted replica slots on non-owner shards,
  and an epoch-versioned :class:`~repro.service.hotset.RoutingTable`
  the server consults so skewed workloads spread over replica holders
  (``repro serve --replicate``).

``repro serve`` (:mod:`repro.cli`) is the command-line entry point for
both the batch and the networked mode.
"""

from repro.service.cache import BitvectorCache, CacheKey, CacheStats
from repro.service.catalog import Catalog, CatalogEntry, CatalogError
from repro.service.executor import (
    GlobalQuery,
    QueryResult,
    QueryService,
    QueryStats,
    RankPartial,
    ServiceOverloadError,
    merge_rank_partials,
    resolve_global,
)
from repro.service.hotset import (
    AccessStats,
    ReplicaManager,
    ReplicaStore,
    ReplicationReport,
    RoutingTable,
)
from repro.service.protocol import (
    ProtocolError,
    RemoteOverloadError,
    RemoteQueryError,
    ServiceClient,
)
from repro.service.server import QueryServer
from repro.service.shard import ShardError, ShardPool

__all__ = [
    "AccessStats",
    "BitvectorCache",
    "CacheKey",
    "CacheStats",
    "Catalog",
    "CatalogEntry",
    "CatalogError",
    "GlobalQuery",
    "ProtocolError",
    "ReplicaManager",
    "ReplicaStore",
    "ReplicationReport",
    "RoutingTable",
    "QueryResult",
    "QueryServer",
    "QueryService",
    "QueryStats",
    "RankPartial",
    "RemoteOverloadError",
    "RemoteQueryError",
    "ServiceClient",
    "ServiceOverloadError",
    "ShardError",
    "ShardPool",
    "merge_rank_partials",
    "resolve_global",
]
