"""Networked sharded query server: asyncio front end over shard workers.

Topology (``repro serve --port P --shards N``)::

    client -- TCP, length-prefixed JSON --> front end (asyncio)
                                              |  scatter (pipes)
                                  +-----------+-----------+
                                  v           v           v
                               shard 0     shard 1     shard N-1
                             QueryService QueryService QueryService

The front end owns three things and deliberately nothing else:

* **framing** -- :mod:`repro.service.protocol`; every well-formed frame
  gets an answer, errors included;
* **admission** -- one atomic counter bounding queries in flight across
  *all* connections, the same check-then-act-free discipline as
  :meth:`~repro.service.executor.QueryService.submit`.  Past
  ``max_pending`` the server sheds load with a structured ``overload``
  error instead of queueing without bound -- overload degrades service,
  it never hangs it;
* **planning** -- parse, resolve the step, and route: a global
  (unqualified) variable over a cluster store scatters to the shards
  owning its rank slabs and gathers their partials with
  :func:`~repro.service.executor.merge_rank_partials` (splice for masks,
  exact integer sums for counts and joint histograms), so the networked
  answer is bit-identical to the in-process one; anything else routes
  whole to a single shard.

With ``replicate=True`` (``repro serve --replicate``) a fourth concern
is delegated to :mod:`repro.service.hotset`: a
:class:`~repro.service.hotset.ReplicaManager` loop watches the workers'
decayed access counters, pushes the hot bitvectors into byte-budgeted
replica slots on non-owner workers, and publishes an epoch-stamped
:class:`~repro.service.hotset.RoutingTable` this dispatcher consults --
rank-targeted and hot-bin queries then land on the least-loaded replica
holder instead of always the owner, and a stale route falls back to the
owner.  Replication never changes a result (every worker reads the same
store and runs the same code); it changes only where the work runs.

Execution happens only in the shard workers; the front end's event loop
never blocks on bitmap work (dispatch runs on a thread pool, shard fan-out
on a second pool so a scatter cannot starve the dispatcher that issued
it).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.analysis.sql import QueryError, parse_query
from repro.bitmap.zorder import ZOrderLayout
from repro.service.catalog import Catalog
from repro.service.executor import (
    ServiceOverloadError,
    merge_rank_partials,
    resolve_global,
)
from repro.service.hotset import ReplicaManager, RoutingTable, rank_of_variable
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_mask,
    error_response,
    read_frame,
    write_frame,
)
from repro.service.shard import ShardError, ShardPool


class QueryServer:
    """The sharded network server; construct, then ``run()`` or ``launch()``.

    Parameters
    ----------
    root:
        Bitmap store directory (single-node or cluster layout).
    shards:
        Worker process count; rank directories round-robin across them.
    host / port:
        Bind address; port 0 picks a free port (``self.port`` after start).
    max_pending:
        Front-end admission bound across all connections.
    cache_bytes:
        Per-shard bitvector cache budget.
    layout:
        Optional Z-order layout enabling REGION predicates (single-file
        queries only).
    replicate:
        Enable the hot-set replication loop: access-driven replica
        placement plus adaptive (least-loaded replica holder) routing.
    hotset_budget:
        Per-worker replica slot budget in bytes (``replicate=True``).
    rebalance_interval:
        Seconds between :class:`~repro.service.hotset.ReplicaManager`
        policy cycles on the background thread.
    hotset_top_k:
        How many globally hottest bitvectors each cycle may replicate.
    """

    def __init__(
        self,
        root: Path | str,
        *,
        shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 64,
        cache_bytes: int = 64 << 20,
        layout: ZOrderLayout | None = None,
        start_method: str | None = None,
        replicate: bool = False,
        hotset_budget: int = 8 << 20,
        rebalance_interval: float = 2.0,
        hotset_top_k: int = 16,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"need max_pending >= 1, got {max_pending}")
        self.root = Path(root)
        self.host = host
        self.port = int(port)  # rebound to the real port once listening
        self.max_pending = int(max_pending)
        self.catalog = Catalog.open(self.root)
        # Workers fork *before* any event loop or pool thread exists.
        self.pool = ShardPool(
            self.root,
            shards,
            cache_bytes=cache_bytes,
            layout=layout,
            start_method=start_method,
            hotset_budget=hotset_budget,
        )
        self.routing = RoutingTable()
        self.replicator: ReplicaManager | None = None
        if replicate:
            self.replicator = ReplicaManager(
                self.pool,
                self.routing,
                budget_bytes=hotset_budget,
                top_k=hotset_top_k,
                interval_s=rebalance_interval,
            )
        self._dispatch = ThreadPoolExecutor(
            max_workers=max(4, 2 * shards), thread_name_prefix="repro-serve"
        )
        # Scatters fan out on their own pool: a dispatch thread blocked on
        # its shards must never wait behind other dispatches for a thread.
        self._scatter = ThreadPoolExecutor(
            max_workers=max(4, 2 * shards), thread_name_prefix="repro-scatter"
        )
        self._admission = threading.Lock()
        self._pending = 0
        self._served = 0
        self._rejected = 0
        self._errors = 0
        self._connections = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._closed = False

    # ---------------------------------------------------------- admission
    def _admit(self) -> None:
        with self._admission:
            if self._pending >= self.max_pending:
                self._rejected += 1
                raise ServiceOverloadError(self._pending, self.max_pending)
            self._pending += 1

    def _unadmit(self) -> None:
        with self._admission:
            self._pending -= 1

    # ----------------------------------------------------------- dispatch
    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        """One request -> one response dict.  Never raises.

        Runs on the dispatch pool (never the event loop).  Public so unit
        tests can exercise routing without sockets.
        """
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "version": PROTOCOL_VERSION}
        if op == "stats":
            return {"ok": True, "server": self.server_stats(),
                    "shards": self.pool.stats()}
        if op not in ("query", "mask"):
            return error_response("protocol", f"unknown op {op!r}")
        sql = request.get("sql")
        if not isinstance(sql, str):
            return error_response("protocol", "request needs a string 'sql'")
        step = request.get("step")
        if step is not None and not isinstance(step, int):
            return error_response("protocol", "'step' must be an integer")
        try:
            self._admit()
        except ServiceOverloadError as exc:
            return error_response("overload", str(exc))
        try:
            return self._execute(sql, step, want_mask=(op == "mask"))
        except QueryError as exc:
            self._errors += 1
            return error_response("query", str(exc))
        except ShardError as exc:
            self._errors += 1
            return error_response("internal", str(exc))
        except Exception as exc:  # noqa: BLE001 - the reply IS the report
            self._errors += 1
            return error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._unadmit()

    def _execute(
        self, sql: str, step: int | None, *, want_mask: bool
    ) -> dict[str, Any]:
        query = parse_query(sql)
        if want_mask and query.metric != "COUNT":
            raise QueryError(f"mask results require COUNT, not {query.metric}")
        glob = resolve_global(self.catalog, query, step)
        if glob is None:
            rank = rank_of_variable(query.var_a)
            route = self.routing.lookup(rank) if rank is not None else None
            result = self.pool.query(
                sql, query.var_a, step=step, want_mask=want_mask, route=route
            )
            response = {
                "ok": True,
                "value": result.value,
                "metric": result.metric,
                "step": result.step,
                "sharded": False,
                "stats": result.stats.as_dict(),
            }
            if want_mask:
                response["mask"] = encode_mask(result.mask)
            self._served += 1
            return response

        # Scatter: each rank's partial on its owning shard, gathered with
        # the exact merge.  Slab order is glob.ranks order -- preserved
        # through the list regardless of completion order.
        futures = [
            self._scatter.submit(
                self.pool.partial, sql, rank, step=glob.step,
                want_mask=want_mask, route=self.routing.lookup(rank),
            )
            for rank in glob.ranks
        ]
        partials = [f.result() for f in futures]
        value, mask = merge_rank_partials(query.metric, want_mask, partials)
        stats = partials[0].stats
        for partial in partials[1:]:
            stats.absorb(partial.stats)
        response = {
            "ok": True,
            "value": value,
            "metric": query.metric,
            "step": glob.step,
            "sharded": True,
            "ranks": list(glob.ranks),
            "stats": stats.as_dict(),
        }
        if want_mask:
            response["mask"] = encode_mask(mask)
        self._served += 1
        return response

    # ------------------------------------------------------------- asyncio
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # The stream is no longer frame-aligned: answer once,
                    # then drop the connection.
                    try:
                        await write_frame(
                            writer, error_response("protocol", str(exc))
                        )
                    except (ConnectionError, OSError):
                        pass
                    break
                if request is None:
                    break
                response = await loop.run_in_executor(
                    self._dispatch, self.handle_request, request
                )
                await write_frame(writer, response)
        except (ConnectionError, OSError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            # Server stopping with this connection open: complete the
            # task normally so teardown doesn't log a cancellation.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: the loop is unwinding (stop() during an
                # open connection); the transport is closed either way,
                # and completing normally keeps shutdown log-silent.
                pass

    # --------------------------------------------------------- replication
    def rebalance(self):
        """Force one replica-placement cycle now (tests, benchmarks).

        Returns the :class:`~repro.service.hotset.ReplicationReport`, or
        ``None`` when the server was built with ``replicate=False``.
        """
        if self.replicator is None:
            return None
        return self.replicator.rebalance()

    def refresh_catalog(self) -> None:
        """Re-scan the store and invalidate every adaptive structure.

        The order matters: routes go stale *first* (dispatch falls back
        to owners immediately), then worker replicas are dropped and
        worker catalogs rebuilt, then the front-end catalog re-scans.
        The next policy cycle rebuilds placement at the new epoch.
        """
        self.routing.invalidate()
        self.pool.clear_replicas()
        self.pool.refresh_workers()
        self.catalog.refresh()

    async def run_async(self) -> None:
        """Serve until :meth:`stop` (or cancellation); asyncio-native."""
        if self.replicator is not None:
            self.replicator.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._ready.clear()

    def run(self) -> None:
        """Serve in the calling thread until interrupted (CLI foreground)."""
        try:
            asyncio.run(self.run_async())
        finally:
            self.close()

    # ----------------------------------------------------- background mode
    def launch(self, *, timeout: float = 10.0) -> "QueryServer":
        """Start serving on a daemon thread; returns once listening.

        ``self.port`` holds the bound port.  Used by tests and the load
        generator; the CLI runs :meth:`run` in the foreground instead.
        """
        if self._thread is not None:
            raise RuntimeError("server already launched")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.run_async()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(f"server did not start within {timeout}s")
        return self

    def stop(self) -> None:
        """Stop accepting and unwind the loop (idempotent, thread-safe)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and loop.is_running():
            loop.call_soon_threadsafe(event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def close(self) -> None:
        """Stop serving and tear down shard workers and pools."""
        if self._closed:
            return
        self._closed = True
        if self.replicator is not None:
            self.replicator.stop()
        self.stop()
        self._dispatch.shutdown(wait=True)
        self._scatter.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- stats
    def server_stats(self) -> dict:
        with self._admission:
            pending = self._pending
        return {
            "served": self._served,
            "rejected": self._rejected,
            "errors": self._errors,
            "pending": pending,
            "connections": self._connections,
            "shards": self.pool.n_shards,
            "max_pending": self.max_pending,
            "dispatch": self.pool.dispatch_counts(),
            "respawns": self.pool.respawn_counts(),
            "replication": {
                "enabled": self.replicator is not None,
                **(
                    self.replicator.stats()
                    if self.replicator is not None
                    else {"epoch": self.routing.epoch, "routes": {}}
                ),
            },
        }

    def __repr__(self) -> str:
        return (
            f"QueryServer({str(self.root)!r}, {self.host}:{self.port}, "
            f"shards={self.pool.n_shards}, stats={self.server_stats()!r})"
        )
