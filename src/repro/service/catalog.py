"""Store catalog: an addressable manifest over persisted bitmap indices.

A :class:`repro.io.timeseries.BitmapStore` directory holds
``step_XXXXX/<variable>.rbmp`` files.  The catalog scans that layout once
into a manifest -- (variable x time-step) -> file, format version,
binning description, element/bin counts, byte size, checksum -- and
persists it as ``catalog.json`` next to the data, so a query server can
resolve "which file holds salinity at step 40?" without touching any
index bytes.

The manifest is *derived* state: on any mismatch with the directory
(files added, removed, rewritten, or a schema bump) it is rebuilt from
scratch and re-persisted.  Loose ``.rbmp`` files can also be cataloged
directly (:meth:`Catalog.from_files`) for one-off query sessions without
a store layout.
"""

from __future__ import annotations

import json
import re
import struct
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.bitmap.serialization import (
    MAGIC,
    _SUPPORTED_VERSIONS,
    LazyBitmapIndex,
)

CATALOG_NAME = "catalog.json"
#: Manifest schema version; bump to force rebuilds on format changes.
CATALOG_FORMAT = 1

_STEP_DIR_RE = re.compile(r"^step_(\d+)$")
_RANK_DIR_RE = re.compile(r"^rank_(\d+)$")


class CatalogError(ValueError):
    """Raised for unresolvable variables/steps or unusable stores."""


@dataclass(frozen=True)
class CatalogEntry:
    """One stored index: where it lives and what it contains."""

    variable: str
    step: int
    file: str  # relative to the catalog root
    version: int
    n_elements: int
    n_bins: int
    nbytes: int  # file size on disk
    mtime_ns: int
    checksum: int  # crc32 of the header bytes (cheap, catches rewrites)
    binning: str  # human-readable description

    @property
    def key(self) -> tuple[int, str]:
        return (self.step, self.variable)


def _probe(root: Path, rel: str, step: int, variable: str) -> CatalogEntry:
    """Build one entry by parsing an index file's header (no payloads)."""
    path = root / rel
    stat = path.stat()
    with LazyBitmapIndex(path) as lazy:
        with path.open("rb") as fh:
            header = fh.read(int(lazy.offsets[0]))
        return CatalogEntry(
            variable=variable,
            step=step,
            file=rel,
            version=lazy.version,
            n_elements=lazy.n_elements,
            n_bins=lazy.n_bins,
            nbytes=stat.st_size,
            mtime_ns=stat.st_mtime_ns,
            checksum=zlib.crc32(header),
            binning=repr(lazy.binning),
        )


def _scan_step_dirs(
    root: Path, base: Path, variable_prefix: str
) -> list[tuple[str, int, str]]:
    """(relative file, step, variable) triples under one ``step_*`` parent."""
    found: list[tuple[str, int, str]] = []
    for step_dir in sorted(base.iterdir()):
        m = _STEP_DIR_RE.match(step_dir.name)
        if not m or not step_dir.is_dir():
            continue
        step = int(m.group(1))
        for path in sorted(step_dir.glob("*.rbmp")):
            found.append(
                (str(path.relative_to(root)), step, variable_prefix + path.stem)
            )
    return found


def _scan_layout(root: Path) -> list[tuple[str, int, str]]:
    """(relative file, step, variable) triples for the store layout.

    Two layouts are understood: the single-node ``step_*/<var>.rbmp``
    store, and the cluster runtime's ``rank_*/step_*/<var>.rbmp`` -- rank
    stores keep the (step, variable) key unique by qualifying the
    variable as ``rank_NNNN/<var>``.
    """
    if not root.is_dir():
        return []
    found = _scan_step_dirs(root, root, "")
    for rank_dir in sorted(root.iterdir()):
        if _RANK_DIR_RE.match(rank_dir.name) and rank_dir.is_dir():
            found.extend(_scan_step_dirs(root, rank_dir, f"{rank_dir.name}/"))
    return found


class Catalog:
    """A persisted manifest of every stored index under one root."""

    def __init__(self, root: Path | str, entries: list[CatalogEntry]) -> None:
        self.root = Path(root)
        self._entries: dict[tuple[int, str], CatalogEntry] = {
            e.key: e for e in entries
        }

    # ------------------------------------------------------------ building
    @classmethod
    def build(cls, root: Path | str, *, persist: bool = True) -> "Catalog":
        """Scan ``root``'s store layout into a fresh catalog.

        Files that vanish between the directory scan and the header probe
        (a concurrent cleanup deleting a ``step_*``/``rank_*`` directory)
        are skipped rather than failing the whole build -- the catalog
        describes what is still there.
        """
        root = Path(root)
        if not root.is_dir():
            raise CatalogError(f"store root {root} is not a directory")
        entries = []
        for rel, step, var in _scan_layout(root):
            try:
                entries.append(_probe(root, rel, step, var))
            except FileNotFoundError:
                continue
        catalog = cls(root, entries)
        if persist:
            catalog.save()
        return catalog

    def refresh(self, *, persist: bool = True) -> "Catalog":
        """Re-scan the root, replacing this catalog's entries in place.

        The serving path calls this when a lookup hits a file that no
        longer exists (a store directory deleted after ``catalog.json``
        was written): the manifest is derived state, so the answer to
        staleness is always a rebuild, never an error.  Returns ``self``.
        The entry map is swapped atomically, so concurrent readers see
        either the old or the new manifest, never a partial one.
        """
        fresh = Catalog.build(self.root, persist=persist)
        self._entries = fresh._entries
        return self

    @classmethod
    def open(cls, root: Path | str) -> "Catalog":
        """Load ``catalog.json`` if it still matches the directory, else
        rebuild (and re-persist) it."""
        root = Path(root)
        path = root / CATALOG_NAME
        if not path.exists():
            return cls.build(root)
        try:
            payload = json.loads(path.read_text())
            if payload.get("format") != CATALOG_FORMAT:
                raise ValueError(f"catalog format {payload.get('format')}")
            entries = [CatalogEntry(**raw) for raw in payload["entries"]]
        except (ValueError, KeyError, TypeError):
            return cls.build(root)
        catalog = cls(root, entries)
        if catalog._stale():
            return cls.build(root)
        return catalog

    @classmethod
    def from_files(cls, paths: list[Path | str]) -> "Catalog":
        """Catalog loose index files (variable = file stem, step = 0).

        Used by one-shot CLI queries; nothing is persisted.
        """
        if not paths:
            raise CatalogError("no index files given")
        paths = [Path(p) for p in paths]
        root = paths[0].parent
        entries = []
        for p in paths:
            rel = str(p.relative_to(root)) if p.parent == root else str(p)
            entries.append(_probe(root, rel, 0, p.stem))
        return cls(root, entries)

    def _stale(self) -> bool:
        """True when the directory no longer matches the manifest."""
        layout = {(step, var): rel for rel, step, var in _scan_layout(self.root)}
        if set(layout) != set(self._entries):
            return True
        for key, entry in self._entries.items():
            if layout[key] != entry.file:
                return True
            path = self.root / entry.file
            try:
                stat = path.stat()
            except OSError:
                return True
            if stat.st_size != entry.nbytes or stat.st_mtime_ns != entry.mtime_ns:
                return True
        return False

    def save(self) -> Path:
        """Persist the manifest as ``catalog.json`` under the root."""
        path = self.root / CATALOG_NAME
        payload = {
            "format": CATALOG_FORMAT,
            "entries": [asdict(e) for e in sorted(
                self._entries.values(), key=lambda e: e.key
            )],
        }
        path.write_text(json.dumps(payload, indent=1))
        return path

    # ----------------------------------------------------------- resolving
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[CatalogEntry]:
        return sorted(self._entries.values(), key=lambda e: e.key)

    def steps(self) -> list[int]:
        return sorted({step for step, _ in self._entries})

    def variables(self, step: int | None = None) -> list[str]:
        if step is None:
            return sorted({var for _, var in self._entries})
        return sorted(var for s, var in self._entries if s == step)

    def entry(self, variable: str, step: int) -> CatalogEntry:
        try:
            return self._entries[(step, variable)]
        except KeyError:
            raise CatalogError(
                f"no index for {variable!r} at step {step}; "
                f"stored steps: {self.steps()}"
            ) from None

    def resolve(self, variable: str, step: int | None = None) -> CatalogEntry:
        """Find ``variable``'s entry; ``step=None`` takes the latest step
        holding it."""
        if step is not None:
            return self.entry(variable, step)
        steps = sorted(
            (s for s, var in self._entries if var == variable), reverse=True
        )
        if not steps:
            raise CatalogError(
                f"variable {variable!r} not in catalog; "
                f"available: {self.variables()}"
            )
        return self._entries[(steps[0], variable)]

    def rank_members(
        self, variable: str, step: int | None = None
    ) -> list[CatalogEntry]:
        """The per-rank slabs of one *global* variable, in rank order.

        A cluster store qualifies each rank's files as
        ``rank_NNNN/<variable>``; the unqualified name denotes the global
        variable whose element set is the rank slabs concatenated in rank
        order.  Returns those entries at ``step`` (``None``: the latest
        step holding any member), or ``[]`` when the name has no
        rank-qualified members -- i.e. it is not a global variable here.
        """
        pattern = re.compile(rf"^rank_(\d+)/{re.escape(variable)}$")
        hits: list[tuple[int, int, CatalogEntry]] = []
        for (s, var), entry in self._entries.items():
            m = pattern.match(var)
            if m:
                hits.append((s, int(m.group(1)), entry))
        if not hits:
            return []
        if step is None:
            step = max(s for s, _, _ in hits)
        members = sorted(
            (rank, entry) for s, rank, entry in hits if s == step
        )
        return [entry for _, entry in members]

    def path_of(self, entry: CatalogEntry) -> Path:
        return self.root / entry.file

    def verify(self, entry: CatalogEntry) -> bool:
        """Re-checksum one entry's header against the file on disk."""
        path = self.root / entry.file
        try:
            fresh = _probe(self.root, entry.file, entry.step, entry.variable)
        except (OSError, ValueError, EOFError):
            return False
        return (
            fresh.checksum == entry.checksum and fresh.nbytes == entry.nbytes
        )

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def __repr__(self) -> str:
        return (
            f"Catalog({str(self.root)!r}, entries={len(self)}, "
            f"steps={len(self.steps())}, bytes={self.total_bytes()})"
        )


# Re-exported for callers that sanity-check files before cataloging.
def looks_like_index(path: Path | str) -> bool:
    """Cheap sniff: does ``path`` start with the index magic?"""
    try:
        with open(path, "rb") as fh:
            head = fh.read(4)
    except OSError:
        return False
    if head != MAGIC:
        return False
    try:
        with open(path, "rb") as fh:
            fh.seek(4)
            version = struct.unpack("<HH", fh.read(4))[0]
    except (OSError, struct.error):
        return False
    return version in _SUPPORTED_VERSIONS
