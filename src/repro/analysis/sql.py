"""A restricted SQL-ish query language for correlation analysis (§4.1).

The authors' interactive framework [30] let scientists "submit different
SQL queries to specify the data subsets (either value-based or
dimension-based subsets) they are interested in for correlation analysis".
This module provides that front end over the bitmap machinery:

    SELECT MI FROM temperature, salinity
        WHERE temperature BETWEEN 2.5 AND 9
          AND salinity >= 34
          AND REGION(0:4, 10:20, 0:48)

Grammar (case-insensitive keywords):

* ``SELECT <metric>`` -- one of ``MI`` (mutual information), ``CE``
  (conditional entropy of var1 given var2), ``EMD`` (count-based EMD,
  requires a shared binning scale), ``COUNT`` (join cardinality);
* ``FROM a, b`` -- two variable names resolved against a dict of indices;
* ``WHERE`` clauses joined by ``AND``:
  - ``<var> BETWEEN x AND y``,
  - ``<var> >= x`` / ``<var> <= x``,
  - ``REGION(lo:hi, lo:hi, ...)`` -- a grid box (needs a Z-order layout).

All predicates compile to bitvector masks (bin-granular, like the rest of
the system); evaluation never touches raw data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.queries import (
    SpatialSubset,
    ValueSubset,
    restricted_joint_counts,
    spatial_subset_mask,
    value_subset_mask,
)
from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import logical_and
from repro.bitmap.ordering import orderings_compatible
from repro.bitmap.wah import WAHBitVector
from repro.bitmap.zorder import ZOrderLayout
from repro.metrics.entropy import (
    conditional_entropy_from_joint,
    mutual_information_from_joint,
)
from repro.metrics.emd import emd_from_counts

_METRICS = ("MI", "CE", "EMD", "COUNT")


class QueryError(ValueError):
    """Raised for malformed query text."""


@dataclass
class Query:
    """A parsed query, ready to evaluate against named indices."""

    metric: str
    var_a: str
    var_b: str
    value_predicates: dict[str, ValueSubset] = field(default_factory=dict)
    region: SpatialSubset | None = None
    text: str = ""

    def __repr__(self) -> str:
        return f"Query({self.text!r})"


# Variable tokens admit "/" so the rank-qualified names the catalog
# derives from cluster stores ("rank_0000/payload") stay addressable.
# Numeric literals are real floats: sign, decimals, signed exponent --
# "[-\d.eE+]+"-style character classes silently rejected "1e-3".
_NUM = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?"
_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(?P<metric>\w+)\s+FROM\s+(?P<a>[\w/]+)\s*,\s*(?P<b>[\w/]+)"
    r"(?:\s+WHERE\b(?P<where>.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_BETWEEN_RE = re.compile(
    rf"^(?P<var>[\w/]+)\s+BETWEEN\s+(?P<lo>{_NUM})\s+AND\s+(?P<hi>{_NUM})$",
    re.IGNORECASE,
)
_CMP_RE = re.compile(
    rf"^(?P<var>[\w/]+)\s*(?P<op>>=|<=)\s*(?P<val>{_NUM})$"
)
_REGION_RE = re.compile(r"^REGION\s*\((?P<body>[^)]*)\)$", re.IGNORECASE)


def _split_where(text: str) -> list[str]:
    """Split WHERE clauses on AND, but not the AND inside BETWEEN."""
    parts: list[str] = []
    tokens = re.split(r"\bAND\b", text, flags=re.IGNORECASE)
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if re.search(rf"\bBETWEEN\s+{_NUM}\s*$", token, re.IGNORECASE):
            if i + 1 >= len(tokens) or not tokens[i + 1].strip():
                raise QueryError(f"dangling BETWEEN in {token.strip()!r}")
            token = f"{token} AND {tokens[i + 1]}"
            i += 1
        parts.append(token.strip())
        i += 1
    if any(not p for p in parts):
        raise QueryError(f"dangling AND in WHERE clause {text.strip()!r}")
    return parts


def parse_query(text: str) -> Query:
    """Parse query text; raises :class:`QueryError` with a useful message."""
    # Interactive clients habitually terminate statements with ";".
    core = text.strip()
    while core.endswith(";"):
        core = core[:-1].rstrip()
    m = _SELECT_RE.match(core)
    if not m:
        raise QueryError(
            f"cannot parse {text!r}: expected "
            "'SELECT <metric> FROM <a>, <b> [WHERE ...]'"
        )
    metric = m.group("metric").upper()
    if metric not in _METRICS:
        raise QueryError(f"unknown metric {metric!r}; supported: {_METRICS}")
    query = Query(metric, m.group("a"), m.group("b"), text=text.strip())

    where = m.group("where")
    if where is not None and not where.strip():
        raise QueryError("empty WHERE clause")
    if where:
        for clause in _split_where(where):
            if bm := _BETWEEN_RE.match(clause):
                lo, hi = float(bm.group("lo")), float(bm.group("hi"))
                if hi < lo:
                    raise QueryError(
                        f"inverted BETWEEN bounds on {bm.group('var')!r}: "
                        f"[{lo}, {hi}]"
                    )
                _merge_predicate(query, bm.group("var"), ValueSubset(lo, hi))
            elif cm := _CMP_RE.match(clause):
                val = float(cm.group("val"))
                subset = (
                    ValueSubset(val, float("inf"))
                    if cm.group("op") == ">="
                    else ValueSubset(float("-inf"), val)
                )
                _merge_predicate(query, cm.group("var"), subset)
            elif rm := _REGION_RE.match(clause):
                if query.region is not None:
                    raise QueryError("multiple REGION clauses")
                query.region = _parse_region(rm.group("body"))
            else:
                raise QueryError(f"cannot parse WHERE clause {clause!r}")
    return query


def _merge_predicate(query: Query, var: str, subset: ValueSubset) -> None:
    existing = query.value_predicates.get(var)
    if existing is None:
        query.value_predicates[var] = subset
        return
    lo = max(existing.lo, subset.lo)
    hi = min(existing.hi, subset.hi)
    if hi < lo:
        raise QueryError(f"contradictory predicates on {var!r}")
    query.value_predicates[var] = ValueSubset(lo, hi)


def _parse_region(body: str) -> SpatialSubset:
    lo: list[int] = []
    hi: list[int] = []
    for dim in body.split(","):
        dim = dim.strip()
        m = re.match(r"^(\d+)\s*:\s*(\d+)$", dim)
        if not m:
            raise QueryError(f"bad REGION dimension {dim!r}; expected lo:hi")
        lo.append(int(m.group(1)))
        hi.append(int(m.group(2)))
    return SpatialSubset(tuple(lo), tuple(hi))


def clamp_subset(subset: ValueSubset, binning) -> ValueSubset:
    """Replace +-inf bounds with the binning's extremes.

    Public because the query service's planner
    (:mod:`repro.service.executor`) must clamp predicates against a
    *binning alone* -- before any bitvector is loaded -- to pick the same
    bins this module would.
    """
    edges = getattr(binning, "edges", None)
    if edges is None:
        values = getattr(binning, "values", None)
        domain_lo, domain_hi = float(values[0]), float(values[-1])
    else:
        domain_lo, domain_hi = float(edges[0]), float(edges[-1])
    lo = domain_lo if np.isneginf(subset.lo) else subset.lo
    hi = domain_hi if np.isposinf(subset.hi) else subset.hi
    return ValueSubset(min(lo, hi), max(lo, hi))


def _clamped(subset: ValueSubset, index: BitmapIndex) -> ValueSubset:
    return clamp_subset(subset, index.binning)


def predicate_mask(
    query: Query,
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    *,
    layout: ZOrderLayout | None = None,
) -> WAHBitVector:
    """The combined element mask a query's WHERE clause selects.

    AND of every value predicate's bin-granular mask plus the optional
    region mask; all-ones when there is no WHERE clause.  Public because
    the query service's scatter-gather path computes this per rank slab
    and splices the parts (`repro.service.shard`).

    The mask lives in the *indices'* row space: for row-ordered indices
    (:mod:`repro.bitmap.ordering`) the region predicate -- built from
    the simulation-order grid layout -- is permuted into ordered space
    before the AND, and callers that need the result in simulation order
    de-permute it with ``index_a.ordering.unpermute_mask``.  Both
    indices must share one row ordering, else bit ``i`` would name two
    different elements.
    """
    ordering_a = getattr(index_a, "ordering", None)
    if not orderings_compatible(ordering_a, getattr(index_b, "ordering", None)):
        raise QueryError(
            "FROM variables are stored under different row orderings; "
            "joint results would not be row-aligned"
        )
    n = index_a.n_elements
    mask = WAHBitVector.ones(n)
    for var, subset in query.value_predicates.items():
        if var not in (query.var_a, query.var_b):
            raise QueryError(
                f"predicate on {var!r}, which is not in the FROM clause"
            )
        index = index_a if var == query.var_a else index_b
        mask = logical_and(mask, value_subset_mask(index, _clamped(subset, index)))
    if query.region is not None:
        if layout is None:
            raise QueryError("REGION clause requires a ZOrderLayout")
        region = spatial_subset_mask(n, query.region, layout)
        if ordering_a is not None:
            region = ordering_a.permute_mask(region)
        mask = logical_and(mask, region)
    return mask


def query_joint_counts(
    query: Query,
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    *,
    layout: ZOrderLayout | None = None,
) -> np.ndarray:
    """The restricted joint histogram a query's metric is computed from.

    Integer counts: over a domain decomposition the elementwise sum of
    per-slab results equals the single-node histogram exactly, which is
    what makes sharded metric queries bit-identical to serial ones.
    """
    if index_b.n_elements != index_a.n_elements:
        raise QueryError("FROM variables cover different element sets")
    mask = predicate_mask(query, index_a, index_b, layout=layout)
    return restricted_joint_counts(index_a, index_b, mask)


def finish_metric(metric: str, joint: np.ndarray) -> float:
    """Apply a metric's float formula to a (possibly merged) joint
    histogram.  The EMD same-binning-scale requirement is the caller's
    to enforce (it needs the binnings, which the counts don't carry)."""
    if metric == "MI":
        return mutual_information_from_joint(joint)
    if metric == "CE":
        return conditional_entropy_from_joint(joint)
    if metric == "COUNT":
        return float(joint.sum())
    if metric == "EMD":
        return emd_from_counts(joint.sum(axis=1), joint.sum(axis=0))
    raise QueryError(f"unknown metric {metric!r}; supported: {_METRICS}")


def execute_query(
    query: Query,
    indices: dict[str, BitmapIndex],
    *,
    layout: ZOrderLayout | None = None,
) -> float:
    """Evaluate a parsed query against named bitmap indices."""
    try:
        index_a = indices[query.var_a]
        index_b = indices[query.var_b]
    except KeyError as exc:
        raise QueryError(
            f"unknown variable {exc.args[0]!r}; available: {sorted(indices)}"
        ) from None
    if query.metric == "EMD" and index_a.binning != index_b.binning:
        # EMD over the restricted marginals requires one binning scale.
        raise QueryError("EMD requires both variables on one binning scale")
    joint = query_joint_counts(query, index_a, index_b, layout=layout)
    return finish_metric(query.metric, joint)


def query(
    text: str,
    indices: dict[str, BitmapIndex],
    *,
    layout: ZOrderLayout | None = None,
) -> float:
    """Parse and execute in one call."""
    return execute_query(parse_query(text), indices, layout=layout)
