"""Cumulative Frequency Plots and accuracy-loss scoring (§5.5).

Figures 16 and 17 report sampling accuracy as a CFP: "a point (x, y)
indicates that the fraction y of all calculated value differences are less
than x", plus a mean *relative* loss
``(original - sample) / original`` averaged over all pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_same_length, ensure_1d


@dataclass(frozen=True)
class CFPCurve:
    """A cumulative frequency curve over non-negative differences."""

    x: np.ndarray  # sorted difference values
    y: np.ndarray  # fraction of differences <= x

    @property
    def n(self) -> int:
        return int(self.x.size)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of differences strictly below ``threshold``."""
        if self.n == 0:
            return 0.0
        return float(np.searchsorted(self.x, threshold, side="left") / self.n)

    def quantile(self, q: float) -> float:
        """Difference value below which fraction ``q`` of points fall."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.n == 0:
            raise ValueError("empty curve")
        return float(np.quantile(self.x, q))

    def dominates(self, other: "CFPCurve") -> bool:
        """True if this curve is (weakly) left of ``other`` at every decile.

        "A method with the curve to the left has a better accuracy."
        """
        qs = np.linspace(0.1, 0.9, 9)
        mine = np.quantile(self.x, qs) if self.n else np.zeros(9)
        theirs = np.quantile(other.x, qs) if other.n else np.zeros(9)
        return bool(np.all(mine <= theirs + 1e-12))


def cfp_curve(differences: np.ndarray) -> CFPCurve:
    """Build a CFP from absolute differences (negatives are |.|-folded)."""
    diffs = np.abs(ensure_1d("differences", differences, dtype=np.float64))
    x = np.sort(diffs)
    y = np.arange(1, x.size + 1, dtype=np.float64) / max(x.size, 1)
    return CFPCurve(x, y)


def absolute_differences(original: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """``|original - approx|`` per pair (Figures 16-17's x axis)."""
    original = ensure_1d("original", original, dtype=np.float64)
    approx = ensure_1d("approx", approx, dtype=np.float64)
    check_same_length("original", original, "approx", approx)
    return np.abs(original - approx)


def mean_relative_loss(original: np.ndarray, approx: np.ndarray) -> float:
    """Mean of ``|original - approx| / |original|`` over pairs with
    ``original != 0`` -- the paper's "average information loss"."""
    original = ensure_1d("original", original, dtype=np.float64)
    approx = ensure_1d("approx", approx, dtype=np.float64)
    check_same_length("original", original, "approx", approx)
    ok = original != 0
    if not np.any(ok):
        return 0.0
    rel = np.abs(original[ok] - approx[ok]) / np.abs(original[ok])
    return float(rel.mean())
