"""Value/spatial subset queries over bitmap indices (§4.1's substrate).

The authors' earlier framework [30] let users submit SQL-ish queries
specifying *value-based* or *dimension-based* subsets and computed
correlations over them.  Correlation mining builds on that machinery; this
module provides it:

* :class:`ValueSubset` -- "WHERE lo <= var <= hi";
* :class:`SpatialSubset` -- a box in grid coordinates (mapped through the
  Z-order layout when one is supplied) or a flat position range;
* :func:`subset_mask` -- compile a subset to a :class:`WAHBitVector`;
* :func:`correlation_query` -- mutual information of two variables
  restricted to a subset, computed from bitmaps only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import logical_and
from repro.bitmap.wah import WAHBitVector
from repro.bitmap.zorder import ZOrderLayout
from repro.metrics.entropy import mutual_information_from_joint
from repro.util.bits import popcount_u32, last_group_mask


@dataclass(frozen=True)
class ValueSubset:
    """Elements whose value falls in [lo, hi] (bin-granular resolution)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"need hi >= lo, got [{self.lo}, {self.hi}]")


@dataclass(frozen=True)
class SpatialSubset:
    """A spatial box (inclusive lo, exclusive hi per dimension)."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have the same dimensionality")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty box: lo={self.lo} hi={self.hi}")


@dataclass(frozen=True)
class FlatRange:
    """A contiguous position range [start, stop) in the element order."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bad range [{self.start}, {self.stop})")


def value_subset_mask(index: BitmapIndex, subset: ValueSubset) -> WAHBitVector:
    """Compile a value subset against an index (OR of overlapping bins)."""
    return index.query_value_range(subset.lo, subset.hi)


def spatial_subset_mask(
    n_elements: int,
    subset: SpatialSubset | FlatRange,
    layout: ZOrderLayout | None = None,
) -> WAHBitVector:
    """Compile a spatial subset to a position mask.

    For :class:`SpatialSubset`, a ``layout`` tells us how grid coordinates
    map to bit positions (Z-order); without one the grid is assumed
    C-order-flattened and a layout is required.
    """
    if isinstance(subset, FlatRange):
        if subset.stop > n_elements:
            raise ValueError(f"range [{subset.start},{subset.stop}) exceeds {n_elements}")
        bits = np.zeros(n_elements, dtype=bool)
        bits[subset.start : subset.stop] = True
        return WAHBitVector.from_bools(bits)
    if layout is None:
        raise ValueError("SpatialSubset needs a ZOrderLayout to resolve positions")
    if layout.n_cells != n_elements:
        raise ValueError(
            f"layout covers {layout.n_cells} cells, index covers {n_elements}"
        )
    grid_mask = np.zeros(layout.shape, dtype=bool)
    grid_mask[tuple(slice(l, h) for l, h in zip(subset.lo, subset.hi))] = True
    return WAHBitVector.from_bools(layout.flatten(grid_mask))


def restricted_joint_counts(
    index_a: BitmapIndex, index_b: BitmapIndex, mask: WAHBitVector
) -> np.ndarray:
    """Joint histogram of A x B restricted to ``mask`` -- bitmaps only."""
    if index_a.n_elements != index_b.n_elements or mask.n_bits != index_a.n_elements:
        raise ValueError("index/mask element sets differ")
    mg = mask.to_groups()
    if mg.size and index_a.n_elements:
        mg = mg.copy()
        mg[-1] &= last_group_mask(index_a.n_elements)
    # Fused decode: each side's bins live in one stacked matrix (the
    # memoised group_matrix, built via repro.bitmap.kernels.stack_groups),
    # then row ops + hardware popcount.
    ga = index_a.group_matrix() & mg
    gb = index_b.group_matrix()
    out = np.empty((index_a.n_bins, index_b.n_bins), dtype=np.int64)
    for i in range(index_a.n_bins):
        out[i, :] = popcount_u32(ga[i][None, :] & gb).sum(axis=1, dtype=np.int64)
    return out


def correlation_query(
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    *,
    value_a: ValueSubset | None = None,
    value_b: ValueSubset | None = None,
    region: SpatialSubset | FlatRange | None = None,
    layout: ZOrderLayout | None = None,
) -> float:
    """Mutual information of A and B over the requested subset.

    Value subsets restrict which elements count at all (an element must
    satisfy *both* value predicates); the region restricts positions.  The
    restricted joint histogram then feeds Equation 5.
    """
    n = index_a.n_elements
    mask = WAHBitVector.ones(n)
    if value_a is not None:
        mask = logical_and(mask, value_subset_mask(index_a, value_a))
    if value_b is not None:
        mask = logical_and(mask, value_subset_mask(index_b, value_b))
    if region is not None:
        mask = logical_and(mask, spatial_subset_mask(n, region, layout))
    joint = restricted_joint_counts(index_a, index_b, mask)
    return mutual_information_from_joint(joint)
