"""Bitmap-based subgroup discovery -- the SciSD prior-work analysis [39].

"SciSD: novel subgroup discovery over scientific datasets using bitmap
indices" (Wang, Su, Agrawal, Liu): find *subgroups* -- conjunctions of a
value predicate on an explanatory variable and/or a spatial unit -- where
a target variable's mean deviates most from the global mean.

With bitmaps the search needs no raw data:

* a candidate subgroup is a bitvector (bin, bin range, Z-order unit, or
  their AND);
* the target's mean over the subgroup comes from AND counts against the
  target's bins and the bin representatives (the approximate-aggregation
  machinery);
* quality uses the standard mean-shift function
  ``q = n^alpha * |mean(subgroup) - mean(global)|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.aggregation import _bin_geometry
from repro.bitmap.index import BitmapIndex
from repro.bitmap.units import n_units, unit_popcounts
from repro.bitmap.wah import WAHBitVector
from repro.util.bits import last_group_mask


@dataclass(frozen=True)
class Subgroup:
    """A discovered subgroup and its statistics."""

    description: str
    size: int
    mean: float
    quality: float

    def __repr__(self) -> str:
        return (
            f"Subgroup({self.description!r}, n={self.size}, "
            f"mean={self.mean:.4g}, q={self.quality:.4g})"
        )


def _target_unit_matrix(target: BitmapIndex, unit_bits: int) -> np.ndarray:
    """Counts[target_bin, unit]: the target's value distribution per unit."""
    rows = [unit_popcounts(v, unit_bits) for v in target.bitvectors]
    return np.vstack(rows) if rows else np.empty((0, 0), dtype=np.int64)


def discover_subgroups(
    explain: BitmapIndex,
    target: BitmapIndex,
    *,
    unit_bits: int,
    top_k: int = 10,
    min_size: int = 30,
    alpha: float = 0.5,
    max_range_width: int = 3,
) -> list[Subgroup]:
    """Top-k mean-shift subgroups over value bins, bin ranges and units.

    Candidates:

    * ``explain in bin-range`` for every contiguous run of up to
      ``max_range_width`` explanatory bins;
    * ``unit u`` for every spatial unit;
    * the conjunction of the best value candidates with every unit they
      overlap (refinement step).
    """
    if explain.n_elements != target.n_elements:
        raise ValueError("explain/target cover different element sets")
    n = target.n_elements
    _, _, mids = _bin_geometry(target)
    global_counts = target.bin_counts().astype(np.float64)
    total = global_counts.sum()
    if total == 0:
        raise ValueError("empty target index")
    global_mean = float(global_counts @ mids / total)

    results: list[Subgroup] = []

    def score(desc: str, counts_per_target_bin: np.ndarray) -> None:
        size = int(counts_per_target_bin.sum())
        if size < min_size:
            return
        mean = float(counts_per_target_bin @ mids / size)
        quality = size**alpha * abs(mean - global_mean)
        results.append(Subgroup(desc, size, mean, quality))

    # --- value-range candidates (counts via joint AND counts) -----------
    from repro.metrics.bitmap_metrics import joint_counts

    joint = joint_counts(explain, target)  # explain-bin x target-bin
    for width in range(1, max_range_width + 1):
        for start in range(0, explain.n_bins - width + 1):
            counts = joint[start : start + width].sum(axis=0)
            label = (
                f"explain in {explain.binning.bin_label(start)}"
                if width == 1
                else f"explain in bins[{start}:{start + width}]"
            )
            score(label, counts)

    # --- spatial-unit candidates ----------------------------------------
    per_unit = _target_unit_matrix(target, unit_bits)  # target-bin x unit
    for unit in range(n_units(n, unit_bits)):
        score(f"unit {unit}", per_unit[:, unit])

    # --- refinement: best value candidate x each unit --------------------
    results.sort(key=lambda s: -s.quality)
    best_values = [s for s in results if s.description.startswith("explain")][:3]
    for vs in best_values:
        mask = _mask_for_description(explain, vs.description)
        masked_units = _masked_target_units(target, mask, unit_bits)
        for unit in range(masked_units.shape[1]):
            score(f"{vs.description} AND unit {unit}", masked_units[:, unit])

    results.sort(key=lambda s: (-s.quality, s.description))
    return results[:top_k]


def _mask_for_description(explain: BitmapIndex, description: str) -> WAHBitVector:
    """Rebuild the bitvector of a value candidate from its label."""
    if "bins[" in description:
        inner = description.split("bins[")[1].rstrip("]")
        start, stop = (int(x) for x in inner.split(":"))
        bins = np.arange(start, stop)
    else:
        label = description.removeprefix("explain in ")
        bins = np.asarray(
            [
                b
                for b in range(explain.n_bins)
                if explain.binning.bin_label(b) == label
            ]
        )
    return explain.query_bins(bins)


def _masked_target_units(
    target: BitmapIndex, mask: WAHBitVector, unit_bits: int
) -> np.ndarray:
    """Counts[target_bin, unit] restricted to ``mask`` positions."""
    mg = mask.to_groups().copy()
    if mg.size and target.n_elements:
        mg[-1] &= last_group_mask(target.n_elements)
    rows = []
    from repro.bitmap.units import unit_popcounts_groups

    aligned = unit_bits % 31 == 0
    for v in target.bitvectors:
        joint = v.to_groups() & mg
        if aligned:
            rows.append(unit_popcounts_groups(joint, target.n_elements, unit_bits))
        else:
            from repro.bitmap.wah import WAHBitVector as _W
            from repro.bitmap.wah import compress_groups

            rows.append(
                unit_popcounts(_W(compress_groups(joint), target.n_elements), unit_bits)
            )
    return np.vstack(rows)
