"""Bitmap data spatial join -- one of the §2.2 prior-work analyses.

"In our previous work, we demonstrated that ... data spatial join ... can
be supported using bitmaps without touching the original dataset" [30].

A *spatial join* here pairs two variables over the same grid and asks:
*where* do value predicates on both hold simultaneously?  With bitmaps the
answer is one compressed AND per predicate pair, optionally aggregated
per Z-order spatial unit:

* :func:`join_mask` -- the element mask satisfying both predicates;
* :func:`join_count` -- its cardinality (count-only fast path);
* :func:`join_units` -- per-spatial-unit match counts, the "which regions"
  answer correlation mining builds on;
* :func:`join_pairs_table` -- the full predicate-pair contingency table
  (every bin pair's match count), useful for joint heat maps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.queries import ValueSubset, value_subset_mask
from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import and_count, logical_and
from repro.bitmap.units import unit_popcounts
from repro.bitmap.wah import WAHBitVector
from repro.metrics.bitmap_metrics import joint_counts


def _check(index_a: BitmapIndex, index_b: BitmapIndex) -> None:
    if index_a.n_elements != index_b.n_elements:
        raise ValueError(
            "spatial join needs position-aligned variables: "
            f"{index_a.n_elements} != {index_b.n_elements} elements"
        )


def join_mask(
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    predicate_a: ValueSubset,
    predicate_b: ValueSubset,
) -> WAHBitVector:
    """Positions where ``A in predicate_a`` AND ``B in predicate_b``."""
    _check(index_a, index_b)
    mask_a = value_subset_mask(index_a, predicate_a)
    mask_b = value_subset_mask(index_b, predicate_b)
    return logical_and(mask_a, mask_b)


def join_count(
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    predicate_a: ValueSubset,
    predicate_b: ValueSubset,
) -> int:
    """Cardinality of the join without materialising the mask."""
    _check(index_a, index_b)
    mask_a = value_subset_mask(index_a, predicate_a)
    mask_b = value_subset_mask(index_b, predicate_b)
    return and_count(mask_a, mask_b)


@dataclass(frozen=True)
class JoinUnit:
    """One spatial unit's join statistics."""

    unit: int
    matches: int
    unit_cells: int

    @property
    def density(self) -> float:
        return self.matches / self.unit_cells if self.unit_cells else 0.0


def join_units(
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    predicate_a: ValueSubset,
    predicate_b: ValueSubset,
    *,
    unit_bits: int,
    min_matches: int = 1,
) -> list[JoinUnit]:
    """Per-spatial-unit match counts, densest units first."""
    mask = join_mask(index_a, index_b, predicate_a, predicate_b)
    counts = unit_popcounts(mask, unit_bits)
    from repro.bitmap.units import unit_sizes

    sizes = unit_sizes(mask.n_bits, unit_bits)
    units = [
        JoinUnit(int(u), int(counts[u]), int(sizes[u]))
        for u in np.flatnonzero(counts >= min_matches)
    ]
    units.sort(key=lambda j: (-j.matches, j.unit))
    return units


def join_pairs_table(index_a: BitmapIndex, index_b: BitmapIndex) -> np.ndarray:
    """Match counts for *every* (bin_a, bin_b) predicate pair.

    This is exactly the joint histogram of §3.2 -- exposed under its join
    name because that is how the earlier work consumed it.
    """
    _check(index_a, index_b)
    return joint_counts(index_a, index_b)
