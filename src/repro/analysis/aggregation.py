"""Approximate aggregation from bitmaps (prior-work substrate, §2.2/§4).

The paper lists "approximate data aggregation" among the analyses its
earlier work [38] supports purely from bitmaps.  With bin popcounts and
bin value ranges, aggregates are computable without raw data, with
deterministic error bounds set by the bin widths:

* COUNT -- exact (popcounts);
* SUM / AVG -- approximate, using bin midpoints as representatives;
  the worst-case error is half a bin width per element;
* MIN / MAX -- bounded to the first/last non-empty bin's range.

All aggregators optionally restrict to a mask bitvector (subset queries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import and_count
from repro.bitmap.wah import WAHBitVector


@dataclass(frozen=True)
class ApproximateValue:
    """An estimate with a hard (not statistical) error interval."""

    estimate: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.lo <= self.estimate <= self.hi:
            raise ValueError(
                f"estimate {self.estimate} outside bound [{self.lo}, {self.hi}]"
            )

    @property
    def max_error(self) -> float:
        return max(self.estimate - self.lo, self.hi - self.estimate)


def _bin_geometry(index: BitmapIndex) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(lows, highs, midpoints) of every bin's value range."""
    edges = getattr(index.binning, "edges", None)
    if edges is not None:
        lows = np.asarray(edges[:-1], dtype=np.float64)
        highs = np.asarray(edges[1:], dtype=np.float64)
    else:
        values = getattr(index.binning, "values", None)
        if values is None:
            raise TypeError(
                f"binning {type(index.binning).__name__} exposes no edges/values"
            )
        lows = highs = np.asarray(values, dtype=np.float64)
    return lows, highs, (lows + highs) / 2.0


def _masked_counts(index: BitmapIndex, mask: WAHBitVector | None) -> np.ndarray:
    if mask is None:
        return index.bin_counts()
    return np.asarray(
        [and_count(v, mask) for v in index.bitvectors], dtype=np.int64
    )


def approximate_count(index: BitmapIndex, mask: WAHBitVector | None = None) -> int:
    """Element count (exact -- counting needs no value information)."""
    return int(_masked_counts(index, mask).sum())


def approximate_sum(
    index: BitmapIndex, mask: WAHBitVector | None = None
) -> ApproximateValue:
    """Sum estimate from bin midpoints, with hard lo/hi bounds."""
    counts = _masked_counts(index, mask).astype(np.float64)
    lows, highs, mids = _bin_geometry(index)
    return ApproximateValue(
        float(counts @ mids), float(counts @ lows), float(counts @ highs)
    )


def approximate_mean(
    index: BitmapIndex, mask: WAHBitVector | None = None
) -> ApproximateValue:
    """Mean estimate; zero-count subsets return a zero-width interval at 0."""
    counts = _masked_counts(index, mask).astype(np.float64)
    n = counts.sum()
    if n == 0:
        return ApproximateValue(0.0, 0.0, 0.0)
    s = approximate_sum(index, mask)
    return ApproximateValue(s.estimate / n, s.lo / n, s.hi / n)


def approximate_min(
    index: BitmapIndex, mask: WAHBitVector | None = None
) -> ApproximateValue:
    """Min bounded by the first non-empty bin's value range."""
    counts = _masked_counts(index, mask)
    nz = np.flatnonzero(counts)
    if nz.size == 0:
        raise ValueError("cannot take min of an empty subset")
    lows, highs, mids = _bin_geometry(index)
    b = int(nz[0])
    return ApproximateValue(float(mids[b]), float(lows[b]), float(highs[b]))


def approximate_max(
    index: BitmapIndex, mask: WAHBitVector | None = None
) -> ApproximateValue:
    """Max bounded by the last non-empty bin's value range."""
    counts = _masked_counts(index, mask)
    nz = np.flatnonzero(counts)
    if nz.size == 0:
        raise ValueError("cannot take max of an empty subset")
    lows, highs, mids = _bin_geometry(index)
    b = int(nz[-1])
    return ApproximateValue(float(mids[b]), float(lows[b]), float(highs[b]))
