"""Bitmap-based missing-value imputation -- the [2] prior-work analysis.

"Accelerating data mining on incomplete datasets by bitmaps-based missing
value imputation" (Abdulah, Su, Agrawal): when variable A has missing
entries but a correlated variable B is fully observed, the conditional
value distribution ``P(A-bin | B-bin)`` -- computable from bitmaps alone
via pairwise AND counts over the *observed* subset -- imputes each missing
A as the expected (or modal) representative of its B-bin's conditional
distribution.

Everything here consumes bitmaps:

* the observed-A index covers only positions where A is known;
* the B index covers all positions;
* the missing mask is itself a bitvector;
* imputation = one restricted joint histogram + per-B-bin expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.analysis.aggregation import _bin_geometry
from repro.analysis.queries import restricted_joint_counts
from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import logical_not
from repro.bitmap.wah import WAHBitVector

Strategy = Literal["mean", "mode"]


@dataclass
class ImputationModel:
    """Per-B-bin imputation values learned from the observed subset."""

    #: representative A value for each B bin (global fallback where a B bin
    #: had no observed A at all)
    value_per_b_bin: np.ndarray
    #: conditional distribution P(A-bin | B-bin), rows = B bins
    conditional: np.ndarray
    strategy: Strategy
    global_value: float

    def impute_for_bins(self, b_bins: np.ndarray) -> np.ndarray:
        """Imputed A values for elements whose B falls in ``b_bins``."""
        return self.value_per_b_bin[np.asarray(b_bins, dtype=np.int64)]


def fit_imputation(
    index_a_observed: BitmapIndex,
    index_b: BitmapIndex,
    missing_mask: WAHBitVector,
    *,
    strategy: Strategy = "mean",
) -> ImputationModel:
    """Learn ``P(A | B)`` from the observed positions, bitmaps only.

    ``index_a_observed`` must have zero bits at every missing position
    (its bin counts partition the *observed* set); ``missing_mask`` has
    ones exactly at the missing positions.
    """
    if index_a_observed.n_elements != index_b.n_elements:
        raise ValueError("indices cover different element sets")
    if missing_mask.n_bits != index_b.n_elements:
        raise ValueError("missing mask length mismatch")
    observed = logical_not(missing_mask)
    # Joint counts restricted to observed positions: B bins x A bins.
    joint = restricted_joint_counts(index_b, index_a_observed, observed)
    lows, highs, mids = _bin_geometry(index_a_observed)

    totals = joint.sum(axis=1, keepdims=True).astype(np.float64)
    conditional = np.divide(
        joint, totals, out=np.zeros_like(joint, dtype=np.float64),
        where=totals > 0,
    )
    overall = joint.sum(axis=0).astype(np.float64)
    if overall.sum() == 0:
        raise ValueError("no observed values to learn from")
    global_dist = overall / overall.sum()
    if strategy == "mean":
        global_value = float(global_dist @ mids)
        values = conditional @ mids
    elif strategy == "mode":
        global_value = float(mids[int(np.argmax(overall))])
        values = mids[np.argmax(joint, axis=1)]
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    empty = totals.ravel() == 0
    values = np.where(empty, global_value, values)
    return ImputationModel(values, conditional, strategy, global_value)


def impute_missing(
    model: ImputationModel,
    index_b: BitmapIndex,
    missing_mask: WAHBitVector,
) -> tuple[np.ndarray, np.ndarray]:
    """(positions, imputed values) for every missing element.

    Each missing position's B bin is recovered from the B index by
    AND-ing the missing mask with each B bitvector -- no raw B data.
    """
    from repro.bitmap.ops import logical_and

    positions: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for b_bin, vector in enumerate(index_b.bitvectors):
        hit = logical_and(vector, missing_mask)
        pos = hit.to_indices()
        if pos.size:
            positions.append(pos)
            values.append(np.full(pos.size, model.value_per_b_bin[b_bin]))
    if not positions:
        return np.empty(0, dtype=np.int64), np.empty(0)
    pos_all = np.concatenate(positions)
    val_all = np.concatenate(values)
    order = np.argsort(pos_all)
    return pos_all[order], val_all[order]


def impute_array(
    data_with_nans: np.ndarray,
    index_a_observed: BitmapIndex,
    index_b: BitmapIndex,
    missing_mask: WAHBitVector,
    *,
    strategy: Strategy = "mean",
) -> np.ndarray:
    """Convenience: return a copy of ``data_with_nans`` with gaps filled."""
    model = fit_imputation(
        index_a_observed, index_b, missing_mask, strategy=strategy
    )
    positions, values = impute_missing(model, index_b, missing_mask)
    out = np.asarray(data_with_nans, dtype=np.float64).ravel().copy()
    out[positions] = values
    return out
