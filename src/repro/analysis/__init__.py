"""Offline analysis substrate (S12): subset queries, aggregation, CFP,
spatial join, missing-value imputation, subgroup discovery."""

from repro.analysis.aggregation import (
    ApproximateValue,
    approximate_count,
    approximate_max,
    approximate_mean,
    approximate_min,
    approximate_sum,
)
from repro.analysis.cfp import (
    CFPCurve,
    absolute_differences,
    cfp_curve,
    mean_relative_loss,
)
from repro.analysis.incomplete import (
    completeness_by_unit,
    coverage,
    masked_bin_counts,
    masked_conditional_entropy,
    masked_entropy,
    masked_mutual_information,
    observed_mask,
    pairwise_complete_mask,
)
from repro.analysis.imputation import (
    ImputationModel,
    fit_imputation,
    impute_array,
    impute_missing,
)
from repro.analysis.queries import (
    FlatRange,
    SpatialSubset,
    ValueSubset,
    correlation_query,
    restricted_joint_counts,
    spatial_subset_mask,
    value_subset_mask,
)
from repro.analysis.spatial_join import (
    JoinUnit,
    join_count,
    join_mask,
    join_pairs_table,
    join_units,
)
from repro.analysis.sql import Query, QueryError, execute_query, parse_query, query
from repro.analysis.subgroup import Subgroup, discover_subgroups

__all__ = [
    "completeness_by_unit",
    "coverage",
    "masked_bin_counts",
    "masked_conditional_entropy",
    "masked_entropy",
    "masked_mutual_information",
    "observed_mask",
    "pairwise_complete_mask",
    "Query",
    "QueryError",
    "execute_query",
    "parse_query",
    "query",
    "ImputationModel",
    "fit_imputation",
    "impute_array",
    "impute_missing",
    "JoinUnit",
    "join_count",
    "join_mask",
    "join_pairs_table",
    "join_units",
    "Subgroup",
    "discover_subgroups",
    "ApproximateValue",
    "approximate_count",
    "approximate_max",
    "approximate_mean",
    "approximate_min",
    "approximate_sum",
    "CFPCurve",
    "absolute_differences",
    "cfp_curve",
    "mean_relative_loss",
    "FlatRange",
    "SpatialSubset",
    "ValueSubset",
    "correlation_query",
    "restricted_joint_counts",
    "spatial_subset_mask",
    "value_subset_mask",
]
