"""Incomplete-data analysis over bitmaps (prior work [2], §2.2).

Scientific datasets routinely carry gaps (sensor dropouts, masked land
cells in ocean grids).  With bitmaps the *observed* subset is just a mask
bitvector, and every §3 metric restricts to it by one AND:

* masked value distributions / entropy -- popcounts of ``bin AND observed``;
* masked joint distributions / MI / CE -- the restricted joint counts;
* pairwise-complete semantics for two variables with different gaps
  (positions observed in **both**);
* data-completeness accounting per spatial unit (where are the gaps?).

Complements :mod:`repro.analysis.imputation`, which *fills* gaps; this
module analyses around them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.queries import restricted_joint_counts
from repro.bitmap.index import BitmapIndex
from repro.bitmap.ops import and_count, logical_and, logical_not
from repro.bitmap.units import n_units, unit_popcounts, unit_sizes
from repro.bitmap.wah import WAHBitVector
from repro.metrics.entropy import (
    conditional_entropy_from_joint,
    mutual_information_from_joint,
    shannon_entropy_from_counts,
)


def observed_mask(missing: WAHBitVector) -> WAHBitVector:
    """Complement of a missing-positions bitvector."""
    return logical_not(missing)


def masked_bin_counts(index: BitmapIndex, observed: WAHBitVector) -> np.ndarray:
    """Value distribution over the observed subset only."""
    if observed.n_bits != index.n_elements:
        raise ValueError(
            f"mask covers {observed.n_bits} bits, index {index.n_elements}"
        )
    return np.asarray(
        [and_count(v, observed) for v in index.bitvectors], dtype=np.int64
    )


def masked_entropy(index: BitmapIndex, observed: WAHBitVector) -> float:
    """Shannon entropy of the observed subset's value distribution."""
    return shannon_entropy_from_counts(masked_bin_counts(index, observed))


def pairwise_complete_mask(
    missing_a: WAHBitVector, missing_b: WAHBitVector
) -> WAHBitVector:
    """Positions observed in both variables (pairwise-complete analysis)."""
    return logical_and(observed_mask(missing_a), observed_mask(missing_b))


def masked_mutual_information(
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    observed: WAHBitVector,
) -> float:
    """MI over the jointly observed subset, bitmaps only."""
    joint = restricted_joint_counts(index_a, index_b, observed)
    return mutual_information_from_joint(joint)


def masked_conditional_entropy(
    index_a: BitmapIndex,
    index_b: BitmapIndex,
    observed: WAHBitVector,
) -> float:
    """H(A|B) over the jointly observed subset."""
    joint = restricted_joint_counts(index_a, index_b, observed)
    return conditional_entropy_from_joint(joint)


def completeness_by_unit(
    missing: WAHBitVector, unit_bits: int
) -> np.ndarray:
    """Fraction of observed cells per spatial unit (gap map)."""
    miss = unit_popcounts(missing, unit_bits).astype(np.float64)
    sizes = unit_sizes(missing.n_bits, unit_bits).astype(np.float64)
    out = np.zeros(n_units(missing.n_bits, unit_bits))
    nz = sizes > 0
    out[nz] = 1.0 - miss[nz] / sizes[nz]
    return out


def coverage(missing: WAHBitVector) -> float:
    """Overall observed fraction."""
    if missing.n_bits == 0:
        return 1.0
    return 1.0 - missing.count() / missing.n_bits
