"""Data containers and simulated storage (S20)."""

from repro.io.dataset import Dataset, DatasetReader, Variable, save_dataset
from repro.io.storage import RemoteLink, SimulatedDisk, TransferLog
from repro.io.timeseries import BitmapStore

__all__ = [
    "BitmapStore",
    "Dataset",
    "DatasetReader",
    "Variable",
    "save_dataset",
    "RemoteLink",
    "SimulatedDisk",
    "TransferLog",
]
