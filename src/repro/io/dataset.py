"""A NetCDF-flavoured named-variable container (S20).

The POP dataset of §5 "is stored in the NetCDF format" with 26 variables
over 2-D/3-D grids.  This module provides the minimal self-describing
container the offline experiments need: named variables with dimension
names, attributes, a simple binary file format, and per-variable lazy
loading (correlation mining reads two of 26 variables; loading the rest
would be dishonest about I/O cost).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

_MAGIC = b"RDS1"


@dataclass
class Variable:
    """One named array with dimension names and free-form attributes."""

    name: str
    data: np.ndarray
    dims: tuple[str, ...]
    attrs: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if len(self.dims) != self.data.ndim:
            raise ValueError(
                f"{self.name}: {len(self.dims)} dim names for {self.data.ndim}-D data"
            )

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


class Dataset:
    """An in-memory collection of variables sharing dimension vocabulary."""

    def __init__(self) -> None:
        self._vars: dict[str, Variable] = {}
        self.attrs: dict[str, str] = {}

    def add(self, variable: Variable) -> None:
        if variable.name in self._vars:
            raise ValueError(f"variable {variable.name!r} already present")
        self._vars[variable.name] = variable

    def add_array(
        self,
        name: str,
        data: np.ndarray,
        dims: tuple[str, ...],
        **attrs: str,
    ) -> Variable:
        var = Variable(name, data, dims, dict(attrs))
        self.add(var)
        return var

    def __getitem__(self, name: str) -> Variable:
        try:
            return self._vars[name]
        except KeyError:
            raise KeyError(
                f"no variable {name!r}; available: {sorted(self._vars)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    @property
    def variable_names(self) -> list[str]:
        return sorted(self._vars)

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self._vars.values())

    @classmethod
    def from_timestep(cls, step, dims: tuple[str, ...] = ("z", "y", "x")) -> "Dataset":
        """Wrap one :class:`~repro.sims.base.TimeStepData` as a dataset."""
        ds = cls()
        for name, arr in step.fields.items():
            ds.add_array(name, arr, dims[: np.asarray(arr).ndim])
        return ds


def save_dataset(path, dataset: Dataset) -> int:
    """Write a dataset: JSON header (names/shapes/dtypes/offsets) + blobs."""
    path = Path(path)
    entries = []
    blobs: list[bytes] = []
    offset = 0
    for name in dataset.variable_names:
        var = dataset[name]
        blob = np.ascontiguousarray(var.data).tobytes()
        entries.append(
            {
                "name": name,
                "dims": list(var.dims),
                "shape": list(var.data.shape),
                "dtype": var.data.dtype.str,
                "attrs": var.attrs,
                "offset": offset,
                "nbytes": len(blob),
            }
        )
        blobs.append(blob)
        offset += len(blob)
    header = json.dumps({"attrs": dataset.attrs, "variables": entries}).encode()
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<q", len(header)))
        fh.write(header)
        for blob in blobs:
            fh.write(blob)
    return path.stat().st_size


class DatasetReader:
    """Lazy reader: header up front, variable payloads on demand."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            if fh.read(4) != _MAGIC:
                raise ValueError(f"{self.path} is not a repro dataset")
            (hlen,) = struct.unpack("<q", fh.read(8))
            header = json.loads(fh.read(hlen))
            self._payload_start = fh.tell()
        self.attrs: dict[str, str] = header["attrs"]
        self._entries = {e["name"]: e for e in header["variables"]}

    @property
    def variable_names(self) -> list[str]:
        return sorted(self._entries)

    def shape(self, name: str) -> tuple[int, ...]:
        return tuple(self._entries[name]["shape"])

    def load(self, name: str) -> Variable:
        """Read one variable's payload from disk."""
        try:
            e = self._entries[name]
        except KeyError:
            raise KeyError(
                f"no variable {name!r}; available: {self.variable_names}"
            ) from None
        with open(self.path, "rb") as fh:
            fh.seek(self._payload_start + e["offset"])
            raw = fh.read(e["nbytes"])
        data = np.frombuffer(raw, dtype=np.dtype(e["dtype"])).reshape(e["shape"])
        return Variable(name, data.copy(), tuple(e["dims"]), dict(e["attrs"]))
