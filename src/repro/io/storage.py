"""Simulated storage devices with explicit bandwidth accounting (S20).

Benchmarks that compare I/O *volumes* should not depend on the host's page
cache; :class:`SimulatedDisk` charges every write/read against a nominal
bandwidth and keeps totals, giving deterministic "I/O seconds" for any
byte stream without touching the real filesystem.  :class:`RemoteLink`
adds a latency term per transfer (the Figure 13 data-server hop).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TransferLog:
    operations: int = 0
    total_bytes: int = 0
    total_seconds: float = 0.0


@dataclass
class SimulatedDisk:
    """A sequential-bandwidth storage device."""

    write_bw: float  # bytes/second
    read_bw: float | None = None  # defaults to write bandwidth
    writes: TransferLog = field(default_factory=TransferLog)
    reads: TransferLog = field(default_factory=TransferLog)

    def __post_init__(self) -> None:
        if self.write_bw <= 0:
            raise ValueError("write bandwidth must be positive")
        if self.read_bw is None:
            self.read_bw = self.write_bw
        if self.read_bw <= 0:
            raise ValueError("read bandwidth must be positive")

    def write(self, n_bytes: int) -> float:
        """Account a write; returns the seconds it costs."""
        if n_bytes < 0:
            raise ValueError("negative write size")
        seconds = n_bytes / self.write_bw
        self.writes.operations += 1
        self.writes.total_bytes += n_bytes
        self.writes.total_seconds += seconds
        return seconds

    def read(self, n_bytes: int) -> float:
        """Account a read; returns the seconds it costs."""
        if n_bytes < 0:
            raise ValueError("negative read size")
        assert self.read_bw is not None
        seconds = n_bytes / self.read_bw
        self.reads.operations += 1
        self.reads.total_bytes += n_bytes
        self.reads.total_seconds += seconds
        return seconds


@dataclass
class RemoteLink:
    """A network hop with per-transfer latency plus bandwidth."""

    bandwidth: float  # bytes/second
    latency: float = 1e-3  # seconds per transfer
    log: TransferLog = field(default_factory=TransferLog)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer(self, n_bytes: int) -> float:
        """Account one transfer; returns the seconds it costs."""
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        seconds = self.latency + n_bytes / self.bandwidth
        self.log.operations += 1
        self.log.total_bytes += n_bytes
        self.log.total_seconds += seconds
        return seconds
