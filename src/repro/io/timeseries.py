"""Bitmap time-series store: the post-analysis side of the in-situ story.

The pipeline writes "only the selected bitmaps" to disk (§2.3); offline
analyses later read them back without ever seeing raw data.  This module
gives that directory a real API:

* :class:`BitmapStore` -- a directory of per-step per-variable ``.rbmp``
  files plus a JSON manifest (step ids, variables, sizes, provenance);
* iteration helpers for the common offline patterns: load one step, walk
  steps in order, evaluate a metric over consecutive pairs.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path
from typing import Callable

from repro.bitmap.index import BitmapIndex
from repro.bitmap.serialization import load_index, save_index

_MANIFEST = "manifest.json"


class BitmapStore:
    """A persistent, append-only store of per-time-step bitmap indices."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / _MANIFEST
        if self._manifest_path.exists():
            self._manifest = json.loads(self._manifest_path.read_text())
        else:
            self._manifest = {"steps": {}, "attrs": {}}

    # ------------------------------------------------------------- writing
    def write(self, step: int, variable: str, index: BitmapIndex) -> Path:
        """Store one step's index for one variable."""
        step_dir = self.root / f"step_{step:05d}"
        step_dir.mkdir(exist_ok=True)
        path = step_dir / f"{variable}.rbmp"
        nbytes = save_index(path, index)
        entry = self._manifest["steps"].setdefault(str(step), {})
        entry[variable] = {
            "file": str(path.relative_to(self.root)),
            "nbytes": nbytes,
            "n_elements": index.n_elements,
            "n_bins": index.n_bins,
        }
        self._flush()
        return path

    def set_attr(self, key: str, value: str) -> None:
        """Record free-form provenance (workload, binning description...)."""
        self._manifest["attrs"][key] = value
        self._flush()

    def _flush(self) -> None:
        self._manifest_path.write_text(json.dumps(self._manifest, indent=1))

    # ------------------------------------------------------------- reading
    @property
    def attrs(self) -> dict[str, str]:
        return dict(self._manifest["attrs"])

    def steps(self) -> list[int]:
        """Stored step ids, ascending."""
        return sorted(int(s) for s in self._manifest["steps"])

    def variables(self, step: int) -> list[str]:
        try:
            return sorted(self._manifest["steps"][str(step)])
        except KeyError:
            raise KeyError(f"no step {step}; stored: {self.steps()}") from None

    def load(self, step: int, variable: str) -> BitmapIndex:
        """Read one stored index back."""
        try:
            entry = self._manifest["steps"][str(step)][variable]
        except KeyError:
            raise KeyError(
                f"no ({step}, {variable!r}); stored steps: {self.steps()}"
            ) from None
        return load_index(self.root / entry["file"])

    def iter_indices(self, variable: str) -> Iterator[tuple[int, BitmapIndex]]:
        """Yield (step, index) over all steps storing ``variable``."""
        for step in self.steps():
            if variable in self._manifest["steps"][str(step)]:
                yield step, self.load(step, variable)

    def total_bytes(self) -> int:
        """Total stored bitmap bytes across steps and variables."""
        return sum(
            entry["nbytes"]
            for step in self._manifest["steps"].values()
            for entry in step.values()
        )

    # ------------------------------------------------------------ analysis
    def pairwise_metric(
        self,
        variable: str,
        metric: Callable[[BitmapIndex, BitmapIndex], float],
    ) -> list[tuple[int, int, float]]:
        """Evaluate ``metric`` over consecutive stored steps.

        The classic post-analysis walk: how much does each retained step
        differ from the previous one?  Returns (step_i, step_j, value).
        """
        out: list[tuple[int, int, float]] = []
        prev: tuple[int, BitmapIndex] | None = None
        for step, index in self.iter_indices(variable):
            if prev is not None:
                out.append((prev[0], step, metric(prev[1], index)))
            prev = (step, index)
        return out

    def __repr__(self) -> str:
        return (
            f"BitmapStore({str(self.root)!r}, steps={len(self.steps())}, "
            f"bytes={self.total_bytes()})"
        )
