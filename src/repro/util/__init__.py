"""Shared low-level utilities: bit manipulation, timing, validation."""

from repro.util.bits import (
    GROUP_BITS,
    HAS_HARDWARE_POPCOUNT,
    pack_bits_to_groups,
    popcount_u32,
    unpack_groups_to_bits,
)
from repro.util.timing import Stopwatch, TimeBreakdown
from repro.util.validation import (
    check_positive,
    check_probability,
    check_same_length,
    ensure_1d,
)

__all__ = [
    "GROUP_BITS",
    "HAS_HARDWARE_POPCOUNT",
    "pack_bits_to_groups",
    "unpack_groups_to_bits",
    "popcount_u32",
    "Stopwatch",
    "TimeBreakdown",
    "check_positive",
    "check_probability",
    "check_same_length",
    "ensure_1d",
]
