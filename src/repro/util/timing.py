"""Lightweight timing helpers used by the in-situ pipeline and benchmarks.

The paper reports *stacked* execution times (simulation / bitmap generation /
selection / output).  ``TimeBreakdown`` accumulates named phases so the
pipeline can report the same decomposition.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """A resumable stopwatch measuring wall-clock seconds."""

    elapsed: float = 0.0
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @contextmanager
    def timed(self) -> Iterator["Stopwatch"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class TimeBreakdown:
    """Accumulates wall-clock time per named phase.

    Mirrors the stacked bars of Figures 7-10: each phase name maps to total
    seconds spent in that phase across all time-steps.
    """

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    @contextmanager
    def timed(self, phase: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - t0)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def merge(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown(dict(self.phases))
        for k, v in other.phases.items():
            out.add(k, v)
        return out

    def as_row(self, order: list[str] | None = None) -> list[float]:
        names = order if order is not None else sorted(self.phases)
        return [self.phases.get(name, 0.0) for name in names]

    def __str__(self) -> str:
        parts = [f"{k}={v:.4f}s" for k, v in sorted(self.phases.items())]
        return f"TimeBreakdown({', '.join(parts)}, total={self.total:.4f}s)"
