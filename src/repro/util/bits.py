"""Vectorised bit-manipulation primitives shared by the bitmap engine.

The WAH scheme used in the paper (Wu et al. [41], Algorithm 1 of the paper)
works on *groups* of 31 bits stored in the low bits of a 32-bit word.  This
module provides the three primitives everything else is built from:

* packing a boolean array into 31-bit groups,
* unpacking 31-bit groups back into a boolean array,
* counting set bits in arrays of 32-bit words.

All three are numpy-vectorised; none of them loops per element in Python.
Bit ``j`` of a group corresponds to element ``j`` of the 31-element segment
(LSB-first), matching line 8 of the paper's Algorithm 1
(``Segments[VectorID] |= 1 << j``).
"""

from __future__ import annotations

import numpy as np

#: Number of payload bits per WAH group / literal word.
GROUP_BITS = 31

#: All 31 payload bits set -- the paper's ``0x7FFFFFFF`` sentinel for a
#: segment that is entirely ones.
GROUP_FULL = np.uint32(0x7FFFFFFF)

# 16-bit popcount lookup table.  Two table lookups per 32-bit word is the
# fastest pure-numpy popcount when ``np.bitwise_count`` (numpy >= 2.0) is
# unavailable (the alternative, ``np.unpackbits``, allocates 8x the
# memory).  Kept unconditionally as the bit-identical fallback and the
# parity oracle for the hardware path.
_POP16 = np.array(
    [bin(i).count("1") for i in range(1 << 16)], dtype=np.uint16
)

#: True when this numpy exposes the hardware popcount ufunc.
HAS_HARDWARE_POPCOUNT = hasattr(np, "bitwise_count")


def _popcount_u32_table(words: np.ndarray) -> np.ndarray:
    """Table-lookup popcount (the pre-numpy-2.0 path; parity oracle)."""
    words = np.asarray(words, dtype=np.uint32)
    lo = _POP16[words & np.uint32(0xFFFF)]
    hi = _POP16[words >> np.uint32(16)]
    return lo.astype(np.uint32) + hi


def popcount_u32(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint32`` array.

    Returns a ``uint32`` array of the same shape.  Works on any shape.
    Routed through ``np.bitwise_count`` (a single hardware ``popcnt``
    sweep on numpy >= 2.0); older numpys fall back to the 16-bit lookup
    table, bit-identically (property-tested).
    """
    words = np.asarray(words, dtype=np.uint32)
    if HAS_HARDWARE_POPCOUNT:
        return np.bitwise_count(words).astype(np.uint32)
    return _popcount_u32_table(words)


def popcount_total(words: np.ndarray) -> int:
    """Total number of set bits across a ``uint32`` array."""
    if len(words) == 0:
        return 0
    if HAS_HARDWARE_POPCOUNT:
        return int(
            np.bitwise_count(np.asarray(words, dtype=np.uint32)).sum(
                dtype=np.uint64
            )
        )
    return int(_popcount_u32_table(words).sum(dtype=np.uint64))


def pack_bits_to_groups(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array into 31-bit groups (``uint32`` array).

    The input is padded with trailing zeros to a multiple of 31.  The trick:
    lay the bits out in rows of 32 with the top bit of every row forced to
    zero, then let ``np.packbits`` produce 4 little-endian bytes per row,
    which we reinterpret as one ``uint32`` per group.
    """
    bits = np.asarray(bits, dtype=bool).ravel()
    n = bits.size
    n_groups = max(1, -(-n // GROUP_BITS)) if n else 0
    if n_groups == 0:
        return np.empty(0, dtype=np.uint32)
    payload = np.zeros(n_groups * GROUP_BITS, dtype=np.uint8)
    payload[:n] = bits
    padded = np.zeros((n_groups, 32), dtype=np.uint8)
    padded[:, :GROUP_BITS] = payload.reshape(n_groups, GROUP_BITS)
    packed = np.packbits(padded, axis=1, bitorder="little")
    return packed.reshape(n_groups, 4).view("<u4").reshape(n_groups).astype(np.uint32)


def unpack_groups_to_bits(groups: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack 31-bit groups back into a boolean array of length ``n_bits``."""
    groups = np.asarray(groups, dtype=np.uint32)
    if n_bits == 0:
        return np.empty(0, dtype=bool)
    need = -(-n_bits // GROUP_BITS)
    if groups.size < need:
        raise ValueError(
            f"need {need} groups to produce {n_bits} bits, got {groups.size}"
        )
    raw = groups[:need].astype("<u4").view(np.uint8).reshape(need, 4)
    bits = np.unpackbits(raw, axis=1, bitorder="little")[:, :GROUP_BITS]
    return bits.reshape(-1)[:n_bits].astype(bool)


def groups_needed(n_bits: int) -> int:
    """Number of 31-bit groups required to hold ``n_bits`` bits."""
    return -(-n_bits // GROUP_BITS)


def last_group_mask(n_bits: int) -> np.uint32:
    """Mask of *valid* (non-padding) bits in the final group.

    For ``n_bits`` a multiple of 31 this is all 31 payload bits.
    """
    rem = n_bits % GROUP_BITS
    if rem == 0:
        return GROUP_FULL
    return np.uint32((1 << rem) - 1)
