"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_same_length(name_a: str, a, name_b: str, b) -> None:
    """Raise ``ValueError`` unless the two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def ensure_1d(name: str, arr: np.ndarray, dtype=None) -> np.ndarray:
    """Return ``arr`` as a contiguous 1-D numpy array (flattening is an error)."""
    out = np.asarray(arr, dtype=dtype)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    return np.ascontiguousarray(out)
