"""Simulation substrates (S13-S15): the workloads of the paper's §5.

* :class:`~repro.sims.heat3d.Heat3D` -- 3-D heat diffusion (one variable).
* :class:`~repro.sims.lulesh.LuleshProxy` -- Lagrangian shock-hydro proxy
  emitting the 12 per-node arrays the paper analyses.
* :class:`~repro.sims.ocean.OceanDataGenerator` -- POP-like multi-variable
  ocean data with planted temperature-salinity correlations.
"""

from repro.sims.base import Simulation, TimeStepData
from repro.sims.heat3d import Heat3D, HeatSource
from repro.sims.heat3d_mpi import DecomposedHeat3D, HaloStats
from repro.sims.lulesh import LuleshProxy
from repro.sims.ocean import CorrelatedRegion, OceanDataGenerator
from repro.sims.replay import ReplaySimulation

__all__ = [
    "Simulation",
    "TimeStepData",
    "Heat3D",
    "HeatSource",
    "DecomposedHeat3D",
    "HaloStats",
    "LuleshProxy",
    "CorrelatedRegion",
    "OceanDataGenerator",
    "ReplaySimulation",
]
