"""LULESH-like Lagrangian shock-hydrodynamics proxy (workload 2 of §5).

Real LULESH 2.0 [15] is a C++/MPI proxy app solving the Sedov blast problem
on an unstructured hex mesh.  The paper's analyses never look inside the
solver -- they consume, per time-step, the **12 per-node arrays**
(Coordinates, Force, Velocity, Acceleration, each with X/Y/Z components;
§5.1) plus the fact that the mesh's edge data occupies extra memory.

This module implements a physics-plausible substitute with the same
analysis-facing contract: a structured hex mesh of nodes, a Sedov-style
point energy deposit, a pressure field driving nodal forces
(``F = -grad p`` lumped to nodes), explicit Newmark integration of
acceleration/velocity/position, and artificial viscosity for stability.
The emitted fields evolve the way the analyses care about: an expanding
shock front makes consecutive time-steps similar-but-drifting, value
distributions widen over time, and the fields stay spatially coherent
(compressible).

Fidelity note (DESIGN.md substitution table): the selection and EMD/entropy
experiments depend on array count, distribution drift, and spatial
coherence -- not on hydrodynamic accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.sims.base import Simulation, TimeStepData

_COMPONENTS = ("x", "y", "z")
_VARIABLES = ("coord", "velocity", "acceleration", "force")


class LuleshProxy(Simulation):
    """Sedov-blast-flavoured node dynamics on an ``(n, n, n)`` hex mesh.

    Parameters
    ----------
    node_shape:
        Nodes per dimension.  The paper runs 64M nodes (Xeon) and 8M (MIC);
        tests use small meshes.
    initial_energy:
        Energy deposited at the origin-corner element at t=0.
    gamma:
        Ideal-gas constant linking internal energy to pressure.
    seed:
        Small perturbation of the initial mesh (keeps distributions smooth).
    """

    name = "lulesh"

    def __init__(
        self,
        node_shape: tuple[int, int, int] = (16, 16, 16),
        *,
        initial_energy: float = 3.948746e7,
        gamma: float = 1.4,
        dt: float = 1e-3,
        viscosity: float = 0.12,
        seed: int = 0,
    ) -> None:
        if len(node_shape) != 3 or any(s < 4 for s in node_shape):
            raise ValueError(f"node_shape must be 3-D with dims >= 4, got {node_shape}")
        self._shape = tuple(int(s) for s in node_shape)
        self._gamma = float(gamma)
        self._dt = float(dt)
        self._visc = float(viscosity)
        rng = np.random.default_rng(seed)

        nx, ny, nz = self._shape
        grid = np.meshgrid(
            np.linspace(0.0, 1.0, nx),
            np.linspace(0.0, 1.0, ny),
            np.linspace(0.0, 1.0, nz),
            indexing="ij",
        )
        jitter = rng.normal(0.0, 1e-4, size=(3, nx, ny, nz))
        self._coord = np.stack(grid) + jitter
        self._vel = np.zeros((3, nx, ny, nz))
        self._acc = np.zeros((3, nx, ny, nz))
        self._force = np.zeros((3, nx, ny, nz))
        # Internal energy per element, deposited Sedov-style at the corner.
        self._energy = np.zeros(self._shape)
        self._energy[0, 0, 0] = float(initial_energy)
        self._mass = np.full(self._shape, 1.0)
        self._step = 0

    # ----------------------------------------------------------- interface
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(f"{v}_{c}" for v in _VARIABLES for c in _COMPONENTS)

    def advance(self) -> TimeStepData:
        dt = self._dt
        # Equation of state: p = (gamma - 1) * e (unit reference volume).
        pressure = (self._gamma - 1.0) * self._energy
        # Nodal force from the pressure gradient, one component at a time.
        grads = np.gradient(pressure, edge_order=1)
        for c in range(3):
            self._force[c] = -grads[c]
        self._acc = self._force / self._mass
        self._vel = (1.0 - self._visc) * self._vel + self._acc * dt
        self._coord = self._coord + self._vel * dt
        # Energy transport: shock expansion modelled as diffusion of the
        # deposited energy plus PdV-style decay where the mesh expands.
        # Explicit diffusion is stable for rate <= 1/6 in 3-D.
        self._energy = _diffuse(self._energy, 0.15)
        self._energy *= 1.0 - 0.002
        out = TimeStepData(self._step, self._emit())
        self._step += 1
        return out

    # ------------------------------------------------------------- details
    def _emit(self) -> dict[str, np.ndarray]:
        arrays = {}
        for name, store in zip(
            _VARIABLES, (self._coord, self._vel, self._acc, self._force)
        ):
            for c, comp in enumerate(_COMPONENTS):
                arrays[f"{name}_{comp}"] = store[c].copy()
        return arrays

    @property
    def substrate_nbytes(self) -> int:
        """Edge bookkeeping of the hex mesh (§5.1's extra memory).

        A structured hex mesh has ~3 edges per node; LULESH stores endpoint
        node ids (2 x 8 bytes) per edge.
        """
        n_nodes = int(np.prod(self._shape))
        return 3 * n_nodes * 2 * 8

    @property
    def internal_energy(self) -> np.ndarray:
        view = self._energy.view()
        view.flags.writeable = False
        return view


def _diffuse(field: np.ndarray, rate: float) -> np.ndarray:
    """One explicit diffusion step with zero-flux (reflective) boundaries.

    Padding with edge values makes boundary cells diffuse too -- essential
    because the Sedov deposit sits in the corner cell.
    """
    p = np.pad(field, 1, mode="edge")
    lap = (
        p[2:, 1:-1, 1:-1]
        + p[:-2, 1:-1, 1:-1]
        + p[1:-1, 2:, 1:-1]
        + p[1:-1, :-2, 1:-1]
        + p[1:-1, 1:-1, 2:]
        + p[1:-1, 1:-1, :-2]
        - 6.0 * p[1:-1, 1:-1, 1:-1]
    )
    return field + rate * lap
