"""Domain-decomposed Heat3D: the cluster workload of §5.3, executed.

"The simulation used here is Heat3D, which requires communication (MPI)
among machines to update the boundary information."

This module runs that decomposition for real (rank loops in-process — the
communication *pattern* is what matters, and it is what the Figure 13
model charges the network for):

* the grid is split into slabs along axis 0, one per rank;
* each step, ranks exchange one-cell-thick ghost faces with neighbours,
  then apply the same 7-point update as :class:`~repro.sims.heat3d.Heat3D`;
* the composite field is **bit-identical** to the monolithic simulation
  at every step (tested) -- decomposition is purely an execution layout.

Byte counters record exactly how much halo traffic each step generates,
which calibrates `ClusterScenario.halo_bytes_per_boundary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sims.base import Simulation, TimeStepData
from repro.sims.heat3d import Heat3D


@dataclass
class HaloStats:
    """Communication accounting (the 'MPI' cost of §5.3)."""

    exchanges: int = 0
    bytes_sent: int = 0

    def per_step_bytes(self, n_steps: int) -> float:
        return self.bytes_sent / n_steps if n_steps else 0.0


@dataclass
class _Rank:
    """One rank's slab, with one ghost layer on each internal side."""

    lo: int  # global start row (inclusive)
    hi: int  # global end row (exclusive)
    temp: np.ndarray  # (hi - lo + ghosts, ny, nz)
    has_lower: bool
    has_upper: bool

    @property
    def interior(self) -> slice:
        start = 1 if self.has_lower else 0
        stop = self.temp.shape[0] - (1 if self.has_upper else 0)
        return slice(start, stop)


class DecomposedHeat3D(Simulation):
    """Heat3D split into ``n_ranks`` slabs with per-step ghost exchange.

    Produces output identical to ``Heat3D(shape, **kwargs)`` -- the
    reference instance is configured internally with the same seed and
    sources so tests can compare against it directly.
    """

    name = "heat3d-mpi"

    def __init__(
        self,
        shape: tuple[int, int, int] = (32, 32, 32),
        *,
        n_ranks: int = 4,
        **heat_kwargs,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if shape[0] < 2 * n_ranks:
            raise ValueError(
                f"axis 0 ({shape[0]}) too small for {n_ranks} slabs"
            )
        # The monolithic twin provides initial state, diffusivity and
        # constraint application so physics stays in exactly one place.
        self._mono = Heat3D(shape, **heat_kwargs)
        self._shape = tuple(shape)
        self.n_ranks = n_ranks
        self.halo = HaloStats()
        self._step = 0

        bounds = np.linspace(0, shape[0], n_ranks + 1).astype(int)
        self._ranks: list[_Rank] = []
        global_temp = np.array(self._mono.temperature)
        alpha = self._mono._alpha
        self._alpha_slabs: list[np.ndarray] = []
        for r in range(n_ranks):
            lo, hi = int(bounds[r]), int(bounds[r + 1])
            has_lower = r > 0
            has_upper = r < n_ranks - 1
            glo = lo - (1 if has_lower else 0)
            ghi = hi + (1 if has_upper else 0)
            self._ranks.append(
                _Rank(lo, hi, global_temp[glo:ghi].copy(), has_lower, has_upper)
            )
            self._alpha_slabs.append(alpha[glo:ghi].copy())

    # ----------------------------------------------------------- interface
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def variable_names(self) -> tuple[str, ...]:
        return ("temperature",)

    def advance(self) -> TimeStepData:
        self._exchange_halos()
        for rank, alpha in zip(self._ranks, self._alpha_slabs):
            rank.temp = self._update_slab(rank.temp, alpha)
        composite = self._gather()
        # Dirichlet faces + sources exactly as the monolithic code does.
        self._mono._temp = composite
        self._mono._apply_constraints()
        composite = self._mono._temp
        self._scatter(composite)
        out = TimeStepData(self._step, {"temperature": composite.copy()})
        self._step += 1
        return out

    # ------------------------------------------------------------- helpers
    def _exchange_halos(self) -> None:
        face_bytes = self._shape[1] * self._shape[2] * 8
        for lower, upper in zip(self._ranks, self._ranks[1:]):
            # lower's top interior row -> upper's lower ghost; vice versa.
            upper.temp[0] = lower.temp[-2 if lower.has_upper else -1]
            lower.temp[-1] = upper.temp[1 if upper.has_lower else 0]
            self.halo.exchanges += 2
            self.halo.bytes_sent += 2 * face_bytes

    def _update_slab(self, t: np.ndarray, alpha: np.ndarray) -> np.ndarray:
        lap = np.zeros_like(t)
        lap[1:-1, 1:-1, 1:-1] = (
            t[2:, 1:-1, 1:-1]
            + t[:-2, 1:-1, 1:-1]
            + t[1:-1, 2:, 1:-1]
            + t[1:-1, :-2, 1:-1]
            + t[1:-1, 1:-1, 2:]
            + t[1:-1, 1:-1, :-2]
            - 6.0 * t[1:-1, 1:-1, 1:-1]
        )
        return t + alpha * self._mono._dt_over_dx2 * lap

    def _gather(self) -> np.ndarray:
        out = np.empty(self._shape)
        for rank in self._ranks:
            out[rank.lo : rank.hi] = rank.temp[rank.interior]
        return out

    def _scatter(self, composite: np.ndarray) -> None:
        for rank in self._ranks:
            rank.temp[rank.interior] = composite[rank.lo : rank.hi]

    def halo_bytes_per_step(self) -> int:
        """Ghost bytes moved per step: one face each way per boundary."""
        if self.n_ranks <= 1:
            return 0
        face = self._shape[1] * self._shape[2] * 8
        return 2 * (self.n_ranks - 1) * face
