"""Common simulation interface consumed by the in-situ pipeline.

The pipeline (Figure 2) is simulation-agnostic: a simulation produces one
:class:`TimeStepData` per step; the pipeline bins/indexes the step's
*analysis fields* and discards the raw arrays.  Both workloads of §5
(Heat3D, Lulesh) and the POP-like data generator implement this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass, field


import numpy as np


@dataclass
class TimeStepData:
    """Output of one simulation time-step.

    ``fields`` maps variable name -> array; every array shares the grid
    shape.  ``step`` is the 0-based time-step index.
    """

    step: int
    fields: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Raw size of all analysis arrays -- what full-data I/O must write."""
        return sum(a.nbytes for a in self.fields.values())

    @property
    def n_elements(self) -> int:
        """Total element count across fields."""
        return sum(a.size for a in self.fields.values())

    def concatenated(self) -> np.ndarray:
        """All fields flattened and concatenated in name order.

        Lulesh-style selection treats the 12 per-node arrays as one logical
        payload per time-step ("we support in-situ analysis based on all of
        them", §5.1); this provides that canonical flattening.
        """
        names = sorted(self.fields)
        return np.concatenate([np.asarray(self.fields[n], dtype=np.float64).ravel() for n in names])

    def __repr__(self) -> str:
        names = ",".join(sorted(self.fields))
        return f"TimeStepData(step={self.step}, fields=[{names}], nbytes={self.nbytes})"


class Simulation(ABC):
    """A time-stepped simulation producing multi-dimensional field data."""

    #: Human-readable workload name ("heat3d", "lulesh", ...).
    name: str = "simulation"

    @property
    @abstractmethod
    def shape(self) -> tuple[int, ...]:
        """Grid shape of the emitted fields."""

    @property
    @abstractmethod
    def variable_names(self) -> tuple[str, ...]:
        """Names of the analysis fields each step emits."""

    @abstractmethod
    def advance(self) -> TimeStepData:
        """Advance the state by one time-step and return its output."""

    def run(self, n_steps: int) -> Iterator[TimeStepData]:
        """Yield ``n_steps`` consecutive time-steps."""
        for _ in range(n_steps):
            yield self.advance()

    def skip(self, n_steps: int) -> None:
        """Fast-forward past ``n_steps`` time-steps without emitting them.

        Used by cluster recovery: a replacement rank whose first K steps
        are already checkpointed skips them and resumes building at step
        K.  The default advances and discards — exact for any simulation
        whose state evolution does not depend on observation (all of
        ours).  Replay-style simulations override this with an O(1)
        cursor jump.
        """
        for _ in range(n_steps):
            self.advance()

    @property
    def bytes_per_step(self) -> int:
        """Raw output bytes per time-step (8-byte floats assumed)."""
        cells = 1
        for s in self.shape:
            cells *= s
        return cells * 8 * len(self.variable_names)

    @property
    def substrate_nbytes(self) -> int:
        """Resident bytes of internal state *besides* the emitted fields.

        E.g. Lulesh's mesh edges (§5.1: "a large amount of memory is used
        to store the edges").  Counted by the Figure 11 memory model.
        """
        return 0
