"""POP-like synthetic ocean dataset (workload 3 of §5, correlation mining).

The paper mines a Parallel Ocean Program (POP) NetCDF dataset whose
*temperature* and *salinity* variables "have strong correlations within
either the value or spatial subsets".  The POP output itself was not
available to the authors either (they state the simulation code was
unavailable); we synthesise fields with the same structure **and planted
ground truth**, which makes the miner's output checkable:

* temperature: latitude-driven surface gradient + depth stratification
  (10 m near-surface spacing growing to 250 m at depth, like POP's grid)
  + mesoscale eddies;
* salinity: inside configurable *correlated regions*, salinity is a
  monotone function of temperature (high mutual information by
  construction); outside, it is drawn independently (background MI ~ 0).

:meth:`OceanDataGenerator.planted_regions` returns the ground-truth boxes
so tests can score mining precision/recall, and Figure 17's accuracy-loss
experiment can compare sampling against an exact reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sims.base import Simulation, TimeStepData


@dataclass(frozen=True)
class CorrelatedRegion:
    """A box (depth/lat/lon index space) where salinity tracks temperature."""

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]  # exclusive

    def slices(self) -> tuple[slice, slice, slice]:
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))

    def cells(self) -> int:
        return int(np.prod([h - l for l, h in zip(self.lo, self.hi)]))


class OceanDataGenerator(Simulation):
    """Synthetic (depth, lat, lon) ocean state with planted T-S correlation.

    Each :meth:`advance` produces one monthly snapshot; eddies drift
    westward between snapshots so consecutive time-steps are coherent.

    Parameters
    ----------
    shape:
        (depth levels, latitude cells, longitude cells).
    correlated_regions:
        Where salinity is a function of temperature.  Defaults to one
        tropical surface box covering ~10% of the domain.
    noise:
        Measurement-style noise added to both fields.
    """

    name = "ocean-pop"

    def __init__(
        self,
        shape: tuple[int, int, int] = (8, 48, 96),
        *,
        correlated_regions: list[CorrelatedRegion] | None = None,
        noise: float = 0.05,
        land_fraction: float = 0.0,
        seed: int = 7,
    ) -> None:
        if len(shape) != 3 or any(s < 4 for s in shape):
            raise ValueError(f"shape must be 3-D with dims >= 4, got {shape}")
        if not 0.0 <= land_fraction < 1.0:
            raise ValueError(f"land_fraction must be in [0, 1), got {land_fraction}")
        self._shape = tuple(int(s) for s in shape)
        self._noise = float(noise)
        self._rng = np.random.default_rng(seed)
        self._step = 0
        self._land = self._make_land(land_fraction)

        nd, nlat, nlon = self._shape
        if correlated_regions is None:
            correlated_regions = [
                CorrelatedRegion(
                    (0, nlat // 3, nlon // 4),
                    (max(1, nd // 4), 2 * nlat // 3, nlon // 2),
                )
            ]
        self._regions = list(correlated_regions)

        # POP-like vertical grid: ~10 m spacing near surface, up to 250 m deep.
        self._depths = np.cumsum(np.linspace(10.0, 250.0, nd))
        # Latitude in degrees, equator-centred.
        self._lats = np.linspace(-60.0, 60.0, nlat)
        # Eddy field: a handful of warm/cold cores drifting west.
        n_eddies = max(3, nlon // 16)
        self._eddy_lat = self._rng.uniform(0, nlat - 1, n_eddies)
        self._eddy_lon = self._rng.uniform(0, nlon - 1, n_eddies)
        self._eddy_amp = self._rng.uniform(-2.5, 2.5, n_eddies)
        self._eddy_rad = self._rng.uniform(nlon / 24, nlon / 10, n_eddies)

    # ----------------------------------------------------------- interface
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def variable_names(self) -> tuple[str, ...]:
        return ("temperature", "salinity", "ssh", "u_velocity")

    def planted_regions(self) -> list[CorrelatedRegion]:
        """Ground-truth boxes where T and S are correlated by construction."""
        return list(self._regions)

    def _make_land(self, fraction: float) -> np.ndarray:
        """A (lat, lon) continent mask covering ~``fraction`` of the surface.

        Real POP grids mask land cells; tracer variables carry fill values
        (NaN here) over them.  Continents are smooth blobs so the mask is
        spatially coherent like real coastlines.
        """
        nd, nlat, nlon = self._shape
        if fraction <= 0.0:
            return np.zeros((nlat, nlon), dtype=bool)
        # Smooth a noise field with a separable box blur, threshold at the
        # requested quantile.
        field = self._rng.normal(0.0, 1.0, (nlat, nlon))
        k = max(3, nlat // 6)
        kernel = np.ones(k) / k
        for axis in (0, 1):
            field = np.apply_along_axis(
                lambda row: np.convolve(row, kernel, mode="same"), axis, field
            )
        threshold = np.quantile(field, 1.0 - fraction)
        return field >= threshold

    def land_mask(self) -> np.ndarray:
        """Boolean (lat, lon) mask: True over land (NaN in tracer fields)."""
        return self._land.copy()

    def missing_mask_3d(self) -> np.ndarray:
        """Land mask broadcast over depth: True where tracers are NaN."""
        nd = self._shape[0]
        return np.broadcast_to(self._land, (nd, *self._land.shape)).copy()

    def advance(self) -> TimeStepData:
        nd, nlat, nlon = self._shape
        rng = self._rng

        # Base temperature: warm equator, cold poles, exponential decay with
        # depth (thermocline).
        surface = 28.0 - 22.0 * (np.abs(self._lats) / 60.0) ** 1.5
        decay = np.exp(-self._depths / 800.0)
        temp = np.broadcast_to(
            surface[None, :, None] * decay[:, None, None] + 2.0, self._shape
        ).copy()

        # Drifting mesoscale eddies, surface-intensified.
        lat_idx = np.arange(nlat)[:, None]
        lon_idx = np.arange(nlon)[None, :]
        eddy = np.zeros((nlat, nlon))
        for k in range(self._eddy_lat.size):
            lon_c = (self._eddy_lon[k] - 0.7 * self._step) % nlon
            d2 = (lat_idx - self._eddy_lat[k]) ** 2 + (
                np.minimum(np.abs(lon_idx - lon_c), nlon - np.abs(lon_idx - lon_c))
            ) ** 2
            eddy += self._eddy_amp[k] * np.exp(-d2 / (2 * self._eddy_rad[k] ** 2))
        temp += eddy[None, :, :] * decay[:, None, None]
        temp += rng.normal(0.0, self._noise, size=self._shape)

        # Salinity: independent background ...
        salinity = 34.0 + rng.normal(0.0, 0.8, size=self._shape)
        salinity += 0.5 * np.cos(np.deg2rad(self._lats))[None, :, None]
        # ... except inside planted regions, where S tracks T monotonically.
        for region in self._regions:
            sl = region.slices()
            salinity[sl] = 32.0 + 0.25 * temp[sl] + rng.normal(
                0.0, 0.02, size=salinity[sl].shape
            )

        # Land cells carry NaN fill values, like masked POP tracers.
        if self._land.any():
            temp[:, self._land] = np.nan
            salinity[:, self._land] = np.nan

        ssh = 0.1 * eddy + rng.normal(0.0, 0.01, size=(nlat, nlon))
        u_vel = np.gradient(ssh, axis=0) * 5.0

        out = TimeStepData(
            self._step,
            {
                "temperature": temp,
                "salinity": salinity,
                "ssh": np.broadcast_to(ssh, (1, nlat, nlon)).copy().reshape(1, nlat, nlon),
                "u_velocity": np.broadcast_to(u_vel, (1, nlat, nlon)).copy(),
            },
        )
        self._step += 1
        return out

    def snapshot(self) -> TimeStepData:
        """One snapshot without advancing the eddy clock afterwards.

        Convenience for offline-analysis experiments that want a single
        (temperature, salinity) pair of a given size.
        """
        state = self._step
        out = self.advance()
        self._step = state
        return out
