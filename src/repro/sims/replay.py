"""Deterministic replay of a pre-recorded field sequence.

A :class:`ReplaySimulation` wraps a stack of arrays and emits one per
:meth:`advance` call.  It is trivially picklable and bit-reproducible, which
makes it the workhorse of the cluster differential tests: every rank can
construct an identical twin from the same recorded steps and slice out its
slab, so distributed-vs-serial comparisons are over *exactly* the same data.
"""

from __future__ import annotations

import numpy as np

from repro.sims.base import Simulation, TimeStepData


class ReplaySimulation(Simulation):
    """Replays ``steps[k]`` as the field of time-step ``k``.

    ``steps`` is a sequence of equal-shape arrays (or one array whose first
    axis is time).  Arrays are copied once at construction and never
    mutated, so two instances built from the same data advance identically.
    """

    name = "replay"

    def __init__(self, steps, variable: str = "value") -> None:
        arrays = [np.array(s, dtype=np.float64) for s in steps]
        if not arrays:
            raise ValueError("ReplaySimulation needs at least one step")
        shape = arrays[0].shape
        if any(a.shape != shape for a in arrays):
            raise ValueError("all replay steps must share one shape")
        self._steps = arrays
        self._variable = variable
        self._cursor = 0

    @property
    def shape(self) -> tuple[int, ...]:
        return self._steps[0].shape

    @property
    def variable_names(self) -> tuple[str, ...]:
        return (self._variable,)

    @property
    def n_steps(self) -> int:
        """Number of recorded steps available."""
        return len(self._steps)

    def skip(self, n_steps: int) -> None:
        """O(1) fast-forward: jump the cursor instead of replaying arrays."""
        if n_steps < 0:
            raise ValueError("cannot skip a negative number of steps")
        if self._cursor + n_steps > len(self._steps):
            raise RuntimeError(
                f"replay exhausted after {len(self._steps)} steps"
            )
        self._cursor += n_steps

    def advance(self) -> TimeStepData:
        if self._cursor >= len(self._steps):
            raise RuntimeError(
                f"replay exhausted after {len(self._steps)} steps"
            )
        data = TimeStepData(
            step=self._cursor, fields={self._variable: self._steps[self._cursor]}
        )
        self._cursor += 1
        return data
