"""Heat3D: explicit 3-D heat diffusion on a regular mesh (workload 1 of §5).

The paper's Heat3D [1] "estimates the effect of different geologic
structures on heat flow" over a 3-D mesh, emitting one variable
(temperature) per time-step.  We implement the standard 7-point-stencil
explicit solver with a spatially varying diffusivity field: the domain is
split into horizontal "geologic strata" of different conductivity, plus a
configurable set of hot inclusions, so temperature develops the layered,
spatially coherent structure that makes WAH compression effective.

The update is fully vectorised; stability is guaranteed by choosing the
time-step from the CFL condition ``max(alpha) * dt / dx^2 <= 1/6``.

``halo_cells_per_step`` exposes the ghost-zone traffic a domain-decomposed
MPI run would exchange per step -- the cluster performance model of
Figure 13 charges the network for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sims.base import Simulation, TimeStepData


@dataclass(frozen=True)
class HeatSource:
    """A constant-temperature box inclusion (a 'geologic structure')."""

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]  # exclusive
    temperature: float

    def slices(self) -> tuple[slice, slice, slice]:
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))


class Heat3D(Simulation):
    """Explicit heat equation ``dT/dt = div(alpha grad T)`` on a box grid.

    Parameters
    ----------
    shape:
        Grid dimensions (the paper uses 800x1000x1000 on Xeon and
        200x1000x1000 on MIC; tests use small grids).
    n_strata:
        Number of horizontal layers with distinct diffusivity.
    sources:
        Hot inclusions; defaults to one hot box near the bottom-centre.
    boundary_temperature:
        Dirichlet value clamped on all six faces.
    seed:
        Controls the stratum diffusivities and initial perturbation.
    """

    name = "heat3d"

    def __init__(
        self,
        shape: tuple[int, int, int] = (32, 32, 32),
        *,
        n_strata: int = 4,
        sources: list[HeatSource] | None = None,
        boundary_temperature: float = 20.0,
        initial_temperature: float = 20.0,
        seed: int = 0,
    ) -> None:
        if len(shape) != 3 or any(s < 3 for s in shape):
            raise ValueError(f"shape must be 3-D with every dim >= 3, got {shape}")
        self._shape = tuple(int(s) for s in shape)
        self._boundary = float(boundary_temperature)
        rng = np.random.default_rng(seed)

        # Layered diffusivity: one value per stratum along axis 0.
        strata = rng.uniform(0.2, 1.0, size=n_strata)
        layer_of = np.minimum(
            (np.arange(shape[0]) * n_strata) // shape[0], n_strata - 1
        )
        alpha = np.broadcast_to(
            strata[layer_of][:, None, None], self._shape
        ).astype(np.float64)
        self._alpha = np.ascontiguousarray(alpha)
        # CFL: explicit 7-point stencil stable for alpha*dt/dx^2 <= 1/6.
        self._dt_over_dx2 = 1.0 / (6.0 * float(self._alpha.max()))

        self._temp = np.full(self._shape, float(initial_temperature))
        self._temp += rng.normal(0.0, 0.01, size=self._shape)
        if sources is None:
            cx, cy, cz = (s // 2 for s in self._shape)
            w = max(1, min(self._shape) // 8)
            sources = [
                HeatSource(
                    (self._shape[0] - 2 * w, cy - w, cz - w),
                    (self._shape[0] - w, cy + w, cz + w),
                    100.0,
                )
            ]
        self._sources = list(sources)
        self._step = 0
        self._apply_constraints()

    # ----------------------------------------------------------- interface
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def variable_names(self) -> tuple[str, ...]:
        return ("temperature",)

    def advance(self) -> TimeStepData:
        t = self._temp
        lap = np.zeros_like(t)
        # 7-point Laplacian on the interior (Dirichlet faces stay fixed).
        lap[1:-1, 1:-1, 1:-1] = (
            t[2:, 1:-1, 1:-1]
            + t[:-2, 1:-1, 1:-1]
            + t[1:-1, 2:, 1:-1]
            + t[1:-1, :-2, 1:-1]
            + t[1:-1, 1:-1, 2:]
            + t[1:-1, 1:-1, :-2]
            - 6.0 * t[1:-1, 1:-1, 1:-1]
        )
        self._temp = t + self._alpha * self._dt_over_dx2 * lap
        self._apply_constraints()
        out = TimeStepData(self._step, {"temperature": self._temp.copy()})
        self._step += 1
        return out

    # ------------------------------------------------------------- helpers
    def _apply_constraints(self) -> None:
        t = self._temp
        for face in (
            t[0, :, :], t[-1, :, :], t[:, 0, :], t[:, -1, :], t[:, :, 0], t[:, :, -1],
        ):
            face[...] = self._boundary
        for src in self._sources:
            t[src.slices()] = src.temperature

    @property
    def temperature(self) -> np.ndarray:
        """Current temperature field (read-only view for inspection)."""
        view = self._temp.view()
        view.flags.writeable = False
        return view

    def halo_cells_per_step(self, n_ranks: int) -> int:
        """Ghost cells exchanged per step under a 1-D slab decomposition.

        Each internal slab boundary exchanges two faces of
        ``shape[1] * shape[2]`` cells (send + recv counted once each way).
        """
        if n_ranks <= 1:
            return 0
        faces = 2 * (n_ranks - 1)
        return faces * self._shape[1] * self._shape[2]
