"""Transport abstraction for the cluster runtime (Figure 13's regime).

Three implementations of one small collective surface -- ``gather``,
``allreduce`` and ``bcast``, the only operations the distributed selection
merge needs:

* :class:`LocalClusterTransport` -- real OS processes wired to a parent
  coordinator over pipes.  Always available; what the tests and CI run.
  The parent routes every collective and, under the default ``fail``
  policy, *poisons* the cluster on any rank death, protocol desync, or
  straggler timeout, mirroring the
  :class:`~repro.insitu.queue.QueueFailed` contract: a failed collective
  raises :class:`ClusterFailed` on every surviving rank instead of
  deadlocking it.  Under a :class:`RecoveryPolicy` of ``respawn`` or
  ``shrink`` the parent instead pauses the collective schedule and
  replaces the failed rank (see *Elastic recovery* below).
* :class:`MPITransport` -- thin adapter over ``mpi4py`` for real clusters,
  gated behind an optional import (the test container does not ship MPI).
* :class:`FaultyTransport` -- a fault-injection wrapper that kills, delays
  or drops a chosen rank at a chosen collective; the differential test
  suite uses it to exercise every failure and recovery path.

Collective payloads are tiny (per-bin count vectors, selection picks,
store reports), so correctness and failure semantics dominate the design,
not bandwidth.

Elastic recovery
----------------
Every rank issues the *same* sequence of collectives (the SPMD schedule
is lockstep -- contribution ``seq`` numbers line up across ranks), so the
parent can keep a **collective log**: for each completed collective, the
per-rank replies it handed out.  When a rank dies, the parent pauses the
schedule (survivors simply wait inside their current collective -- their
contributions are already parked in ``pending``) and starts a replacement:

* ``respawn`` -- a fresh process for the same rank slot, or
* ``shrink``  -- a surviving host process *adopts* the dead rank's body
  as an extra thread, so the cluster continues on fewer processes.

Either way the replacement re-executes the rank body from the top with
``transport.resume = True``; checkpoint-aware bodies (see
:mod:`repro.cluster.checkpoint`) reload persisted per-step state and skip
the expensive rebuild work, but still *issue every collective*.  The
parent serves contributions with ``seq`` at or below the log head straight
from the log -- zero survivor involvement -- until the replacement reaches
the live collective and the schedule resumes.  Because all cross-rank
state flows through (logged) collectives, a recovered run is exactly the
fault-free run.

Messages are rank-tagged so one host process can carry several virtual
ranks after a shrink: child -> parent ``("coll", rank, op, seq, blob)`` /
``("done"|"error"|"poisoned", rank, blob)``; parent -> child
``("ok"|"fail", rank, blob)`` / ``("adopt", rank, incarnation)``.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as _conn_wait
from typing import Any, Callable

import numpy as np

from repro.insitu.parallel import _dump_exc, _load_exc, _pick_context

#: Reduction operators allowed in :meth:`Transport.allreduce`.
ALLREDUCE_OPS = ("sum", "min", "max")

#: Recovery policies accepted by :class:`RecoveryPolicy`.
ON_FAULT_POLICIES = ("fail", "respawn", "shrink")

#: Seconds granted for voluntary child shutdown before termination.
_JOIN_SECONDS = 10.0
#: Poll interval of the coordinator's routing loop.
_POLL_SECONDS = 0.05


class ClusterFailed(RuntimeError):
    """A collective could not complete: a rank died, hung, or desynced.

    The cross-node sibling of :class:`~repro.insitu.queue.QueueFailed`:
    once raised, the whole cluster is poisoned -- every surviving rank
    gets this exception out of its current (or next) collective, so no
    rank ever blocks forever on a peer that will not answer.  ``cause``
    carries the originating worker exception when one was shipped.
    """

    def __init__(self, message: str, cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.cause = cause


class Transport(ABC):
    """The collective surface the distributed merge is written against."""

    #: True when this rank is a *replacement* replaying after a fault.
    #: Checkpoint-aware bodies use it to reload persisted state; the
    #: collective schedule must be re-issued in full either way.
    resume: bool = False

    @property
    @abstractmethod
    def rank(self) -> int:
        """This participant's 0-based rank."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of ranks in the cluster."""

    @abstractmethod
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Collect one object per rank; returns the rank-ordered list on
        ``root`` and ``None`` elsewhere."""

    @abstractmethod
    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Elementwise reduction of equal-shape arrays; result on all ranks."""

    @abstractmethod
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``root``'s object to every rank."""

    def close(self) -> None:
        """Release transport resources (idempotent)."""


def _reduce(parts: list[np.ndarray], op: str) -> np.ndarray:
    if op not in ALLREDUCE_OPS:
        raise ValueError(f"unknown allreduce op {op!r}; expected one of {ALLREDUCE_OPS}")
    arrays = [np.asarray(p) for p in parts]
    shape = arrays[0].shape
    for a in arrays[1:]:
        if a.shape != shape:
            raise ValueError(
                f"allreduce shape mismatch: {a.shape} vs {shape}"
            )
    if op == "sum":
        return np.sum(arrays, axis=0)
    if op == "min":
        return np.minimum.reduce(arrays)
    return np.maximum.reduce(arrays)


# --------------------------------------------------------------- local child
class _PipeEndpoint:
    """Child-side demultiplexer: one pipe shared by every hosted rank.

    A daemon reader thread drains the pipe, dispatching ``adopt`` orders
    to the host and routing rank-tagged replies to per-rank inboxes, so
    several virtual ranks (one thread each after a shrink) can block on
    their own replies concurrently.  EOF poisons every inbox: no hosted
    rank ever hangs on a coordinator that has gone away.
    """

    def __init__(
        self,
        conn: Connection,
        on_adopt: Callable[[int, int], None] | None = None,
    ) -> None:
        self._conn = conn
        self._send_lock = threading.Lock()
        self._inbox_lock = threading.Lock()
        self._inboxes: dict[int, queue.Queue] = {}
        self._on_adopt = on_adopt
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="pipe-endpoint-reader", daemon=True
        )
        self._reader.start()

    def _inbox(self, rank: int) -> queue.Queue:
        with self._inbox_lock:
            box = self._inboxes.get(rank)
            if box is None:
                box = self._inboxes[rank] = queue.Queue()
                if self._closed:
                    box.put(("eof", b""))
            return box

    def send(self, msg: tuple) -> None:
        with self._send_lock:
            self._conn.send(msg)

    def try_send(self, msg: tuple) -> None:
        try:
            self.send(msg)
        except (BrokenPipeError, OSError):
            pass

    def recv_for(self, rank: int) -> tuple[str, bytes]:
        return self._inbox(rank).get()

    def _read_loop(self) -> None:
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "adopt":
                _, rank, incarnation = msg
                if self._on_adopt is not None:
                    self._on_adopt(int(rank), int(incarnation))
                continue
            _, rank, blob = msg
            self._inbox(int(rank)).put((kind, blob))
        with self._inbox_lock:
            self._closed = True
            for box in self._inboxes.values():
                box.put(("eof", b""))


class _PipeTransport(Transport):
    """Child-side transport: one virtual rank over a shared endpoint."""

    def __init__(
        self, rank: int, size: int, endpoint: _PipeEndpoint, *, resume: bool = False
    ) -> None:
        self._rank = int(rank)
        self._size = int(size)
        self._ep = endpoint
        self._seq = 0
        self.resume = bool(resume)

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def _send_contribution(self, op: str, payload: Any) -> None:
        self._seq += 1
        try:
            self._ep.send(
                ("coll", self._rank, op, self._seq, pickle.dumps(payload))
            )
        except (BrokenPipeError, OSError) as exc:
            raise ClusterFailed(
                f"rank {self._rank}: coordinator unreachable during {op}", exc
            ) from exc

    def _collective(self, op: str, payload: Any) -> Any:
        self._send_contribution(op, payload)
        return self._recv_reply(op)

    def _recv_reply(self, op: str) -> Any:
        kind, blob = self._ep.recv_for(self._rank)
        if kind == "eof":
            raise ClusterFailed(
                f"rank {self._rank}: coordinator vanished during {op}"
            )
        if kind == "fail":
            exc = _load_exc(blob)
            if isinstance(exc, ClusterFailed):
                raise exc
            raise ClusterFailed(
                f"rank {self._rank}: cluster poisoned during {op}: {exc!r}", exc
            ) from exc
        return pickle.loads(blob)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return self._collective("gather", {"root": int(root), "value": obj})

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        if op not in ALLREDUCE_OPS:
            raise ValueError(
                f"unknown allreduce op {op!r}; expected one of {ALLREDUCE_OPS}"
            )
        return self._collective("allreduce", {"op": op, "value": np.asarray(array)})

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._collective("bcast", {"root": int(root), "value": obj})


# --------------------------------------------------------- fault injection
@dataclass(frozen=True)
class FaultPlan:
    """Where and how :class:`FaultyTransport` misbehaves.

    The fault fires on the ``call_index``-th collective (0-based) whose
    operation matches ``collective`` (``None`` matches any), at phase
    ``when``:

    * ``"before"`` -- before the rank contributes,
    * ``"during"`` -- after contributing, before receiving the result
      (the collective is in flight),
    * ``"after"`` -- after the collective completed on this rank.

    Kinds: ``"die"`` hard-exits the process (no exception, no cleanup --
    a crashed node); ``"raise"`` raises a ``RuntimeError`` (an
    application failure the parent should re-raise); ``"delay"`` sleeps
    ``delay_s`` then proceeds normally; ``"drop"`` never contributes and
    waits for the coordinator's verdict (a hung node -- only the
    straggler timeout can clear it).

    ``incarnation`` selects which *incarnation* of the rank the fault
    targets: 0 (default) is the original process; a replacement spawned
    by recovery runs incarnation 1, and so on.  A plan with
    ``incarnation=1`` therefore injects a fault *during recovery*, and a
    replacement never re-fires the incarnation-0 plan that killed its
    predecessor.
    """

    rank: int
    kind: str  # die | raise | delay | drop
    collective: str | None = None
    call_index: int = 0
    when: str = "before"  # before | during | after
    delay_s: float = 0.25
    exit_code: int = 17
    incarnation: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("die", "raise", "delay", "drop"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.when not in ("before", "during", "after"):
            raise ValueError(f"unknown fault phase {self.when!r}")
        if self.collective is not None and self.collective not in (
            "gather",
            "allreduce",
            "bcast",
        ):
            raise ValueError(f"unknown collective {self.collective!r}")
        if self.incarnation < 0:
            raise ValueError(f"incarnation must be >= 0, got {self.incarnation}")


def _normalize_faults(
    fault: FaultPlan | tuple | list | None,
) -> tuple[FaultPlan, ...]:
    if fault is None:
        return ()
    if isinstance(fault, FaultPlan):
        return (fault,)
    return tuple(fault)


class FaultyTransport(Transport):
    """Wraps a transport and injects one planned fault on this rank."""

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._matched = 0

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def resume(self) -> bool:  # type: ignore[override]
        return self._inner.resume

    def _base_pipe(self) -> _PipeTransport | None:
        inner = self._inner
        while isinstance(inner, FaultyTransport):
            inner = inner._inner
        return inner if isinstance(inner, _PipeTransport) else None

    def _trigger(self) -> None:
        plan = self._plan
        if plan.kind == "die":
            os._exit(plan.exit_code)
        if plan.kind == "raise":
            raise RuntimeError(
                f"injected fault on rank {self.rank} "
                f"({plan.collective or 'any'}[{plan.call_index}] {plan.when})"
            )
        if plan.kind == "delay":
            time.sleep(plan.delay_s)

    def _run(self, op: str, call: Callable[[], Any]) -> Any:
        plan = self._plan
        if plan.collective is not None and plan.collective != op:
            return call()
        fire = self._matched == plan.call_index
        self._matched += 1
        if not fire:
            return call()
        pipe = self._base_pipe()
        if plan.kind == "drop":
            # Never contribute: sit in recv until the coordinator's
            # straggler timeout poisons (or recovers) the cluster.
            if pipe is None:
                raise ClusterFailed(
                    f"rank {self.rank}: dropped out of {op} (injected)"
                )
            return pipe._recv_reply(op)
        if plan.when == "before":
            self._trigger()
            return call()
        if plan.when == "during" and pipe is not None:
            pipe._send_contribution(op, self._payload)
            self._trigger()
            return pipe._recv_reply(op)
        result = call()
        self._trigger()
        return result

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._payload = {"root": int(root), "value": obj}
        return self._run("gather", lambda: self._inner.gather(obj, root))

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        self._payload = {"op": op, "value": np.asarray(array)}
        return self._run("allreduce", lambda: self._inner.allreduce(array, op))

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._payload = {"root": int(root), "value": obj}
        return self._run("bcast", lambda: self._inner.bcast(obj, root))

    def close(self) -> None:
        self._inner.close()


# ----------------------------------------------------------- recovery policy
@dataclass(frozen=True)
class RecoveryPolicy:
    """What the coordinator does when a rank fails mid-run.

    ``on_fault``:

    * ``"fail"`` (default) -- poison the whole cluster, today's behavior.
    * ``"respawn"`` -- start a fresh process for the failed rank slot.
    * ``"shrink"`` -- a surviving host process adopts the failed rank's
      body as an extra thread (fewer processes, same rank count, same
      results); falls back to respawn when no survivor can adopt.

    ``max_recoveries`` bounds the total number of replacement attempts
    across the run (a crash-looping rank must not retry forever);
    exceeding it poisons the cluster with ``recovery budget exhausted``.
    ``recovery_timeout`` bounds how long a single replacement may go
    without progress (a served or live contribution) before it is itself
    declared failed and retried -- counted against the budget.
    """

    on_fault: str = "fail"
    max_recoveries: int = 4
    recovery_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.on_fault not in ON_FAULT_POLICIES:
            raise ValueError(
                f"unknown on_fault policy {self.on_fault!r}; "
                f"expected one of {ON_FAULT_POLICIES}"
            )
        if self.max_recoveries < 0:
            raise ValueError(
                f"max_recoveries must be >= 0, got {self.max_recoveries}"
            )
        if self.recovery_timeout <= 0:
            raise ValueError(
                f"recovery_timeout must be > 0, got {self.recovery_timeout}"
            )


@dataclass
class RecoveryEvent:
    """One replacement attempt, as surfaced in ``cluster.json``/CLI."""

    rank: int
    incarnation: int
    mode: str  # respawn | shrink
    reason: str  # died | error | poisoned | hung | stalled
    host_rank: int | None  # adopting host's own rank (shrink), else None
    at_collective: int  # collectives completed when recovery began
    elapsed_s: float = 0.0
    recovered: bool = False

    def to_json(self) -> dict:
        return {
            "rank": self.rank,
            "incarnation": self.incarnation,
            "mode": self.mode,
            "reason": self.reason,
            "host_rank": self.host_rank,
            "at_collective": self.at_collective,
            "elapsed_s": round(self.elapsed_s, 6),
            "recovered": self.recovered,
        }


@dataclass
class _Recovery:
    """Parent-side tracking of one in-flight replacement."""

    event: RecoveryEvent
    started: float
    last_progress: float = 0.0


class _Host:
    """Parent-side view of one child process (may host several ranks)."""

    def __init__(self, proc: Any, conn: Connection, ranks: set[int]) -> None:
        self.proc = proc
        self.conn = conn
        self.ranks = set(ranks)
        self.alive = True


# ------------------------------------------------------------- local cluster
def _virtual_rank_body(
    endpoint: _PipeEndpoint,
    rank: int,
    size: int,
    fn_blob: bytes,
    faults: tuple[FaultPlan, ...],
    resume: bool,
    incarnation: int,
) -> None:
    """Run one rank's body over the shared endpoint and report back."""
    transport: Transport = _PipeTransport(rank, size, endpoint, resume=resume)
    for plan in faults:
        if plan.rank == rank and plan.incarnation == incarnation:
            transport = FaultyTransport(transport, plan)
    try:
        fn, args = pickle.loads(fn_blob)
        result = fn(transport, *args)
    except ClusterFailed as exc:
        # Secondary failure: this rank was poisoned by someone else's
        # death.  Report it as such so the parent keeps the primary.
        endpoint.try_send(("poisoned", rank, _dump_exc(exc)))
        return
    except BaseException as exc:
        endpoint.try_send(("error", rank, _dump_exc(exc)))
        return
    endpoint.try_send(("done", rank, pickle.dumps(result)))


def _rank_main(
    rank: int,
    size: int,
    conn: Connection,
    fn_blob: bytes,
    faults: tuple[FaultPlan, ...],
    resume: bool = False,
    incarnation: int = 0,
) -> None:
    """Child entry point: own rank body plus any shrink-adopted ranks."""
    adopted: list[threading.Thread] = []
    adopted_lock = threading.Lock()
    endpoint_ref: list[_PipeEndpoint] = []

    def on_adopt(new_rank: int, new_incarnation: int) -> None:
        thread = threading.Thread(
            target=_virtual_rank_body,
            args=(
                endpoint_ref[0], new_rank, size, fn_blob, faults,
                True, new_incarnation,
            ),
            name=f"adopted-rank-{new_rank}",
        )
        with adopted_lock:
            adopted.append(thread)
            thread.start()

    endpoint = _PipeEndpoint(conn, on_adopt=on_adopt)
    endpoint_ref.append(endpoint)
    _virtual_rank_body(endpoint, rank, size, fn_blob, faults, resume, incarnation)
    # Linger until every adopted body (including any adopted while we were
    # joining) has finished; the parent's recovery stall timer covers the
    # narrow race of an adopt order arriving as the process exits.
    while True:
        with adopted_lock:
            threads = list(adopted)
        for thread in threads:
            thread.join()
        with adopted_lock:
            if len(adopted) == len(threads):
                break


class LocalClusterTransport:
    """Run an SPMD function on ``n_ranks`` real processes, coordinated here.

    The parent is *not* a rank: it routes collectives, detects dead or
    hung ranks, and -- under the default ``fail`` policy -- poisons every
    survivor with :class:`ClusterFailed` so no collective ever deadlocks.
    ``run`` returns the rank-ordered list of return values on success; on
    failure it re-raises the first *original* worker exception if one was
    shipped, else a :class:`ClusterFailed` describing the death/timeout.
    The raised exception carries ``cluster_outcomes`` -- ``{rank: status}``
    with statuses ``done / error / poisoned / dead / hung`` -- so tests
    can assert that every surviving rank failed *cleanly*.

    Under a ``respawn``/``shrink`` :class:`RecoveryPolicy` the parent
    instead replaces failed ranks (see the module docstring); the
    replacement attempts of the last ``run`` are exposed as
    ``self.recovery_events``.

    ``collective_timeout`` bounds how long a collective may sit
    incomplete before the missing ranks are declared hung.
    """

    def __init__(
        self,
        n_ranks: int,
        *,
        collective_timeout: float = 120.0,
        start_method: str | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.collective_timeout = float(collective_timeout)
        self._ctx = _pick_context(start_method)
        #: Replacement attempts of the most recent :meth:`run`.
        self.recovery_events: list[RecoveryEvent] = []

    # ------------------------------------------------------------------ run
    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        fault: FaultPlan | tuple | list | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> list[Any]:
        n = self.n_ranks
        policy = recovery if recovery is not None else RecoveryPolicy()
        faults = _normalize_faults(fault)
        fn_blob = pickle.dumps((fn, args))
        self.recovery_events = []
        hosts: list[_Host] = []
        for rank in range(n):
            hosts.append(self._spawn_host(rank, fn_blob, faults, False, 0))
        try:
            return self._route(hosts, fn_blob, faults, policy)
        finally:
            for host in hosts:
                try:
                    host.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            for host in hosts:
                host.proc.join(timeout=_JOIN_SECONDS)
                if host.proc.is_alive():
                    host.proc.terminate()
                    host.proc.join(timeout=_JOIN_SECONDS)

    def _spawn_host(
        self,
        rank: int,
        fn_blob: bytes,
        faults: tuple[FaultPlan, ...],
        resume: bool,
        incarnation: int,
    ) -> _Host:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        suffix = f"-r{incarnation}" if incarnation else ""
        proc = self._ctx.Process(
            target=_rank_main,
            args=(rank, self.n_ranks, child_conn, fn_blob, faults,
                  resume, incarnation),
            name=f"cluster-rank-{rank}{suffix}",
            # Non-daemonic: ranks spawn their own engine workers
            # (daemonic processes may not have children).  run()'s finally
            # block joins or terminates every host.
            daemon=False,
        )
        proc.start()
        child_conn.close()
        return _Host(proc, parent_conn, {rank})

    # ---------------------------------------------------------------- route
    def _route(
        self,
        hosts: list[_Host],
        fn_blob: bytes,
        faults: tuple[FaultPlan, ...],
        policy: RecoveryPolicy,
    ) -> list[Any]:
        n = self.n_ranks
        recover = policy.on_fault != "fail"
        status = {rank: "running" for rank in range(n)}
        incarnation = {rank: 0 for rank in range(n)}
        rank_host: dict[int, _Host] = {r: hosts[r] for r in range(n)}
        results: dict[int, Any] = {}
        primary: BaseException | None = None
        # In-flight collective: rank -> (op, seq, body); completes when all
        # n ranks (every rank participates in every collective) have sent
        # a matching contribution at the live seq.
        pending: dict[int, tuple[str, int, dict]] = {}
        pending_since: float | None = None
        # Collective log for recovery: per completed collective, the op and
        # the reply handed to each rank.  Only kept when recovery is on.
        completed: list[tuple[str, dict[int, Any]]] = []
        n_completed = 0
        recovering: dict[int, _Recovery] = {}
        recoveries_used = 0

        def active_ranks(host: _Host) -> list[int]:
            return [
                r for r in sorted(host.ranks)
                if status[r] in ("running", "recovering")
            ]

        def fail_all(exc: ClusterFailed) -> None:
            blob = _dump_exc(exc)
            for rank in range(n):
                if status[rank] in ("running", "recovering"):
                    try:
                        rank_host[rank].conn.send(("fail", rank, blob))
                    except (BrokenPipeError, OSError):
                        pass

        def finish(exc: BaseException | None) -> list[Any]:
            # Give poisoned ranks a moment to acknowledge, then collect
            # final statuses without blocking on the hung/dead.  Each
            # pipe is drained fully -- a "poisoned" report may be queued
            # behind a stale collective contribution.
            deadline = time.monotonic() + _JOIN_SECONDS
            while exc is not None and time.monotonic() < deadline and any(
                s in ("running", "recovering") for s in status.values()
            ):
                for host in hosts:
                    if not host.alive:
                        continue
                    while host.conn.poll():
                        try:
                            msg = host.conn.recv()
                        except (EOFError, OSError):
                            host.alive = False
                            break
                        kind = msg[0]
                        if kind == "coll":
                            continue  # late contribution after poisoning
                        rank = int(msg[1])
                        if status[rank] not in ("running", "recovering"):
                            continue
                        if kind == "done":
                            status[rank] = "done"
                            results[rank] = pickle.loads(msg[2])
                        elif kind == "poisoned":
                            status[rank] = "poisoned"
                        elif kind == "error":
                            status[rank] = "error"
                    if (
                        host.alive
                        and host.proc.exitcode is not None
                        and not host.conn.poll()
                    ):
                        host.alive = False
                        for rank in active_ranks(host):
                            status[rank] = "dead"
                time.sleep(_POLL_SECONDS / 5)
            if exc is not None:
                for rank in range(n):
                    if status[rank] in ("running", "recovering"):
                        status[rank] = (
                            "dead"
                            if rank_host[rank].proc.exitcode is not None
                            else "hung"
                        )
                exc.cluster_outcomes = dict(status)
                raise exc
            return [results[rank] for rank in range(n)]

        def start_recovery(rank: int, reason: str) -> None:
            nonlocal recoveries_used, primary
            pending.pop(rank, None)
            old = rank_host.get(rank)
            if old is not None:
                old.ranks.discard(rank)
            recovering.pop(rank, None)
            recoveries_used += 1
            if recoveries_used > policy.max_recoveries:
                if primary is None:
                    primary = ClusterFailed(
                        f"recovery budget exhausted after "
                        f"{policy.max_recoveries} replacement(s); "
                        f"rank {rank} {reason} and cannot be replaced"
                    )
                status[rank] = "dead"
                return
            incarnation[rank] += 1
            status[rank] = "recovering"
            mode = policy.on_fault
            host_rank: int | None = None
            if mode == "shrink":
                candidates = [
                    h for h in hosts
                    if h.alive and any(status[r] == "running" for r in h.ranks)
                ]
                if candidates:
                    target = min(candidates, key=lambda h: len(active_ranks(h)))
                    try:
                        target.conn.send(("adopt", rank, incarnation[rank]))
                    except (BrokenPipeError, OSError):
                        target = None  # host raced to exit: respawn instead
                    if target is not None:
                        target.ranks.add(rank)
                        rank_host[rank] = target
                        host_rank = min(
                            (r for r in target.ranks
                             if r != rank and status[r] == "running"),
                            default=None,
                        )
                    else:
                        mode = "respawn"
                else:
                    mode = "respawn"
            if mode == "respawn":
                host = self._spawn_host(
                    rank, fn_blob, faults, True, incarnation[rank]
                )
                hosts.append(host)
                rank_host[rank] = host
            now = time.monotonic()
            event = RecoveryEvent(
                rank=rank,
                incarnation=incarnation[rank],
                mode=mode,
                reason=reason,
                host_rank=host_rank,
                at_collective=n_completed,
            )
            self.recovery_events.append(event)
            recovering[rank] = _Recovery(
                event=event, started=now, last_progress=now
            )

        def host_failed(host: _Host, reason: str, detail: str) -> None:
            nonlocal primary
            host.alive = False
            victims = active_ranks(host)
            if not victims:
                return  # every hosted rank already reported; clean exit
            if not recover:
                for rank in victims:
                    status[rank] = "dead"
                if primary is None:
                    primary = ClusterFailed(detail.format(rank=victims[0]))
                return
            for rank in victims:
                start_recovery(rank, reason)

        def rank_failed(rank: int, reason: str, exc: BaseException) -> None:
            nonlocal primary
            host = rank_host[rank]
            host.ranks.discard(rank)
            if not recover:
                status[rank] = reason if reason in ("error", "poisoned") else "dead"
                if primary is None:
                    primary = exc
                return
            start_recovery(rank, reason)

        while len(results) < n:
            conn_host = {h.conn: h for h in hosts if h.alive}
            ready = _conn_wait(list(conn_host), timeout=_POLL_SECONDS)
            for conn in ready:
                host = conn_host[conn]
                if not host.alive:
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # The pipe hit EOF before the exitcode scan below saw
                    # the death; reap the process (EOF means it already
                    # exited) and handle it here or the collective would
                    # sit until the straggler timeout.
                    host.proc.join(timeout=_JOIN_SECONDS)
                    host_failed(
                        host, "died",
                        "rank {rank} died with exit code "
                        f"{host.proc.exitcode} during a collective",
                    )
                    continue
                kind = msg[0]
                if kind == "coll":
                    _, rank, op, seq, blob = msg
                    rank, seq = int(rank), int(seq)
                    if status[rank] not in ("running", "recovering"):
                        continue  # stale contribution from a replaced body
                    if recover and seq <= n_completed:
                        # A recovering rank replaying the schedule: serve
                        # the logged reply, zero survivor involvement.
                        logged_op, replies = completed[seq - 1]
                        if logged_op != op:
                            desync = ClusterFailed(
                                f"collective desync during recovery: rank "
                                f"{rank} replayed {op}[{seq}] but the log "
                                f"has {logged_op}"
                            )
                            fail_all(desync)
                            return finish(desync)
                        try:
                            host.conn.send(
                                ("ok", rank, pickle.dumps(replies[rank]))
                            )
                        except (BrokenPipeError, OSError):
                            pass  # the death scan will pick this host up
                        rec = recovering.get(rank)
                        if rec is not None:
                            rec.last_progress = time.monotonic()
                        continue
                    if seq != n_completed + 1:
                        desync = ClusterFailed(
                            f"collective desync: rank {rank} sent "
                            f"{op}[{seq}] but the cluster is at "
                            f"[{n_completed + 1}]"
                        )
                        fail_all(desync)
                        return finish(desync)
                    pending[rank] = (op, seq, pickle.loads(blob))
                    rec = recovering.pop(rank, None)
                    if rec is not None:
                        # Caught up with the live collective: recovered.
                        now = time.monotonic()
                        rec.event.recovered = True
                        rec.event.elapsed_s = now - rec.started
                        status[rank] = "running"
                        if not recovering:
                            pending_since = now
                    if pending_since is None:
                        pending_since = time.monotonic()
                elif kind == "done":
                    rank = int(msg[1])
                    status[rank] = "done"
                    results[rank] = pickle.loads(msg[2])
                    host.ranks.discard(rank)
                elif kind == "error":
                    rank = int(msg[1])
                    rank_failed(rank, "error", _load_exc(msg[2]))
                elif kind == "poisoned":
                    rank = int(msg[1])
                    # Under fail: a rank failed a collective on its own
                    # (e.g. an injected drop outside pipe transport);
                    # promote its report so the loop cannot spin forever.
                    rank_failed(rank, "poisoned", _load_exc(msg[2]))

            # Host death: a process that exited while still owing ranks.
            for host in hosts:
                if host.alive and host.proc.exitcode is not None:
                    if host.conn.poll():
                        continue  # let its last messages drain first
                    host_failed(
                        host, "died",
                        "rank {rank} died with exit code "
                        f"{host.proc.exitcode} during a collective",
                    )

            if primary is not None:
                poison = (
                    primary
                    if isinstance(primary, ClusterFailed)
                    else ClusterFailed(
                        f"cluster poisoned by rank failure: {primary!r}", primary
                    )
                )
                fail_all(poison)
                return finish(primary)

            # Complete a collective once every rank has contributed.
            if len(pending) == n:
                ops = {(op, seq) for op, seq, _ in pending.values()}
                if len(ops) != 1:
                    desync = ClusterFailed(
                        f"collective desync: ranks disagree on {sorted(ops)}"
                    )
                    fail_all(desync)
                    return finish(desync)
                op = next(iter(ops))[0]
                try:
                    replies = self._complete(op, pending)
                except Exception as exc:
                    bad = ClusterFailed(f"collective {op} failed: {exc!r}", exc)
                    fail_all(bad)
                    return finish(bad)
                if recover:
                    completed.append((op, dict(replies)))
                n_completed += 1
                for rank, reply in replies.items():
                    try:
                        rank_host[rank].conn.send(
                            ("ok", rank, pickle.dumps(reply))
                        )
                    except (BrokenPipeError, OSError):
                        pass  # the death scan will pick this rank up
                pending.clear()
                pending_since = None
            elif (
                pending
                and pending_since is not None
                and not recovering
                and time.monotonic() - pending_since > self.collective_timeout
            ):
                op = next(iter(pending.values()))[0]
                missing = sorted(
                    r for r in range(n)
                    if status[r] == "running" and r not in pending
                )
                if not recover:
                    timeout_exc = ClusterFailed(
                        f"collective {op} timed out after "
                        f"{self.collective_timeout:.1f}s waiting for ranks "
                        f"{missing or sorted(set(range(n)) - set(pending))}"
                    )
                    fail_all(timeout_exc)
                    return finish(timeout_exc)
                # Hung ranks under a recovery policy: terminate their
                # hosts (a stuck body cannot be interrupted any other
                # way) and replace every rank those hosts were carrying.
                # All implicated hosts are retired first so a shrink
                # recovery cannot adopt into one about to be killed.
                doomed = {id(rank_host[r]): rank_host[r] for r in missing}
                for host in doomed.values():
                    host.alive = False
                    host.proc.terminate()
                for host in doomed.values():
                    for rank in active_ranks(host):
                        start_recovery(
                            rank, "hung" if rank in missing else "evicted"
                        )
                pending_since = time.monotonic()

            # A replacement that stopped making progress (e.g. adopted by
            # a host that exited first, or crash-looping) is itself failed
            # and retried, against the same budget.
            if recovering:
                now = time.monotonic()
                for rank, rec in list(recovering.items()):
                    if now - rec.last_progress > policy.recovery_timeout:
                        host = rank_host[rank]
                        host.alive = False
                        if host.proc.exitcode is None:
                            host.proc.terminate()
                        for victim in active_ranks(host):
                            start_recovery(
                                victim,
                                "stalled" if victim == rank else "evicted",
                            )

        return finish(None)

    @staticmethod
    def _complete(op: str, pending: dict[int, tuple[str, int, dict]]) -> dict[int, Any]:
        bodies = {rank: body for rank, (_, _, body) in pending.items()}
        ranks = sorted(bodies)
        if op == "gather":
            roots = {bodies[r]["root"] for r in ranks}
            if len(roots) != 1:
                raise ValueError(f"gather root mismatch: {sorted(roots)}")
            root = roots.pop()
            ordered = [bodies[r]["value"] for r in ranks]
            return {r: (ordered if r == root else None) for r in ranks}
        if op == "allreduce":
            ops = {bodies[r]["op"] for r in ranks}
            if len(ops) != 1:
                raise ValueError(f"allreduce op mismatch: {sorted(ops)}")
            reduced = _reduce([bodies[r]["value"] for r in ranks], ops.pop())
            return {r: reduced for r in ranks}
        if op == "bcast":
            roots = {bodies[r]["root"] for r in ranks}
            if len(roots) != 1:
                raise ValueError(f"bcast root mismatch: {sorted(roots)}")
            root = roots.pop()
            return {r: bodies[root]["value"] for r in ranks}
        raise ValueError(f"unknown collective {op!r}")


# ---------------------------------------------------------------------- MPI
def mpi_available() -> bool:
    """True if ``mpi4py`` can be imported (not shipped in the test image)."""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


class MPITransport(Transport):
    """``mpi4py`` adapter for real clusters; optional dependency.

    ``allreduce`` routes through ``allgather`` + a local elementwise
    reduce so min/max are elementwise over arrays (object-mode
    ``MPI.MIN`` would compare whole arrays), keeping the semantics
    identical to :class:`LocalClusterTransport`.
    """

    def __init__(self, comm: Any = None) -> None:
        try:
            from mpi4py import MPI
        except ImportError as exc:
            raise ClusterFailed(
                "MPITransport requires mpi4py, which is not installed; "
                "use LocalClusterTransport instead",
                exc,
            ) from exc
        self._MPI = MPI
        self._comm = comm if comm is not None else MPI.COMM_WORLD

    @property
    def rank(self) -> int:
        return int(self._comm.Get_rank())

    @property
    def size(self) -> int:
        return int(self._comm.Get_size())

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        try:
            return self._comm.gather(obj, root=root)
        except self._MPI.Exception as exc:  # pragma: no cover - needs MPI
            raise ClusterFailed(f"MPI gather failed: {exc!r}", exc) from exc

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        if op not in ALLREDUCE_OPS:
            raise ValueError(
                f"unknown allreduce op {op!r}; expected one of {ALLREDUCE_OPS}"
            )
        try:
            parts = self._comm.allgather(np.asarray(array))
        except self._MPI.Exception as exc:  # pragma: no cover - needs MPI
            raise ClusterFailed(f"MPI allreduce failed: {exc!r}", exc) from exc
        return _reduce(parts, op)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        try:
            return self._comm.bcast(obj, root=root)
        except self._MPI.Exception as exc:  # pragma: no cover - needs MPI
            raise ClusterFailed(f"MPI bcast failed: {exc!r}", exc) from exc
