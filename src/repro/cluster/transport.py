"""Transport abstraction for the cluster runtime (Figure 13's regime).

Three implementations of one small collective surface -- ``gather``,
``allreduce`` and ``bcast``, the only operations the distributed selection
merge needs:

* :class:`LocalClusterTransport` -- real OS processes wired to a parent
  coordinator over pipes.  Always available; what the tests and CI run.
  The parent routes every collective and *poisons* the cluster on any rank
  death, protocol desync, or straggler timeout, mirroring the
  :class:`~repro.insitu.queue.QueueFailed` contract: a failed collective
  raises :class:`ClusterFailed` on every surviving rank instead of
  deadlocking it.
* :class:`MPITransport` -- thin adapter over ``mpi4py`` for real clusters,
  gated behind an optional import (the test container does not ship MPI).
* :class:`FaultyTransport` -- a fault-injection wrapper that kills, delays
  or drops a chosen rank at a chosen collective; the differential test
  suite uses it to exercise every failure path.

Collective payloads are tiny (per-bin count vectors, selection picks,
store reports), so correctness and failure semantics dominate the design,
not bandwidth.
"""

from __future__ import annotations

import os
import pickle
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _conn_wait
from typing import Any, Callable

import numpy as np

from repro.insitu.parallel import _dump_exc, _load_exc, _pick_context

#: Reduction operators allowed in :meth:`Transport.allreduce`.
ALLREDUCE_OPS = ("sum", "min", "max")

#: Seconds granted for voluntary child shutdown before termination.
_JOIN_SECONDS = 10.0
#: Poll interval of the coordinator's routing loop.
_POLL_SECONDS = 0.05


class ClusterFailed(RuntimeError):
    """A collective could not complete: a rank died, hung, or desynced.

    The cross-node sibling of :class:`~repro.insitu.queue.QueueFailed`:
    once raised, the whole cluster is poisoned -- every surviving rank
    gets this exception out of its current (or next) collective, so no
    rank ever blocks forever on a peer that will not answer.  ``cause``
    carries the originating worker exception when one was shipped.
    """

    def __init__(self, message: str, cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.cause = cause


class Transport(ABC):
    """The collective surface the distributed merge is written against."""

    @property
    @abstractmethod
    def rank(self) -> int:
        """This participant's 0-based rank."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of ranks in the cluster."""

    @abstractmethod
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Collect one object per rank; returns the rank-ordered list on
        ``root`` and ``None`` elsewhere."""

    @abstractmethod
    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Elementwise reduction of equal-shape arrays; result on all ranks."""

    @abstractmethod
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``root``'s object to every rank."""

    def close(self) -> None:
        """Release transport resources (idempotent)."""


def _reduce(parts: list[np.ndarray], op: str) -> np.ndarray:
    if op not in ALLREDUCE_OPS:
        raise ValueError(f"unknown allreduce op {op!r}; expected one of {ALLREDUCE_OPS}")
    arrays = [np.asarray(p) for p in parts]
    shape = arrays[0].shape
    for a in arrays[1:]:
        if a.shape != shape:
            raise ValueError(
                f"allreduce shape mismatch: {a.shape} vs {shape}"
            )
    if op == "sum":
        return np.sum(arrays, axis=0)
    if op == "min":
        return np.minimum.reduce(arrays)
    return np.maximum.reduce(arrays)


# --------------------------------------------------------------- local child
class _PipeTransport(Transport):
    """Child-side transport: one duplex pipe to the coordinator."""

    def __init__(self, rank: int, size: int, conn: Connection) -> None:
        self._rank = int(rank)
        self._size = int(size)
        self._conn = conn
        self._seq = 0

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def _collective(self, op: str, payload: Any) -> Any:
        self._seq += 1
        try:
            self._conn.send(("coll", op, self._seq, pickle.dumps(payload)))
        except (BrokenPipeError, OSError) as exc:
            raise ClusterFailed(
                f"rank {self._rank}: coordinator unreachable during {op}", exc
            ) from exc
        return self._recv_reply(op)

    def _recv_reply(self, op: str) -> Any:
        try:
            kind, blob = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ClusterFailed(
                f"rank {self._rank}: coordinator vanished during {op}", exc
            ) from exc
        if kind == "fail":
            exc = _load_exc(blob)
            if isinstance(exc, ClusterFailed):
                raise exc
            raise ClusterFailed(
                f"rank {self._rank}: cluster poisoned during {op}: {exc!r}", exc
            ) from exc
        return pickle.loads(blob)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return self._collective("gather", {"root": int(root), "value": obj})

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        if op not in ALLREDUCE_OPS:
            raise ValueError(
                f"unknown allreduce op {op!r}; expected one of {ALLREDUCE_OPS}"
            )
        return self._collective("allreduce", {"op": op, "value": np.asarray(array)})

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._collective("bcast", {"root": int(root), "value": obj})


# --------------------------------------------------------- fault injection
@dataclass(frozen=True)
class FaultPlan:
    """Where and how :class:`FaultyTransport` misbehaves.

    The fault fires on the ``call_index``-th collective (0-based) whose
    operation matches ``collective`` (``None`` matches any), at phase
    ``when``:

    * ``"before"`` -- before the rank contributes,
    * ``"during"`` -- after contributing, before receiving the result
      (the collective is in flight),
    * ``"after"`` -- after the collective completed on this rank.

    Kinds: ``"die"`` hard-exits the process (no exception, no cleanup --
    a crashed node); ``"raise"`` raises a ``RuntimeError`` (an
    application failure the parent should re-raise); ``"delay"`` sleeps
    ``delay_s`` then proceeds normally; ``"drop"`` never contributes and
    waits for the coordinator's verdict (a hung node -- only the
    straggler timeout can clear it).
    """

    rank: int
    kind: str  # die | raise | delay | drop
    collective: str | None = None
    call_index: int = 0
    when: str = "before"  # before | during | after
    delay_s: float = 0.25
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.kind not in ("die", "raise", "delay", "drop"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.when not in ("before", "during", "after"):
            raise ValueError(f"unknown fault phase {self.when!r}")
        if self.collective is not None and self.collective not in (
            "gather",
            "allreduce",
            "bcast",
        ):
            raise ValueError(f"unknown collective {self.collective!r}")


class FaultyTransport(Transport):
    """Wraps a transport and injects one planned fault on this rank."""

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._matched = 0

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def size(self) -> int:
        return self._inner.size

    def _trigger(self) -> None:
        plan = self._plan
        if plan.kind == "die":
            os._exit(plan.exit_code)
        if plan.kind == "raise":
            raise RuntimeError(
                f"injected fault on rank {self.rank} "
                f"({plan.collective or 'any'}[{plan.call_index}] {plan.when})"
            )
        if plan.kind == "delay":
            time.sleep(plan.delay_s)

    def _run(self, op: str, call: Callable[[], Any]) -> Any:
        plan = self._plan
        if plan.collective is not None and plan.collective != op:
            return call()
        fire = self._matched == plan.call_index
        self._matched += 1
        if not fire:
            return call()
        if plan.kind == "drop":
            # Never contribute: sit in recv until the coordinator's
            # straggler timeout poisons the cluster.
            if not isinstance(self._inner, _PipeTransport):
                raise ClusterFailed(
                    f"rank {self.rank}: dropped out of {op} (injected)"
                )
            return self._inner._recv_reply(op)
        if plan.when == "before":
            self._trigger()
            return call()
        if plan.when == "during" and isinstance(self._inner, _PipeTransport):
            inner = self._inner
            inner._seq += 1
            inner._conn.send(("coll", op, inner._seq, pickle.dumps(self._payload)))
            self._trigger()
            return inner._recv_reply(op)
        result = call()
        self._trigger()
        return result

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._payload = {"root": int(root), "value": obj}
        return self._run("gather", lambda: self._inner.gather(obj, root))

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        self._payload = {"op": op, "value": np.asarray(array)}
        return self._run("allreduce", lambda: self._inner.allreduce(array, op))

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._payload = {"root": int(root), "value": obj}
        return self._run("bcast", lambda: self._inner.bcast(obj, root))

    def close(self) -> None:
        self._inner.close()


# ------------------------------------------------------------- local cluster
def _rank_main(
    rank: int,
    size: int,
    conn: Connection,
    fn_blob: bytes,
    fault: FaultPlan | None,
) -> None:
    """Child entry point: run ``fn(transport, *args)`` and report back."""
    transport: Transport = _PipeTransport(rank, size, conn)
    if fault is not None and fault.rank == rank:
        transport = FaultyTransport(transport, fault)
    try:
        fn, args = pickle.loads(fn_blob)
        result = fn(transport, *args)
    except ClusterFailed as exc:
        # Secondary failure: this rank was poisoned by someone else's
        # death.  Report it as such so the parent keeps the primary.
        try:
            conn.send(("poisoned", _dump_exc(exc)))
        except (BrokenPipeError, OSError):
            pass
        return
    except BaseException as exc:
        try:
            conn.send(("error", _dump_exc(exc)))
        except (BrokenPipeError, OSError):
            pass
        return
    try:
        conn.send(("done", pickle.dumps(result)))
    except (BrokenPipeError, OSError):
        pass


class LocalClusterTransport:
    """Run an SPMD function on ``n_ranks`` real processes, coordinated here.

    The parent is *not* a rank: it routes collectives, detects dead or
    hung ranks, and poisons every survivor with :class:`ClusterFailed`
    so no collective ever deadlocks.  ``run`` returns the rank-ordered
    list of return values on success; on failure it re-raises the first
    *original* worker exception if one was shipped, else a
    :class:`ClusterFailed` describing the death/timeout.  The raised
    exception carries ``cluster_outcomes`` -- ``{rank: status}`` with
    statuses ``done / error / poisoned / dead / hung`` -- so tests can
    assert that every surviving rank failed *cleanly*.

    ``collective_timeout`` bounds how long a collective may sit
    incomplete before the missing ranks are declared hung.
    """

    def __init__(
        self,
        n_ranks: int,
        *,
        collective_timeout: float = 120.0,
        start_method: str | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.collective_timeout = float(collective_timeout)
        self._ctx = _pick_context(start_method)

    # ------------------------------------------------------------------ run
    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        fault: FaultPlan | None = None,
    ) -> list[Any]:
        n = self.n_ranks
        fn_blob = pickle.dumps((fn, args))
        parent_conns: list[Connection] = []
        procs = []
        for rank in range(n):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_rank_main,
                args=(rank, n, child_conn, fn_blob, fault),
                name=f"cluster-rank-{rank}",
                # Non-daemonic: ranks spawn their own engine workers
                # (daemonic processes may not have children).  The finally
                # block below joins or terminates every rank.
                daemon=False,
            )
            parent_conns.append(parent_conn)
            procs.append(proc)
        for proc in procs:
            proc.start()
        try:
            return self._route(procs, parent_conns)
        finally:
            for conn in parent_conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            for proc in procs:
                proc.join(timeout=_JOIN_SECONDS)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=_JOIN_SECONDS)

    # ---------------------------------------------------------------- route
    def _route(self, procs: list, conns: list[Connection]) -> list[Any]:
        n = self.n_ranks
        status = {rank: "running" for rank in range(n)}
        results: dict[int, Any] = {}
        primary: BaseException | None = None
        # In-flight collective: rank -> (op, seq, body); completes when all
        # n ranks (every rank participates in every collective) have sent
        # a matching contribution.
        pending: dict[int, tuple[str, int, dict]] = {}
        pending_since: float | None = None

        def fail_all(exc: ClusterFailed) -> None:
            blob = _dump_exc(exc)
            for rank, conn in enumerate(conns):
                if status[rank] == "running":
                    try:
                        conn.send(("fail", blob))
                    except (BrokenPipeError, OSError):
                        pass

        def finish(exc: BaseException | None) -> list[Any]:
            # Give poisoned ranks a moment to acknowledge, then collect
            # final statuses without blocking on the hung/dead.  Each
            # pipe is drained fully -- a "poisoned" report may be queued
            # behind a stale collective contribution.
            deadline = time.monotonic() + _JOIN_SECONDS
            while exc is not None and time.monotonic() < deadline and any(
                s == "running" for s in status.values()
            ):
                for rank, conn in enumerate(conns):
                    while status[rank] == "running" and conn.poll():
                        self._consume_final(rank, conn, status, results)
                    if (
                        status[rank] == "running"
                        and procs[rank].exitcode is not None
                        and not conn.poll()
                    ):
                        status[rank] = "dead"
                time.sleep(_POLL_SECONDS / 5)
            if exc is not None:
                for rank in range(n):
                    if status[rank] == "running":
                        status[rank] = (
                            "dead" if procs[rank].exitcode is not None else "hung"
                        )
                exc.cluster_outcomes = dict(status)
                raise exc
            return [results[rank] for rank in range(n)]

        while len(results) < n:
            ready = _conn_wait(
                [conns[r] for r in range(n) if status[r] == "running"],
                timeout=_POLL_SECONDS,
            )
            for conn in ready:
                rank = conns.index(conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # The pipe hit EOF before the exitcode scan below saw
                    # the death; promote it to the primary failure here or
                    # the collective would sit until the straggler timeout.
                    status[rank] = "dead"
                    if primary is None:
                        primary = ClusterFailed(
                            f"rank {rank} died with exit code "
                            f"{procs[rank].exitcode} during a collective"
                        )
                    continue
                kind = msg[0]
                if kind == "coll":
                    _, op, seq, blob = msg
                    pending[rank] = (op, seq, pickle.loads(blob))
                    if pending_since is None:
                        pending_since = time.monotonic()
                elif kind == "done":
                    status[rank] = "done"
                    results[rank] = pickle.loads(msg[1])
                elif kind == "error":
                    status[rank] = "error"
                    if primary is None:
                        primary = _load_exc(msg[1])
                elif kind == "poisoned":
                    status[rank] = "poisoned"
                    if primary is None:
                        # A rank failed a collective on its own (e.g. an
                        # injected drop outside pipe transport); promote
                        # its report so the loop cannot spin forever.
                        primary = _load_exc(msg[1])

            # Rank death: a process that exited without reporting.
            for rank in range(n):
                if status[rank] == "running" and procs[rank].exitcode is not None:
                    if conns[rank].poll():
                        continue  # let its last message drain first
                    status[rank] = "dead"
                    if primary is None:
                        primary = ClusterFailed(
                            f"rank {rank} died with exit code "
                            f"{procs[rank].exitcode} during a collective"
                        )

            if primary is not None:
                poison = (
                    primary
                    if isinstance(primary, ClusterFailed)
                    else ClusterFailed(
                        f"cluster poisoned by rank failure: {primary!r}", primary
                    )
                )
                fail_all(poison)
                return finish(primary)

            # Complete a collective once every rank has contributed.
            if len(pending) == n:
                ops = {(op, seq) for op, seq, _ in pending.values()}
                if len(ops) != 1:
                    desync = ClusterFailed(
                        f"collective desync: ranks disagree on {sorted(ops)}"
                    )
                    fail_all(desync)
                    return finish(desync)
                op = next(iter(ops))[0]
                try:
                    replies = self._complete(op, pending)
                except Exception as exc:
                    bad = ClusterFailed(f"collective {op} failed: {exc!r}", exc)
                    fail_all(bad)
                    return finish(bad)
                for rank, reply in replies.items():
                    try:
                        conns[rank].send(("ok", pickle.dumps(reply)))
                    except (BrokenPipeError, OSError):
                        pass  # the death scan will pick this rank up
                pending.clear()
                pending_since = None
            elif pending and pending_since is not None:
                if time.monotonic() - pending_since > self.collective_timeout:
                    op = next(iter(pending.values()))[0]
                    missing = sorted(set(range(n)) - set(pending) - {
                        r for r, s in status.items() if s != "running"
                    })
                    timeout_exc = ClusterFailed(
                        f"collective {op} timed out after "
                        f"{self.collective_timeout:.1f}s waiting for ranks "
                        f"{missing or sorted(set(range(n)) - set(pending))}"
                    )
                    fail_all(timeout_exc)
                    return finish(timeout_exc)

        return finish(None)

    @staticmethod
    def _consume_final(
        rank: int, conn: Connection, status: dict, results: dict
    ) -> None:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            status[rank] = "dead"
            return
        kind = msg[0]
        if kind == "done":
            status[rank] = "done"
            results[rank] = pickle.loads(msg[1])
        elif kind == "poisoned":
            status[rank] = "poisoned"
        elif kind == "error":
            status[rank] = "error"
        # A late "coll" contribution after poisoning is simply dropped.

    @staticmethod
    def _complete(op: str, pending: dict[int, tuple[str, int, dict]]) -> dict[int, Any]:
        bodies = {rank: body for rank, (_, _, body) in pending.items()}
        ranks = sorted(bodies)
        if op == "gather":
            roots = {bodies[r]["root"] for r in ranks}
            if len(roots) != 1:
                raise ValueError(f"gather root mismatch: {sorted(roots)}")
            root = roots.pop()
            ordered = [bodies[r]["value"] for r in ranks]
            return {r: (ordered if r == root else None) for r in ranks}
        if op == "allreduce":
            ops = {bodies[r]["op"] for r in ranks}
            if len(ops) != 1:
                raise ValueError(f"allreduce op mismatch: {sorted(ops)}")
            reduced = _reduce([bodies[r]["value"] for r in ranks], ops.pop())
            return {r: reduced for r in ranks}
        if op == "bcast":
            roots = {bodies[r]["root"] for r in ranks}
            if len(roots) != 1:
                raise ValueError(f"bcast root mismatch: {sorted(roots)}")
            root = roots.pop()
            return {r: bodies[root]["value"] for r in ranks}
        raise ValueError(f"unknown collective {op!r}")


# ---------------------------------------------------------------------- MPI
def mpi_available() -> bool:
    """True if ``mpi4py`` can be imported (not shipped in the test image)."""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


class MPITransport(Transport):
    """``mpi4py`` adapter for real clusters; optional dependency.

    ``allreduce`` routes through ``allgather`` + a local elementwise
    reduce so min/max are elementwise over arrays (object-mode
    ``MPI.MIN`` would compare whole arrays), keeping the semantics
    identical to :class:`LocalClusterTransport`.
    """

    def __init__(self, comm: Any = None) -> None:
        try:
            from mpi4py import MPI
        except ImportError as exc:
            raise ClusterFailed(
                "MPITransport requires mpi4py, which is not installed; "
                "use LocalClusterTransport instead",
                exc,
            ) from exc
        self._MPI = MPI
        self._comm = comm if comm is not None else MPI.COMM_WORLD

    @property
    def rank(self) -> int:
        return int(self._comm.Get_rank())

    @property
    def size(self) -> int:
        return int(self._comm.Get_size())

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        try:
            return self._comm.gather(obj, root=root)
        except self._MPI.Exception as exc:  # pragma: no cover - needs MPI
            raise ClusterFailed(f"MPI gather failed: {exc!r}", exc) from exc

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        if op not in ALLREDUCE_OPS:
            raise ValueError(
                f"unknown allreduce op {op!r}; expected one of {ALLREDUCE_OPS}"
            )
        try:
            parts = self._comm.allgather(np.asarray(array))
        except self._MPI.Exception as exc:  # pragma: no cover - needs MPI
            raise ClusterFailed(f"MPI allreduce failed: {exc!r}", exc) from exc
        return _reduce(parts, op)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        try:
            return self._comm.bcast(obj, root=root)
        except self._MPI.Exception as exc:  # pragma: no cover - needs MPI
            raise ClusterFailed(f"MPI bcast failed: {exc!r}", exc) from exc
