"""Per-rank checkpoint layer for elastic cluster recovery.

WAH bitmaps are the *only* state a rank accumulates — small (the paper's
whole point), append-only per step, and sliceable per rank — so a rank's
entire progress fits in (a) the per-step index files it has already
built and (b) a tiny ``ckpt.json`` of accumulator state: the step ids
completed so far, each step's slab min/max (the rank's contribution to
the adaptive-binning allreduce), its per-bin histogram counts, and the
selection picked so far.  A replacement rank — or a survivor adopting
the dead rank's slab under the shrink policy — reloads this state and
replays only what is missing.

Every write is atomic: payloads and the manifest land in a temp file
first and are ``os.replace``d into place, so a crash mid-write is
indistinguishable from no write.  Loading is correspondingly defensive:
a truncated/corrupt manifest reads as "no checkpoint", and a manifest
entry whose payload file is missing or unreadable is simply dropped —
that step is rebuilt from the simulation instead.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.bitmap.index import BitmapIndex
from repro.bitmap.serialization import load_index, save_index

#: Checkpoint manifest file name, one per ``rank_XXXX/`` directory.
CKPT_NAME = "ckpt.json"
CKPT_FORMAT = 1


@dataclass(frozen=True)
class StepCheckpoint:
    """One completed step: where its index lives and what went into it."""

    step_id: int
    file: str  # relative to the rank directory
    n_elements: int
    vmin: float  # slab minimum (the rank's adaptive-binning contribution)
    vmax: float  # slab maximum
    bin_counts: list[int]  # streaming histogram of the step's index
    binning: str  # human-readable description, for diagnostics


@dataclass
class RankCheckpoint:
    """Everything a replacement rank needs to resume: accumulator state."""

    rank: int
    n_ranks: int
    flat_bounds: tuple[int, int]
    steps: list[StepCheckpoint] = field(default_factory=list)
    #: Selection-so-far: positions picked and their scores, updated after
    #: every closed interval of the distributed greedy loop.
    selected: list[int] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)

    @property
    def global_min(self) -> float:
        return min((s.vmin for s in self.steps), default=float("inf"))

    @property
    def global_max(self) -> float:
        return max((s.vmax for s in self.steps), default=float("-inf"))


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class CheckpointStore:
    """Atomic per-rank checkpoint directory (``rank_XXXX/`` under a root).

    The directory doubles as the rank's output store: step payloads are
    written to the exact ``step_XXXXX/payload.rbmp`` paths the output
    phase would use, so checkpointing never writes a selected step's
    bytes twice, and :func:`~repro.cluster.runtime.assemble_global_index`
    reads recovered stores unchanged.
    """

    def __init__(self, root: Path | str, rank: int) -> None:
        self.root = Path(root)
        self.rank = int(rank)
        self.rank_dir = self.root / f"rank_{self.rank:04d}"
        self._state: RankCheckpoint | None = None

    @property
    def manifest_path(self) -> Path:
        return self.rank_dir / CKPT_NAME

    def step_file(self, step_id: int) -> str:
        return f"step_{step_id:05d}/payload.rbmp"

    # -------------------------------------------------------------- writing
    def begin(self, n_ranks: int, flat_bounds: tuple[int, int]) -> None:
        """Start (or restart) recording for this incarnation of the rank."""
        self.rank_dir.mkdir(parents=True, exist_ok=True)
        self._state = RankCheckpoint(
            rank=self.rank, n_ranks=int(n_ranks),
            flat_bounds=(int(flat_bounds[0]), int(flat_bounds[1])),
        )
        self._flush()

    def record_step(
        self, step_id: int, index: BitmapIndex, vmin: float, vmax: float
    ) -> None:
        """Persist one step boundary: the index bytes, then the manifest.

        Ordering matters: the payload is renamed into place before the
        manifest names it, so the manifest never points at bytes that do
        not exist.  A crash between the two leaves an orphan payload the
        next incarnation will verify (and happily reuse) or rebuild.
        """
        assert self._state is not None, "begin() before record_step()"
        rel = self.step_file(step_id)
        path = self.rank_dir / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        save_index(tmp, index)
        os.replace(tmp, path)
        self._state.steps.append(
            StepCheckpoint(
                step_id=int(step_id),
                file=rel,
                n_elements=int(index.n_elements),
                vmin=float(vmin),
                vmax=float(vmax),
                bin_counts=[int(c) for c in index.bin_counts()],
                binning=repr(index.binning),
            )
        )
        self._flush()

    def record_selection(self, selected: list[int], scores: list[float]) -> None:
        """Persist the greedy selection's progress (selected-set-so-far)."""
        assert self._state is not None, "begin() before record_selection()"
        self._state.selected = [int(p) for p in selected]
        self._state.scores = [float(s) for s in scores]
        self._flush()

    def _flush(self) -> None:
        assert self._state is not None
        payload = {
            "format": CKPT_FORMAT,
            "rank": self._state.rank,
            "n_ranks": self._state.n_ranks,
            "flat_bounds": list(self._state.flat_bounds),
            "steps": [asdict(s) for s in self._state.steps],
            "selected": self._state.selected,
            "scores": self._state.scores,
        }
        _atomic_write_text(self.manifest_path, json.dumps(payload, indent=1) + "\n")

    # -------------------------------------------------------------- loading
    def load(self) -> RankCheckpoint | None:
        """Read the manifest; ``None`` on absence or any corruption."""
        try:
            payload = json.loads(self.manifest_path.read_text())
            if payload.get("format") != CKPT_FORMAT:
                return None
            state = RankCheckpoint(
                rank=int(payload["rank"]),
                n_ranks=int(payload["n_ranks"]),
                flat_bounds=(
                    int(payload["flat_bounds"][0]),
                    int(payload["flat_bounds"][1]),
                ),
                steps=[StepCheckpoint(**raw) for raw in payload["steps"]],
                selected=[int(p) for p in payload["selected"]],
                scores=[float(s) for s in payload["scores"]],
            )
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            return None
        return state

    def load_step_index(self, step: StepCheckpoint) -> BitmapIndex | None:
        """Load one checkpointed step's index; ``None`` if unusable."""
        path = self.rank_dir / step.file
        try:
            index = load_index(path)
        except (OSError, ValueError, EOFError):
            return None
        if index.n_elements != step.n_elements:
            return None
        return index

    def resume(
        self, n_ranks: int, flat_bounds: tuple[int, int]
    ) -> dict[int, tuple[StepCheckpoint, BitmapIndex]]:
        """Adopt a prior incarnation's state; returns usable steps by position.

        Only checkpoints recorded under the same decomposition are
        trusted (a different rank count or slab would poison exactness).
        Steps whose payloads are missing or unreadable are dropped —
        the caller rebuilds them.  After this call the store continues
        recording from the recovered state.
        """
        prior = self.load()
        usable: dict[int, tuple[StepCheckpoint, BitmapIndex]] = {}
        self.rank_dir.mkdir(parents=True, exist_ok=True)
        if (
            prior is None
            or prior.rank != self.rank
            or prior.n_ranks != int(n_ranks)
            or prior.flat_bounds != (int(flat_bounds[0]), int(flat_bounds[1]))
        ):
            self.begin(n_ranks, flat_bounds)
            return usable
        kept: list[StepCheckpoint] = []
        for pos, step in enumerate(prior.steps):
            index = self.load_step_index(step)
            if index is None:
                # A hole (pruned or torn file): this and later steps are
                # rebuilt.  Stopping at the first hole keeps `steps` a
                # contiguous prefix, which is what resume consumes.
                break
            usable[pos] = (step, index)
            kept.append(step)
        self._state = RankCheckpoint(
            rank=prior.rank,
            n_ranks=prior.n_ranks,
            flat_bounds=prior.flat_bounds,
            steps=kept,
            selected=prior.selected,
            scores=prior.scores,
        )
        self._flush()
        return usable

    # ------------------------------------------------------------ finalize
    def prune(self, keep_step_ids: list[int]) -> int:
        """Remove step directories not in ``keep_step_ids``; returns count.

        Run at the end of a successful run so the store converges to the
        selected-steps-only layout a fault-free run writes.  The
        manifest stays behind as recovery metadata — payload presence,
        not the manifest, is authoritative on resume.
        """
        keep = {f"step_{sid:05d}" for sid in keep_step_ids}
        removed = 0
        if not self.rank_dir.is_dir():
            return removed
        for child in sorted(self.rank_dir.iterdir()):
            if child.is_dir() and child.name.startswith("step_") and (
                child.name not in keep
            ):
                shutil.rmtree(child)
                removed += 1
        return removed
