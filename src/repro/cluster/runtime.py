"""Cluster runtime: per-rank in-situ pipelines over a slab decomposition.

Each rank advances its own simulation twin, slices out its axis-0 slab of
every time-step (C-order flattening makes slabs contiguous in the flat
payload), builds per-step bitmap indices with the single-node machinery --
serially or through the §2.3 process engines of
:mod:`repro.insitu.parallel` -- and joins the distributed selection merge
of :mod:`repro.cluster.merge`.  Selected steps land under
``rank_*/step_*/`` with a global ``cluster.json`` manifest;
:func:`assemble_global_index` splices the per-rank stores back into an
index word-identical to a single-node build, which is how the equivalence
suite (and ``repro cluster --verify``) checks the whole stack.

Collectives used per run: one ``allreduce`` per step in adaptive-binning
mode (global min/max), two per selection interval (packed counts + the
pick broadcast), one optional packed allreduce for info-volume
partitioning, and one final ``gather`` of rank reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bitmap.binning import Binning, PrecisionBinning
from repro.bitmap.builder import build_bitvectors, splice_bitvectors
from repro.bitmap.index import BitmapIndex
from repro.bitmap.serialization import load_index
from repro.cluster.checkpoint import CheckpointStore, StepCheckpoint
from repro.cluster.merge import distributed_select
from repro.cluster.transport import (
    ON_FAULT_POLICIES,
    ClusterFailed,
    FaultPlan,
    LocalClusterTransport,
    MPITransport,
    RecoveryEvent,
    RecoveryPolicy,
    Transport,
)
from repro.insitu.writer import OutputWriter
from repro.selection.greedy import Partitioning, SelectionResult
from repro.selection.metrics import get_metric
from repro.sims.base import Simulation

#: Name of the global manifest rank 0 writes at the store root.
MANIFEST_NAME = "cluster.json"
MANIFEST_FORMAT = 1


# ------------------------------------------------------------ decomposition
@dataclass(frozen=True)
class SlabDecomposition:
    """Axis-0 slabs of a grid, one per rank.

    Uses the same ``linspace`` bounds as
    :class:`~repro.sims.heat3d_mpi.DecomposedHeat3D`, so a cluster run
    over that workload sees exactly the slab its simulated rank owns.
    Because fields are C-ordered, rank ``r``'s slab is the contiguous
    flat range ``[row_lo * stride, row_hi * stride)``.
    """

    shape: tuple[int, ...]
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if not self.shape or self.shape[0] < self.n_ranks:
            raise ValueError(
                f"axis 0 of {self.shape} cannot host {self.n_ranks} non-empty slabs"
            )

    @property
    def _bounds(self) -> np.ndarray:
        return np.linspace(0, self.shape[0], self.n_ranks + 1).astype(int)

    @property
    def stride(self) -> int:
        """Flat elements per axis-0 row."""
        return int(np.prod(self.shape[1:], dtype=np.int64)) if len(self.shape) > 1 else 1

    def row_bounds(self, rank: int) -> tuple[int, int]:
        b = self._bounds
        return int(b[rank]), int(b[rank + 1])

    def flat_bounds(self, rank: int) -> tuple[int, int]:
        lo, hi = self.row_bounds(rank)
        return lo * self.stride, hi * self.stride


# -------------------------------------------------------------------- spec
@dataclass(frozen=True)
class ClusterSpec:
    """One cluster run, fully picklable (it ships to every rank).

    ``sim_factory`` must build a deterministic simulation: every rank
    constructs its own twin and extracts its slab, so any nondeterminism
    would silently break the ranks' agreement on the data.  ``binning=None``
    selects per-step adaptive precision binning with a global min/max
    allreduce, matching the serial pipeline's adaptive mode exactly.
    """

    sim_factory: Callable[[], Simulation]
    n_steps: int
    select_k: int
    metric: str = "conditional_entropy"
    binning: Binning | None = None
    adaptive_digits: int = 1
    partitioning: Partitioning = "fixed"
    out: str | None = None
    engine: str = "serial"  # serial | shared | separate
    workers_per_rank: int = 1
    chunk_elements: int = 1 << 20
    on_fault: str = "fail"  # fail | respawn | shrink
    max_recoveries: int = 4
    recovery_timeout: float = 60.0
    checkpoint: bool | None = None  # None = on iff recovering with a store

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if not 1 <= self.select_k <= self.n_steps:
            raise ValueError(
                f"select_k must be in [1, {self.n_steps}], got {self.select_k}"
            )
        if self.engine not in ("serial", "shared", "separate"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.workers_per_rank < 1:
            raise ValueError(
                f"workers_per_rank must be >= 1, got {self.workers_per_rank}"
            )
        if self.on_fault not in ON_FAULT_POLICIES:
            raise ValueError(
                f"unknown on_fault policy {self.on_fault!r}; "
                f"expected one of {ON_FAULT_POLICIES}"
            )
        if self.checkpoint and self.out is None:
            raise ValueError("checkpointing requires an output store (out=...)")

    @property
    def checkpoint_enabled(self) -> bool:
        """Checkpoint at step boundaries?  Defaults to on exactly when a
        recovery policy is active and there is a store to persist into;
        without a checkpoint a replacement rank still recovers exactly,
        it just rebuilds every step from the simulation."""
        if self.checkpoint is not None:
            return bool(self.checkpoint)
        return self.on_fault != "fail" and self.out is not None

    @property
    def recovery_policy(self) -> RecoveryPolicy:
        return RecoveryPolicy(
            on_fault=self.on_fault,
            max_recoveries=self.max_recoveries,
            recovery_timeout=self.recovery_timeout,
        )


@dataclass
class RankReport:
    """What one rank did: its slab, its selection view, its store files."""

    rank: int
    row_bounds: tuple[int, int]
    flat_bounds: tuple[int, int]
    selection: SelectionResult
    step_ids: list[int]
    files: list[str] = field(default_factory=list)
    nbytes: int = 0


@dataclass
class ClusterResult:
    """Parent-side outcome of :func:`run_cluster`."""

    selection: SelectionResult
    n_ranks: int
    reports: list[RankReport]
    out: Path | None = None
    #: Replacement attempts the coordinator made (empty on fault-free or
    #: ``fail``-policy runs); also persisted into ``cluster.json``.
    recovery: list[RecoveryEvent] = field(default_factory=list)

    @property
    def selected_steps(self) -> list[int]:
        """Simulation step ids of the selected time-steps."""
        report = self.reports[0]
        return [report.step_ids[pos] for pos in report.selection.selected]

    @property
    def manifest_path(self) -> Path | None:
        return self.out / MANIFEST_NAME if self.out is not None else None


# --------------------------------------------------------------- rank body
def _rank_payload(step_fields: dict, variable: str, lo: int, hi: int) -> np.ndarray:
    """The rank's slab of the canonical float64 flat payload."""
    flat = np.asarray(step_fields[variable], dtype=np.float64).ravel()
    return flat[lo:hi]


def _step_binning(
    transport: Transport, spec: ClusterSpec, vmin: float, vmax: float
) -> Binning:
    """The step's binning: fixed, or globally-reduced adaptive precision.

    The adaptive case allreduces ``[min, -max]`` under ``op='min'`` --
    the global minimum of rank minima and maximum of rank maxima are the
    exact floats ``PrecisionBinning.from_data`` would read off the
    undecomposed array, so every rank (and the serial reference) agrees
    on the step's binning bit-for-bit.  ``vmin``/``vmax`` are this rank's
    slab extremes -- computed from the slab, or replayed from a
    checkpoint for an already-built step (the allreduce must be issued
    either way: the collective schedule is lockstep).
    """
    if spec.binning is not None:
        return spec.binning
    extremes = transport.allreduce(
        np.array([vmin, -vmax], dtype=np.float64), op="min"
    )
    return PrecisionBinning(
        float(extremes[0]), float(-extremes[1]), digits=spec.adaptive_digits
    )


def run_rank(transport: Transport, spec: ClusterSpec) -> RankReport:
    """SPMD body executed by every rank (the per-rank `InSituPipeline`).

    When ``transport.resume`` is set (this body is a recovery
    replacement), the checkpointed prefix of steps is reloaded from the
    rank's store, the simulation is fast-forwarded past it with
    :meth:`~repro.sims.base.Simulation.skip`, and only the missing steps
    are rebuilt -- but every collective of the schedule is still issued,
    so the coordinator can replay completed ones from its log.
    """
    sim = spec.sim_factory()
    if len(sim.variable_names) != 1:
        raise ValueError(
            "the cluster runtime decomposes one spatial field; got variables "
            f"{sim.variable_names}"
        )
    variable = sim.variable_names[0]
    decomp = SlabDecomposition(tuple(sim.shape), transport.size)
    lo, hi = decomp.flat_bounds(transport.rank)

    ckpt: CheckpointStore | None = None
    recovered: dict[int, tuple[StepCheckpoint, BitmapIndex]] = {}
    if spec.checkpoint_enabled:
        ckpt = CheckpointStore(Path(spec.out), transport.rank)
        if getattr(transport, "resume", False):
            recovered = ckpt.resume(transport.size, (lo, hi))
            # Only a contiguous prefix is usable: the simulation can be
            # fast-forwarded exactly once, before the first rebuilt step.
            sim.skip(len(recovered))
        else:
            ckpt.begin(transport.size, (lo, hi))

    step_ids: list[int] = []
    indices: list[BitmapIndex] = []

    def _advance_slab() -> tuple[int, np.ndarray, float, float]:
        step = sim.advance()
        slab = _rank_payload(step.fields, variable, lo, hi)
        return step.step, slab, float(slab.min()), float(slab.max())

    if spec.engine == "separate":
        from repro.insitu.parallel import SeparateCoresEngine

        slab_nbytes = max((hi - lo) * 8, 1)
        engine = SeparateCoresEngine(
            spec.binning,
            n_workers=spec.workers_per_rank,
            slot_nbytes=slab_nbytes,
            adaptive_digits=spec.adaptive_digits,
            chunk_elements=spec.chunk_elements,
        )
        extremes: dict[int, tuple[float, float]] = {}
        try:
            for pos in range(spec.n_steps):
                if pos in recovered:
                    sc, _ = recovered[pos]
                    step_ids.append(sc.step_id)
                    _step_binning(transport, spec, sc.vmin, sc.vmax)
                    continue
                step_id, slab, vmin, vmax = _advance_slab()
                step_ids.append(step_id)
                extremes[step_id] = (vmin, vmax)
                binning = _step_binning(transport, spec, vmin, vmax)
                engine.submit(
                    step_id,
                    slab,
                    binning=binning if spec.binning is None else None,
                )
            results = engine.finish()
        finally:
            engine.close()
        indices = [
            recovered[pos][1] if pos in recovered else results[step_ids[pos]]
            for pos in range(spec.n_steps)
        ]
        if ckpt is not None:
            # The separate engine builds asynchronously; its step
            # boundary for checkpointing purposes is finish().
            for pos in range(spec.n_steps):
                if pos not in recovered:
                    vmin, vmax = extremes[step_ids[pos]]
                    ckpt.record_step(step_ids[pos], indices[pos], vmin, vmax)
    else:
        if spec.engine == "shared":
            from repro.insitu.parallel import SharedCoresEngine

            engine_cm = SharedCoresEngine(
                spec.workers_per_rank,
                spec.binning,
                chunk_elements=spec.chunk_elements,
            )
        else:
            engine_cm = None

        def _build(slab: np.ndarray, binning: Binning) -> BitmapIndex:
            if engine_cm is not None:
                return engine_cm.build_index(slab, binning=binning)
            vectors = build_bitvectors(
                slab, binning, chunk_elements=spec.chunk_elements
            )
            return BitmapIndex(binning, vectors, slab.size)

        if engine_cm is not None:
            engine_cm.__enter__()
        try:
            for pos in range(spec.n_steps):
                if pos in recovered:
                    sc, index = recovered[pos]
                    step_ids.append(sc.step_id)
                    indices.append(index)
                    _step_binning(transport, spec, sc.vmin, sc.vmax)
                    continue
                step_id, slab, vmin, vmax = _advance_slab()
                step_ids.append(step_id)
                binning = _step_binning(transport, spec, vmin, vmax)
                index = _build(slab, binning)
                indices.append(index)
                if ckpt is not None:
                    ckpt.record_step(step_id, index, vmin, vmax)
        finally:
            if engine_cm is not None:
                engine_cm.__exit__(None, None, None)

    selection = distributed_select(
        transport,
        indices,
        spec.select_k,
        spec.metric,
        partitioning=spec.partitioning,
        aligned=spec.binning is None,
        on_pick=ckpt.record_selection if ckpt is not None else None,
    )

    files: list[str] = []
    nbytes = 0
    if spec.out is not None:
        rank_dir = f"rank_{transport.rank:04d}"
        if ckpt is not None:
            # Every step is already persisted at its boundary; converge
            # the store to the selected-steps-only layout a fault-free
            # non-checkpointed run writes (save_index is deterministic,
            # so the surviving files are byte-identical).
            keep = [step_ids[pos] for pos in selection.selected]
            ckpt.prune(keep)
            for step_id in keep:
                rel = f"{rank_dir}/{ckpt.step_file(step_id)}"
                files.append(rel)
                nbytes += (Path(spec.out) / rel).stat().st_size
        else:
            writer = OutputWriter(Path(spec.out) / rank_dir)
            for pos in selection.selected:
                writer.write_bitmap_step(step_ids[pos], {"payload": indices[pos]})
                files.append(f"{rank_dir}/step_{step_ids[pos]:05d}/payload.rbmp")
            nbytes = writer.stats.bytes_written

    report = RankReport(
        rank=transport.rank,
        row_bounds=decomp.row_bounds(transport.rank),
        flat_bounds=(lo, hi),
        selection=selection,
        step_ids=step_ids,
        files=files,
        nbytes=nbytes,
    )
    summaries = transport.gather(
        {
            "rank": report.rank,
            "row_bounds": list(report.row_bounds),
            "flat_bounds": list(report.flat_bounds),
            "files": report.files,
            "nbytes": report.nbytes,
        }
    )
    if transport.rank == 0 and spec.out is not None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "n_ranks": transport.size,
            "shape": list(sim.shape),
            "variable": variable,
            "metric": selection.metric_name,
            "n_steps": spec.n_steps,
            "step_ids": step_ids,
            "selected_steps": [step_ids[pos] for pos in selection.selected],
            "scores": selection.scores,
            "ranks": summaries,
        }
        path = Path(spec.out) / MANIFEST_NAME
        path.write_text(json.dumps(manifest, indent=2) + "\n")
    return report


# ------------------------------------------------------------------ driver
def run_cluster(
    spec: ClusterSpec,
    n_ranks: int,
    *,
    transport: str = "local",
    collective_timeout: float = 120.0,
    fault: FaultPlan | tuple | list | None = None,
    start_method: str | None = None,
) -> ClusterResult:
    """Run the cluster pipeline; returns the (rank-agreed) selection.

    ``transport='local'`` spawns ``n_ranks`` real processes under a
    parent coordinator -- always available.  ``transport='mpi'`` assumes
    this process *is* one rank of an ``mpiexec`` launch and requires
    ``mpi4py``; ``n_ranks`` must then match the communicator size.
    ``spec.on_fault`` selects the recovery policy (local transport only):
    ``fail`` poisons the cluster on any rank fault, ``respawn``/``shrink``
    replace the failed rank and replay it from the checkpoint, producing
    the exact fault-free result.
    """
    recovery_events: list[RecoveryEvent] = []
    if transport == "local":
        cluster = LocalClusterTransport(
            n_ranks,
            collective_timeout=collective_timeout,
            start_method=start_method,
        )
        reports = cluster.run(
            run_rank, spec, fault=fault, recovery=spec.recovery_policy
        )
        recovery_events = list(cluster.recovery_events)
    elif transport == "mpi":
        if spec.on_fault != "fail":
            raise ClusterFailed(
                f"on_fault={spec.on_fault!r} recovery requires the local "
                "transport; the MPI adapter cannot replace ranks"
            )
        mpi = MPITransport()
        if mpi.size != n_ranks:
            raise ClusterFailed(
                f"MPI world size {mpi.size} != requested n_ranks {n_ranks}"
            )
        reports = [run_rank(mpi, spec)]
    else:
        raise ValueError(f"unknown transport {transport!r}; use 'local' or 'mpi'")
    if spec.out is not None and spec.on_fault != "fail":
        _amend_manifest_recovery(Path(spec.out), spec, recovery_events)
    return ClusterResult(
        selection=reports[0].selection,
        n_ranks=n_ranks,
        reports=reports,
        out=Path(spec.out) if spec.out is not None else None,
        recovery=recovery_events,
    )


def _amend_manifest_recovery(
    root: Path, spec: ClusterSpec, events: list[RecoveryEvent]
) -> None:
    """Record recovery counters/timings in ``cluster.json``.

    Only the coordinator knows the replacement history, and only after
    the ranks are done -- so the section is appended parent-side after
    rank 0 wrote the manifest.  ``fail``-policy manifests are never
    touched (byte-stable with pre-recovery runs).
    """
    path = root / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    manifest["recovery"] = {
        "on_fault": spec.on_fault,
        "max_recoveries": spec.max_recoveries,
        "checkpoint": spec.checkpoint_enabled,
        "n_recoveries": len(events),
        "total_recovery_s": round(sum(e.elapsed_s for e in events), 6),
        "events": [e.to_json() for e in events],
    }
    path.write_text(json.dumps(manifest, indent=2) + "\n")


# ------------------------------------------------------------ reassembly
def read_manifest(root: Path | str) -> dict[str, Any]:
    """Load and sanity-check the ``cluster.json`` manifest."""
    path = Path(root) / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"unsupported cluster manifest format {manifest.get('format')!r}"
        )
    return manifest


def assemble_global_index(root: Path | str, step_id: int) -> BitmapIndex:
    """Splice one selected step's per-rank stores into the global index.

    Loads every rank's ``rank_*/step_*/payload.rbmp``, verifies they
    agree on the binning, and splices each bin's bitvectors in rank order
    at the (generally ragged) slab boundaries.  The result is
    word-identical to indexing the undecomposed payload on one node --
    the property the differential suite asserts byte-for-byte.
    """
    root = Path(root)
    manifest = read_manifest(root)
    parts: list[BitmapIndex] = []
    for rank in range(int(manifest["n_ranks"])):
        path = root / f"rank_{rank:04d}" / f"step_{step_id:05d}" / "payload.rbmp"
        parts.append(load_index(path))
    n_bins = parts[0].n_bins
    if any(p.n_bins != n_bins for p in parts):
        raise ValueError("per-rank stores disagree on the binning")
    vectors = [
        splice_bitvectors([p.bitvectors[b] for p in parts]) for b in range(n_bins)
    ]
    n_elements = sum(p.n_elements for p in parts)
    return BitmapIndex(parts[0].binning, vectors, n_elements)
