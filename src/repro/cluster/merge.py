"""Distributed selection merge: exact greedy selection across ranks.

The correctness pivot of the cluster runtime.  Every bitmap selection
metric in this codebase reduces a candidate pair to an *integer count
vector* -- the joint AND histogram (conditional entropy), the two bin
popcount vectors (count EMD), or the per-bin XOR popcounts (spatial EMD)
-- and then applies a deterministic float formula.  Because those counts
are per-element sums and ranks hold **disjoint** slabs of the domain, the
elementwise sum over ranks of the per-rank counts equals the counts a
single node would compute over the undecomposed grid *exactly* (integer
arithmetic, no rounding).  Feeding the summed counts through the very
same float formulas therefore yields bit-identical scores, and running
the same first-max greedy loop on every rank yields the identical
selection -- the paper's "no accuracy loss" claim, preserved across a
domain decomposition.

One ``allreduce`` per interval (all candidates' count vectors packed into
a single flat ``int64`` array) plus one ``bcast`` of rank 0's pick keeps
the collective count at two per interval regardless of interval width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.bitmap.adaptive import align_indices
from repro.bitmap.index import BitmapIndex
from repro.cluster.transport import Transport
from repro.metrics.bitmap_metrics import joint_counts, spatial_bin_differences_bitmap
from repro.metrics.emd import emd_from_counts, emd_from_diffs
from repro.metrics.entropy import (
    conditional_entropy_from_joint,
    shannon_entropy_from_counts,
)
from repro.selection.greedy import Partitioning, SelectionResult, _partitions


@dataclass(frozen=True)
class MergeSpec:
    """How one metric splits into (summable counts, final formula).

    ``pair_counts(prev, cand)`` returns the per-rank integer count array
    whose elementwise sum over ranks equals the single-node counts;
    ``score(counts)`` is the float formula the serial metric applies to
    the same counts.
    """

    name: str
    pair_counts: Callable[[BitmapIndex, BitmapIndex], np.ndarray]
    score: Callable[[np.ndarray], float]


def _ce_counts(prev: BitmapIndex, cand: BitmapIndex) -> np.ndarray:
    # Mirrors _ce_bitmap: H(cand | prev) = f(joint_counts(cand, prev)).
    return joint_counts(cand, prev)


def _emd_count_counts(prev: BitmapIndex, cand: BitmapIndex) -> np.ndarray:
    return np.stack([prev.bin_counts(), cand.bin_counts()])


MERGE_SPECS: dict[str, MergeSpec] = {
    "conditional_entropy": MergeSpec(
        "conditional_entropy",
        _ce_counts,
        lambda j: conditional_entropy_from_joint(j),
    ),
    "emd_count": MergeSpec(
        "emd_count",
        _emd_count_counts,
        lambda c: emd_from_counts(c[0], c[1]),
    ),
    "emd_spatial": MergeSpec(
        "emd_spatial",
        lambda prev, cand: spatial_bin_differences_bitmap(prev, cand),
        lambda d: emd_from_diffs(d),
    ),
}


def merge_spec(metric_name: str) -> MergeSpec:
    """Look up the merge decomposition for a metric (``@adaptive`` aware)."""
    base = metric_name.removesuffix("@adaptive")
    try:
        return MERGE_SPECS[base]
    except KeyError:
        raise ValueError(
            f"metric {metric_name!r} has no distributed merge; "
            f"available: {sorted(MERGE_SPECS)}"
        )


def merge_query_counts(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Elementwise ``int64`` sum of per-slab count arrays -- exact.

    The query-serving analogue of this module's selection merge: ranks
    hold disjoint slabs of the element set, so summing their integer
    joint histograms (or predicate counts) reproduces the single-node
    counts with no rounding, and any metric formula applied to the sum
    is bit-identical to a serial evaluation.  Used by the sharded query
    path (:mod:`repro.service.shard`) to gather partial results.
    """
    if not parts:
        raise ValueError("no partial count arrays to merge")
    merged = np.zeros_like(np.asarray(parts[0], dtype=np.int64))
    for part in parts:
        arr = np.asarray(part, dtype=np.int64)
        if arr.shape != merged.shape:
            raise ValueError(
                f"partial count shapes differ: {arr.shape} vs {merged.shape}"
            )
        merged += arr
    return merged


def _global_importance(
    transport: Transport, indices: Sequence[BitmapIndex]
) -> np.ndarray:
    """Per-step Shannon entropy of the *global* value distribution.

    Per-step bin counts are summed across ranks in one packed allreduce
    (bin layouts are identical on every rank: same binning per step), so
    the entropies equal ``shannon_entropy_bitmap`` on the undecomposed
    index exactly.
    """
    counts = [idx.bin_counts().astype(np.int64) for idx in indices]
    lengths = [c.size for c in counts]
    packed = transport.allreduce(np.concatenate(counts), op="sum")
    importance = np.empty(len(indices), dtype=np.float64)
    offset = 0
    for i, length in enumerate(lengths):
        importance[i] = shannon_entropy_from_counts(packed[offset : offset + length])
        offset += length
    return importance


def distributed_select(
    transport: Transport,
    indices: Sequence[BitmapIndex],
    k: int,
    metric_name: str,
    *,
    partitioning: Partitioning = "fixed",
    aligned: bool = False,
    on_pick: Callable[[list[int], list[float]], None] | None = None,
) -> SelectionResult:
    """SPMD greedy selection, exact w.r.t. a single-node run.

    Every rank calls this with its slab's per-step indices (one per time
    step, same count and binnings on all ranks).  ``aligned=True`` pads
    each candidate pair onto its union precision binning first -- the
    adaptive-binning mode, matching
    :func:`~repro.bitmap.adaptive.aligned_metric`.  Returns the same
    :class:`~repro.selection.greedy.SelectionResult` on every rank.

    ``on_pick(selected, scores)`` is invoked after every closed interval
    with the selection-so-far; the cluster checkpoint layer uses it to
    persist selection progress at each pick boundary.
    """
    spec = merge_spec(metric_name)
    n = len(indices)
    importance = None
    if partitioning == "info_volume":
        importance = _global_importance(transport, indices)
    parts = _partitions(n, k, partitioning, importance)

    selected = [0]
    scores = [float("nan")]
    n_evaluations = 0
    prev = 0
    for interval in parts[1:]:
        pair_arrays: list[np.ndarray] = []
        for cand in interval:
            a, b = indices[prev], indices[cand]
            if aligned:
                a, b = align_indices(a, b)
            pair_arrays.append(np.asarray(spec.pair_counts(a, b), dtype=np.int64))
        shapes = [p.shape for p in pair_arrays]
        flat = (
            np.concatenate([p.ravel() for p in pair_arrays])
            if pair_arrays
            else np.empty(0, dtype=np.int64)
        )
        merged = transport.allreduce(flat, op="sum")
        if transport.rank == 0:
            # The serial greedy's exact first-max scan, on global counts.
            best_step = -1
            best_score = -np.inf
            offset = 0
            for cand, shape in zip(interval, shapes):
                size = int(np.prod(shape, dtype=np.int64)) if shape else 1
                counts = merged[offset : offset + size].reshape(shape)
                offset += size
                score = spec.score(counts)
                if score > best_score:
                    best_score = score
                    best_step = cand
            choice = (best_step, float(best_score))
        else:
            choice = None
        best_step, best_score = transport.bcast(choice, root=0)
        n_evaluations += len(interval)
        selected.append(best_step)
        scores.append(best_score)
        prev = best_step
        if on_pick is not None:
            on_pick(list(selected), list(scores))
    name = metric_name if metric_name.endswith("@adaptive") or not aligned else (
        f"{metric_name}@adaptive"
    )
    return SelectionResult(selected, scores, parts, name, n_evaluations)
