"""Cluster-scale in-situ runtime (Figure 13's regime, executed).

Transport-abstracted MPI-style layer: each rank runs a per-rank in-situ
pipeline over its slab of the domain decomposition, a distributed
selection merge keeps scores and selections exactly equal to a
single-node run, and per-rank stores plus a global manifest land in the
``rank_*/step_*/`` layout :class:`repro.service.Catalog` scans.  Elastic
recovery (checkpointed rank state + respawn/shrink replay) keeps runs
exact across rank faults; see :mod:`repro.cluster.checkpoint` and the
recovery notes in :mod:`repro.cluster.transport`.
"""

from repro.cluster.checkpoint import (
    CKPT_NAME,
    CheckpointStore,
    RankCheckpoint,
    StepCheckpoint,
)
from repro.cluster.merge import MergeSpec, distributed_select, merge_spec
from repro.cluster.runtime import (
    MANIFEST_NAME,
    ClusterResult,
    ClusterSpec,
    RankReport,
    SlabDecomposition,
    assemble_global_index,
    read_manifest,
    run_cluster,
    run_rank,
)
from repro.cluster.transport import (
    ALLREDUCE_OPS,
    ON_FAULT_POLICIES,
    ClusterFailed,
    FaultPlan,
    FaultyTransport,
    LocalClusterTransport,
    MPITransport,
    RecoveryEvent,
    RecoveryPolicy,
    Transport,
    mpi_available,
)

__all__ = [
    "ALLREDUCE_OPS",
    "CKPT_NAME",
    "CheckpointStore",
    "ClusterFailed",
    "ClusterResult",
    "ClusterSpec",
    "FaultPlan",
    "FaultyTransport",
    "LocalClusterTransport",
    "MANIFEST_NAME",
    "MPITransport",
    "MergeSpec",
    "ON_FAULT_POLICIES",
    "RankCheckpoint",
    "RankReport",
    "RecoveryEvent",
    "RecoveryPolicy",
    "SlabDecomposition",
    "StepCheckpoint",
    "Transport",
    "assemble_global_index",
    "distributed_select",
    "merge_spec",
    "mpi_available",
    "read_manifest",
    "run_cluster",
    "run_rank",
]
