"""In-situ pipeline (S16-S18): reduce, select, write; core allocation;
sampling baseline."""

from repro.insitu.allocation import (
    SeparateCores,
    SharedCores,
    enumerate_separate_allocations,
    equation_1_2_allocation,
    resolve_allocation,
)
from repro.insitu.parallel import (
    SeparateCoresEngine,
    SharedCoresEngine,
    group_aligned_partitions,
)
from repro.insitu.memory import (
    MemoryTracker,
    bitmap_resident_model,
    fulldata_resident_model,
)
from repro.insitu.multivariable_pipeline import MultiVariablePipeline, MultiVariableResult
from repro.insitu.pipeline import InSituPipeline, PipelineResult, default_payload
from repro.insitu.queue import BoundedDataQueue, QueueClosed, QueueStats
from repro.insitu.sampling import (
    Sampler,
    pairwise_conditional_entropy_errors,
    sampled_conditional_entropy,
    sampled_mutual_information,
    subset_mutual_information_errors,
)
from repro.insitu.variables import (
    MultiVariableIndexer,
    MultiVariableStep,
    combined_metric,
    select_timesteps_multivariable,
)
from repro.insitu.writer import OutputWriter, WriteStats

__all__ = [
    "SeparateCores",
    "SharedCores",
    "enumerate_separate_allocations",
    "equation_1_2_allocation",
    "resolve_allocation",
    "SeparateCoresEngine",
    "SharedCoresEngine",
    "group_aligned_partitions",
    "MemoryTracker",
    "bitmap_resident_model",
    "fulldata_resident_model",
    "MultiVariablePipeline",
    "MultiVariableResult",
    "InSituPipeline",
    "PipelineResult",
    "default_payload",
    "BoundedDataQueue",
    "QueueClosed",
    "QueueStats",
    "Sampler",
    "pairwise_conditional_entropy_errors",
    "sampled_conditional_entropy",
    "sampled_mutual_information",
    "subset_mutual_information_errors",
    "MultiVariableIndexer",
    "MultiVariableStep",
    "combined_metric",
    "select_timesteps_multivariable",
    "OutputWriter",
    "WriteStats",
]
