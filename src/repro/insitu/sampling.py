"""In-situ sampling: the data-reduction baseline of §5.5.

"One simple approach for data reduction is sampling -- i.e., simply
selecting a smaller number of output elements for further processing."

:class:`Sampler` draws a fraction of each step's elements (stride or
uniform-random positions, fixed across steps so samples stay
position-aligned for spatial metrics), and helpers run the same analyses
on samples so Figures 15-17 can quantify the induced accuracy loss:

* sampled histograms / entropy / conditional entropy / MI are computed
  with the *same* shared binning as the exact methods;
* :func:`sampling_conditional_entropy_error` etc. return the paper's
  original-vs-sample differences for CFP plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.bitmap.binning import Binning
from repro.metrics.entropy import conditional_entropy, mutual_information

SamplingMode = Literal["stride", "random"]


@dataclass(frozen=True)
class Sampler:
    """Draws a deterministic position subset covering ``fraction`` of data.

    The position set is a function of (n_elements, fraction, mode, seed)
    only, so every time-step is sampled at identical positions -- required
    for position-aligned comparisons and matching how an in-situ sampler
    with a fixed decimation pattern behaves.
    """

    fraction: float
    mode: SamplingMode = "stride"
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.mode not in ("stride", "random"):
            raise ValueError(f"unknown sampling mode {self.mode!r}")

    def positions(self, n_elements: int) -> np.ndarray:
        """Sampled positions, sorted ascending."""
        k = max(1, int(round(n_elements * self.fraction)))
        if self.mode == "stride":
            # Evenly spaced positions; exact count k.
            return np.linspace(0, n_elements - 1, k).astype(np.int64)
        rng = np.random.default_rng(self.seed)
        return np.sort(rng.choice(n_elements, size=k, replace=False))

    def sample(self, data: np.ndarray) -> np.ndarray:
        """Down-sample a (flattened) array."""
        flat = np.asarray(data).ravel()
        return flat[self.positions(flat.size)]

    def sample_bytes(self, n_elements: int, element_bytes: int = 8) -> int:
        """Bytes a sampled step occupies (values + 8-byte positions)."""
        k = self.positions(n_elements).size
        return k * (element_bytes + 8)


def sampled_conditional_entropy(
    a: np.ndarray, b: np.ndarray, binning: Binning, sampler: Sampler
) -> float:
    """H(A|B) computed on the aligned sample of both steps."""
    return conditional_entropy(sampler.sample(a), sampler.sample(b), binning, binning)


def sampled_mutual_information(
    a: np.ndarray,
    b: np.ndarray,
    binning_a: Binning,
    binning_b: Binning,
    sampler: Sampler,
) -> float:
    """MI computed on the aligned sample of two variables."""
    return mutual_information(
        sampler.sample(a), sampler.sample(b), binning_a, binning_b
    )


def pairwise_conditional_entropy_errors(
    steps: list[np.ndarray],
    binning: Binning,
    sampler: Sampler,
    *,
    max_pairs: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(original, sampled) H(A|B) for step pairs -- Figure 16's data.

    The paper computes "the conditional entropy values between each
    time-step pair"; ``max_pairs`` caps the quadratic blow-up for large N
    by taking the first pairs in lexicographic order.
    """
    originals: list[float] = []
    sampled: list[float] = []
    n = len(steps)
    done = 0
    for i in range(n):
        for j in range(i + 1, n):
            originals.append(conditional_entropy(steps[i], steps[j], binning, binning))
            sampled.append(
                sampled_conditional_entropy(steps[i], steps[j], binning, sampler)
            )
            done += 1
            if max_pairs is not None and done >= max_pairs:
                return np.asarray(originals), np.asarray(sampled)
    return np.asarray(originals), np.asarray(sampled)


def subset_mutual_information_errors(
    a: np.ndarray,
    b: np.ndarray,
    binning_a: Binning,
    binning_b: Binning,
    sampler: Sampler,
    *,
    n_subsets: int,
) -> tuple[np.ndarray, np.ndarray]:
    """(original, sampled) MI over contiguous spatial subsets -- Figure 17.

    The paper "divided the variables into 60 spatial and value subsets"
    and compared per-subset MI; we split positions into ``n_subsets``
    contiguous ranges (the spatial variant) and compute MI per range.
    """
    fa, fb = np.asarray(a).ravel(), np.asarray(b).ravel()
    if fa.size != fb.size:
        raise ValueError(f"arrays must align: {fa.size} != {fb.size}")
    bounds = np.linspace(0, fa.size, n_subsets + 1).astype(np.int64)
    originals: list[float] = []
    sampled: list[float] = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        originals.append(mutual_information(fa[lo:hi], fb[lo:hi], binning_a, binning_b))
        sampled.append(
            sampled_mutual_information(
                fa[lo:hi], fb[lo:hi], binning_a, binning_b, sampler
            )
        )
    return np.asarray(originals), np.asarray(sampled)
