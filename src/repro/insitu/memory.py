"""Memory accounting for in-situ pipelines (Figure 11).

The paper's memory comparison enumerates exactly which objects stay
resident under each method (§5.1):

* *full data*: 1 previously-selected time-step + 1 intermediate time-step
  (simulation-internal) + the window of current time-steps (10 in Fig. 11);
* *bitmaps*: 1 intermediate time-step + 1 current time-step (needed to
  simulate the next) + 1 previously-selected bitmap + the window of
  current bitmaps.

:class:`MemoryTracker` tracks named categories of resident bytes and the
high-water mark, so the pipeline can report the same breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryTracker:
    """Byte accounting by category with peak tracking."""

    categories: dict[str, int] = field(default_factory=dict)
    peak_bytes: int = 0
    peak_snapshot: dict[str, int] = field(default_factory=dict)

    def set(self, category: str, n_bytes: int) -> None:
        """Set a category's resident bytes (replaces the previous value)."""
        if n_bytes < 0:
            raise ValueError(f"negative resident size for {category!r}: {n_bytes}")
        if n_bytes == 0:
            self.categories.pop(category, None)
        else:
            self.categories[category] = n_bytes
        self._update_peak()

    def add(self, category: str, n_bytes: int) -> None:
        """Grow a category (e.g. one more bitmap in the window)."""
        self.set(category, self.categories.get(category, 0) + n_bytes)

    def release(self, category: str) -> int:
        """Drop a category entirely; returns the bytes freed."""
        freed = self.categories.pop(category, 0)
        return freed

    @property
    def current_bytes(self) -> int:
        return sum(self.categories.values())

    def _update_peak(self) -> None:
        cur = self.current_bytes
        if cur > self.peak_bytes:
            self.peak_bytes = cur
            self.peak_snapshot = dict(self.categories)

    def report(self) -> str:
        lines = [f"peak resident: {self.peak_bytes / 2**20:.2f} MiB"]
        for name, size in sorted(self.peak_snapshot.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:30s} {size / 2**20:10.2f} MiB")
        return "\n".join(lines)


def fulldata_resident_model(
    step_bytes: int, window: int, intermediate_bytes: int, substrate_bytes: int = 0
) -> int:
    """Closed-form Figure 11 resident-set model for the full-data method."""
    selected_prev = step_bytes
    current_window = window * step_bytes
    return selected_prev + intermediate_bytes + current_window + substrate_bytes


def bitmap_resident_model(
    step_bytes: int,
    bitmap_bytes: int,
    window: int,
    intermediate_bytes: int,
    substrate_bytes: int = 0,
) -> int:
    """Closed-form Figure 11 resident-set model for the bitmaps method."""
    current_step = step_bytes  # needed to simulate the next step
    selected_prev_bitmap = bitmap_bytes
    current_window = window * bitmap_bytes
    return (
        current_step
        + intermediate_bytes
        + selected_prev_bitmap
        + current_window
        + substrate_bytes
    )
