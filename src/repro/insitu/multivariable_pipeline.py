"""End-to-end multi-variable in-situ driver.

Ties together the per-variable pieces (`repro.insitu.variables`), the
greedy selector, and the :class:`~repro.io.timeseries.BitmapStore` into
one runner: simulate -> per-variable reduce -> select (weighted combined
metric) -> persist selected steps' indices per variable.

This is the faithful shape of the paper's Lulesh experiment: "there are a
total of 12 data arrays for each time-step, and we support in-situ
analysis based on all of them" -- with each array on its own binning and
each selected step stored as 12 ``.rbmp`` files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.insitu.memory import MemoryTracker
from repro.insitu.variables import (
    MultiVariableIndexer,
    MultiVariableStep,
    select_timesteps_multivariable,
)
from repro.io.timeseries import BitmapStore
from repro.selection.greedy import SelectionResult
from repro.selection.metrics import SelectionMetric
from repro.sims.base import Simulation
from repro.util.timing import TimeBreakdown


@dataclass
class MultiVariableResult:
    """Outcome of a multi-variable in-situ run."""

    selection: SelectionResult
    timings: TimeBreakdown
    memory: MemoryTracker
    bytes_stored: int
    per_variable_bytes: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        phases = ", ".join(
            f"{k}={v:.3f}s" for k, v in sorted(self.timings.phases.items())
        )
        return (
            f"[multivariable] {phases}; selected={self.selection.selected}; "
            f"stored={self.bytes_stored / 2**20:.2f} MiB"
        )


class MultiVariablePipeline:
    """Simulate, reduce per variable, select, persist to a BitmapStore."""

    def __init__(
        self,
        simulation: Simulation,
        indexer: MultiVariableIndexer,
        metric: SelectionMetric,
        *,
        store: BitmapStore | None = None,
        weights: Mapping[str, float] | None = None,
    ) -> None:
        self.simulation = simulation
        self.indexer = indexer
        self.metric = metric
        self.store = store
        self.weights = weights

    def run(self, n_steps: int, select_k: int) -> MultiVariableResult:
        timings = TimeBreakdown()
        memory = MemoryTracker()
        memory.set("simulation_substrate", max(self.simulation.substrate_nbytes, 1))

        reduced: list[MultiVariableStep] = []
        for _ in range(n_steps):
            with timings.timed("simulate"):
                step = self.simulation.advance()
            memory.set("current_step_raw", step.nbytes)
            with timings.timed("reduce_bitmap"):
                mv = self.indexer.reduce(step)
            reduced.append(mv)
            memory.add("retained_window", mv.nbytes)
        memory.release("current_step_raw")

        with timings.timed("select"):
            selection = select_timesteps_multivariable(
                reduced, select_k, self.metric, weights=self.weights
            )

        bytes_stored = 0
        per_variable: dict[str, int] = {}
        if self.store is not None:
            with timings.timed("output"):
                before = self.store.total_bytes()
                for pos in selection.selected:
                    mv = reduced[pos]
                    for name, index in mv.indices.items():
                        self.store.write(mv.step, name, index)
                self.store.set_attr("metric", selection.metric_name)
                self.store.set_attr(
                    "selection", ",".join(str(s) for s in selection.selected)
                )
                bytes_stored = self.store.total_bytes() - before
                for name in self.indexer.binnings:
                    per_variable[name] = sum(
                        reduced[pos].indices[name].nbytes
                        for pos in selection.selected
                    )
        return MultiVariableResult(
            selection, timings, memory, bytes_stored, per_variable
        )
