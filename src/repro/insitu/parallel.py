"""Process-parallel bitmap generation: §2.3's two strategies, for real.

The threaded runner (:meth:`~repro.insitu.pipeline.InSituPipeline.run_threaded`)
exercises the *semantics* of Separate Cores but the GIL serialises the
Python halves of bitmap construction, so it cannot deliver the paper's
Figure 7-12 wall-clock speedups.  This module runs both core-allocation
strategies on **processes**, with payload arrays crossing the process
boundary zero-copy through ``multiprocessing.shared_memory``:

* :class:`SharedCoresEngine` -- all cores alternate phases.  Each
  time-step's payload is written once into a shared-memory slab,
  spatially partitioned into 31-bit-aligned sub-blocks
  (:func:`group_aligned_partitions`, the same contiguous-tiling
  convention as :mod:`repro.selection.partitioning`), built per worker
  with :func:`~repro.bitmap.builder.build_bitvectors` on a zero-copy
  slice view, shipped back as raw WAH word buffers (``bytes``, not
  pickled objects), and stitched with
  :func:`~repro.bitmap.builder.concatenate_bitvectors` -- word-identical
  to a serial build, including partition boundaries that are not
  multiples of 31 (only the *last* block may be ragged).

* :class:`SeparateCoresEngine` -- a persistent encoder pool drains a
  bounded ring of shared-memory payload *slots* while the simulation
  advances in the parent.  The ring carries the
  :class:`~repro.insitu.queue.BoundedDataQueue` backpressure contract
  across processes: ``submit`` blocks while every slot is in flight, and
  a worker failure poisons the ring so the producer raises
  :class:`~repro.insitu.queue.QueueFailed` instead of deadlocking
  (mirroring the threaded runner's ``fail()`` semantics).  The worker
  count comes from the paper's Equations 1-2 split
  (:func:`~repro.insitu.allocation.equation_1_2_allocation`).

Both engines keep their pools and slabs alive across steps -- process
start-up and slab allocation are paid once per run, not per time-step.
Results always travel as ``(n_bits, [bytes])`` buffers; exceptions travel
pickled (with a ``repr`` fallback for unpicklable ones).
"""

from __future__ import annotations

import pickle
import queue as _queue_mod
import threading
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Iterable

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.builder import (
    bitvectors_to_buffers,
    build_bitvectors,
    stitch_buffer_parts,
)
from repro.bitmap.index import BitmapIndex
from repro.bitmap.wah import WAHBitVector
from repro.insitu.queue import QueueClosed, QueueFailed, QueueStats
from repro.selection.partitioning import validate_partitions
from repro.util.bits import GROUP_BITS

#: Seconds between liveness checks while blocked on a cross-process queue.
_POLL_SECONDS = 0.05
#: Seconds to wait for worker shutdown before terminating the pool.
_JOIN_SECONDS = 10.0


# --------------------------------------------------------------- partitioning
def group_aligned_partitions(n_elements: int, n_parts: int) -> list[range]:
    """Contiguous sub-blocks of ``range(n_elements)``, 31-bit aligned.

    Every block except the last covers a multiple of :data:`GROUP_BITS`
    elements (the precondition of
    :func:`~repro.bitmap.builder.concatenate_bitvectors`); only the final
    block may be ragged.  ``n_parts`` is clamped so no block is empty.
    The result tiles the index space exactly
    (:func:`~repro.selection.partitioning.validate_partitions`).
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_elements <= 0:
        return [range(0, 0)]
    parts = max(1, min(n_parts, n_elements // GROUP_BITS))
    per = -(-n_elements // parts)
    per += (-per) % GROUP_BITS  # round up to a multiple of 31
    bounds = list(range(0, n_elements, per))
    intervals = [
        range(lo, min(lo + per, n_elements)) for lo in bounds
    ]
    validate_partitions(intervals, n_elements)
    return intervals


# ----------------------------------------------------------- message plumbing
def _dump_exc(exc: BaseException) -> bytes:
    """Pickle an exception; degrade to a ``RuntimeError`` description."""
    try:
        return pickle.dumps(exc)
    except Exception:
        return pickle.dumps(RuntimeError(f"worker failed: {exc!r}"))


def _load_exc(blob: bytes) -> BaseException:
    try:
        return pickle.loads(blob)
    except Exception as exc:  # pragma: no cover - defensive
        return RuntimeError(f"worker failed (undecodable exception: {exc!r})")


@dataclass(frozen=True)
class _BuildSpec:
    """Everything a worker needs to build one (sub-)payload, picklable."""

    binning: Binning | None
    adaptive_digits: int = 1
    chunk_elements: int = 1 << 20

    def resolve_binning(self, data: np.ndarray) -> Binning:
        if self.binning is not None:
            return self.binning
        from repro.bitmap.adaptive import AdaptivePrecisionIndexer

        return AdaptivePrecisionIndexer(digits=self.adaptive_digits).binning_for(data)


class _AttachmentCache:
    """Per-process cache of shared-memory attachments, keyed by name."""

    def __init__(self) -> None:
        self._segments: dict[str, SharedMemory] = {}

    def view(self, name: str, dtype: str, start: int, stop: int) -> np.ndarray:
        shm = self._segments.get(name)
        if shm is None:
            # Python <= 3.12 registers *attached* segments with the
            # resource tracker too (gh-82300); the parent owns and
            # unlinks every slab, so a worker's claim only makes the
            # tracker warn about "leaked" segments at shutdown.  Attach
            # with registration suppressed.
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            try:
                resource_tracker.register = lambda name, rtype: (
                    None if rtype == "shared_memory" else original(name, rtype)
                )
                shm = SharedMemory(name=name)
            finally:
                resource_tracker.register = original
            self._segments[name] = shm
        return np.ndarray(
            (stop - start,),
            dtype=np.dtype(dtype),
            buffer=shm.buf,
            offset=start * np.dtype(dtype).itemsize,
        )

    def close(self) -> None:
        for shm in self._segments.values():
            shm.close()
        self._segments.clear()


def _shared_cores_worker(spec_blob: bytes, task_q, result_q) -> None:
    """Shared Cores worker loop: build one sub-block per task."""
    spec: _BuildSpec = pickle.loads(spec_blob)
    attachments = _AttachmentCache()
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            seq, block_id, shm_name, dtype, lo, hi, binning_blob = task
            try:
                data = attachments.view(shm_name, dtype, lo, hi)
                binning = (
                    pickle.loads(binning_blob)
                    if binning_blob is not None
                    else spec.binning
                )
                vectors = build_bitvectors(
                    data, binning, chunk_elements=spec.chunk_elements
                )
                result_q.put(
                    (seq, block_id, None, bitvectors_to_buffers(vectors))
                )
            except BaseException as exc:
                result_q.put((seq, block_id, _dump_exc(exc), None))
    finally:
        attachments.close()


def _separate_cores_worker(spec_blob: bytes, task_q, result_q, free_q) -> None:
    """Separate Cores worker loop: build whole steps, release slots.

    Mirrors the threaded worker of ``run_threaded``: on failure it ships
    the exception and *dies*; the parent's ring poisons itself so the
    producer raises instead of deadlocking.
    """
    spec: _BuildSpec = pickle.loads(spec_blob)
    attachments = _AttachmentCache()
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            slot_id, step_id, shm_name, dtype, n_elements, binning_blob = task
            try:
                data = attachments.view(shm_name, dtype, 0, n_elements)
                binning = (
                    pickle.loads(binning_blob)
                    if binning_blob is not None
                    else spec.resolve_binning(data)
                )
                vectors = build_bitvectors(
                    data, binning, chunk_elements=spec.chunk_elements
                )
                # Buffers are copied out of shared memory by tobytes(), so
                # the slot can be recycled before the result is consumed.
                payload = (
                    pickle.dumps(binning) if spec.binning is None else None,
                    bitvectors_to_buffers(vectors),
                )
            except BaseException as exc:
                free_q.put(slot_id)
                result_q.put(("err", step_id, _dump_exc(exc)))
                return
            free_q.put(slot_id)
            result_q.put(("ok", step_id, payload))
    finally:
        attachments.close()


def _pick_context(start_method: str | None):
    if start_method is not None:
        return get_context(start_method)
    import multiprocessing as mp

    return get_context(
        "fork" if "fork" in mp.get_all_start_methods() else None
    )


class _Slab:
    """One growable shared-memory segment owned by the parent."""

    def __init__(self) -> None:
        self._shm: SharedMemory | None = None

    @property
    def nbytes(self) -> int:
        return self._shm.size if self._shm is not None else 0

    def ensure(self, nbytes: int) -> SharedMemory:
        """Return a segment of at least ``nbytes`` (growing by recreate)."""
        nbytes = max(1, int(nbytes))
        if self._shm is None or self._shm.size < nbytes:
            if self._shm is not None:
                self._shm.close()
                self._shm.unlink()
            self._shm = SharedMemory(create=True, size=nbytes)
        return self._shm

    def write(self, flat: np.ndarray) -> str:
        """Copy a 1-D array into the slab; returns the segment name."""
        shm = self.ensure(flat.nbytes)
        view = np.ndarray(flat.shape, dtype=flat.dtype, buffer=shm.buf)
        view[:] = flat
        return shm.name

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


def _reap(processes: Iterable, label: str) -> None:
    """Check pool liveness; raise if any worker died without reporting."""
    for proc in processes:
        if proc.exitcode is not None and proc.exitcode != 0:
            raise RuntimeError(
                f"{label} worker {proc.name} died with exit code {proc.exitcode}"
            )


# ------------------------------------------------------------- Shared Cores
class SharedCoresEngine:
    """Spatially partitioned per-step builds on a persistent process pool.

    One time-step at a time: the payload lands in a shared slab, each
    worker builds its 31-aligned sub-block zero-copy, and the parent
    stitches the word buffers.  Pass ``binning=None`` to supply a
    per-step binning at :meth:`build_bitvectors` time (the adaptive
    pipeline does; the parent derives the binning, workers receive it
    pickled per task).
    """

    def __init__(
        self,
        n_workers: int,
        binning: Binning | None = None,
        *,
        chunk_elements: int = 1 << 20,
        start_method: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.binning = binning
        self._spec = _BuildSpec(binning, chunk_elements=chunk_elements)
        ctx = _pick_context(start_method)
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._slab = _Slab()
        self._seq = 0
        self._closed = False
        spec_blob = pickle.dumps(self._spec)
        self._procs = [
            ctx.Process(
                target=_shared_cores_worker,
                args=(spec_blob, self._task_q, self._result_q),
                name=f"shared-cores-{i}",
                daemon=True,
            )
            for i in range(self.n_workers)
        ]
        for proc in self._procs:
            proc.start()

    # ------------------------------------------------------------- building
    def build_bitvectors(
        self, payload: np.ndarray, *, binning: Binning | None = None
    ) -> list[WAHBitVector]:
        """Build one step's bitvectors, bit-identical to a serial build."""
        if self._closed:
            raise RuntimeError("engine already closed")
        binning = binning or self.binning
        if binning is None:
            raise ValueError("no binning: pass one here or at construction")
        flat = np.ascontiguousarray(np.asarray(payload).ravel())
        if flat.size < GROUP_BITS * 2 or self.n_workers == 1:
            # Too small to split (or nothing to gain): build in-process.
            return build_bitvectors(
                flat, binning, chunk_elements=self._spec.chunk_elements
            )
        blocks = group_aligned_partitions(flat.size, self.n_workers)
        shm_name = self._slab.write(flat)
        self._seq += 1
        binning_blob = (
            pickle.dumps(binning) if self._spec.binning is None else None
        )
        for block_id, block in enumerate(blocks):
            self._task_q.put(
                (
                    self._seq,
                    block_id,
                    shm_name,
                    flat.dtype.str,
                    block.start,
                    block.stop,
                    binning_blob,
                )
            )
        parts: dict[int, tuple[int, list[bytes]]] = {}
        failure: BaseException | None = None
        while len(parts) < len(blocks):
            try:
                seq, block_id, exc_blob, buffers = self._result_q.get(
                    timeout=_POLL_SECONDS
                )
            except _queue_mod.Empty:
                _reap(self._procs, "shared-cores")
                continue
            if seq != self._seq:  # stale result from an abandoned step
                continue
            if exc_blob is not None:
                failure = failure or _load_exc(exc_blob)
                parts[block_id] = (0, [])  # placeholder to finish the drain
            else:
                parts[block_id] = buffers
        if failure is not None:
            raise failure
        return stitch_buffer_parts([parts[b] for b in range(len(blocks))])

    def build_index(
        self, payload: np.ndarray, *, binning: Binning | None = None
    ) -> BitmapIndex:
        binning = binning or self.binning
        flat = np.asarray(payload).ravel()
        vectors = self.build_bitvectors(flat, binning=binning)
        return BitmapIndex(binning, vectors, flat.size)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue gone
                break
        for proc in self._procs:
            proc.join(timeout=_JOIN_SECONDS)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=_JOIN_SECONDS)
        for q in (self._task_q, self._result_q):
            q.close()
            q.join_thread()
        self._slab.close()

    def __enter__(self) -> "SharedCoresEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def build_bitvectors_processes(
    data: np.ndarray,
    binning: Binning,
    *,
    n_workers: int,
    chunk_elements: int = 1 << 20,
) -> list[WAHBitVector]:
    """One-shot process-parallel build (pays pool start-up per call).

    :func:`repro.bitmap.builder.build_bitvectors_parallel` with
    ``executor='processes'`` lands here; hold a
    :class:`SharedCoresEngine` open instead when building many steps.
    """
    with SharedCoresEngine(
        n_workers, binning, chunk_elements=chunk_elements
    ) as engine:
        return engine.build_bitvectors(data)


# ----------------------------------------------------------- Separate Cores
class SeparateCoresEngine:
    """Bounded shared-memory ring between the simulation and encoder pool.

    The parent (simulation) calls :meth:`submit` per step: it blocks while
    all ``n_slots`` payload slots are in flight -- the paper's
    memory-capacity backpressure -- and raises
    :class:`~repro.insitu.queue.QueueFailed` (even mid-block) once a
    worker has died, exactly like
    :meth:`~repro.insitu.queue.BoundedDataQueue.put` after ``fail()``.
    :meth:`finish` drains the pool and returns every step's
    :class:`~repro.bitmap.index.BitmapIndex`, or re-raises the first
    worker exception.

    ``QueueStats`` meanings here: ``puts``/``gets`` count submitted and
    encoded steps, ``producer_blocks`` counts submits that had to wait
    for a free slot, and ``max_depth`` is the peak number of steps
    submitted but not yet collected -- it can transiently exceed
    ``n_slots`` because a worker frees its slot before the parent's
    collector drains the result.  (``consumer_blocks`` is not observable
    across the process boundary and stays 0.)
    """

    def __init__(
        self,
        binning: Binning | None,
        *,
        n_workers: int,
        slot_nbytes: int,
        n_slots: int | None = None,
        adaptive_digits: int = 1,
        chunk_elements: int = 1 << 20,
        start_method: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if slot_nbytes <= 0:
            raise ValueError(f"slot_nbytes must be > 0, got {slot_nbytes}")
        self.n_workers = int(n_workers)
        self.n_slots = int(n_slots) if n_slots is not None else n_workers + 1
        if self.n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        self._spec = _BuildSpec(
            binning, adaptive_digits=adaptive_digits, chunk_elements=chunk_elements
        )
        self.stats = QueueStats()
        ctx = _pick_context(start_method)
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._free_q = ctx.Queue()
        self._slots = [_Slab() for _ in range(self.n_slots)]
        for i, slab in enumerate(self._slots):
            slab.ensure(slot_nbytes)
            self._free_q.put(i)
        self._results: dict[int, tuple[bytes | None, tuple[int, list[bytes]]]] = {}
        self._lock = threading.Lock()
        self._failure: BaseException | None = None
        self._in_flight = 0
        self._closed = False
        self._finished = False
        spec_blob = pickle.dumps(self._spec)
        self._procs = [
            ctx.Process(
                target=_separate_cores_worker,
                args=(spec_blob, self._task_q, self._result_q, self._free_q),
                name=f"separate-cores-{i}",
                daemon=True,
            )
            for i in range(self.n_workers)
        ]
        for proc in self._procs:
            proc.start()
        # Results are drained continuously so workers never block on a
        # full result pipe and in-flight accounting stays current.
        self._collector = threading.Thread(
            target=self._drain, name="separate-cores-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------ collector
    def _drain(self) -> None:
        while True:
            msg = self._result_q.get()
            if msg is None:
                return
            kind, step_id, payload = msg
            with self._lock:
                self._in_flight -= 1
                if kind == "ok":
                    self._results[step_id] = payload
                    self.stats.gets += 1
                elif self._failure is None:
                    self._failure = _load_exc(payload)

    def _check_failed(self, message: str) -> None:
        with self._lock:
            if self._failure is not None:
                raise QueueFailed(
                    f"{message}: {self._failure!r}", self._failure
                ) from self._failure

    # -------------------------------------------------------------- producer
    def submit(
        self,
        step_id: int,
        payload: np.ndarray,
        *,
        binning: Binning | None = None,
    ) -> None:
        """Ship one step's payload to the encoder pool (blocking).

        Blocks while every slot is in flight; raises
        :class:`~repro.insitu.queue.QueueFailed` once the pool is
        poisoned, and :class:`~repro.insitu.queue.QueueClosed` after
        :meth:`finish`.  ``binning`` overrides the engine's binning for
        this one step -- the cluster runtime uses it to hand every rank
        the same globally-reduced adaptive binning.
        """
        if self._finished or self._closed:
            raise QueueClosed("engine already finished")
        self._check_failed("encoder pool failed before submit")
        flat = np.ascontiguousarray(np.asarray(payload).ravel())
        try:
            # Like BoundedDataQueue, a put that has to wait *at all*
            # counts as a producer block.
            slot_id = self._free_q.get_nowait()
        except _queue_mod.Empty:
            self.stats.producer_blocks += 1
            while True:
                self._check_failed("encoder pool failed while blocked on submit")
                _reap(self._procs, "separate-cores")
                try:
                    slot_id = self._free_q.get(timeout=_POLL_SECONDS)
                    break
                except _queue_mod.Empty:
                    continue
        shm = self._slots[slot_id].ensure(flat.nbytes)
        view = np.ndarray(flat.shape, dtype=flat.dtype, buffer=shm.buf)
        view[:] = flat
        with self._lock:
            self._in_flight += 1
            self.stats.max_depth = max(self.stats.max_depth, self._in_flight)
        self._task_q.put(
            (
                slot_id,
                int(step_id),
                shm.name,
                flat.dtype.str,
                flat.size,
                pickle.dumps(binning) if binning is not None else None,
            )
        )
        self.stats.puts += 1

    @property
    def resident_bytes(self) -> int:
        """Bytes of payload currently parked in in-flight slots."""
        with self._lock:
            depth = self._in_flight
        return depth * max((s.nbytes for s in self._slots), default=0)

    # -------------------------------------------------------------- results
    def finish(self) -> dict[int, BitmapIndex]:
        """Close the ring, drain the pool, and return step -> index.

        Re-raises the first worker exception (original type and args)
        after the pool has drained, mirroring ``run_threaded``.
        """
        if self._finished:
            raise RuntimeError("finish() already called")
        self._finished = True
        for _ in self._procs:
            self._task_q.put(None)
        deadline_misses = 0
        for proc in self._procs:
            proc.join(timeout=_JOIN_SECONDS)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=_JOIN_SECONDS)
                deadline_misses += 1
        self._result_q.put(None)  # parent's sentinel lands after worker output
        self._collector.join(timeout=_JOIN_SECONDS)
        if self._failure is not None:
            raise self._failure
        if deadline_misses:  # pragma: no cover - stuck worker
            raise RuntimeError(
                f"{deadline_misses} encoder workers had to be terminated"
            )
        indices: dict[int, BitmapIndex] = {}
        for step_id, (binning_blob, (n_bits, buffers)) in self._results.items():
            binning = (
                pickle.loads(binning_blob)
                if binning_blob is not None
                else self._spec.binning
            )
            vectors = stitch_buffer_parts([(n_bits, buffers)])
            indices[step_id] = BitmapIndex(binning, vectors, n_bits)
        return indices

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=_JOIN_SECONDS)
        if self._collector.is_alive():
            try:
                self._result_q.put(None)
            except (ValueError, OSError):  # pragma: no cover
                pass
            self._collector.join(timeout=_JOIN_SECONDS)
        for q in (self._task_q, self._result_q, self._free_q):
            q.close()
            q.join_thread()
        for slab in self._slots:
            slab.close()

    def __enter__(self) -> "SeparateCoresEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
