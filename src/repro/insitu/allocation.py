"""Core allocation strategies for in-situ bitmap generation (§2.3, §5.2).

Two strategies, verbatim from the paper:

* **Shared Cores** -- all cores alternate: simulate a step with every core,
  pause the simulation, build bitmaps with every core, repeat.

* **Separate Cores** -- a static split: ``sim_cores`` always simulate,
  ``bitmap_cores`` always build bitmaps, with a bounded data queue between
  them.  The split matters; Equations 1-2 derive it from measured
  single-phase times:

      Core_sim    = Core_total * Time_sim / (Time_sim + Time_bitmap)
      Core_bitmap = Core_total - Core_sim

These dataclasses carry the split; the execution semantics live in the
discrete-event pipeline model (:mod:`repro.perfmodel.pipeline_model`) and
in the real threaded runner (:meth:`repro.insitu.pipeline.InSituPipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SharedCores:
    """All cores used for both phases, alternating."""

    total_cores: int

    def __post_init__(self) -> None:
        if self.total_cores < 1:
            raise ValueError(f"need >= 1 core, got {self.total_cores}")

    @property
    def label(self) -> str:
        return "c_all"


@dataclass(frozen=True)
class SeparateCores:
    """A static core split with a shared bounded data queue."""

    sim_cores: int
    bitmap_cores: int

    def __post_init__(self) -> None:
        if self.sim_cores < 1 or self.bitmap_cores < 1:
            raise ValueError(
                f"both pools need >= 1 core, got {self.sim_cores}/{self.bitmap_cores}"
            )

    @property
    def total_cores(self) -> int:
        return self.sim_cores + self.bitmap_cores

    @property
    def label(self) -> str:
        return f"c{self.sim_cores}_c{self.bitmap_cores}"


def equation_1_2_allocation(
    total_cores: int, time_simulate: float, time_bitmap: float
) -> SeparateCores:
    """The paper's Equations 1-2: split cores by the measured time ratio.

    ``time_simulate`` and ``time_bitmap`` are per-step times measured with
    an *initial* allocation (the calibration run of §2.3).  The result is
    clamped so both pools get at least one core.
    """
    if total_cores < 2:
        raise ValueError(f"separate-cores needs >= 2 cores, got {total_cores}")
    if time_simulate <= 0 or time_bitmap <= 0:
        raise ValueError("phase times must be positive")
    sim = round(total_cores * time_simulate / (time_simulate + time_bitmap))
    sim = min(max(sim, 1), total_cores - 1)
    return SeparateCores(sim, total_cores - sim)


def resolve_allocation(
    spec: "str | SharedCores | SeparateCores",
    total_workers: int,
    *,
    time_simulate: float | None = None,
    time_bitmap: float | None = None,
) -> "SharedCores | SeparateCores | str":
    """Turn a CLI-style spec into a strategy instance.

    ``"shared"`` -> all ``total_workers`` build every step together;
    ``"separate"`` -> one simulation core (the parent), the rest encode --
    unless both phase times are given, in which case Equations 1-2 pick
    the split; ``"auto"`` passes through (the pipeline calibrates phase
    times itself) when no times are given.  Instances pass through
    unchanged.
    """
    if isinstance(spec, (SharedCores, SeparateCores)):
        return spec
    if spec == "shared":
        return SharedCores(total_workers)
    if spec in ("separate", "auto"):
        if time_simulate is not None and time_bitmap is not None:
            return equation_1_2_allocation(total_workers, time_simulate, time_bitmap)
        if spec == "auto":
            return "auto"
        if total_workers < 2:
            raise ValueError(
                f"separate-cores needs >= 2 workers, got {total_workers}"
            )
        return SeparateCores(1, total_workers - 1)
    raise ValueError(f"unknown allocation spec {spec!r}")


def enumerate_separate_allocations(total_cores: int) -> list[SeparateCores]:
    """Every valid split of ``total_cores`` -- the x axis of Figure 12."""
    if total_cores < 2:
        return []
    return [SeparateCores(s, total_cores - s) for s in range(1, total_cores)]
