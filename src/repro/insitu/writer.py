"""Output writers: raw time-steps vs bitmap indices (the I/O of Figs 7-10).

The full-data method writes the selected steps' raw arrays; the bitmaps
method writes the selected steps' indices in the format of
:mod:`repro.bitmap.serialization`.  Both writers track bytes and wall-clock
seconds so the pipeline can report the paper's "data writing" bar, and can
optionally throttle to a simulated bandwidth (the perf model usually owns
modelled I/O; throttling here exists for end-to-end demos on fast local
disks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bitmap.index import BitmapIndex
from repro.bitmap.serialization import save_index
from repro.sims.base import TimeStepData


@dataclass
class WriteStats:
    files: int = 0
    bytes_written: int = 0
    seconds: float = 0.0


@dataclass
class OutputWriter:
    """Writes selected outputs under ``root`` and accounts for the cost.

    ``bandwidth_bytes_per_s`` (optional) adds sleep-based throttling so a
    laptop demo exhibits the I/O-bound regime of the paper's machines.
    """

    root: Path
    bandwidth_bytes_per_s: float | None = None
    stats: WriteStats = field(default_factory=WriteStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        if self.bandwidth_bytes_per_s is not None and self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def write_raw_step(self, step: TimeStepData) -> Path:
        """Write one raw time-step (one .npy per field)."""
        t0 = time.perf_counter()
        step_dir = self.root / f"step_{step.step:05d}"
        step_dir.mkdir(exist_ok=True)
        total = 0
        for name, arr in sorted(step.fields.items()):
            path = step_dir / f"{name}.npy"
            np.save(path, arr)
            total += path.stat().st_size
        self._account(total, time.perf_counter() - t0)
        return step_dir

    def write_bitmap_step(self, step_id: int, indices: dict[str, BitmapIndex]) -> Path:
        """Write one step's bitmap indices (one .rbmp per variable)."""
        t0 = time.perf_counter()
        step_dir = self.root / f"step_{step_id:05d}"
        step_dir.mkdir(exist_ok=True)
        total = 0
        for name, index in sorted(indices.items()):
            total += save_index(step_dir / f"{name}.rbmp", index)
        self._account(total, time.perf_counter() - t0)
        return step_dir

    def write_sample_step(
        self, step_id: int, positions: np.ndarray, values: dict[str, np.ndarray]
    ) -> Path:
        """Write one down-sampled step (positions + per-field values)."""
        t0 = time.perf_counter()
        step_dir = self.root / f"step_{step_id:05d}"
        step_dir.mkdir(exist_ok=True)
        pos_path = step_dir / "positions.npy"
        np.save(pos_path, positions)
        total = pos_path.stat().st_size
        for name, arr in sorted(values.items()):
            path = step_dir / f"{name}.sample.npy"
            np.save(path, arr)
            total += path.stat().st_size
        self._account(total, time.perf_counter() - t0)
        return step_dir

    def _account(self, n_bytes: int, elapsed: float) -> None:
        if self.bandwidth_bytes_per_s is not None:
            budget = n_bytes / self.bandwidth_bytes_per_s
            if budget > elapsed:
                time.sleep(budget - elapsed)
                elapsed = budget
        self.stats.files += 1
        self.stats.bytes_written += n_bytes
        self.stats.seconds += elapsed
