"""The in-situ analysis pipeline (Figure 2 end-to-end).

One driver, three reduction modes matching the methods §5 compares:

* ``bitmap``   -- simulate -> build a compressed bitmap index per step ->
  **discard the raw data** -> select K of N on bitmaps -> write only the
  selected bitmaps;
* ``fulldata`` -- simulate -> keep raw steps resident -> select on raw
  arrays -> write the selected steps' raw data;
* ``sampling`` -- simulate -> down-sample -> select on samples -> write
  the selected samples (the §5.5 baseline).

Each phase is wall-clock timed into the same decomposition the paper's
stacked bars use (simulate / reduce / select / output), and a
:class:`~repro.insitu.memory.MemoryTracker` records the resident-set
categories of Figure 11.

:meth:`InSituPipeline.run_threaded` additionally executes the *Separate
Cores* strategy for real: the simulation runs on the caller thread, bitmap
construction on a worker pool, and a bounded
:class:`~repro.insitu.queue.BoundedDataQueue` provides the paper's
memory-capacity backpressure.

:meth:`InSituPipeline.run_parallel` is the multi-core engine: it executes
either strategy on **processes** (threads remain an escape hatch) through
the shared-memory engines of :mod:`repro.insitu.parallel`, producing
bitmaps bit-identical to :meth:`InSituPipeline.run` with real wall-clock
speedup on multi-core hosts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Literal

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.insitu.allocation import (
    SeparateCores,
    SharedCores,
    equation_1_2_allocation,
)
from repro.insitu.memory import MemoryTracker
from repro.insitu.queue import BoundedDataQueue, QueueClosed, QueueFailed
from repro.insitu.sampling import Sampler
from repro.insitu.writer import OutputWriter
from repro.selection.greedy import (
    Partitioning,
    SelectionResult,
    select_timesteps_bitmap,
    select_timesteps_full,
)
from repro.selection.metrics import SelectionMetric
from repro.sims.base import Simulation, TimeStepData
from repro.util.timing import TimeBreakdown

ReductionMode = Literal["bitmap", "fulldata", "sampling"]

#: Extracts the analysis payload from a step (default: all fields
#: concatenated, the §5.1 Lulesh convention; single-field sims are
#: unaffected).
PayloadFn = Callable[[TimeStepData], np.ndarray]


def default_payload(step: TimeStepData) -> np.ndarray:
    return step.concatenated()


@dataclass
class PipelineResult:
    """Everything one pipeline run measured."""

    mode: ReductionMode
    timings: TimeBreakdown
    selection: SelectionResult
    memory: MemoryTracker
    bytes_written: int
    #: reduced artifact sizes per step (bitmap bytes / sample bytes / raw bytes)
    artifact_bytes: list[int] = field(default_factory=list)
    queue_stats: object | None = None

    @property
    def total_seconds(self) -> float:
        return self.timings.total

    def summary(self) -> str:
        phases = ", ".join(
            f"{k}={v:.3f}s" for k, v in sorted(self.timings.phases.items())
        )
        return (
            f"[{self.mode}] {phases}; total={self.total_seconds:.3f}s; "
            f"selected={self.selection.selected}; "
            f"written={self.bytes_written / 2**20:.2f} MiB; "
            f"peak_mem={self.memory.peak_bytes / 2**20:.2f} MiB"
        )


class InSituPipeline:
    """Drives a :class:`~repro.sims.base.Simulation` through reduce-select-write."""

    def __init__(
        self,
        simulation: Simulation,
        binning: Binning | None,
        metric: SelectionMetric,
        *,
        mode: ReductionMode = "bitmap",
        sampler: Sampler | None = None,
        writer: OutputWriter | None = None,
        payload_fn: PayloadFn = default_payload,
        partitioning: Partitioning = "fixed",
        build_method: Literal["vectorized", "online"] = "vectorized",
        adaptive_digits: int = 1,
        ordering: str | None = None,
    ) -> None:
        if mode == "sampling" and sampler is None:
            raise ValueError("sampling mode needs a Sampler")
        if binning is None and mode != "bitmap":
            raise ValueError(
                "adaptive binning (binning=None) is only defined for bitmap "
                "mode; full-data/sampling metrics need a declared scale"
            )
        if ordering is not None:
            from repro.bitmap.ordering import ORDERING_METHODS

            if ordering not in ORDERING_METHODS:
                raise ValueError(
                    f"unknown ordering method {ordering!r} "
                    f"(known: {list(ORDERING_METHODS)})"
                )
            if mode != "bitmap":
                raise ValueError(
                    "row ordering reorders bitmap encoding; it is only "
                    "defined for bitmap mode"
                )
            if metric.name == "emd_spatial":
                # Spatial-unit popcounts are not invariant under a row
                # permutation; every other built-in metric (count-based
                # EMD, MI, CE) is, because all steps share one ordering.
                raise ValueError(
                    "emd_spatial is not permutation-invariant; pick a "
                    "count-based metric or drop ordering"
                )
        self.simulation = simulation
        self.binning = binning
        self.mode: ReductionMode = mode
        self.sampler = sampler
        self.writer = writer
        self.payload_fn = payload_fn
        self.partitioning: Partitioning = partitioning
        self.build_method = build_method
        self.ordering_method = ordering
        #: Run-level row ordering, computed from the *first* step's
        #: payload and reused for every later step: a permutation shared
        #: by all steps leaves cross-step joint popcounts (the selection
        #: metrics) exactly invariant, while a per-step permutation would
        #: silently break row alignment between steps.
        self._ordering = None
        self._ordering_lock = threading.Lock()
        if binning is None:
            # Per-step tick-aligned binning (§5.1's 64-206 bins regime):
            # each step is indexed under its own minimal range; selection
            # metrics align ticks pairwise.
            from repro.bitmap.adaptive import AdaptivePrecisionIndexer, aligned_metric

            self._indexer = AdaptivePrecisionIndexer(
                digits=adaptive_digits, method=build_method
            )
            self.metric = aligned_metric(metric)
        else:
            self._indexer = None
            self.metric = metric

    # ----------------------------------------------------------- sequential
    def run(
        self,
        n_steps: int,
        select_k: int,
        *,
        resume: list[tuple[int, BitmapIndex]] | None = None,
    ) -> PipelineResult:
        """Sequential (Shared-Cores-like) execution: phases alternate.

        ``resume`` hands the pipeline an already-built prefix of per-step
        indices as ``(step_id, index)`` pairs (e.g. reloaded from a
        :class:`~repro.cluster.checkpoint.CheckpointStore` after a
        crash): the simulation is fast-forwarded past them with
        :meth:`~repro.sims.base.Simulation.skip` and only the remaining
        steps are simulated and reduced.  Because selection runs over the
        full artifact list either way, a resumed run returns exactly the
        selection an uninterrupted run would.  Bitmap mode only -- the
        other modes retain raw/sampled arrays, which no checkpoint holds.
        """
        timings = TimeBreakdown()
        memory = MemoryTracker()
        memory.set("simulation_substrate", max(self.simulation.substrate_nbytes, 1))

        artifacts: list[object] = []
        artifact_bytes: list[int] = []
        steps_meta: list[int] = []
        payload_sizes: list[int] = []

        if resume:
            if self.mode != "bitmap":
                raise ValueError("resume is defined for bitmap mode only")
            if len(resume) > n_steps:
                raise ValueError(
                    f"resume prefix of {len(resume)} steps exceeds "
                    f"n_steps={n_steps}"
                )
            with timings.timed("simulate"):
                self.simulation.skip(len(resume))
            for step_id, index in resume:
                artifacts.append(index)
                artifact_bytes.append(index.nbytes)
                steps_meta.append(step_id)
                payload_sizes.append(index.n_elements)
                memory.add("retained_window", index.nbytes)

        for _ in range(n_steps - len(steps_meta)):
            with timings.timed("simulate"):
                step = self.simulation.advance()
            payload = self.payload_fn(step)
            steps_meta.append(step.step)
            payload_sizes.append(payload.size)
            if self.mode != "fulldata":
                # Raw data is resident only while being reduced -- the
                # in-situ memory win.  (In fulldata mode the payload *is*
                # the retained artifact; counting it here too would
                # double-book one step.)
                memory.set("current_step_raw", payload.nbytes)

            artifact, nbytes, _phase = self._reduce(payload, timings)
            artifacts.append(artifact)
            artifact_bytes.append(nbytes)
            memory.add("retained_window", nbytes)
        memory.release("current_step_raw")

        selection = self._select(artifacts, select_k, timings)
        bytes_written = self._write(
            artifacts, steps_meta, selection, timings, payload_sizes=payload_sizes
        )
        return PipelineResult(
            self.mode, timings, selection, memory, bytes_written, artifact_bytes
        )

    # ------------------------------------------------------------- threaded
    def run_threaded(
        self,
        n_steps: int,
        select_k: int,
        *,
        queue_capacity_bytes: int,
        n_workers: int = 1,
    ) -> PipelineResult:
        """Separate-Cores execution: simulation and reduction overlap.

        Only meaningful for ``mode='bitmap'`` (the strategy exists to hide
        bitmap-construction time behind the simulation).
        """
        if self.mode != "bitmap":
            raise ValueError("threaded execution is defined for bitmap mode")
        timings = TimeBreakdown()
        memory = MemoryTracker()
        memory.set("simulation_substrate", max(self.simulation.substrate_nbytes, 1))
        queue = BoundedDataQueue(queue_capacity_bytes)
        results: dict[int, tuple[BitmapIndex, int]] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def worker() -> None:
            while True:
                try:
                    step = queue.get()
                except QueueClosed:  # includes QueueFailed poisoning
                    return
                try:
                    payload = self.payload_fn(step)
                    index = self._build_index(payload)
                    with lock:
                        results[step.step] = (index, index.nbytes)
                except BaseException as exc:  # surfaced after join
                    with lock:
                        errors.append(exc)
                    # Poison the queue so a producer blocked on a full
                    # queue (and sibling workers blocked on an empty one)
                    # wake up and tear down instead of deadlocking once
                    # every worker has died.
                    queue.fail(exc)
                    return

        workers = [
            threading.Thread(target=worker, name=f"bitmap-worker-{i}")
            for i in range(max(1, n_workers))
        ]
        for t in workers:
            t.start()

        import time as _time

        t0 = _time.perf_counter()
        order: list[int] = []
        try:
            for _ in range(n_steps):
                with timings.timed("simulate"):
                    step = self.simulation.advance()
                order.append(step.step)
                queue.put(step)
                memory.set("queue", queue.resident_bytes)
            queue.close()
        except QueueFailed:
            # A worker died and poisoned the queue; the original exception
            # is re-raised below once the pool has drained.
            pass
        for t in workers:
            t.join()
        if errors:
            raise errors[0]
        wall = _time.perf_counter() - t0
        # Bitmap time overlapped with simulation: report the *extra* wall
        # time beyond simulation as the visible reduction cost.
        timings.add("reduce_bitmap", max(0.0, wall - timings.phases.get("simulate", 0.0)))

        artifacts = [results[s][0] for s in order]
        artifact_bytes = [results[s][1] for s in order]
        for nbytes in artifact_bytes:
            memory.add("retained_window", nbytes)
        selection = self._select(artifacts, select_k, timings)
        bytes_written = self._write(artifacts, order, selection, timings)
        result = PipelineResult(
            self.mode, timings, selection, memory, bytes_written, artifact_bytes
        )
        result.queue_stats = queue.stats
        return result

    # ------------------------------------------------------------- parallel
    def run_parallel(
        self,
        n_steps: int,
        select_k: int,
        *,
        allocation: SharedCores | SeparateCores | Literal["auto"] | None = None,
        n_workers: int | None = None,
        executor: Literal["threads", "processes"] = "processes",
        queue_capacity_bytes: int | None = None,
        calibration_steps: int = 2,
        chunk_elements: int = 1 << 20,
    ) -> PipelineResult:
        """Multi-core execution of either §2.3 core-allocation strategy.

        Row ordering is not supported here: the shared-memory engines
        build from spatially-partitioned slabs whose stitching assumes
        simulation order.  Use :meth:`run` / :meth:`run_threaded` with
        ``ordering=``, or build ordered indices directly.

        ``allocation`` picks the strategy: a
        :class:`~repro.insitu.allocation.SharedCores` runs every step's
        build spatially partitioned across all workers, a
        :class:`~repro.insitu.allocation.SeparateCores` overlaps the
        parent-side simulation with a persistent encoder pool
        (``bitmap_cores`` workers) behind a bounded shared-memory ring,
        and ``"auto"`` measures ``calibration_steps`` steps serially and
        derives the split from the paper's Equations 1-2.  When
        ``allocation`` is omitted, ``n_workers`` selects Shared Cores
        with that many workers.

        ``executor='processes'`` (default) uses the zero-copy
        shared-memory engines of :mod:`repro.insitu.parallel`;
        ``'threads'`` is the GIL-bound escape hatch (lower overhead for
        tiny steps, no multi-core speedup for the Python fraction).

        Bitmaps are bit-identical to :meth:`run` in every configuration
        (the parallel builders use the vectorised kernel, as does
        :meth:`run` by default; ``build_method='online'`` runs are
        word-identical too, by construction).
        """
        if self.mode != "bitmap":
            raise ValueError("parallel execution is defined for bitmap mode")
        if self.ordering_method is not None:
            raise ValueError(
                "row ordering is not supported by the parallel engines; "
                "use run()/run_threaded() or BitmapIndex.build(ordering=...)"
            )
        if executor not in ("threads", "processes"):
            raise ValueError(f"unknown executor {executor!r}")
        prebuilt: list[tuple[int, BitmapIndex]] = []
        pre_timings = TimeBreakdown()
        if allocation is None:
            if n_workers is None:
                raise ValueError("pass allocation=... or n_workers=...")
            allocation = SharedCores(n_workers)
        elif allocation == "auto":
            if n_workers is None:
                raise ValueError("allocation='auto' needs n_workers (total cores)")
            total = n_workers
            probe = min(max(1, calibration_steps), n_steps)
            for _ in range(probe):
                with pre_timings.timed("simulate"):
                    step = self.simulation.advance()
                payload = self.payload_fn(step)
                with pre_timings.timed("reduce_bitmap"):
                    index = self._build_index(payload)
                prebuilt.append((step.step, index))
            allocation = equation_1_2_allocation(
                total,
                pre_timings.phases["simulate"] / probe,
                pre_timings.phases["reduce_bitmap"] / probe,
            )
            n_steps -= probe
        if isinstance(allocation, SharedCores):
            if prebuilt:
                raise ValueError("'auto' calibration always yields SeparateCores")
            return self._run_parallel_shared(
                n_steps, select_k, allocation,
                executor=executor, chunk_elements=chunk_elements,
            )
        if isinstance(allocation, SeparateCores):
            if executor == "threads":
                if prebuilt:
                    raise ValueError(
                        "allocation='auto' is only supported with processes"
                    )
                return self.run_threaded(
                    n_steps,
                    select_k,
                    queue_capacity_bytes=queue_capacity_bytes
                    or 4 * max(self.simulation.bytes_per_step, 1),
                    n_workers=allocation.bitmap_cores,
                )
            return self._run_parallel_separate(
                n_steps, select_k, allocation,
                queue_capacity_bytes=queue_capacity_bytes,
                chunk_elements=chunk_elements,
                prebuilt=prebuilt, pre_timings=pre_timings,
            )
        raise ValueError(f"unknown allocation {allocation!r}")

    def _parallel_spec(self) -> tuple[Binning | None, int]:
        """(fixed binning or None for adaptive, adaptive digits)."""
        if self._indexer is not None:
            return None, self._indexer.digits
        return self.binning, 1

    def _run_parallel_shared(
        self,
        n_steps: int,
        select_k: int,
        allocation: SharedCores,
        *,
        executor: str,
        chunk_elements: int,
    ) -> PipelineResult:
        """Shared Cores: phases alternate, every build spatially split."""
        from repro.bitmap.builder import build_bitvectors_parallel

        timings = TimeBreakdown()
        memory = MemoryTracker()
        memory.set("simulation_substrate", max(self.simulation.substrate_nbytes, 1))
        binning, _digits = self._parallel_spec()

        engine = None
        if executor == "processes":
            from repro.insitu.parallel import SharedCoresEngine

            engine = SharedCoresEngine(
                allocation.total_cores, binning, chunk_elements=chunk_elements
            )
        artifacts: list[BitmapIndex] = []
        artifact_bytes: list[int] = []
        steps_meta: list[int] = []
        try:
            for _ in range(n_steps):
                with timings.timed("simulate"):
                    step = self.simulation.advance()
                payload = self.payload_fn(step)
                steps_meta.append(step.step)
                memory.set("current_step_raw", payload.nbytes)
                with timings.timed("reduce_bitmap"):
                    step_binning = (
                        binning
                        if binning is not None
                        else self._indexer.binning_for(payload)
                    )
                    if engine is not None:
                        index = engine.build_index(payload, binning=step_binning)
                    else:
                        vectors = build_bitvectors_parallel(
                            payload,
                            step_binning,
                            n_workers=allocation.total_cores,
                            chunk_elements=chunk_elements,
                            executor="threads",
                        )
                        index = BitmapIndex(step_binning, vectors, payload.size)
                artifacts.append(index)
                artifact_bytes.append(index.nbytes)
                memory.add("retained_window", index.nbytes)
        finally:
            if engine is not None:
                engine.close()
        memory.release("current_step_raw")
        selection = self._select(artifacts, select_k, timings)
        bytes_written = self._write(artifacts, steps_meta, selection, timings)
        return PipelineResult(
            self.mode, timings, selection, memory, bytes_written, artifact_bytes
        )

    def _run_parallel_separate(
        self,
        n_steps: int,
        select_k: int,
        allocation: SeparateCores,
        *,
        queue_capacity_bytes: int | None,
        chunk_elements: int,
        prebuilt: list[tuple[int, BitmapIndex]],
        pre_timings: TimeBreakdown,
    ) -> PipelineResult:
        """Separate Cores on processes: simulation overlaps a bounded
        shared-memory encoder ring."""
        import time as _time

        from repro.insitu.parallel import SeparateCoresEngine

        timings = pre_timings
        memory = MemoryTracker()
        memory.set("simulation_substrate", max(self.simulation.substrate_nbytes, 1))
        binning, digits = self._parallel_spec()

        engine: SeparateCoresEngine | None = None
        order = [step_id for step_id, _ in prebuilt]
        results: dict[int, BitmapIndex] = dict(prebuilt)
        t0 = _time.perf_counter()
        sim_before = timings.phases.get("simulate", 0.0)
        try:
            try:
                for _ in range(n_steps):
                    with timings.timed("simulate"):
                        step = self.simulation.advance()
                    payload = self.payload_fn(step)
                    order.append(step.step)
                    if engine is None:
                        slot_nbytes = max(payload.nbytes, 1)
                        if queue_capacity_bytes:
                            # Respect the byte bound, but cap the slot
                            # count: each slot is one shared-memory
                            # segment, and past a few per worker more
                            # buffering adds nothing.
                            n_slots = min(
                                max(2, int(queue_capacity_bytes) // slot_nbytes),
                                max(8, 4 * allocation.bitmap_cores),
                            )
                        else:
                            n_slots = allocation.bitmap_cores + 1
                        engine = SeparateCoresEngine(
                            binning,
                            n_workers=allocation.bitmap_cores,
                            slot_nbytes=slot_nbytes,
                            n_slots=n_slots,
                            adaptive_digits=digits,
                            chunk_elements=chunk_elements,
                        )
                    engine.submit(step.step, payload)
                    memory.set("queue", engine.resident_bytes)
            except QueueFailed:
                # A worker died and poisoned the ring; finish() below
                # re-raises the original exception once the pool drains.
                pass
            if engine is not None:
                results.update(engine.finish())
        finally:
            if engine is not None:
                engine.close()
        wall = _time.perf_counter() - t0
        # Bitmap time overlapped with simulation: report the *extra* wall
        # time beyond this phase's simulation share as visible reduction.
        timings.add(
            "reduce_bitmap",
            max(0.0, wall - (timings.phases.get("simulate", 0.0) - sim_before)),
        )

        artifacts = [results[s] for s in order]
        artifact_bytes = [idx.nbytes for idx in artifacts]
        for nbytes in artifact_bytes:
            memory.add("retained_window", nbytes)
        selection = self._select(artifacts, select_k, timings)
        bytes_written = self._write(artifacts, order, selection, timings)
        result = PipelineResult(
            self.mode, timings, selection, memory, bytes_written, artifact_bytes
        )
        result.queue_stats = engine.stats if engine is not None else None
        return result

    # ------------------------------------------------------------ streaming
    def run_streaming(self, n_steps: int, select_k: int) -> PipelineResult:
        """Fully streaming bitmap pipeline: select online, write on commit.

        Uses :class:`~repro.selection.streaming.StreamingSelector`, so at
        most *two* bitmap artifacts are ever resident (the previously
        committed selection and the current interval's best), and each
        selected bitmap is written the moment its interval closes -- the
        tightest-memory reading of Figure 2.  The selection is identical
        to :meth:`run` (greedy only ever looks at the last committed
        step).
        """
        if self.mode != "bitmap":
            raise ValueError("streaming execution is defined for bitmap mode")
        from repro.selection.streaming import StreamingSelector

        timings = TimeBreakdown()
        memory = MemoryTracker()
        memory.set("simulation_substrate", max(self.simulation.substrate_nbytes, 1))

        artifact_bytes: list[int] = []
        written_steps: list[int] = []
        bytes_written = 0

        selector: StreamingSelector[tuple[int, BitmapIndex]] = StreamingSelector(
            n_steps,
            select_k,
            lambda prev, cand: self.metric.bitmap(prev[1], cand[1]),
        )
        # Wrap commits so selected bitmaps hit storage immediately.
        original_commit = selector._commit

        def commit_and_write(step, score, artifact):
            nonlocal bytes_written
            original_commit(step, score, artifact)
            if self.writer is not None and artifact is not None:
                step_id, index = artifact
                with timings.timed("output"):
                    before = self.writer.stats.bytes_written
                    self.writer.write_bitmap_step(step_id, {"payload": index})
                    bytes_written += self.writer.stats.bytes_written - before
                written_steps.append(step_id)

        selector._commit = commit_and_write  # type: ignore[method-assign]

        for _ in range(n_steps):
            with timings.timed("simulate"):
                step = self.simulation.advance()
            payload = self.payload_fn(step)
            memory.set("current_step_raw", payload.nbytes)
            with timings.timed("reduce_bitmap"):
                index = self._build_index(payload)
            artifact_bytes.append(index.nbytes)
            with timings.timed("select"):
                selector.push((step.step, index))
            # Account what is *actually* resident: the retained artifacts'
            # own sizes, not the current step's size times a count (bitmap
            # sizes vary step to step with data compressibility).
            memory.set(
                "retained_window",
                sum(art[1].nbytes for art in selector.resident()),
            )
        memory.release("current_step_raw")
        with timings.timed("select"):
            selection = selector.finalize()
        return PipelineResult(
            self.mode, timings, selection, memory, bytes_written, artifact_bytes
        )

    # -------------------------------------------------------------- phases
    def _build_index(self, payload: np.ndarray) -> BitmapIndex:
        if self.ordering_method is not None:
            return self._build_ordered_index(payload)
        if self._indexer is not None:
            return self._indexer.index(payload)
        return BitmapIndex.build(payload, self.binning, method=self.build_method)

    def _build_ordered_index(self, payload: np.ndarray) -> BitmapIndex:
        from repro.bitmap.ordering import compute_ordering

        flat = np.asarray(payload).ravel()
        binning = (
            self._indexer.binning_for(flat)
            if self._indexer is not None
            else self.binning
        )
        # Locked: run_threaded builds steps concurrently, and two racing
        # first-steps would compute *different* permutations -- which
        # breaks the row alignment the selection metrics rely on.
        with self._ordering_lock:
            if self._ordering is None or self._ordering.n_rows != flat.size:
                self._ordering = compute_ordering(
                    [flat], binning, self.ordering_method
                )
            ordering = self._ordering
        return BitmapIndex.build(
            flat, binning, method=self.build_method, ordering=ordering
        )

    def _reduce(self, payload: np.ndarray, timings: TimeBreakdown):
        if self.mode == "bitmap":
            with timings.timed("reduce_bitmap"):
                index = self._build_index(payload)
            return index, index.nbytes, "reduce_bitmap"
        if self.mode == "sampling":
            assert self.sampler is not None
            with timings.timed("reduce_sample"):
                sample = self.sampler.sample(payload)
            nbytes = self.sampler.sample_bytes(payload.size)
            return sample, nbytes, "reduce_sample"
        # fulldata: the "reduction" is keeping everything.
        return payload, payload.nbytes, "none"

    def _select(
        self, artifacts: list[object], select_k: int, timings: TimeBreakdown
    ) -> SelectionResult:
        with timings.timed("select"):
            if self.mode == "bitmap":
                return select_timesteps_bitmap(
                    artifacts, select_k, self.metric, partitioning=self.partitioning
                )
            return select_timesteps_full(
                artifacts,
                select_k,
                self.metric,
                self.binning,
                partitioning=self.partitioning,
            )

    def _write(
        self,
        artifacts: list[object],
        steps_meta: list[int],
        selection: SelectionResult,
        timings: TimeBreakdown,
        *,
        payload_sizes: list[int] | None = None,
    ) -> int:
        if self.writer is None:
            return 0
        before = self.writer.stats.bytes_written
        with timings.timed("output"):
            for pos in selection.selected:
                step_id = steps_meta[pos]
                artifact = artifacts[pos]
                if self.mode == "bitmap":
                    self.writer.write_bitmap_step(step_id, {"payload": artifact})
                elif self.mode == "sampling":
                    assert self.sampler is not None
                    # Positions must be regenerated for the *original*
                    # payload size recorded at reduce time; deriving it
                    # back from the sample length and fraction rounds the
                    # wrong way for many (size, fraction) pairs and yields
                    # out-of-range positions.
                    assert payload_sizes is not None, (
                        "sampling mode requires per-step payload sizes"
                    )
                    positions = self.sampler.positions(payload_sizes[pos])
                    self.writer.write_sample_step(
                        step_id, positions, {"payload": artifact}
                    )
                else:
                    self.writer.write_raw_step(
                        TimeStepData(step_id, {"payload": np.asarray(artifact)})
                    )
        return self.writer.stats.bytes_written - before
