"""Bounded data queue between simulation and bitmap-generation cores.

§2.3, Separate Cores: "a data queue is shared between simulation and
bitmaps generation.  Each time when a new time-step data is simulated, it
will be added to the tail of the data queue if the queue is not full (the
queue size is limited by the memory capacity)."

:class:`BoundedDataQueue` is that queue: FIFO, bounded by *bytes* (the
memory capacity), thread-safe, with blocking put/get so a producer
(simulation) stalls exactly when the paper says it must -- when bitmap
generation cannot keep up and memory is full.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.sims.base import TimeStepData


class QueueClosed(Exception):
    """Raised by :meth:`BoundedDataQueue.get` after close + drain."""


class QueueFailed(QueueClosed):
    """Raised by ``put``/``get`` after :meth:`BoundedDataQueue.fail`.

    Subclasses :class:`QueueClosed` so drain loops that already treat
    closure as end-of-stream keep terminating; callers that care about
    *why* the stream ended can catch this subtype and inspect ``cause``.
    """

    def __init__(self, message: str, cause: BaseException) -> None:
        super().__init__(message)
        self.cause = cause


@dataclass
class QueueStats:
    """Occupancy accounting for the core-allocation experiments."""

    puts: int = 0
    gets: int = 0
    producer_blocks: int = 0  # simulation stalled on a full queue
    consumer_blocks: int = 0  # bitmap cores starved on an empty queue
    max_depth: int = 0


class BoundedDataQueue:
    """Byte-bounded FIFO of :class:`TimeStepData`.

    ``capacity_bytes`` limits the *sum* of queued steps' sizes; a single
    step larger than the capacity is still accepted when the queue is
    empty (otherwise it could never flow at all).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be > 0 bytes, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._items: deque[TimeStepData] = deque()
        self._bytes = 0
        self._closed = False
        self._failure: BaseException | None = None
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self.stats = QueueStats()

    # ------------------------------------------------------------ producer
    def put(self, item: TimeStepData) -> None:
        """Enqueue a time-step, blocking while the queue is full.

        Raises :class:`QueueFailed` (even mid-block) once a consumer has
        called :meth:`fail`, and :class:`QueueClosed` after :meth:`close`.
        """
        with self._not_full:
            self._check_failed("queue failed before put")
            if self._closed:
                raise QueueClosed("queue already closed")
            blocked = False
            while self._bytes > 0 and self._bytes + item.nbytes > self.capacity_bytes:
                blocked = True
                self._not_full.wait()
                self._check_failed("queue failed while blocked on put")
                if self._closed:
                    raise QueueClosed("queue closed while blocked on put")
            if blocked:
                self.stats.producer_blocks += 1
            self._items.append(item)
            self._bytes += item.nbytes
            self.stats.puts += 1
            self.stats.max_depth = max(self.stats.max_depth, len(self._items))
            self._not_empty.notify()

    def close(self) -> None:
        """Signal that no more items will arrive."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def fail(self, exc: BaseException) -> None:
        """Poison the queue after an unrecoverable error on either side.

        Unlike :meth:`close` -- which lets consumers drain remaining items
        -- failing makes every current and future ``put``/``get`` raise
        :class:`QueueFailed` immediately, unblocking threads parked on a
        full or empty queue so the pipeline can tear down instead of
        deadlocking.  Only the first failure is recorded.
        """
        with self._lock:
            if self._failure is None:
                self._failure = exc
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def _check_failed(self, message: str) -> None:
        # Caller must hold self._lock.
        if self._failure is not None:
            raise QueueFailed(
                f"{message}: {self._failure!r}", self._failure
            ) from self._failure

    # ------------------------------------------------------------ consumer
    def get(self) -> TimeStepData:
        """Dequeue the oldest step; blocks when empty; raises
        :class:`QueueClosed` once closed *and* drained, and
        :class:`QueueFailed` (without draining) after :meth:`fail`."""
        with self._not_empty:
            blocked = False
            while True:
                self._check_failed("queue failed")
                if self._items:
                    break
                if self._closed:
                    raise QueueClosed("queue closed and drained")
                blocked = True
                self._not_empty.wait()
            if blocked:
                self.stats.consumer_blocks += 1
            item = self._items.popleft()
            self._bytes -= item.nbytes
            self.stats.gets += 1
            self._not_full.notify()
            return item

    # ---------------------------------------------------------- inspection
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def failure(self) -> BaseException | None:
        """The first exception passed to :meth:`fail`, if any."""
        with self._lock:
            return self._failure
