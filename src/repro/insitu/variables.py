"""Per-variable in-situ reduction -- the multi-array handling of §5.1.

Lulesh emits "a total of 12 data arrays for each time-step, and we
support in-situ analysis based on all of them".  Two faithful readings:

* index the concatenated payload under one binning (what
  :class:`~repro.insitu.pipeline.InSituPipeline` defaults to) -- simple,
  but mixes value distributions of unlike quantities;
* index **each variable under its own binning** and combine the
  per-variable correlation scores -- what a physics-aware deployment does
  and what this module provides.

:class:`MultiVariableIndexer` turns one :class:`~repro.sims.base.TimeStepData`
into a dict of per-variable indices; :func:`combined_metric` lifts any
:class:`~repro.selection.metrics.SelectionMetric` to dicts by summing
per-variable distinctness (each variable contributes in its own binning,
exactness preserved per variable); :class:`MultiVariableStep` is the
artifact the selectors see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bitmap.binning import Binning
from repro.bitmap.index import BitmapIndex
from repro.sims.base import TimeStepData


@dataclass(frozen=True)
class MultiVariableStep:
    """One time-step reduced to per-variable bitmap indices."""

    step: int
    indices: Mapping[str, BitmapIndex]

    @property
    def nbytes(self) -> int:
        return sum(i.nbytes for i in self.indices.values())

    def variables(self) -> list[str]:
        return sorted(self.indices)


@dataclass(frozen=True)
class MultiVariableIndexer:
    """Builds per-variable indices under per-variable binnings.

    ``binnings`` maps variable name -> binning; variables absent from the
    map are skipped (the paper indexes analysis variables, not every
    internal array).

    ``ordering`` ("lex" / "gray" / "hist", :mod:`repro.bitmap.ordering`)
    computes **one** row permutation from *all* variables' bin ids
    jointly (variables in sorted-name order) on the first reduced step,
    then applies that same permutation to every variable of every later
    step.  This is where multi-column Gray-code and histogram-aware
    ordering earn their keep -- a shared permutation compresses
    secondary variables too -- and sharing it across steps keeps
    cross-step joint popcounts (the selection metrics) exactly
    invariant; a per-step permutation would silently misalign rows
    between steps.
    """

    binnings: Mapping[str, Binning]
    method: str = "vectorized"
    ordering: str | None = None

    def __post_init__(self) -> None:
        if not self.binnings:
            raise ValueError("need at least one variable binning")
        if self.ordering is not None:
            from repro.bitmap.ordering import ORDERING_METHODS

            if self.ordering not in ORDERING_METHODS:
                raise ValueError(
                    f"unknown ordering method {self.ordering!r} "
                    f"(known: {list(ORDERING_METHODS)})"
                )

    def reduce(self, step: TimeStepData) -> MultiVariableStep:
        shared = self._shared_ordering(step)
        indices: dict[str, BitmapIndex] = {}
        for name, binning in self.binnings.items():
            indices[name] = BitmapIndex.build(
                self._field(step, name),
                binning,
                method=self.method,  # type: ignore[arg-type]
                ordering=shared,
            )
        return MultiVariableStep(step.step, indices)

    def _shared_ordering(self, step: TimeStepData):
        """Run-level ordering: computed once, reused for every step."""
        if self.ordering is None:
            return None
        cached = getattr(self, "_ordering_cache", None)
        names = sorted(self.binnings)
        n_rows = np.asarray(self._field(step, names[0])).size
        if cached is not None and cached.n_rows == n_rows:
            return cached
        from repro.bitmap.ordering import compute_ordering

        shared = compute_ordering(
            [self._field(step, n) for n in names],
            [self.binnings[n] for n in names],
            self.ordering,
        )
        object.__setattr__(self, "_ordering_cache", shared)  # frozen dataclass
        return shared

    def _field(self, step: TimeStepData, name: str) -> np.ndarray:
        if name not in step.fields:
            raise KeyError(
                f"step {step.step} lacks variable {name!r}; "
                f"has {sorted(step.fields)}"
            )
        return step.fields[name]

    @classmethod
    def from_probe(
        cls,
        steps: Sequence[TimeStepData],
        *,
        bins: int,
        variables: Sequence[str] | None = None,
        method: str = "vectorized",
        ordering: str | None = None,
    ) -> "MultiVariableIndexer":
        """Derive per-variable equal-width binnings from probe steps."""
        from repro.bitmap.binning import common_binning

        if not steps:
            raise ValueError("need at least one probe step")
        names = (
            list(variables) if variables is not None else sorted(steps[0].fields)
        )
        binnings = {
            name: common_binning([s.fields[name] for s in steps], bins=bins)
            for name in names
        }
        return cls(binnings, method=method, ordering=ordering)


def combined_metric(metric, *, weights: Mapping[str, float] | None = None):
    """Distinctness over MultiVariableStep = weighted sum over variables.

    Returns a callable suitable for the streaming selector or the greedy
    helpers that accept a raw distinctness function.
    """

    def distinctness(prev: MultiVariableStep, cand: MultiVariableStep) -> float:
        if set(prev.indices) != set(cand.indices):
            raise ValueError(
                f"steps carry different variables: "
                f"{sorted(prev.indices)} vs {sorted(cand.indices)}"
            )
        total = 0.0
        for name in prev.indices:
            w = 1.0 if weights is None else float(weights.get(name, 0.0))
            if w == 0.0:
                continue
            total += w * metric.bitmap(prev.indices[name], cand.indices[name])
        return total

    return distinctness


def select_timesteps_multivariable(
    steps: Sequence[MultiVariableStep],
    k: int,
    metric,
    *,
    weights: Mapping[str, float] | None = None,
):
    """Greedy selection over per-variable-reduced steps."""
    from repro.selection.greedy import SelectionResult
    from repro.selection.partitioning import (
        fixed_length_partitions,
        validate_partitions,
    )

    parts = fixed_length_partitions(len(steps), k)
    validate_partitions(parts, len(steps))
    score = combined_metric(metric, weights=weights)
    selected = [0]
    scores = [float("nan")]
    evaluations = 0
    prev = 0
    for interval in parts[1:]:
        best, best_score = -1, -np.inf
        for cand in interval:
            s = score(steps[prev], steps[cand])
            evaluations += 1
            if s > best_score:
                best, best_score = cand, s
        selected.append(best)
        scores.append(best_score)
        prev = best
    return SelectionResult(
        selected, scores, parts, f"multivar:{metric.name}", evaluations
    )
