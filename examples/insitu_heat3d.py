"""In-situ Heat3D: the full Figure 2 pipeline at laptop scale.

Runs the Heat3D simulation three ways -- bitmaps, full data, and in-situ
sampling -- through the same reduce/select/write pipeline (selecting 10 of
40 time-steps with conditional entropy), then runs the bitmap pipeline a
fourth time with the *Separate Cores* strategy: simulation on the caller
thread, bitmap construction on a worker thread, a bounded data queue
between them.

Run:  python examples/insitu_heat3d.py
"""

import tempfile
from pathlib import Path

from repro import Heat3D, PrecisionBinning
from repro.insitu import InSituPipeline, OutputWriter, Sampler
from repro.selection import CONDITIONAL_ENTROPY

SHAPE = (16, 16, 48)
N_STEPS, SELECT_K = 40, 10


def run(mode: str, out_root: Path, **kwargs) -> None:
    sim = Heat3D(SHAPE, seed=7)
    # Heat3D temperatures live in [boundary, source]; 1 decimal digit is
    # the paper's binning scale for this workload (§5.1).
    binning = PrecisionBinning(19.0, 101.0, digits=1)
    pipe = InSituPipeline(
        sim,
        binning,
        CONDITIONAL_ENTROPY,
        mode=mode,  # type: ignore[arg-type]
        writer=OutputWriter(out_root / mode),
        **kwargs,
    )
    result = pipe.run(N_STEPS, SELECT_K)
    print(f"\n=== {mode} ===")
    print(result.summary())
    print(result.memory.report())


def run_separate_cores(out_root: Path) -> None:
    sim = Heat3D(SHAPE, seed=7)
    binning = PrecisionBinning(19.0, 101.0, digits=1)
    pipe = InSituPipeline(sim, binning, CONDITIONAL_ENTROPY, mode="bitmap",
                          writer=OutputWriter(out_root / "separate"))
    step_bytes = 16 * 16 * 48 * 8
    result = pipe.run_threaded(
        N_STEPS, SELECT_K, queue_capacity_bytes=4 * step_bytes, n_workers=1
    )
    print("\n=== bitmap, Separate Cores (threaded, bounded queue) ===")
    print(result.summary())
    qs = result.queue_stats
    print(
        f"queue: {qs.puts} puts / {qs.gets} gets, max depth {qs.max_depth}, "
        f"producer blocked {qs.producer_blocks}x, consumer starved "
        f"{qs.consumer_blocks}x"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        run("bitmap", root)
        run("fulldata", root)
        run("sampling", root, sampler=Sampler(0.15, mode="random", seed=1))
        run_separate_cores(root)
    print(
        "\nNote the written bytes: bitmaps write a fraction of the raw "
        "output, which is the I/O saving Figures 7-10 measure at scale."
    )


if __name__ == "__main__":
    main()
