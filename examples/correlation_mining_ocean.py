"""Correlation mining on POP-like ocean data (§4 / Figure 14's workload).

Generates a temperature/salinity snapshot with one *planted* correlated
region, Z-orders both fields, and runs Algorithm 2 three ways:

  * bitmap mining (the paper's method);
  * exhaustive full-data mining (identical hits, slower);
  * multi-level top-down mining (same hits on strong signal, fewer pairs).

Finally it scores the mined spatial units against the planted ground
truth.

Run:  python examples/correlation_mining_ocean.py
"""

import time

import numpy as np

from repro import BitmapIndex, EqualWidthBinning, OceanDataGenerator, ZOrderLayout
from repro.bitmap import LevelSpec, MultiLevelBitmapIndex
from repro.mining import (
    correlation_mining,
    correlation_mining_fulldata,
    correlation_mining_multilevel,
    suggest_value_threshold,
)

SHAPE = (8, 48, 96)
UNIT_BITS = 512
N_BINS = 16


def main() -> None:
    gen = OceanDataGenerator(SHAPE, seed=13)
    snap = gen.advance()
    temp, salt = snap.fields["temperature"], snap.fields["salinity"]
    print(f"ocean snapshot: {SHAPE} = {temp.size} cells per variable")

    layout = ZOrderLayout.for_shape(SHAPE)
    tz, sz = layout.flatten(temp), layout.flatten(salt)
    bt = EqualWidthBinning.from_data(tz, N_BINS)
    bs = EqualWidthBinning.from_data(sz, N_BINS)
    index_t = BitmapIndex.build(tz, bt)
    index_s = BitmapIndex.build(sz, bs)

    # The paper's same-unit rule gives an upper bound for T; with planted
    # correlations covering ~10% of the domain the working threshold sits
    # well below it.
    t_upper = suggest_value_threshold(index_t, index_s, UNIT_BITS)
    kw = dict(value_threshold=0.002, spatial_threshold=0.05, unit_bits=UNIT_BITS)
    print(f"value threshold T={kw['value_threshold']} "
          f"(same-unit-rule upper bound {t_upper:.4f}), "
          f"spatial threshold T'={kw['spatial_threshold']}")

    t0 = time.perf_counter()
    bm = correlation_mining(index_t, index_s, **kw)
    t_bm = time.perf_counter() - t0
    t0 = time.perf_counter()
    fd = correlation_mining_fulldata(tz, sz, bt, bs, **kw)
    t_fd = time.perf_counter() - t0
    print(f"\nbitmap mining   : {bm} in {t_bm:.3f}s")
    print(f"full-data mining: {fd} in {t_fd:.3f}s  "
          f"(speedup {t_fd / t_bm:.2f}x, identical hits: "
          f"{ {(h.a_bin, h.b_bin) for h in bm.value_hits} == {(h.a_bin, h.b_bin) for h in fd.value_hits} })")

    ml_t = MultiLevelBitmapIndex.build(tz, bt, [LevelSpec(4)])
    ml_s = MultiLevelBitmapIndex.build(sz, bs, [LevelSpec(4)])
    ml, stats = correlation_mining_multilevel(ml_t, ml_s, **kw)
    print(f"multi-level     : {ml}; low-level pairs evaluated "
          f"{stats.low_pairs_evaluated}/{index_t.n_bins * index_s.n_bins} "
          f"(pruned {stats.low_pairs_skipped})")

    # Score against the planted ground truth.
    region = gen.planted_regions()[0]
    grid_mask = np.zeros(SHAPE, dtype=bool)
    grid_mask[region.slices()] = True
    planted_units = set(
        (np.flatnonzero(layout.flatten(grid_mask)) // UNIT_BITS).tolist()
    )
    mined = bm.spatial_units()
    tp = len(mined & planted_units)
    print(f"\nplanted region spans {len(planted_units)} Z-order units; mined "
          f"{len(mined)} units; precision {tp / max(len(mined), 1):.0%}, "
          f"recall {tp / len(planted_units):.0%}")


if __name__ == "__main__":
    main()
