"""Per-variable in-situ reduction on the Lulesh proxy (§5.1's 12 arrays).

Two faithful ways to handle a multi-array time-step:

* one index over the concatenated payload (one shared binning), or
* one index **per variable**, each under its own physical range, with
  selection combining per-variable distinctness (optionally weighted).

This script runs both, shows how differently variables are distributed
(why per-variable binning exists), and demonstrates weighting: selecting
on kinematics (velocity/acceleration) vs geometry (coordinates).

Run:  python examples/multivariable_lulesh.py
"""

from repro.bitmap import BitmapIndex, common_binning
from repro.insitu.variables import (
    MultiVariableIndexer,
    select_timesteps_multivariable,
)
from repro.selection import EMD_COUNT, select_timesteps_bitmap
from repro.sims import LuleshProxy

N_STEPS, SELECT_K = 24, 6
NODE_SHAPE = (8, 8, 8)


def main() -> None:
    probe = list(LuleshProxy(NODE_SHAPE, seed=5).run(N_STEPS))
    indexer = MultiVariableIndexer.from_probe(probe, bins=24)

    print("per-variable binnings (each variable has its own range):")
    for name in ("coord_x", "velocity_x", "force_x"):
        b = indexer.binnings[name]
        print(f"  {name:14s} [{b.lo:12.4g}, {b.hi:12.4g}]  {b.n_bins} bins")

    sim = LuleshProxy(NODE_SHAPE, seed=5)
    reduced = [indexer.reduce(s) for s in sim.run(N_STEPS)]
    per_step_bytes = reduced[0].nbytes
    raw_bytes = probe[0].nbytes
    print(f"\nreduced step: {per_step_bytes / 1024:.1f} KiB of bitmaps "
          f"vs {raw_bytes / 1024:.1f} KiB raw ({per_step_bytes / raw_bytes:.1%})")

    # --- selection on all 12 variables ----------------------------------
    all_vars = select_timesteps_multivariable(reduced, SELECT_K, EMD_COUNT)
    print(f"\nselection, all 12 variables:    {all_vars.selected}")

    # --- weighted variants ----------------------------------------------
    kinematics = {f"{v}_{c}": 1.0 for v in ("velocity", "acceleration")
                  for c in "xyz"}
    geometry = {f"coord_{c}": 1.0 for c in "xyz"}
    kin = select_timesteps_multivariable(
        reduced, SELECT_K, EMD_COUNT, weights=kinematics
    )
    geo = select_timesteps_multivariable(
        reduced, SELECT_K, EMD_COUNT, weights=geometry
    )
    print(f"selection, kinematics only:     {kin.selected}")
    print(f"selection, geometry only:       {geo.selected}")

    # --- the concatenated alternative ------------------------------------
    cat_probe = [s.concatenated() for s in probe]
    binning = common_binning(cat_probe, bins=96)
    sim2 = LuleshProxy(NODE_SHAPE, seed=5)
    cat_indices = [
        BitmapIndex.build(s.concatenated(), binning) for s in sim2.run(N_STEPS)
    ]
    cat = select_timesteps_bitmap(cat_indices, SELECT_K, EMD_COUNT)
    print(f"selection, concatenated payload: {cat.selected}")
    print("\n(the variants legitimately disagree -- they answer different "
          "questions about which physics matters)")


if __name__ == "__main__":
    main()
