"""Offline post-analysis over stored bitmaps (the step-4 of the intro).

The in-situ run keeps only the selected bitmaps; this script plays the
*offline* side: run a streaming pipeline that persists the selected
bitmaps into a :class:`~repro.io.timeseries.BitmapStore`, then — with the
simulation long gone — answer questions from the store alone:

  * how different are consecutive retained steps (pairwise EMD walk)?
  * interactive SQL-ish correlation queries over two retained steps;
  * subgroup discovery: where does the late field deviate from the early
    one the most?

Run:  python examples/offline_postanalysis.py
"""

import tempfile
from pathlib import Path

from repro import Heat3D, PrecisionBinning
from repro.analysis import discover_subgroups, query
from repro.bitmap import BitmapIndex
from repro.io.timeseries import BitmapStore
from repro.metrics import emd_count_bitmap
from repro.selection import CONDITIONAL_ENTROPY
from repro.selection.streaming import StreamingSelector

N_STEPS, SELECT_K = 30, 6
SHAPE = (12, 12, 32)


def in_situ_phase(store: BitmapStore) -> None:
    """Simulate + select online; write selected bitmaps on commit."""
    sim = Heat3D(SHAPE, seed=4)
    binning = PrecisionBinning(19.0, 101.0, digits=1)
    selector = StreamingSelector(
        N_STEPS, SELECT_K,
        lambda prev, cand: CONDITIONAL_ENTROPY.bitmap(prev[1], cand[1]),
    )
    committed: list[tuple[int, BitmapIndex]] = []
    original = selector._commit

    def commit(step, score, artifact):
        original(step, score, artifact)
        if artifact is not None:
            committed.append(artifact)

    selector._commit = commit  # write-on-commit hook
    for out in sim.run(N_STEPS):
        index = BitmapIndex.build(out.fields["temperature"], binning)
        selector.push((out.step, index))
    result = selector.finalize()
    for step_id, index in committed:
        store.write(step_id, "temperature", index)
    store.set_attr("workload", "heat3d")
    store.set_attr("selection", ",".join(map(str, result.selected)))
    print(f"in-situ phase: kept {result.selected} of {N_STEPS} steps "
          f"({store.total_bytes() / 1024:.1f} KiB of bitmaps on disk)")


def offline_phase(store: BitmapStore) -> None:
    """Everything below runs without any raw simulation data."""
    print(f"\nstore: {store}")

    print("\npairwise count-EMD between consecutive retained steps:")
    for a, b, value in store.pairwise_metric("temperature", emd_count_bitmap):
        print(f"  step {a:2d} -> {b:2d}: EMD = {value:10.1f}")

    steps = store.steps()
    first = store.load(steps[0], "temperature")
    last = store.load(steps[-1], "temperature")
    indices = {"early": first, "late": last}
    for q in (
        "SELECT MI FROM early, late",
        "SELECT CE FROM late, early",
        "SELECT COUNT FROM early, late WHERE early BETWEEN 20 AND 25",
        "SELECT EMD FROM early, late",
    ):
        print(f"  {q:58s} -> {query(q, indices):.4f}")

    print("\nsubgroups where the late field deviates most, explained by the "
          "early field:")
    for sub in discover_subgroups(first, last, unit_bits=31 * 8, top_k=4):
        print(f"  {sub}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = BitmapStore(Path(tmp) / "run_0001")
        in_situ_phase(store)
        offline_phase(store)


if __name__ == "__main__":
    main()
