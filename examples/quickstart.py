"""Quickstart: build a bitmap index, analyse without the raw data.

Demonstrates the core promise of the paper in ~60 lines: index two
time-steps, throw the raw arrays away, and compute the same analysis
results from the bitmaps alone.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BitmapIndex,
    common_binning,
    conditional_entropy,
    conditional_entropy_bitmap,
    emd_spatial,
    emd_spatial_bitmap,
    mutual_information,
    mutual_information_bitmap,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # Two "time-steps" of a drifting field.  Simulation output is spatially
    # coherent (neighbouring cells carry similar values) -- exactly what
    # run-length bitmap compression feeds on -- so we smooth the noise.
    from scipy.ndimage import gaussian_filter

    base = gaussian_filter(rng.normal(0.0, 1.0, 50_000), sigma=40.0)
    step_a = 20.0 + 30.0 * base
    step_b = step_a + 0.8 + gaussian_filter(rng.normal(0.0, 0.3, 50_000), sigma=10.0)

    # One shared binning scale -- the precondition for exact bitmap analysis.
    binning = common_binning([step_a, step_b], bins=64)

    # Build compressed bitmap indices (this is what in-situ code would keep).
    index_a = BitmapIndex.build(step_a, binning)
    index_b = BitmapIndex.build(step_b, binning)
    raw_bytes = step_a.nbytes
    print(f"raw step size:      {raw_bytes / 1024:8.1f} KiB")
    print(f"bitmap index size:  {index_a.nbytes / 1024:8.1f} KiB "
          f"({index_a.size_ratio(8):.1%} of raw)")

    # --- full-data analysis (requires the raw arrays) -------------------
    h_full = conditional_entropy(step_b, step_a, binning, binning)
    mi_full = mutual_information(step_a, step_b, binning, binning)
    emd_full = emd_spatial(step_a, step_b, binning)

    # --- bitmap-only analysis (raw arrays could be freed by now) --------
    h_bm = conditional_entropy_bitmap(index_b, index_a)
    mi_bm = mutual_information_bitmap(index_a, index_b)
    emd_bm = emd_spatial_bitmap(index_a, index_b)

    print(f"\n{'metric':<28}{'full data':>12}{'bitmaps':>12}")
    print(f"{'conditional entropy H(B|A)':<28}{h_full:12.6f}{h_bm:12.6f}")
    print(f"{'mutual information':<28}{mi_full:12.6f}{mi_bm:12.6f}")
    print(f"{'spatial EMD':<28}{emd_full:12.1f}{emd_bm:12.1f}")

    assert abs(h_full - h_bm) < 1e-9
    assert abs(mi_full - mi_bm) < 1e-9
    assert emd_full == emd_bm
    print("\nbitmap results are exact at the shared binning scale -- "
          "the paper's central claim.")


if __name__ == "__main__":
    main()
