"""Core-allocation study on the performance model (§5.2 / Figure 12).

Sweeps every Shared/Separate-Cores split of a 28-core Xeon for Heat3D and
Lulesh, shows the Equations 1-2 pick, and prints a Figure 13-style cluster
scalability table -- all on the calibrated discrete-event model (see
DESIGN.md's substitution table: we model the paper's machines rather than
owning them).

Run:  python examples/core_allocation_study.py
"""

from repro.perfmodel import (
    OAKLEY_NODE,
    XEON32,
    ClusterScenario,
    InSituScenario,
    equation_allocation_outcome,
    scalability_series,
    sweep_allocations,
)
from repro.perfmodel.rates import HEAT3D_CLUSTER_RATES, HEAT3D_RATES, LULESH_RATES


def allocation_table(title: str, sc: InSituScenario, stride: int) -> None:
    print(f"\n=== {title} ===")
    outcomes = sweep_allocations(sc, stride=stride)
    best = min(outcomes[1:], key=lambda o: o.total_seconds)
    for o in outcomes:
        marker = "  <- best sampled split" if o is best else ""
        print(f"  {o.label:>10s}  {o.total_seconds:9.1f}s{marker}")
    eq = equation_allocation_outcome(sc)
    print(f"  Equations 1-2 pick {eq.label}: {eq.total_seconds:.1f}s")


def main() -> None:
    xeon28 = XEON32.with_cores(28)

    # Figure 12(a): Heat3D, 6.4 GB steps, 28 cores.  Paper's winner: c12_c16.
    allocation_table(
        "Heat3D on 28-core Xeon (Figure 12a; paper best c12_c16)",
        InSituScenario(xeon28, HEAT3D_RATES, 800e6),
        stride=3,
    )

    # Figure 12(c): Lulesh.  Simulation dominates; paper's winner: c20_c8.
    allocation_table(
        "Lulesh on 28-core Xeon (Figure 12c; paper best c20_c8)",
        InSituScenario(xeon28, LULESH_RATES, 6.14e9 / 8),
        stride=3,
    )

    # Figure 13: cluster scalability, local vs remote storage.
    print("\n=== Heat3D cluster scalability (Figure 13) ===")
    base = InSituScenario(OAKLEY_NODE, HEAT3D_CLUSTER_RATES, 800e6)
    cluster = ClusterScenario(OAKLEY_NODE, base)
    print(f"  {'nodes':>5} {'full/local':>11} {'bm/local':>9} "
          f"{'speedup':>8} {'full/remote':>12} {'bm/remote':>10} {'speedup':>8}")
    for row in scalability_series(cluster, [1, 2, 4, 8, 16, 32]):
        print(
            f"  {int(row['nodes']):5d} {row['full_local']:10.0f}s "
            f"{row['bitmap_local']:8.0f}s {row['speedup_local']:7.2f}x "
            f"{row['full_remote']:11.0f}s {row['bitmap_remote']:9.0f}s "
            f"{row['speedup_remote']:7.2f}x"
        )
    print("\npaper's bands: local 1.24x-1.29x; remote 1.24x-3.79x growing "
          "with node count (the shared 100 MB/s server serialises).")


if __name__ == "__main__":
    main()
