"""Time-step selection on the LULESH-like proxy (the §5.1 Lulesh setup).

Each Lulesh time-step emits 12 node arrays (coordinates / velocity /
acceleration / force x XYZ); selection treats them as one payload and uses
the spatial Earth Mover's Distance -- the metric the paper accelerates to
3.45x-3.81x with per-bin XOR popcounts.

The script compares:
  * greedy selection, fixed-length vs information-volume partitioning;
  * greedy vs dynamic-programming selection (Tong et al.);
  * full-data vs bitmap back ends (identical answers, different costs).

Run:  python examples/timestep_selection_lulesh.py
"""

import time

from repro import BitmapIndex, LuleshProxy, common_binning
from repro.selection import (
    EMD_SPATIAL,
    select_timesteps_bitmap,
    select_timesteps_full,
)
from repro.selection.dp import select_timesteps_dp_bitmap

N_STEPS, SELECT_K = 30, 8
NODE_SHAPE = (10, 10, 10)


def main() -> None:
    print(f"simulating {N_STEPS} Lulesh steps on a {NODE_SHAPE} node mesh ...")
    sim = LuleshProxy(NODE_SHAPE, seed=3)
    steps = [s.concatenated() for s in sim.run(N_STEPS)]
    print(f"payload per step: {steps[0].size} values "
          f"({steps[0].nbytes / 1024:.0f} KiB, 12 arrays)")

    binning = common_binning(steps, bins=96)
    t0 = time.perf_counter()
    indices = [BitmapIndex.build(s, binning) for s in steps]
    t_build = time.perf_counter() - t0
    ratio = indices[0].nbytes / steps[0].nbytes
    print(f"bitmap build: {t_build:.2f}s, size ratio {ratio:.1%}")

    t0 = time.perf_counter()
    full = select_timesteps_full(steps, SELECT_K, EMD_SPATIAL, binning)
    t_full = time.perf_counter() - t0

    t0 = time.perf_counter()
    bitmap = select_timesteps_bitmap(indices, SELECT_K, EMD_SPATIAL)
    t_bitmap = time.perf_counter() - t0

    print(f"\ngreedy, fixed-length partitions, k={SELECT_K}:")
    print(f"  full data : {full.selected}   ({t_full:.3f}s)")
    print(f"  bitmaps   : {bitmap.selected}   ({t_bitmap:.3f}s)")
    assert full.selected == bitmap.selected, "back ends must agree"

    info = select_timesteps_bitmap(
        indices, SELECT_K, EMD_SPATIAL, partitioning="info_volume"
    )
    print(f"  info-volume partitions: {info.selected}")

    dp = select_timesteps_dp_bitmap(indices, SELECT_K, EMD_SPATIAL)
    print(f"  dynamic programming   : {dp.selected} "
          f"({dp.n_evaluations} pairwise evaluations vs {bitmap.n_evaluations})")

    def chain_score(sel):
        return sum(
            EMD_SPATIAL.bitmap(indices[a], indices[b])
            for a, b in zip(sel, sel[1:])
        )

    print(f"\nchain distinctness: greedy={chain_score(bitmap.selected):.0f}  "
          f"dp={chain_score(dp.selected):.0f} (dp >= greedy by construction)")


if __name__ == "__main__":
    main()
