"""Model sensitivity ablations: which parameters drive the paper's shapes.

DESIGN.md calls out the crossovers as *emergent* from cost structure, not
fitted point by point; these sweeps demonstrate it:

* the core count where bitmaps overtake full data, as a function of disk
  bandwidth (faster disks push the crossover right -- with no I/O pressure
  the extra bitmap build never pays);
* total-time speedup at 32 cores as a function of the bitmap size
  fraction (the only "compression quality" knob);
* encoder ablation: range-encoded vs equality-encoded index sizes on real
  simulation output.
"""

import numpy as np
import pytest

from _tables import format_table, save_table
from repro.bitmap import BitmapIndex, EqualWidthBinning
from repro.bitmap.range_index import RangeBitmapIndex
from repro.perfmodel import XEON32, InSituScenario, model_bitmaps, model_full_data
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.rates import HEAT3D_RATES
from repro.sims import Heat3D


def _crossover_cores(sc: InSituScenario) -> int:
    """First core count at which bitmaps win (33 = never)."""
    for cores in range(1, 33):
        if model_bitmaps(sc, cores).total < model_full_data(sc, cores).total:
            return cores
    return 33


def test_crossover_vs_disk_bandwidth(benchmark):
    def sweep():
        rows = []
        for bw in (100e6, 200e6, 400e6, 800e6, 1600e6, 6400e6):
            machine = MachineSpec(
                "xeon-variant", 32, 1.0, 1e12, bw, 100e6
            )
            sc = InSituScenario(machine, HEAT3D_RATES, 800e6)
            rows.append([f"{bw / 1e6:.0f}MB/s", _crossover_cores(sc)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- bitmaps-win crossover core count vs disk bandwidth",
        ["disk_bw", "crossover_cores"],
        rows,
    )
    save_table("ablation_crossover_disk", text)
    crossings = [r[1] for r in rows]
    # Slower disks favour bitmaps earlier; fast enough disks, never.
    assert crossings == sorted(crossings)
    assert crossings[0] <= 4
    assert crossings[-1] == 33


def test_speedup_vs_size_fraction(benchmark):
    def sweep():
        rows = []
        for frac in (0.05, 0.147, 0.30, 0.50, 0.80):
            rates = HEAT3D_RATES.scaled(bitmap_size_fraction=frac)
            sc = InSituScenario(XEON32, rates, 800e6)
            speedup = model_full_data(sc, 32).total / model_bitmaps(sc, 32).total
            rows.append([frac, speedup])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- 32-core speedup vs bitmap size fraction",
        ["size_fraction", "speedup"],
        rows,
    )
    save_table("ablation_size_fraction", text)
    speedups = [r[1] for r in rows]
    assert speedups == sorted(speedups, reverse=True)  # smaller is better
    assert speedups[0] > 2.0


def test_range_vs_equality_encoding(benchmark):
    def measure():
        sim = Heat3D((12, 16, 64), seed=6)
        for _ in range(30):
            step = sim.advance()
        data = step.fields["temperature"]
        binning = EqualWidthBinning.from_data(data, 48)
        eq = BitmapIndex.build(data, binning)
        rg = RangeBitmapIndex.build(data, binning)
        return eq.nbytes, rg.nbytes

    eq_bytes, rg_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- equality vs range encoding on Heat3D output (bytes)",
        ["encoding", "bytes"],
        [["equality", eq_bytes], ["range (cumulative)", rg_bytes]],
    )
    save_table("ablation_encoding", text)
    assert 0.3 < rg_bytes / eq_bytes < 3.0  # comparable under WAH
