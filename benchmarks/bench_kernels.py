"""Micro-benchmarks of the compressed bitwise kernels (§3.2's fast ops).

Ablations:

* fast (group-expansion) vs streaming (word-merge) logical ops;
* compressed AND+popcount vs the equivalent numpy boolean kernel on the
  decompressed data (what "hardware-supported bitwise ops" buys);
* count-only kernels vs materialising the result vector;
* compressed-domain (run-merge) count kernels vs decompress-then-popcount
  on well-compressed operands -- the dispatcher's streaming regime.
"""

import numpy as np
import pytest

from repro.bitmap import WAHBitVector
from repro.bitmap.ops import (
    and_count,
    and_count_streaming,
    auto_count,
    logical_and,
    logical_op_streaming,
    logical_xor,
    xor_count,
    xor_count_streaming,
)

N = 31 * 40_000  # 1.24M bits

#: Average run length (bits) of the sparse fixture; long runs push the
#: compression ratio into the dispatcher's streaming regime (<= 0.1).
SPARSE_RUN = 620


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(1)
    # Run-structured bits, the regime WAH is built for.
    a = np.repeat(rng.random(N // 200) < 0.3, 200)[:N]
    b = np.repeat(rng.random(N // 150) < 0.3, 150)[:N]
    a, b = np.resize(a, N), np.resize(b, N)
    return a, b, WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)


@pytest.fixture(scope="module")
def dense_vectors():
    rng = np.random.default_rng(3)
    # Unstructured bits: nearly every word is a literal (ratio ~1.0), the
    # regime where the dispatcher must stay on the group kernel.
    a = rng.random(N) < 0.5
    b = rng.random(N) < 0.5
    va, vb = WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)
    assert va.compression_ratio() > 0.9 and vb.compression_ratio() > 0.9
    return a, b, va, vb


@pytest.fixture(scope="module")
def sparse_vectors():
    rng = np.random.default_rng(7)
    a = np.resize(np.repeat(rng.random(N // SPARSE_RUN + 1) < 0.3, SPARSE_RUN), N)
    b = np.resize(np.repeat(rng.random(N // SPARSE_RUN + 1) < 0.3, SPARSE_RUN), N)
    va, vb = WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)
    # The acceptance regime: both operands compress to <= 0.1 words/group.
    assert va.compression_ratio() <= 0.1 and vb.compression_ratio() <= 0.1
    va.runs(), vb.runs()  # warm the memoised run decode (steady state)
    return a, b, va, vb


def test_kernel_and_fast(benchmark, vectors):
    _, _, va, vb = vectors
    benchmark(lambda: logical_and(va, vb))


def test_kernel_and_streaming(benchmark, vectors):
    _, _, va, vb = vectors
    out = benchmark(lambda: logical_op_streaming(va, vb, "and"))
    assert out == logical_and(va, vb)


def test_kernel_and_count_only(benchmark, vectors):
    a, b, va, vb = vectors
    count = benchmark(lambda: and_count(va, vb))
    assert count == int((a & b).sum())


def test_kernel_xor_count_only(benchmark, vectors):
    a, b, va, vb = vectors
    count = benchmark(lambda: xor_count(va, vb))
    assert count == int((a ^ b).sum())


def test_kernel_numpy_bool_baseline(benchmark, vectors):
    a, b, _, _ = vectors
    benchmark(lambda: int((a & b).sum()))


def test_kernel_xor_materialised(benchmark, vectors):
    _, _, va, vb = vectors
    benchmark(lambda: logical_xor(va, vb).count())


def test_kernel_and_count_streaming_sparse(benchmark, sparse_vectors):
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: and_count_streaming(va, vb))
    assert count == int((a & b).sum())


def test_kernel_and_count_dense_sparse(benchmark, sparse_vectors):
    """Decompress-then-popcount on the same sparse operands (the loser)."""
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: and_count(va, vb))
    assert count == int((a & b).sum())


def test_kernel_xor_count_streaming_sparse(benchmark, sparse_vectors):
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: xor_count_streaming(va, vb))
    assert count == int((a ^ b).sum())


def test_kernel_xor_count_dense_sparse(benchmark, sparse_vectors):
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: xor_count(va, vb))
    assert count == int((a ^ b).sum())


def test_kernel_auto_count_sparse(benchmark, sparse_vectors):
    """Dispatcher overhead on the streaming route (two ratio reads)."""
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: auto_count(va, vb, "and"))
    assert count == int((a & b).sum())


def test_kernel_auto_count_dense(benchmark, dense_vectors):
    """Dispatcher on dense operands must not regress the group kernel."""
    a, b, va, vb = dense_vectors
    count = benchmark(lambda: auto_count(va, vb, "and"))
    assert count == int((a & b).sum())


def test_kernel_and_count_dense_baseline(benchmark, dense_vectors):
    """The undispatched group kernel on the same dense operands."""
    a, b, va, vb = dense_vectors
    count = benchmark(lambda: and_count(va, vb))
    assert count == int((a & b).sum())


def test_kernel_popcount(benchmark, vectors):
    _, _, va, _ = vectors
    benchmark(va.count)


def test_kernel_compression(benchmark, vectors):
    a, _, _, _ = vectors
    benchmark(lambda: WAHBitVector.from_bools(a))


def test_kernel_decompression(benchmark, vectors):
    _, _, va, _ = vectors
    benchmark(va.to_bools)
