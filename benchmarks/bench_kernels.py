"""Micro-benchmarks of the compressed bitwise kernels (§3.2's fast ops).

Ablations:

* fast (group-expansion) vs streaming (word-merge) logical ops;
* compressed AND+popcount vs the equivalent numpy boolean kernel on the
  decompressed data (what "hardware-supported bitwise ops" buys);
* count-only kernels vs materialising the result vector;
* compressed-domain (run-merge) count kernels vs decompress-then-popcount
  on well-compressed operands -- the dispatcher's streaming regime;
* fused k-way reduction (``logical_op_many``) vs a pairwise
  ``reduce(logical_or, ...)`` fold on executor-shaped multi-bin
  operands -- what the kernels tier buys the range-query hot path.

Run as a script (``python bench_kernels.py [--smoke]``) to sweep the
k-way section over k in {2, 4, 8, 16}, assert the fused kernel's >= 2x
win at k >= 8 (skipped under ``--smoke``, which only checks parity),
and write ``results/kernels_kway.txt`` plus the machine-readable
``results/BENCH_kernels.json``.
"""

import argparse
import json
import sys
import time
from functools import reduce
from pathlib import Path

import numpy as np

import pytest

from repro.bitmap import BitmapIndex, EqualWidthBinning, WAHBitVector
from repro.bitmap.kernels import (
    KWAY_RUNMERGE_RATIO_THRESHOLD,
    auto_count_many,
    logical_op_many,
    op_count_many,
)
from repro.bitmap.ops import (
    and_count,
    and_count_streaming,
    auto_count,
    logical_and,
    logical_op_streaming,
    logical_or,
    logical_xor,
    or_count,
    xor_count,
    xor_count_streaming,
)
from repro.util.bits import HAS_HARDWARE_POPCOUNT

sys.path.insert(0, str(Path(__file__).parent))
from _tables import RESULTS_DIR, format_table, save_table

N = 31 * 40_000  # 1.24M bits

#: Average run length (bits) of the sparse fixture; long runs push the
#: compression ratio into the dispatcher's streaming regime (<= 0.1).
SPARSE_RUN = 620


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(1)
    # Run-structured bits, the regime WAH is built for.
    a = np.repeat(rng.random(N // 200) < 0.3, 200)[:N]
    b = np.repeat(rng.random(N // 150) < 0.3, 150)[:N]
    a, b = np.resize(a, N), np.resize(b, N)
    return a, b, WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)


@pytest.fixture(scope="module")
def dense_vectors():
    rng = np.random.default_rng(3)
    # Unstructured bits: nearly every word is a literal (ratio ~1.0), the
    # regime where the dispatcher must stay on the group kernel.
    a = rng.random(N) < 0.5
    b = rng.random(N) < 0.5
    va, vb = WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)
    assert va.compression_ratio() > 0.9 and vb.compression_ratio() > 0.9
    return a, b, va, vb


@pytest.fixture(scope="module")
def sparse_vectors():
    rng = np.random.default_rng(7)
    a = np.resize(np.repeat(rng.random(N // SPARSE_RUN + 1) < 0.3, SPARSE_RUN), N)
    b = np.resize(np.repeat(rng.random(N // SPARSE_RUN + 1) < 0.3, SPARSE_RUN), N)
    va, vb = WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)
    # The acceptance regime: both operands compress to <= 0.1 words/group.
    assert va.compression_ratio() <= 0.1 and vb.compression_ratio() <= 0.1
    va.runs(), vb.runs()  # warm the memoised run decode (steady state)
    return a, b, va, vb


def test_kernel_and_fast(benchmark, vectors):
    _, _, va, vb = vectors
    benchmark(lambda: logical_and(va, vb))


def test_kernel_and_streaming(benchmark, vectors):
    _, _, va, vb = vectors
    out = benchmark(lambda: logical_op_streaming(va, vb, "and"))
    assert out == logical_and(va, vb)


def test_kernel_and_count_only(benchmark, vectors):
    a, b, va, vb = vectors
    count = benchmark(lambda: and_count(va, vb))
    assert count == int((a & b).sum())


def test_kernel_xor_count_only(benchmark, vectors):
    a, b, va, vb = vectors
    count = benchmark(lambda: xor_count(va, vb))
    assert count == int((a ^ b).sum())


def test_kernel_numpy_bool_baseline(benchmark, vectors):
    a, b, _, _ = vectors
    benchmark(lambda: int((a & b).sum()))


def test_kernel_xor_materialised(benchmark, vectors):
    _, _, va, vb = vectors
    benchmark(lambda: logical_xor(va, vb).count())


def test_kernel_and_count_streaming_sparse(benchmark, sparse_vectors):
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: and_count_streaming(va, vb))
    assert count == int((a & b).sum())


def test_kernel_and_count_dense_sparse(benchmark, sparse_vectors):
    """Decompress-then-popcount on the same sparse operands (the loser)."""
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: and_count(va, vb))
    assert count == int((a & b).sum())


def test_kernel_xor_count_streaming_sparse(benchmark, sparse_vectors):
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: xor_count_streaming(va, vb))
    assert count == int((a ^ b).sum())


def test_kernel_xor_count_dense_sparse(benchmark, sparse_vectors):
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: xor_count(va, vb))
    assert count == int((a ^ b).sum())


def test_kernel_auto_count_sparse(benchmark, sparse_vectors):
    """Dispatcher overhead on the streaming route (two ratio reads)."""
    a, b, va, vb = sparse_vectors
    count = benchmark(lambda: auto_count(va, vb, "and"))
    assert count == int((a & b).sum())


def test_kernel_auto_count_dense(benchmark, dense_vectors):
    """Dispatcher on dense operands must not regress the group kernel."""
    a, b, va, vb = dense_vectors
    count = benchmark(lambda: auto_count(va, vb, "and"))
    assert count == int((a & b).sum())


def test_kernel_and_count_dense_baseline(benchmark, dense_vectors):
    """The undispatched group kernel on the same dense operands."""
    a, b, va, vb = dense_vectors
    count = benchmark(lambda: and_count(va, vb))
    assert count == int((a & b).sum())


def test_kernel_popcount(benchmark, vectors):
    _, _, va, _ = vectors
    benchmark(va.count)


def test_kernel_compression(benchmark, vectors):
    a, _, _, _ = vectors
    benchmark(lambda: WAHBitVector.from_bools(a))


def test_kernel_decompression(benchmark, vectors):
    _, _, va, _ = vectors
    benchmark(va.to_bools)


# --------------------------------------------------------------------------
# Fused k-way reduction vs pairwise fold (the executor's range-query path)
# --------------------------------------------------------------------------

#: Operand counts for the k-way sweep; 8 and 16 are the executor's
#: typical multi-bin range widths, 2 isolates the fusion overhead.
KWAY_SWEEP = [2, 4, 8, 16]


def range_query_operands(k: int, n_bits: int = N) -> list[WAHBitVector]:
    """``k`` adjacent bins of an equal-width index over gaussian data.

    This is exactly what the executor's ``_resolve_range`` hands to the
    OR reduction: disjoint bin bitvectors whose density tracks the value
    histogram.  Run decodes are pre-warmed (steady-state serving).
    """
    rng = np.random.default_rng(31 * k + 5)
    values = np.clip(rng.normal(0.0, 1.0, n_bits), -4.0, 4.0)
    index = BitmapIndex.build(values, EqualWidthBinning(-4.0, 4.0, 32))
    lo = (len(index.bitvectors) - k) // 2  # central (densest) bins
    vecs = list(index.bitvectors[lo : lo + k])
    for v in vecs:
        v.runs()
    return vecs


def pairwise_or_reduce(vectors: list[WAHBitVector]) -> WAHBitVector:
    """The pre-kernels executor path: a left fold of pairwise ORs."""
    return reduce(logical_or, vectors)


def pairwise_or_count(vectors: list[WAHBitVector]) -> int:
    if len(vectors) == 1:
        return vectors[0].count()
    folded = reduce(logical_or, vectors[:-1])
    return or_count(folded, vectors[-1])


@pytest.fixture(scope="module")
def kway_operands():
    return range_query_operands(8)


def test_kernel_kway_fused_or(benchmark, kway_operands):
    out = benchmark(lambda: logical_op_many(kway_operands, "or"))
    assert out == pairwise_or_reduce(kway_operands)


def test_kernel_kway_pairwise_or(benchmark, kway_operands):
    """The pairwise fold the fused kernel replaced (the loser at k=8)."""
    benchmark(lambda: pairwise_or_reduce(kway_operands))


def test_kernel_kway_fused_count(benchmark, kway_operands):
    count = benchmark(lambda: op_count_many(kway_operands, "or"))
    assert count == pairwise_or_reduce(kway_operands).count()
    assert count == auto_count_many(kway_operands, "or")


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_kway_sweep(smoke: bool = False) -> dict:
    """Sweep fused vs pairwise OR over k; return the JSON-able record."""
    n_bits = 31 * 4_000 if smoke else N
    repeats = 3 if smoke else 15
    rows: list[list[object]] = []
    record: list[dict] = []
    for k in KWAY_SWEEP:
        vecs = range_query_operands(k, n_bits)
        fused = logical_op_many(vecs, "or")
        folded = pairwise_or_reduce(vecs)
        assert fused == folded, f"k-way OR diverged from pairwise at k={k}"
        assert op_count_many(vecs, "or") == folded.count()
        t_pair = _best_seconds(lambda: pairwise_or_reduce(vecs), repeats)
        t_fused = _best_seconds(lambda: logical_op_many(vecs, "or"), repeats)
        t_pair_count = _best_seconds(lambda: pairwise_or_count(vecs), repeats)
        t_fused_count = _best_seconds(lambda: op_count_many(vecs, "or"), repeats)
        op_speedup = t_pair / t_fused
        count_speedup = t_pair_count / t_fused_count
        ratio = max(v.compression_ratio() for v in vecs)
        rows.append(
            [
                k,
                ratio,
                t_pair * 1e6,
                t_fused * 1e6,
                op_speedup,
                count_speedup,
            ]
        )
        record.append(
            {
                "k": k,
                "max_compression_ratio": round(ratio, 4),
                "pairwise_or_us": round(t_pair * 1e6, 1),
                "fused_or_us": round(t_fused * 1e6, 1),
                "or_speedup": round(op_speedup, 2),
                "pairwise_count_us": round(t_pair_count * 1e6, 1),
                "fused_count_us": round(t_fused_count * 1e6, 1),
                "count_speedup": round(count_speedup, 2),
            }
        )
    table = format_table(
        f"Fused k-way OR vs pairwise fold (N={n_bits} bits, equal-width "
        f"range-query operands{', SMOKE' if smoke else ''})",
        ["k", "ratio", "pairwise_us", "fused_us", "or_speedup", "count_speedup"],
        rows,
    )
    save_table("kernels_kway", table)
    result = {
        "n_bits": n_bits,
        "smoke": smoke,
        "hardware_popcount": HAS_HARDWARE_POPCOUNT,
        "kway_runmerge_ratio_threshold": KWAY_RUNMERGE_RATIO_THRESHOLD,
        "kway": record,
    }
    json_path = RESULTS_DIR / "BENCH_kernels.json"
    json_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"[saved to {json_path}]")
    if not smoke:
        losers = {r["k"]: r["or_speedup"] for r in record if r["k"] >= 8}
        assert all(s >= 2.0 for s in losers.values()), (
            f"fused k-way OR under 2x vs pairwise fold at k >= 8: {losers}"
        )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small operands, parity checks only (no speedup assertion)",
    )
    args = parser.parse_args(argv)
    run_kway_sweep(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
