"""Micro-benchmarks of the compressed bitwise kernels (§3.2's fast ops).

Ablations:

* fast (group-expansion) vs streaming (word-merge) logical ops;
* compressed AND+popcount vs the equivalent numpy boolean kernel on the
  decompressed data (what "hardware-supported bitwise ops" buys);
* count-only kernels vs materialising the result vector.
"""

import numpy as np
import pytest

from repro.bitmap import WAHBitVector
from repro.bitmap.ops import (
    and_count,
    logical_and,
    logical_op_streaming,
    logical_xor,
    xor_count,
)

N = 31 * 40_000  # 1.24M bits


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(1)
    # Run-structured bits, the regime WAH is built for.
    a = np.repeat(rng.random(N // 200) < 0.3, 200)[:N]
    b = np.repeat(rng.random(N // 150) < 0.3, 150)[:N]
    a, b = np.resize(a, N), np.resize(b, N)
    return a, b, WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)


def test_kernel_and_fast(benchmark, vectors):
    _, _, va, vb = vectors
    benchmark(lambda: logical_and(va, vb))


def test_kernel_and_streaming(benchmark, vectors):
    _, _, va, vb = vectors
    out = benchmark(lambda: logical_op_streaming(va, vb, "and"))
    assert out == logical_and(va, vb)


def test_kernel_and_count_only(benchmark, vectors):
    a, b, va, vb = vectors
    count = benchmark(lambda: and_count(va, vb))
    assert count == int((a & b).sum())


def test_kernel_xor_count_only(benchmark, vectors):
    a, b, va, vb = vectors
    count = benchmark(lambda: xor_count(va, vb))
    assert count == int((a ^ b).sum())


def test_kernel_numpy_bool_baseline(benchmark, vectors):
    a, b, _, _ = vectors
    benchmark(lambda: int((a & b).sum()))


def test_kernel_xor_materialised(benchmark, vectors):
    _, _, va, vb = vectors
    benchmark(lambda: logical_xor(va, vb).count())


def test_kernel_popcount(benchmark, vectors):
    _, _, va, _ = vectors
    benchmark(va.count)


def test_kernel_compression(benchmark, vectors):
    a, _, _, _ = vectors
    benchmark(lambda: WAHBitVector.from_bools(a))


def test_kernel_decompression(benchmark, vectors):
    _, _, va, _ = vectors
    benchmark(va.to_bools)
