"""Figure 10: Lulesh on the Intel MIC (768 MB steps, 8 GB node memory).

Paper: speedup band 0.92x .. 2.62x -- between Figure 9's (heavy compute)
and Figure 8's (weak I/O) regimes.
"""

import pytest

from _tables import format_table, save_table
from repro.perfmodel import MIC60, InSituScenario, speedup_over_cores
from repro.perfmodel.rates import LULESH_RATES

CORES = [1, 2, 4, 8, 16, 32, 56]
SCENARIO = InSituScenario(MIC60, LULESH_RATES, 0.768e9 / 8)


def generate_table() -> list[list[object]]:
    return [
        [cores, full.total, bm.total, speedup]
        for cores, full, bm, speedup in speedup_over_cores(SCENARIO, CORES)
    ]


def test_figure10_table(benchmark):
    rows = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    text = format_table(
        "Figure 10 -- Lulesh, Intel MIC, 100 steps -> 25 (seconds, modelled)",
        ["cores", "fulldata", "bitmaps", "speedup"],
        rows,
    )
    save_table("fig10_lulesh_mic", text)
    speedups = [r[-1] for r in rows]
    # Paper band: 0.92x .. 2.62x (we land slightly shallower at the top;
    # ordering and crossover match -- see EXPERIMENTS.md).
    assert 0.8 < speedups[0] < 1.05
    assert speedups[-1] > 1.8
    assert speedups == sorted(speedups)
