"""Query-service benchmark: lazy loads + LRU cache vs whole-index loads.

Serves a stored multi-step bitmap store through :class:`QueryService`
and measures, per query:

* **baseline** -- the pre-service path: ``load_index`` every referenced
  file in full, then ``execute_query`` (what ``repro query`` did before
  the service existed);
* **cold** -- first service execution: catalog + lazy per-bin loads;
* **warm** -- repeat execution served from the bitvector cache.

Also measures concurrent throughput (a mixed workload through the
service's thread pool vs the serial baseline) and writes
``benchmarks/results/query_service.txt``, quoted by DESIGN.md's
"Query service" section.

Runs as a pytest test (smoke-sized) or as a script::

    PYTHONPATH=src python benchmarks/bench_query_service.py [--smoke]
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _tables import format_table, save_table

from repro.analysis.sql import execute_query, parse_query
from repro.bitmap import BitmapIndex, EqualWidthBinning, ZOrderLayout, load_index
from repro.io.timeseries import BitmapStore
from repro.service import QueryService
from repro.sims import OceanDataGenerator

QUERIES = [
    "SELECT MI FROM temperature, salinity",
    "SELECT CE FROM temperature, salinity WHERE temperature >= 12",
    "SELECT COUNT FROM temperature, salinity WHERE salinity BETWEEN 30 AND 33",
]


def _build_store(root: Path, shape, steps: int, bins: int) -> ZOrderLayout:
    layout = ZOrderLayout.for_shape(shape)
    gen = OceanDataGenerator(shape, seed=7)
    snaps = [gen.advance() for _ in range(steps)]
    flat = {
        name: [layout.flatten(s.fields[name]) for s in snaps]
        for name in ("temperature", "salinity")
    }
    binnings = {
        name: EqualWidthBinning.from_data(np.concatenate(arrs), bins)
        for name, arrs in flat.items()
    }
    store = BitmapStore(root)
    for step in range(steps):
        for name in flat:
            store.write(
                step, name, BitmapIndex.build(flat[name][step], binnings[name])
            )
    return layout


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _baseline(root: Path, sql: str, step: int, layout: ZOrderLayout) -> float:
    """The whole-index path: read every byte of both files, then execute."""
    query = parse_query(sql)
    indices = {
        var: load_index(root / f"step_{step:05d}" / f"{var}.rbmp")
        for var in (query.var_a, query.var_b)
    }
    return execute_query(query, indices, layout=layout)


def run(smoke: bool = False) -> None:
    shape = (8, 16, 32) if smoke else (16, 32, 64)
    steps = 2 if smoke else 4
    bins = 16 if smoke else 48
    repeats = 3 if smoke else 10
    step = steps - 1

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        layout = _build_store(root, shape, steps, bins)
        rows: list[list[object]] = []
        # max_pending sized for the throughput burst below; the default
        # (32) would correctly reject the 48-query batch as overload.
        with QueryService(
            root, layout=layout, max_workers=4, max_pending=256
        ) as service:
            for sql in QUERIES:
                t_base = _best_seconds(
                    lambda: _baseline(root, sql, step, layout), repeats
                )
                service.cache.clear()
                cold = service.execute(sql, step=step)
                t_cold = cold.stats.total_s
                warm = service.execute(sql, step=step)
                t_warm = _best_seconds(
                    lambda: service.execute(sql, step=step), repeats
                )
                assert warm.stats.cache_misses == 0, "warm run must hit cache"
                assert warm.value == cold.value
                rows.append(
                    [
                        sql[7 : sql.index(" FROM")] + (
                            "+WHERE" if "WHERE" in sql else ""
                        ),
                        t_base * 1e3,
                        t_cold * 1e3,
                        t_warm * 1e3,
                        t_base / t_warm,
                        cold.stats.bytes_loaded,
                        warm.stats.bytes_loaded,
                    ]
                )

            # Concurrent throughput over a mixed warm workload.
            workload = QUERIES * (4 if smoke else 16)
            t0 = time.perf_counter()
            service.execute_many(workload, step=step)
            t_pool = time.perf_counter() - t0
            t0 = time.perf_counter()
            for sql in workload:
                service.execute(sql, step=step)
            t_serial = time.perf_counter() - t0
            t0 = time.perf_counter()
            for sql in workload:
                _baseline(root, sql, step, layout)
            t_base_all = time.perf_counter() - t0
            cache = service.cache.stats()

        store_bytes = sum(
            p.stat().st_size for p in root.rglob("*.rbmp")
        )
        title = (
            f"Query service: shape={shape} steps={steps} bins={bins} "
            f"store={store_bytes / 2**20:.2f}MiB "
            f"(baseline = load_index whole files + execute)"
        )
        text = format_table(
            title,
            [
                "query",
                "baseline_ms",
                "cold_ms",
                "warm_ms",
                "warm_speedup",
                "cold_bytes",
                "warm_bytes",
            ],
            rows,
        )
        thr = (
            f"\nconcurrent throughput ({len(workload)} warm queries): "
            f"pool {len(workload) / t_pool:.0f} q/s, "
            f"serial {len(workload) / t_serial:.0f} q/s, "
            f"whole-index baseline {len(workload) / t_base_all:.0f} q/s\n"
            f"cache: {cache.hits} hits / {cache.misses} misses "
            f"({cache.hit_rate:.0%} hit rate), "
            f"{cache.bytes_cached / 2**10:.0f}KiB resident"
        )
        save_table("query_service", text + thr)

        # Acceptance: selective queries (where I/O dominates) see a clear
        # warm win; full-metric queries are compute-bound, so the service
        # must merely never lose to reloading whole indices.
        speedups = [row[4] for row in rows]
        assert speedups[-1] > 2.0, f"no warm win on selective COUNT: {speedups}"
        if not smoke:  # sub-ms smoke timings are too noisy to gate on
            assert all(s > 0.8 for s in speedups), f"warm regression: {speedups}"
        assert cache.hits > 0 and cache.hit_rate > 0.5


def test_query_service_smoke():
    run(smoke=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small and fast")
    run(smoke=parser.parse_args().smoke)
