"""Skewed-load benchmark: hot-set replication on vs off.

The workload the hot-set subsystem exists for: a zipf distribution over
rank directories makes one rank absorb most queries, so the static
``rank mod shards`` ownership map bottlenecks on one worker no matter
how many shards run.  This benchmark drives the *same* seeded query
sequence through a replicating server and a plain one and reports the
throughput ratio -- the replication-on run spreads the hot rank's
queries over the replica holders the :class:`ReplicaManager` placed.

* **closed loop** -- N clients issue the zipf sequence back-to-back;
  reports wall q/s, latency percentiles, and the per-shard dispatch
  spread (the visible mechanism: with replication off, the hot rank's
  owner takes ~everything);
* **capacity throughput** -- queries / busiest-shard CPU-seconds, from
  the workers' own ``busy_s`` counters (thread CPU time spent serving).
  This is the shard-parallel throughput: the rate the pool sustains
  when each worker process has a core of its own, the deployment the
  shard layer exists for.
  On a single-core CI box the worker processes timeshare one core, so
  *wall* q/s cannot exceed the serial rate no matter how well load is
  placed -- the capacity ratio is the placement signal that transfers,
  and it is what the >= 1.5x acceptance gate checks;
* **open loop** -- the same sequence on a fixed arrival schedule;
  lateness from the *scheduled* time shows the queueing the bottleneck
  shard causes once arrivals outpace it.

Every RNG is seeded (``--seed``): both servers see byte-identical query
sequences, so the ratio measures placement, not luck.  Writes
``benchmarks/results/load_skewed.txt``.  Runs as a pytest smoke test or
a script::

    PYTHONPATH=src python benchmarks/bench_load_skewed.py [--smoke]
"""

import argparse
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _tables import format_table, save_table

from repro.bitmap import BitmapIndex, EqualWidthBinning, save_index
from repro.service import QueryServer, ServiceClient

#: zipf exponent over ranks: p(rank r) ~ 1/(r+1)**ALPHA.  At 4 ranks,
#: rank_0000 absorbs ~79% of the load.
ALPHA = 2.5

#: Per-rank query templates, heavy (full-histogram metric) queries
#: dominating so the bottleneck is worker compute, as in real serving.
TEMPLATES = [
    "SELECT MI FROM {r}/temperature, {r}/salinity",
    "SELECT CE FROM {r}/temperature, {r}/salinity",
    "SELECT MI FROM {r}/temperature, {r}/salinity "
    "WHERE {r}/temperature >= 8",
    "SELECT COUNT FROM {r}/temperature, {r}/salinity "
    "WHERE {r}/salinity BETWEEN 30 AND 34",
]


def _build_rank_store(
    root: Path, ranks: int, steps: int, per_rank: int, bins: int, seed: int
) -> None:
    rng = np.random.default_rng(seed)
    binnings = {
        "temperature": EqualWidthBinning(5.0, 20.0, bins),
        "salinity": EqualWidthBinning(28.0, 38.0, bins),
    }
    for rank in range(ranks):
        for step in range(steps):
            d = root / f"rank_{rank:04d}" / f"step_{step:05d}"
            d.mkdir(parents=True, exist_ok=True)
            for var, binning in binnings.items():
                lo, hi = binning.edges[0], binning.edges[-1]
                data = rng.uniform(lo, hi, per_rank)
                save_index(
                    d / f"{var}.rbmp", BitmapIndex.build(data, binning)
                )


def zipf_sequence(
    ranks: int, n_queries: int, seed: int
) -> tuple[list[str], np.ndarray]:
    """The seeded skewed workload: a list of SQL strings whose rank
    choices follow the zipf law.  Returns (queries, rank probabilities).
    """
    weights = 1.0 / (np.arange(1, ranks + 1) ** ALPHA)
    probs = weights / weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(ranks, size=n_queries, p=probs)
    templates = rng.integers(0, len(TEMPLATES), size=n_queries)
    queries = [
        TEMPLATES[t].format(r=f"rank_{r:04d}")
        for r, t in zip(picks, templates)
    ]
    return queries, probs


def _percentiles(samples: list[float]) -> tuple[float, float]:
    arr = np.sort(np.asarray(samples))
    return tuple(
        float(arr[min(len(arr) - 1, int(q * len(arr)))]) * 1e3
        for q in (0.50, 0.95)
    )


def _closed_loop(
    port: int, queries: list[str], clients: int
) -> tuple[float, list[float], int]:
    """Split the sequence round-robin over ``clients`` connections, each
    issuing its share back-to-back.  Returns (wall, latencies, failures).
    """
    latencies: list[list[float]] = [[] for _ in range(clients)]
    failures = [0] * clients

    def worker(cid: int) -> None:
        with ServiceClient("127.0.0.1", port) as client:
            for i in range(cid, len(queries), clients):
                t0 = time.perf_counter()
                try:
                    client.query(queries[i], step=0)
                except Exception:
                    failures[cid] += 1
                    continue
                latencies[cid].append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=worker, args=(cid,)) for cid in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, [s for per in latencies for s in per], sum(failures)


def _open_loop(
    port: int, queries: list[str], rate_hz: float, clients: int
) -> tuple[list[float], int]:
    """Fixed-schedule arrivals; lateness measured from scheduled time."""
    lateness: list[list[float]] = [[] for _ in range(clients)]
    failures = [0] * clients
    start = time.perf_counter() + 0.05
    interval = 1.0 / rate_hz

    def worker(cid: int) -> None:
        with ServiceClient("127.0.0.1", port) as client:
            for i in range(cid, len(queries), clients):
                deadline = start + i * interval
                delay = deadline - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    client.query(queries[i], step=0)
                except Exception:
                    failures[cid] += 1
                    continue
                lateness[cid].append(time.perf_counter() - deadline)

    threads = [
        threading.Thread(target=worker, args=(cid,)) for cid in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [s for per in lateness for s in per], sum(failures)


def _run_server(
    root: Path,
    shards: int,
    replicate: bool,
    queries: list[str],
    warmup: list[str],
    clients: int,
    rate_hz: float | None,
):
    """One measured pass: warm, place (if replicating), measure.

    ``rate_hz=None`` derives the open-loop rate from this pass's own
    closed-loop throughput; the caller reuses the first pass's rate for
    the second so both runs face the same arrival schedule.
    """
    with QueryServer(
        root,
        shards=shards,
        port=0,
        replicate=replicate,
        rebalance_interval=3600.0,  # placement is the explicit call below
        hotset_top_k=256,
    ).launch() as server:
        _, _, wfail = _closed_loop(server.port, warmup, clients)
        assert wfail == 0, f"{wfail} warmup failures"
        if replicate:
            report = server.rebalance()
            assert report is not None and report.published
        busy0 = [s["service"]["busy_s"] for s in server.pool.stats()]
        wall, lats, failures = _closed_loop(server.port, queries, clients)
        assert failures == 0, f"{failures} failed queries"
        busy = [
            s["service"]["busy_s"] - b0
            for s, b0 in zip(server.pool.stats(), busy0)
        ]
        dispatch = server.pool.dispatch_counts()
        if rate_hz is None:
            rate_hz = max(10.0, 0.75 * len(lats) / wall)
        olate, ofail = _open_loop(server.port, queries, rate_hz, clients)
        assert ofail == 0, f"{ofail} failed open-loop queries"
        routes = len(server.routing.routes())
        return wall, lats, busy, dispatch, olate, routes, rate_hz


def run(smoke: bool = False, seed: int = 11) -> None:
    ranks = 2 if smoke else 4
    steps = 1 if smoke else 2
    per_rank = 2_000 if smoke else 20_000
    bins = 8 if smoke else 32
    clients = 4 if smoke else 8
    n_queries = 32 if smoke else 320
    shards = 2 if smoke else 4

    queries, probs = zipf_sequence(ranks, n_queries, seed)
    warmup, _ = zipf_sequence(ranks, max(16, n_queries // 4), seed + 1)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        _build_rank_store(root, ranks, steps, per_rank, bins, seed)

        rows, open_rows, spread_rows = [], [], []
        wall_qps, cap_qps = {}, {}
        rate_hz = None  # first (plain) pass sets the shared schedule
        for replicate in (False, True):
            wall, lats, busy, dispatch, olate, routes, rate_hz = _run_server(
                root, shards, replicate, queries, warmup, clients, rate_hz
            )
            wall_qps[replicate] = len(lats) / wall
            cap_qps[replicate] = len(lats) / max(busy)
            p50, p95 = _percentiles(lats)
            label = "on" if replicate else "off"
            rows.append(
                [label, shards, len(lats), wall_qps[replicate],
                 cap_qps[replicate], p50, p95, routes]
            )
            op50, op95 = _percentiles(olate)
            open_rows.append(
                [label, f"{rate_hz:.0f}/s", len(olate), op50, op95]
            )
            spread_rows.append(
                [label] + dispatch + [f"{b:.2f}" for b in busy]
            )

        wall_ratio = wall_qps[True] / wall_qps[False]
        cap_ratio = cap_qps[True] / cap_qps[False]
        title = (
            f"Skewed load (zipf alpha={ALPHA}, p(hot rank)="
            f"{probs[0]:.2f}): ranks={ranks} steps={steps} "
            f"elements/rank={per_rank} bins={bins} shards={shards} "
            f"({clients} clients, {n_queries} queries, seed={seed}, "
            f"{os.cpu_count()} cpu)"
        )
        text = format_table(
            title,
            ["replication", "shards", "queries", "wall_q/s", "cap_q/s",
             "p50_ms", "p95_ms", "routes"],
            rows,
        )
        text += "\n\n" + format_table(
            "Open loop (same schedule both runs; lateness from scheduled "
            "arrival)",
            ["replication", "rate", "done", "late_p50_ms", "late_p95_ms"],
            open_rows,
        )
        text += "\n\n" + format_table(
            "Per-shard dispatch counts and serving CPU seconds "
            "(closed loop)",
            ["replication"]
            + [f"shard{t}" for t in range(shards)]
            + [f"cpu{t}_s" for t in range(shards)],
            spread_rows,
        )
        text += (
            f"\n\nthroughput ratio, replication on / off:"
            f"\n  capacity (queries / busiest-shard CPU seconds, = wall"
            f" q/s with one core per worker): {cap_ratio:.2f}x"
            f"\n  wall clock on this {os.cpu_count()}-cpu host:"
            f" {wall_ratio:.2f}x"
        )
        save_table("load_skewed", text)
        if not smoke:
            assert cap_ratio >= 1.5, (
                f"replication-on capacity throughput only {cap_ratio:.2f}x "
                f"of off (need >= 1.5x)"
            )
            cores = os.cpu_count() or 1
            if cores >= shards:
                assert wall_ratio >= 1.5, (
                    f"{cores} cores available but wall throughput only "
                    f"{wall_ratio:.2f}x (need >= 1.5x)"
                )


def test_load_skewed_smoke():
    run(smoke=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small and fast")
    parser.add_argument(
        "--seed", type=int, default=11,
        help="RNG seed for the store and the zipf sequence",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, seed=args.seed)
