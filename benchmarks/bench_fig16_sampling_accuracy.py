"""Figure 16: accuracy loss of sampling for time-step selection (measured).

Paper: conditional entropy computed on 30% / 15% / 5% samples loses on
average 21.03% / 37.56% / 58.37% relative to the exact values, while
bitmaps are exact at the same binning scale.  The CFP curves shift right
as the sample shrinks.

Fully measured here: real Heat3D steps, all step pairs, real samplers, and
the exactness of the bitmap path asserted alongside.
"""

import numpy as np
import pytest

from _tables import format_table, save_table
from repro.analysis.cfp import absolute_differences, cfp_curve, mean_relative_loss
from repro.bitmap import BitmapIndex, common_binning
from repro.insitu.sampling import Sampler, pairwise_conditional_entropy_errors
from repro.metrics import conditional_entropy, conditional_entropy_bitmap
from repro.sims import Heat3D

FRACTIONS = [0.30, 0.15, 0.05]
N_STEPS = 12


def _steps():
    # Analysis steps taken every 8 simulation steps so consecutive pairs
    # carry real evolution (adjacent raw steps of a tiny grid are
    # near-identical, which degenerates relative-loss statistics).
    sim = Heat3D((12, 16, 64), seed=5)
    steps = []
    for k in range(8 * N_STEPS):
        out = sim.advance()
        if k % 8 == 0:
            steps.append(out.fields["temperature"])
    # Fewer bins than §5.1's 64-206: our grids are ~5 orders of magnitude
    # smaller, so the joint histograms need coarser bins to be estimable
    # from samples at all (the paper's relative losses are already 21-58%
    # at 800M elements; tiny grids only amplify the effect).
    binning = common_binning(steps, bins=32)
    return steps, binning


def generate_table() -> tuple[list[list[object]], dict[float, object]]:
    steps, binning = _steps()
    rows: list[list[object]] = []
    curves = {}
    for frac in FRACTIONS:
        sampler = Sampler(frac, mode="random", seed=9)
        orig, samp = pairwise_conditional_entropy_errors(steps, binning, sampler)
        curve = cfp_curve(absolute_differences(orig, samp))
        curves[frac] = curve
        rows.append(
            [
                f"{frac:.0%}",
                mean_relative_loss(orig, samp),
                curve.quantile(0.5),
                curve.quantile(0.9),
            ]
        )
    # Bitmaps row: exact, zero loss (asserted below).
    rows.append(["bitmaps", 0.0, 0.0, 0.0])
    return rows, curves


def test_figure16_measured(benchmark):
    rows, curves = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    text = format_table(
        "Figure 16 -- sampling accuracy loss for time-step selection "
        "(measured; paper mean losses 21%/38%/58% at 30%/15%/5%)",
        ["method", "mean_rel_loss", "median_abs_err", "p90_abs_err"],
        rows,
    )
    save_table("fig16_sampling_accuracy", text)
    losses = [r[1] for r in rows[:-1]]
    # Monotone: smaller samples lose more information (the paper's shape;
    # absolute magnitudes are scale-dependent, see EXPERIMENTS.md).
    assert losses == sorted(losses)
    assert losses[-1] > losses[0] * 1.2
    assert losses[0] > 0.0
    # CFP tails shift right (worse) as the fraction shrinks.  Individual
    # low deciles are sampling noise at this scale, so compare the tail.
    assert curves[0.30].quantile(0.9) <= curves[0.05].quantile(0.9) + 1e-12


def test_bitmaps_exact(benchmark):
    def check():
        steps, binning = _steps()
        max_err = 0.0
        indices = [BitmapIndex.build(s, binning) for s in steps]
        for i in range(0, N_STEPS - 1, 3):
            exact = conditional_entropy(steps[i + 1], steps[i], binning, binning)
            bm = conditional_entropy_bitmap(indices[i + 1], indices[i])
            max_err = max(max_err, abs(exact - bm))
        return max_err

    assert benchmark.pedantic(check, rounds=1, iterations=1) < 1e-10


def test_kernel_sampled_ce(benchmark):
    steps, binning = _steps()
    sampler = Sampler(0.15, mode="random", seed=9)
    from repro.insitu.sampling import sampled_conditional_entropy

    benchmark(
        lambda: sampled_conditional_entropy(steps[0], steps[1], binning, sampler)
    )
