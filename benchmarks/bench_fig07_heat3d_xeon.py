"""Figure 7: Heat3D on the 32-core Xeon -- full data vs bitmaps, 1..32 cores.

Paper: selecting 25 of 100 time-steps (conditional entropy, fixed-length
partitioning) on 6.4 GB steps; total-time speedup 0.79x at low core counts
rising to 2.37x at 32 cores; write time 6.78x smaller with bitmaps; "the
data writing time becomes the major bottleneck after we use 4 cores".

Here: the hardware axis comes from the calibrated model (DESIGN.md
substitution); the micro-benchmark times the *real* per-step kernels
(Heat3D step, bitmap build, bitmap conditional-entropy evaluation) at
laptop scale.
"""

import numpy as np
import pytest

from _tables import format_table, save_table
from repro.bitmap import BitmapIndex, PrecisionBinning
from repro.metrics import conditional_entropy_bitmap
from repro.perfmodel import (
    XEON32,
    InSituScenario,
    model_bitmaps,
    model_full_data,
    speedup_over_cores,
)
from repro.perfmodel.rates import HEAT3D_RATES
from repro.sims import Heat3D

CORES = [1, 2, 4, 8, 16, 32]
SCENARIO = InSituScenario(XEON32, HEAT3D_RATES, 800e6)  # 6.4 GB steps


def generate_table() -> list[list[object]]:
    rows: list[list[object]] = []
    for cores, full, bm, speedup in speedup_over_cores(SCENARIO, CORES):
        rows.append(
            [
                cores,
                full.simulate, full.select, full.output, full.total,
                bm.simulate, bm.reduce, bm.select, bm.output, bm.total,
                speedup,
            ]
        )
    return rows


def test_figure7_table(benchmark):
    rows = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    text = format_table(
        "Figure 7 -- Heat3D, Xeon, 100 steps -> 25 (seconds, modelled)",
        ["cores",
         "fd:sim", "fd:select", "fd:write", "fd:total",
         "bm:sim", "bm:build", "bm:select", "bm:write", "bm:total",
         "speedup"],
        rows,
    )
    save_table("fig07_heat3d_xeon", text)
    speedups = [r[-1] for r in rows]
    # Paper band: 0.79x .. 2.37x with a crossover as cores grow.
    assert speedups[0] < 1.0
    assert speedups[-1] == pytest.approx(2.37, abs=0.25)
    assert speedups == sorted(speedups)


def test_write_bottleneck_after_4_cores(benchmark):
    def check():
        for cores in (8, 16, 32):
            t = model_full_data(SCENARIO, cores)
            assert t.output > max(t.simulate, t.select)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_write_speedup_678(benchmark):
    ratio = benchmark.pedantic(
        lambda: model_full_data(SCENARIO, 8).output / model_bitmaps(SCENARIO, 8).output,
        rounds=1,
        iterations=1,
    )
    assert ratio == pytest.approx(6.78, abs=0.5)


# ------------------------------------------------------ measured kernels
@pytest.fixture(scope="module")
def heat_steps():
    sim = Heat3D((16, 16, 64), seed=1)
    steps = [s.fields["temperature"] for s in sim.run(6)]
    binning = PrecisionBinning(19.0, 101.0, digits=1)
    return sim, steps, binning


def test_kernel_simulation_step(benchmark, heat_steps):
    sim, _, _ = heat_steps
    benchmark(sim.advance)


def test_kernel_bitmap_build(benchmark, heat_steps):
    _, steps, binning = heat_steps
    benchmark(lambda: BitmapIndex.build(steps[-1], binning))


def test_kernel_bitmap_selection_eval(benchmark, heat_steps):
    _, steps, binning = heat_steps
    ia = BitmapIndex.build(steps[0], binning)
    ib = BitmapIndex.build(steps[-1], binning)
    result = benchmark(lambda: conditional_entropy_bitmap(ib, ia))
    assert np.isfinite(result)
