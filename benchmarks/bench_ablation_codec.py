"""Ablation: the codec design space (§2.1) over the pluggable codec layer.

The paper picks WAH for its word-aligned operations; BBC [4] is the
cited byte-aligned alternative, and the codec registry
(:mod:`repro.bitmap.codec`) adds Roaring and WAH64 as selectable
backends.  Two measurement modes:

* pytest-benchmark micro-benchmarks on identical Heat3D bitmap data --
  sizes plus AND+count kernels per registered codec (and BBC / raw
  numpy bools for the historical comparison);
* a scriptable codec x density matrix (``python
  bench_ablation_codec.py [--smoke]``) sweeping every registered codec
  over {empty, sparse, mid, dense, full} bins, asserting cross-codec
  parity on every cell, and writing size + op-throughput records to
  ``results/BENCH_codec.json`` -- the artifact behind the
  ``select_codec`` density thresholds.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _tables import RESULTS_DIR, format_table, save_table

from repro.bitmap import (
    CODECS,
    PrecisionBinning,
    build_bitvectors,
    convert,
    op_count_any,
    select_codec,
)
from repro.bitmap.bbc import BBCBitVector, bbc_and_count
from repro.bitmap.ops import and_count, logical_op_streaming
from repro.sims import Heat3D

CODEC_NAMES = tuple(CODECS)

#: The density matrix: bin shapes the auto-selection policy discriminates.
DENSITIES = {
    "empty": 0.0,
    "sparse": 0.001,
    "mid": 0.02,
    "dense": 0.3,
    "full": 1.0,
}


@pytest.fixture(scope="module")
def codec_data():
    sim = Heat3D((16, 16, 64), seed=4)
    for _ in range(40):
        step = sim.advance()
    data = step.fields["temperature"].ravel()
    binning = PrecisionBinning.from_data(data, digits=1)
    wah = build_bitvectors(data, binning)
    # The two densest bins exercise the op kernels hardest.
    by_count = sorted(wah, key=lambda v: -v.count())[:2]
    pairs = {
        name: (convert(by_count[0], name), convert(by_count[1], name))
        for name in CODEC_NAMES
    }
    return {
        "wah": wah,
        "pairs": pairs,
        "bbc_a": BBCBitVector.from_bools(by_count[0].to_bools()),
        "bbc_b": BBCBitVector.from_bools(by_count[1].to_bools()),
        "bool_a": by_count[0].to_bools(),
        "bool_b": by_count[1].to_bools(),
        "n_bits": data.size,
        "n_bins": binning.n_bins,
    }


def test_codec_sizes(benchmark, codec_data):
    def table():
        raw_total = codec_data["n_bins"] * (-(-codec_data["n_bits"] // 8))
        rows = [["uncompressed bitset", raw_total, 1.0]]
        for name in CODEC_NAMES:
            total = sum(
                convert(v, name).nbytes for v in codec_data["wah"]
            )
            rows.append([name, total, total / raw_total])
        bbc_total = sum(
            BBCBitVector.from_bools(v.to_bools()).nbytes
            for v in codec_data["wah"]
        )
        rows.append(["bbc", bbc_total, bbc_total / raw_total])
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- codec sizes over all Heat3D bitvectors (bytes)",
        ["codec", "bytes", "vs_uncompressed"],
        rows,
    )
    save_table("ablation_codec_size", text)
    sizes = {r[0]: r[1] for r in rows}
    # Both word-aligned codecs crush the raw bitset; on long-run
    # simulation data WAH's 30-bit fill counters beat BBC's 6-bit ones
    # (BBC wins on short runs, see tests/bitmap/test_bbc.py).
    assert sizes["wah"] < 0.05 * sizes["uncompressed bitset"]
    assert sizes["bbc"] < 0.05 * sizes["uncompressed bitset"]


@pytest.mark.parametrize("name", CODEC_NAMES)
def test_kernel_codec_and_count(benchmark, codec_data, name):
    """Native same-codec AND+count through the codec interface."""
    codec = CODECS[name]
    a, b = codec_data["pairs"][name]
    count = benchmark(lambda: codec.op_count(a, b, "and"))
    assert count == int((codec_data["bool_a"] & codec_data["bool_b"]).sum())


def test_kernel_wah_streaming_and(benchmark, codec_data):
    a, b = codec_data["pairs"]["wah"]
    benchmark(lambda: logical_op_streaming(a, b, "and").count())


def test_kernel_bbc_and_count(benchmark, codec_data):
    a, b = codec_data["bbc_a"], codec_data["bbc_b"]
    count = benchmark(lambda: bbc_and_count(a, b))
    assert count == int((codec_data["bool_a"] & codec_data["bool_b"]).sum())


def test_kernel_numpy_bool_and(benchmark, codec_data):
    a, b = codec_data["bool_a"], codec_data["bool_b"]
    benchmark(lambda: int((a & b).sum()))


def test_all_codecs_agree(benchmark, codec_data):
    def check():
        ref = int((codec_data["bool_a"] & codec_data["bool_b"]).sum())
        for name in CODEC_NAMES:
            a, b = codec_data["pairs"][name]
            if CODECS[name].op_count(a, b, "and") != ref:
                return False
        return bbc_and_count(codec_data["bbc_a"], codec_data["bbc_b"]) == ref

    assert benchmark.pedantic(check, rounds=1, iterations=1)


# ----------------------------------------------------- codec x density matrix
def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _density_bits(n_bits: int, density: float, rng) -> np.ndarray:
    if density <= 0.0:
        return np.zeros(n_bits, dtype=bool)
    if density >= 1.0:
        return np.ones(n_bits, dtype=bool)
    return rng.random(n_bits) < density


def run_codec_matrix(smoke: bool = False) -> dict:
    """Sweep every codec over the density matrix; write BENCH_codec.json.

    Every cell is parity-checked against the boolean oracle before it is
    timed, so the artifact doubles as a codec-matrix smoke test (CI runs
    it with ``--smoke``).
    """
    n_bits = 31 * 63 * (8 if smoke else 512)
    repeats = 2 if smoke else 10
    rng = np.random.default_rng(17)
    rows: list[list[object]] = []
    record: list[dict] = []
    for shape, density in DENSITIES.items():
        bits_a = _density_bits(n_bits, density, rng)
        bits_b = _density_bits(n_bits, min(1.0, density + 0.01), rng)
        oracle_and = int((bits_a & bits_b).sum())
        oracle_or = int((bits_a | bits_b).sum())
        selected = select_codec(CODECS["wah"].encode_bools(bits_a)).name
        for name in CODEC_NAMES:
            codec = CODECS[name]
            a, b = codec.encode_bools(bits_a), codec.encode_bools(bits_b)
            # Parity before timing: every cell must agree with the oracle
            # and (via op_count_any) with the cross-codec WAH path.
            assert codec.op_count(a, b, "and") == oracle_and, (shape, name)
            assert codec.op_count(a, b, "or") == oracle_or, (shape, name)
            assert op_count_any(a, convert(b, "wah"), "and") == oracle_and
            payload = codec.payload_words(a)
            assert codec.decode_payload(
                payload.copy(), n_bits
            ).count() == int(bits_a.sum()), (shape, name)
            t_and = _best_seconds(lambda: codec.op_count(a, b, "and"), repeats)
            size_bytes = 4 * int(payload.size)
            rows.append([
                shape, name, name == selected, size_bytes,
                t_and * 1e6,
            ])
            record.append({
                "shape": shape,
                "density": density,
                "codec": name,
                "auto_selected": name == selected,
                "payload_bytes": size_bytes,
                "and_count_us": round(t_and * 1e6, 1),
                "and_count_ops_per_s": round(1.0 / t_and, 1),
            })
    table = format_table(
        f"Codec x density matrix (N={n_bits} bits{', SMOKE' if smoke else ''})",
        ["shape", "codec", "selected", "payload_bytes", "and_count_us"],
        rows,
    )
    save_table("ablation_codec_matrix", table)
    result = {
        "n_bits": n_bits,
        "smoke": smoke,
        "codecs": list(CODEC_NAMES),
        "densities": DENSITIES,
        "matrix": record,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_codec.json"
    json_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"[saved to {json_path}]")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small vectors, parity checks on every cell, fast timings",
    )
    args = parser.parse_args(argv)
    run_codec_matrix(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
