"""Ablation: WAH vs BBC vs raw booleans (the §2.1 codec design space).

The paper picks WAH for its word-aligned operations; BBC [4] is the cited
byte-aligned alternative.  This benchmark measures, on identical Heat3D
bitmap data:

* compressed sizes (per codec, plus the uncompressed bitset),
* AND+count kernel times (WAH fast path, WAH streaming, BBC, numpy bool).
"""

import numpy as np
import pytest

from _tables import format_table, save_table
from repro.bitmap import PrecisionBinning, WAHBitVector, build_bitvectors
from repro.bitmap.bbc import BBCBitVector, bbc_and_count
from repro.bitmap.ops import and_count, logical_op_streaming
from repro.sims import Heat3D


@pytest.fixture(scope="module")
def codec_data():
    sim = Heat3D((16, 16, 64), seed=4)
    for _ in range(40):
        step = sim.advance()
    data = step.fields["temperature"].ravel()
    binning = PrecisionBinning.from_data(data, digits=1)
    wah = build_bitvectors(data, binning)
    # The two densest bins exercise the op kernels hardest.
    by_count = sorted(wah, key=lambda v: -v.count())[:2]
    a_bits, b_bits = by_count[0].to_bools(), by_count[1].to_bools()
    return {
        "wah": wah,
        "wah_a": by_count[0],
        "wah_b": by_count[1],
        "bbc_a": BBCBitVector.from_bools(a_bits),
        "bbc_b": BBCBitVector.from_bools(b_bits),
        "bool_a": a_bits,
        "bool_b": b_bits,
        "n_bits": data.size,
        "n_bins": binning.n_bins,
    }


def test_codec_sizes(benchmark, codec_data):
    def table():
        wah_total = sum(v.nbytes for v in codec_data["wah"])
        bbc_total = sum(
            BBCBitVector.from_bools(v.to_bools()).nbytes for v in codec_data["wah"]
        )
        raw_total = codec_data["n_bins"] * (-(-codec_data["n_bits"] // 8))
        return [
            ["uncompressed bitset", raw_total, 1.0],
            ["WAH", wah_total, wah_total / raw_total],
            ["BBC", bbc_total, bbc_total / raw_total],
        ]

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- codec sizes over all Heat3D bitvectors (bytes)",
        ["codec", "bytes", "vs_uncompressed"],
        rows,
    )
    save_table("ablation_codec_size", text)
    sizes = {r[0]: r[1] for r in rows}
    # Both codecs crush the raw bitset; on long-run simulation data WAH's
    # 30-bit fill counters beat BBC's 6-bit ones (BBC wins on short runs,
    # see tests/bitmap/test_bbc.py::test_bbc_often_tighter_on_short_runs).
    assert sizes["WAH"] < 0.05 * sizes["uncompressed bitset"]
    assert sizes["BBC"] < 0.05 * sizes["uncompressed bitset"]


def test_kernel_wah_and_count(benchmark, codec_data):
    a, b = codec_data["wah_a"], codec_data["wah_b"]
    count = benchmark(lambda: and_count(a, b))
    assert count == int((codec_data["bool_a"] & codec_data["bool_b"]).sum())


def test_kernel_wah_streaming_and(benchmark, codec_data):
    a, b = codec_data["wah_a"], codec_data["wah_b"]
    benchmark(lambda: logical_op_streaming(a, b, "and").count())


def test_kernel_bbc_and_count(benchmark, codec_data):
    a, b = codec_data["bbc_a"], codec_data["bbc_b"]
    count = benchmark(lambda: bbc_and_count(a, b))
    assert count == int((codec_data["bool_a"] & codec_data["bool_b"]).sum())


def test_kernel_numpy_bool_and(benchmark, codec_data):
    a, b = codec_data["bool_a"], codec_data["bool_b"]
    benchmark(lambda: int((a & b).sum()))


def test_kernel_roaring_and_count(benchmark, codec_data):
    from repro.bitmap.roaring import RoaringBitVector

    a = RoaringBitVector.from_bools(codec_data["bool_a"])
    b = RoaringBitVector.from_bools(codec_data["bool_b"])
    count = benchmark(lambda: a.and_count(b))
    assert count == int((codec_data["bool_a"] & codec_data["bool_b"]).sum())


def test_roaring_size_comparison(benchmark, codec_data):
    """Record Roaring sizes next to WAH/BBC on the same bitvectors."""
    from repro.bitmap.roaring import RoaringBitVector

    def table():
        wah_total = sum(v.nbytes for v in codec_data["wah"])
        roaring_total = sum(
            RoaringBitVector.from_bools(v.to_bools()).nbytes
            for v in codec_data["wah"]
        )
        return [["WAH", wah_total], ["Roaring", roaring_total]]

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- WAH vs Roaring sizes on Heat3D bitvectors (bytes)",
        ["codec", "bytes"],
        rows,
    )
    save_table("ablation_codec_roaring", text)
    sizes = {r[0]: r[1] for r in rows}
    raw = codec_data["n_bins"] * (-(-codec_data["n_bits"] // 8))
    assert sizes["Roaring"] < raw  # both compress; relative order is data-dependent


def test_all_codecs_agree(benchmark, codec_data):
    def check():
        wah = and_count(codec_data["wah_a"], codec_data["wah_b"])
        bbc = bbc_and_count(codec_data["bbc_a"], codec_data["bbc_b"])
        ref = int((codec_data["bool_a"] & codec_data["bool_b"]).sum())
        return wah == bbc == ref

    assert benchmark.pedantic(check, rounds=1, iterations=1)
