"""Figure 12: Shared vs Separate core allocation (three panels).

Paper: (a) Heat3D/Xeon-28 -- best split c12_c16, beating c_all because the
simulation stops scaling; (b) Heat3D/MIC-56 -- best c32_c24; (c)
Lulesh/Xeon-28 -- best c20_c8 (simulation-heavy workloads need few bitmap
cores).  Equations 1-2 should land on (or next to) the sweep's winner.

The separate-cores numbers are bounded-queue pipeline makespans played out
on the discrete-event engine.
"""

import pytest

from _tables import format_table, save_table
from repro.insitu.allocation import SeparateCores
from repro.perfmodel import (
    MIC60,
    XEON32,
    InSituScenario,
    best_allocation,
    equation_allocation_outcome,
    model_separate_cores,
    model_shared_cores,
    sweep_allocations,
)
from repro.perfmodel.rates import HEAT3D_RATES, LULESH_RATES

PANELS = {
    "12a_heat3d_xeon28": InSituScenario(
        XEON32.with_cores(28), HEAT3D_RATES, 800e6
    ),
    "12b_heat3d_mic56": InSituScenario(
        MIC60.with_cores(56), HEAT3D_RATES, 200e6
    ),
    "12c_lulesh_xeon28": InSituScenario(
        XEON32.with_cores(28), LULESH_RATES, 6.14e9 / 8
    ),
}


def generate_panel(name: str, stride: int = 3) -> str:
    sc = PANELS[name]
    rows = [
        [o.label, o.total_seconds]
        for o in sweep_allocations(sc, stride=stride)
    ]
    best = best_allocation(sc)
    eq = equation_allocation_outcome(sc)
    rows.append([f"best={best.label}", best.total_seconds])
    rows.append([f"eq1-2={eq.label}", eq.total_seconds])
    return format_table(
        f"Figure {name} -- 100 steps simulate+bitmap (seconds, DES model)",
        ["allocation", "total_s"],
        rows,
    )


def test_figure12_tables(benchmark):
    def build():
        return "\n\n".join(generate_panel(name) for name in PANELS)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("fig12_core_allocation", text)


def test_heat3d_xeon_winner(benchmark):
    sc = PANELS["12a_heat3d_xeon28"]

    def picks():
        return best_allocation(sc).label, equation_allocation_outcome(sc).label

    best_label, eq_label = benchmark.pedantic(picks, rounds=1, iterations=1)
    # Paper's winner: c12_c16.  Eq 1-2 lands exactly there; the sweep's
    # optimum sits within a couple of cores.
    assert eq_label == "c12_c16"
    sim_cores = int(best_label[1:].split("_")[0])
    assert 9 <= sim_cores <= 14


def test_lulesh_xeon_winner(benchmark):
    sc = PANELS["12c_lulesh_xeon28"]
    eq_label = benchmark.pedantic(
        lambda: equation_allocation_outcome(sc).label, rounds=1, iterations=1
    )
    assert eq_label == "c20_c8"  # the paper's winner


def test_separate_beats_shared_heat3d(benchmark):
    sc = PANELS["12a_heat3d_xeon28"]

    def delta():
        return (
            model_shared_cores(sc).total_seconds
            - best_allocation(sc).total_seconds
        )

    assert benchmark.pedantic(delta, rounds=1, iterations=1) > 0


def test_kernel_des_pipeline(benchmark):
    """Micro-benchmark: one bounded-queue DES makespan evaluation."""
    sc = PANELS["12a_heat3d_xeon28"]
    benchmark(lambda: model_separate_cores(sc, SeparateCores(12, 16)))
