"""Figure 9: Lulesh on the Xeon -- EMD selection, 12 node arrays.

Paper: 6.14 GB of per-node data per step; the simulation dominates, so the
total-time advantage is thinner (0.84x..1.47x), but spatial-EMD selection
is 3.45x-3.81x faster on bitmaps (m XOR+popcounts instead of raw scans).

The micro-benchmarks compare the real EMD selection kernels on the Lulesh
proxy's 12-array payload.
"""

import pytest

from _tables import format_table, save_table
from repro.bitmap import BitmapIndex, common_binning
from repro.metrics import emd_spatial, emd_spatial_bitmap
from repro.perfmodel import (
    XEON32,
    InSituScenario,
    model_bitmaps,
    model_full_data,
    speedup_over_cores,
)
from repro.perfmodel.rates import LULESH_RATES
from repro.sims import LuleshProxy

CORES = [1, 2, 4, 8, 16, 32]
SCENARIO = InSituScenario(XEON32, LULESH_RATES, 6.14e9 / 8)


def generate_table() -> list[list[object]]:
    return [
        [cores, full.simulate, full.total, bm.reduce, bm.total, speedup]
        for cores, full, bm, speedup in speedup_over_cores(SCENARIO, CORES)
    ]


def test_figure9_table(benchmark):
    rows = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    text = format_table(
        "Figure 9 -- Lulesh, Xeon, 100 steps -> 25, spatial EMD (modelled)",
        ["cores", "fd:sim", "fd:total", "bm:build", "bm:total", "speedup"],
        rows,
    )
    save_table("fig09_lulesh_xeon", text)
    speedups = [r[-1] for r in rows]
    # Paper band: 0.84x .. 1.47x.
    assert 0.75 < speedups[0] < 1.0
    assert speedups[-1] == pytest.approx(1.47, abs=0.2)


def test_selection_speedup_345_381(benchmark):
    def ratio():
        return model_full_data(SCENARIO, 8).select / model_bitmaps(SCENARIO, 8).select

    assert benchmark.pedantic(ratio, rounds=1, iterations=1) == pytest.approx(
        3.6, abs=0.4
    )


# ------------------------------------------------------ measured kernels
@pytest.fixture(scope="module")
def lulesh_payloads():
    sim = LuleshProxy((10, 10, 10), seed=2)
    steps = [s.concatenated() for s in sim.run(6)]
    binning = common_binning(steps, bins=96)
    indices = [BitmapIndex.build(s, binning) for s in steps]
    return steps, binning, indices


def test_kernel_emd_fulldata(benchmark, lulesh_payloads):
    steps, binning, _ = lulesh_payloads
    benchmark(lambda: emd_spatial(steps[0], steps[-1], binning))


def test_kernel_emd_bitmap(benchmark, lulesh_payloads):
    steps, binning, indices = lulesh_payloads
    result = benchmark(lambda: emd_spatial_bitmap(indices[0], indices[-1]))
    assert result == emd_spatial(steps[0], steps[-1], binning)
