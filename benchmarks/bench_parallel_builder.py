"""Figure 2's parallel bitmap generation, measured with real threads.

The paper assigns sub-blocks of each time-step to separate cores, each
building compressed bitvectors independently, then stitches the results.
This benchmark measures the real threaded *and* process builders at
several worker counts (on a single-CPU container the win is bounded; the
*correctness* of the stitch and the per-worker overhead are what we pin
down) and verifies word-identical output.
"""

import time

import numpy as np
import pytest

from _tables import format_table, save_table
from repro.bitmap import PrecisionBinning, build_bitvectors, build_bitvectors_parallel
from repro.insitu.parallel import SharedCoresEngine
from repro.sims import Heat3D


def _best_ms(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


@pytest.fixture(scope="module")
def field():
    sim = Heat3D((16, 32, 64), seed=9)
    for _ in range(20):
        step = sim.advance()
    data = step.fields["temperature"].ravel()
    return data, PrecisionBinning.from_data(data, digits=1)


def test_parallel_output_identical(benchmark, field):
    data, binning = field

    def check():
        serial = build_bitvectors(data, binning)
        for workers in (2, 4):
            assert build_bitvectors_parallel(data, binning, n_workers=workers) == serial
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_kernel_serial_build(benchmark, field):
    data, binning = field
    benchmark(lambda: build_bitvectors(data, binning))


@pytest.mark.parametrize("workers", [2, 4])
def test_kernel_parallel_build(benchmark, field, workers):
    data, binning = field
    benchmark(lambda: build_bitvectors_parallel(data, binning, n_workers=workers))


def test_partitioning_table(benchmark, field):
    """Record stitched word streams *and* wall-clock speedup per split.

    Threads go through the one-shot ``build_bitvectors_parallel``;
    processes through a persistent :class:`SharedCoresEngine` (the form
    the pipeline uses -- fork cost paid once, not per build).
    """
    data, binning = field

    def table():
        serial = build_bitvectors(data, binning)
        serial_words = sum(v.n_words for v in serial)
        t_serial = _best_ms(lambda: build_bitvectors(data, binning))
        rows: list[list[object]] = [
            ["serial", 1, serial_words, True, t_serial, 1.0]
        ]
        for workers in (2, 4, 8):
            parts = build_bitvectors_parallel(data, binning, n_workers=workers)
            t = _best_ms(
                lambda: build_bitvectors_parallel(data, binning, n_workers=workers)
            )
            rows.append(
                [
                    "threads",
                    workers,
                    sum(v.n_words for v in parts),
                    parts == serial,
                    t,
                    t_serial / t,
                ]
            )
        for workers in (2, 4):
            with SharedCoresEngine(workers, binning) as engine:
                parts = engine.build_bitvectors(data)
                t = _best_ms(lambda: engine.build_bitvectors(data))
            rows.append(
                [
                    "processes",
                    workers,
                    sum(v.n_words for v in parts),
                    parts == serial,
                    t,
                    t_serial / t,
                ]
            )
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    text = format_table(
        "Figure 2 parallel builder -- stitched output and wall clock vs serial",
        ["executor", "workers", "total_words", "identical", "best_ms", "speedup"],
        rows,
    )
    save_table("parallel_builder", text)
    assert all(r[3] for r in rows)
