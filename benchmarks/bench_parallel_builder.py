"""Figure 2's parallel bitmap generation, measured with real threads.

The paper assigns sub-blocks of each time-step to separate cores, each
building compressed bitvectors independently, then stitches the results.
This benchmark measures the real threaded builder at several worker
counts (on a single-CPU container the win is bounded; the *correctness*
of the stitch and the per-worker overhead are what we pin down) and
verifies word-identical output.
"""

import numpy as np
import pytest

from _tables import format_table, save_table
from repro.bitmap import PrecisionBinning, build_bitvectors, build_bitvectors_parallel
from repro.sims import Heat3D


@pytest.fixture(scope="module")
def field():
    sim = Heat3D((16, 32, 64), seed=9)
    for _ in range(20):
        step = sim.advance()
    data = step.fields["temperature"].ravel()
    return data, PrecisionBinning.from_data(data, digits=1)


def test_parallel_output_identical(benchmark, field):
    data, binning = field

    def check():
        serial = build_bitvectors(data, binning)
        for workers in (2, 4):
            assert build_bitvectors_parallel(data, binning, n_workers=workers) == serial
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_kernel_serial_build(benchmark, field):
    data, binning = field
    benchmark(lambda: build_bitvectors(data, binning))


@pytest.mark.parametrize("workers", [2, 4])
def test_kernel_parallel_build(benchmark, field, workers):
    data, binning = field
    benchmark(lambda: build_bitvectors_parallel(data, binning, n_workers=workers))


def test_partitioning_table(benchmark, field):
    """Record how the stitched word streams compare across splits."""
    data, binning = field

    def table():
        rows = []
        serial = build_bitvectors(data, binning)
        serial_words = sum(v.n_words for v in serial)
        for workers in (1, 2, 4, 8):
            parts = build_bitvectors_parallel(data, binning, n_workers=workers)
            words = sum(v.n_words for v in parts)
            rows.append([workers, words, words == serial_words])
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    text = format_table(
        "Figure 2 parallel builder -- stitched output vs serial",
        ["workers", "total_words", "identical"],
        rows,
    )
    save_table("parallel_builder", text)
    assert all(r[2] for r in rows)
