"""Figure 14: correlation mining efficiency, bitmaps vs full data (POP).

Paper: temperature x salinity at 1.4-11.2 GB per variable; bitmaps win
3.83x-4.91x, growing with data size, with zero accuracy loss.

Measured part: both miners run on the POP-like generator at three scaled
sizes, *including* the data-load cost each method pays (full data re-reads
raw variables; bitmaps read the much smaller indices) accounted through
the simulated disk.  The hit sets are asserted identical (the paper's "no
accuracy loss").  Modelled part: the same accounting extrapolated to the
paper's sizes.
"""

import time

import pytest

from _tables import format_table, save_table
from repro.bitmap import BitmapIndex, EqualWidthBinning, ZOrderLayout
from repro.io.storage import SimulatedDisk
from repro.mining import correlation_mining, correlation_mining_fulldata
from repro.sims import OceanDataGenerator

KW = dict(value_threshold=0.002, spatial_threshold=0.05, unit_bits=512)
N_BINS = 16
SHAPES = [(8, 48, 96), (16, 96, 192), (16, 192, 384)]
DISK = 400e6  # read bandwidth for the load-cost accounting


def _prepare(shape):
    gen = OceanDataGenerator(shape, seed=13)
    snap = gen.advance()
    layout = ZOrderLayout.for_shape(shape)
    tz = layout.flatten(snap.fields["temperature"])
    sz = layout.flatten(snap.fields["salinity"])
    bt = EqualWidthBinning.from_data(tz, N_BINS)
    bs = EqualWidthBinning.from_data(sz, N_BINS)
    it = BitmapIndex.build(tz, bt)
    is_ = BitmapIndex.build(sz, bs)
    return tz, sz, bt, bs, it, is_


def generate_table() -> list[list[object]]:
    rows: list[list[object]] = []
    for shape in SHAPES:
        tz, sz, bt, bs, it, is_ = _prepare(shape)
        disk = SimulatedDisk(DISK)
        load_full = disk.read(tz.nbytes + sz.nbytes)
        load_bm = disk.read(it.nbytes + is_.nbytes)

        t0 = time.perf_counter()
        bm = correlation_mining(it, is_, **KW)
        t_bm = time.perf_counter() - t0
        t0 = time.perf_counter()
        fd = correlation_mining_fulldata(tz, sz, bt, bs, **KW)
        t_fd = time.perf_counter() - t0

        same = (
            {(h.a_bin, h.b_bin) for h in bm.value_hits}
            == {(h.a_bin, h.b_bin) for h in fd.value_hits}
        ) and (
            {(h.a_bin, h.b_bin, h.unit) for h in bm.spatial_hits}
            == {(h.a_bin, h.b_bin, h.unit) for h in fd.spatial_hits}
        )
        total_fd = t_fd + load_full
        total_bm = t_bm + load_bm
        rows.append(
            [
                f"{tz.nbytes / 2**20:.1f}MB",
                total_fd, total_bm, total_fd / total_bm,
                len(bm.spatial_hits), "yes" if same else "NO",
            ]
        )
    return rows


def test_figure14_measured(benchmark):
    rows = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    text = format_table(
        "Figure 14 -- correlation mining, measured kernels + load accounting",
        ["size/var", "fulldata_s", "bitmaps_s", "speedup", "spatial_hits",
         "hits_equal"],
        rows,
    )
    save_table("fig14_mining_pop", text)
    # No accuracy loss, and the advantage grows with data size (the paper's
    # "the larger the dataset size, the better speedup").
    assert all(r[-1] == "yes" for r in rows)
    speedups = [r[3] for r in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5


def test_figure14_modelled_paper_scale(benchmark):
    """Extrapolate the measured per-element costs to the paper's sizes."""

    def extrapolate():
        tz, sz, bt, bs, it, is_ = _prepare(SHAPES[-1])
        n = tz.size
        t0 = time.perf_counter()
        correlation_mining(it, is_, **KW)
        mine_bm = (time.perf_counter() - t0) / n
        t0 = time.perf_counter()
        correlation_mining_fulldata(tz, sz, bt, bs, **KW)
        mine_fd = (time.perf_counter() - t0) / n
        frac = (it.nbytes + is_.nbytes) / (tz.nbytes + sz.nbytes)
        rows = []
        for gb in (1.4, 2.8, 5.6, 11.2):
            elements = gb * 1e9 / 8
            full = elements * mine_fd + 2 * gb * 1e9 / DISK
            bm = elements * mine_bm + 2 * frac * gb * 1e9 / DISK
            rows.append([f"{gb}GB", full, bm, full / bm])
        return rows

    rows = benchmark.pedantic(extrapolate, rounds=1, iterations=1)
    text = format_table(
        "Figure 14 (modelled at paper sizes; paper speedups 3.83x-4.91x)",
        ["size/var", "fulldata_s", "bitmaps_s", "speedup"],
        rows,
    )
    save_table("fig14_mining_pop_modelled", text)
    speedups = [r[-1] for r in rows]
    assert all(sp > 1.5 for sp in speedups)
    assert speedups[-1] >= speedups[0]


def test_kernel_bitmap_mining(benchmark):
    _, _, _, _, it, is_ = _prepare(SHAPES[0])
    benchmark(lambda: correlation_mining(it, is_, **KW))


def test_kernel_fulldata_mining(benchmark):
    tz, sz, bt, bs, _, _ = _prepare(SHAPES[0])
    benchmark(lambda: correlation_mining_fulldata(tz, sz, bt, bs, **KW))
