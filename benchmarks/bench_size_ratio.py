"""§2.2's size claim: "the size of bitmaps is less than 30% ... in most
of the cases", measured on all three workloads with their paper binnings.
"""

import pytest

from _tables import format_table, save_table
from repro.bitmap import BitmapIndex, EqualWidthBinning, PrecisionBinning, ZOrderLayout
from repro.sims import Heat3D, LuleshProxy, OceanDataGenerator


def generate_table() -> list[list[object]]:
    rows: list[list[object]] = []

    sim = Heat3D((16, 16, 128), seed=1)
    for _ in range(20):
        step = sim.advance()
    t = step.fields["temperature"]
    binning = PrecisionBinning.from_data(t, digits=1)
    idx = BitmapIndex.build(t, binning)
    rows.append(["heat3d (1-digit bins)", binning.n_bins, idx.size_ratio(8)])

    lsim = LuleshProxy((12, 12, 12), seed=1)
    for _ in range(15):
        lstep = lsim.advance()
    payload = lstep.concatenated()
    lbin = EqualWidthBinning.from_data(payload, 128)
    lidx = BitmapIndex.build(payload, lbin)
    rows.append(["lulesh (12 arrays)", lbin.n_bins, lidx.size_ratio(8)])

    gen = OceanDataGenerator((8, 48, 96), seed=13)
    snap = gen.advance()
    temp = snap.fields["temperature"]
    layout = ZOrderLayout.for_shape(temp.shape)
    tz = layout.flatten(temp)
    obin = EqualWidthBinning.from_data(tz, 16)
    oidx = BitmapIndex.build(tz, obin)
    rows.append(["ocean temperature (z-order)", obin.n_bins, oidx.size_ratio(8)])

    return rows


def test_size_ratios(benchmark):
    rows = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    text = format_table(
        "Bitmap size as a fraction of raw data (paper claim: <30% mostly)",
        ["workload", "bins", "size_ratio"],
        rows,
    )
    save_table("size_ratio", text)
    ratios = [r[-1] for r in rows]
    assert sum(r < 0.50 for r in ratios) == len(ratios)
    assert sum(r < 0.30 for r in ratios) >= 2  # "in most of the cases"
