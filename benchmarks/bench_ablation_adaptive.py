"""Ablation: fixed global binning vs adaptive per-step binning (§5.1).

The paper's per-step bin counts (Heat3D 64-206, Lulesh 89-314) follow each
step's value range.  Lulesh velocity is the clean demonstrator here: its
range swells with the blast then decays, so per-step tick-aligned binning
(`AdaptivePrecisionIndexer`) lands almost exactly in the paper's band
(~60-200 bins at the chosen precision) while a global binning must declare
the worst-case range for every step.

Quantified:

* per-step bin counts and index sizes, adaptive vs global;
* selection agreement: tick alignment keeps adaptive selection identical
  to fixed-binning selection when the global scale equals the union range.
"""

import numpy as np
import pytest

from _tables import format_table, save_table
from repro.bitmap import BitmapIndex, PrecisionBinning
from repro.bitmap.adaptive import AdaptivePrecisionIndexer, aligned_metric
from repro.selection import CONDITIONAL_ENTROPY, select_timesteps_bitmap
from repro.sims import LuleshProxy

N_STEPS = 20
DIGITS = -2  # bin width 100 on a 0..2e4 velocity scale


@pytest.fixture(scope="module")
def steps():
    sim = LuleshProxy((8, 8, 8), seed=8)
    return [s.fields["velocity_x"] for s in sim.run(N_STEPS)]


def test_size_and_bins_comparison(benchmark, steps):
    def table():
        indexer = AdaptivePrecisionIndexer(digits=DIGITS)
        lo = min(float(np.min(s)) for s in steps)
        hi = max(float(np.max(s)) for s in steps)
        global_binning = PrecisionBinning(lo, hi, digits=DIGITS)
        adaptive_sizes, global_sizes, bins_used = [], [], []
        for s in steps:
            a = indexer.index(s)
            g = BitmapIndex.build(s, global_binning)
            adaptive_sizes.append(a.nbytes)
            global_sizes.append(g.nbytes)
            bins_used.append(a.n_bins)
        return [
            [
                f"global ({global_binning.n_bins} bins declared)",
                int(np.mean(global_sizes)),
                str(global_binning.n_bins),
            ],
            [
                "adaptive (per-step range)",
                int(np.mean(adaptive_sizes)),
                f"{min(bins_used)}-{max(bins_used)}",
            ],
        ]

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- fixed global vs adaptive per-step binning "
        "(mean index bytes over 20 Lulesh velocity steps; paper's per-step "
        "bands: 64-206 / 89-314 bins)",
        ["binning", "mean_bytes", "bins"],
        rows,
    )
    save_table("ablation_adaptive_binning", text)
    assert rows[1][1] <= rows[0][1]  # adaptive never pays for empty bins
    lo_bins, hi_bins = (int(x) for x in rows[1][2].split("-"))
    assert hi_bins > 1.5 * lo_bins  # per-step counts genuinely vary


def test_selection_agreement(benchmark, steps):
    """Tick alignment keeps adaptive selection faithful."""

    def run():
        indexer = AdaptivePrecisionIndexer(digits=DIGITS)
        adaptive = [indexer.index(s) for s in steps]
        lo = min(float(np.min(s)) for s in steps)
        hi = max(float(np.max(s)) for s in steps)
        global_binning = PrecisionBinning(lo, hi, digits=DIGITS)
        fixed = [BitmapIndex.build(s, global_binning) for s in steps]
        sel_adaptive = select_timesteps_bitmap(
            adaptive, 5, aligned_metric(CONDITIONAL_ENTROPY)
        )
        sel_fixed = select_timesteps_bitmap(fixed, 5, CONDITIONAL_ENTROPY)
        return sel_adaptive.selected, sel_fixed.selected

    a_sel, f_sel = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a_sel == f_sel


def test_kernel_adaptive_index(benchmark, steps):
    indexer = AdaptivePrecisionIndexer(digits=DIGITS)
    benchmark(lambda: indexer.index(steps[-1]))


def test_kernel_aligned_metric_eval(benchmark, steps):
    indexer = AdaptivePrecisionIndexer(digits=DIGITS)
    ia, ib = indexer.index(steps[0]), indexer.index(steps[-1])
    metric = aligned_metric(CONDITIONAL_ENTROPY)
    benchmark(lambda: metric.bitmap(ia, ib))
