"""Calibration sweep for the density dispatchers (pairwise and k-way).

Measures, across a compression-ratio sweep on 1.24M-bit vectors, the
speedup of the compressed-domain kernels over their group-expansion
counterparts:

* ``op_count_streaming`` vs ``op_count`` -- crossover calibrates
  ``STREAMING_COUNT_RATIO_THRESHOLD``;
* ``logical_op_runmerge`` vs ``logical_op`` -- crossover calibrates
  ``STREAMING_OP_RATIO_THRESHOLD``;
* ``op_count_runmerge_many`` / ``logical_op_runmerge_many`` vs the
  fused dense sweeps at k = 8 -- crossover calibrates
  ``KWAY_RUNMERGE_RATIO_THRESHOLD`` for the k-way dispatchers
  (``auto_op_many`` / ``auto_count_many``).  The k-way crossover sits
  far below the pairwise one (~0.01 vs ~0.06): the boundary-union sort
  in the multi-cursor merge grows with the summed run count, while the
  fused dense sweep stays one hardware-rate pass per operand.

Writes ``benchmarks/results/kernel_dispatch.txt`` (quoted by DESIGN.md's
"Kernel dispatch policy" section).  The thresholds were recalibrated
when hardware popcount (``np.bitwise_count``) landed: the dense paths
got ~4x cheaper, moving the count crossover from ratio ~0.42 down to
~0.06 (the pre-hardware table is preserved in DESIGN.md).  The
assertions below pin the recalibrated regime: run-merge kernels must
win inside the calibrated thresholds and lose at the dense end.
"""

import time

import numpy as np

from repro.bitmap import WAHBitVector
from repro.bitmap.kernels import (
    KWAY_RUNMERGE_RATIO_THRESHOLD,
    logical_op_many,
    logical_op_runmerge_many,
    op_count_many,
    op_count_runmerge_many,
)
from repro.bitmap.ops import (
    STREAMING_COUNT_RATIO_THRESHOLD,
    STREAMING_OP_RATIO_THRESHOLD,
    logical_op,
    logical_op_runmerge,
    op_count,
    op_count_streaming,
)
from _tables import format_table, save_table

N = 31 * 40_000  # 1.24M bits

#: Average run lengths (bits) spanning sparse to dense regimes.
RUN_LENGTHS = [10_000, 2500, 620, 310, 150, 60, 31, 8]

#: Operand count for the k-way sweep (the executor's multi-bin regime).
KWAY = 8


def _vector_pair(run_len: int) -> tuple[WAHBitVector, WAHBitVector]:
    rng = np.random.default_rng(run_len)
    a = np.resize(np.repeat(rng.random(N // run_len + 1) < 0.3, run_len), N)
    b = np.resize(np.repeat(rng.random(N // run_len + 1) < 0.3, run_len), N)
    va, vb = WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)
    va.runs(), vb.runs()  # warm the memoised run decode (steady state)
    return va, vb


def _vector_group(run_len: int, k: int) -> list[WAHBitVector]:
    rng = np.random.default_rng(run_len * 31 + k)
    out = []
    for _ in range(k):
        bits = np.resize(
            np.repeat(rng.random(N // run_len + 1) < 0.3, run_len), N
        )
        v = WAHBitVector.from_bools(bits)
        v.runs()
        out.append(v)
    return out


def _best_seconds(fn, repeats: int = 15) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_dispatch_calibration_table():
    rows: list[list[object]] = []
    count_speedup_at: dict[float, float] = {}
    for run_len in RUN_LENGTHS:
        va, vb = _vector_pair(run_len)
        ratio = max(va.compression_ratio(), vb.compression_ratio())
        assert op_count_streaming(va, vb, "and") == op_count(va, vb, "and")
        assert logical_op_runmerge(va, vb, "and") == logical_op(va, vb, "and")
        t_count_dense = _best_seconds(lambda: op_count(va, vb, "and"))
        t_count_stream = _best_seconds(lambda: op_count_streaming(va, vb, "and"))
        t_op_dense = _best_seconds(lambda: logical_op(va, vb, "and"))
        t_op_merge = _best_seconds(lambda: logical_op_runmerge(va, vb, "and"))
        count_speedup = t_count_dense / t_count_stream
        op_speedup = t_op_dense / t_op_merge
        count_speedup_at[ratio] = count_speedup
        rows.append(
            [
                run_len,
                ratio,
                t_count_dense * 1e6,
                t_count_stream * 1e6,
                count_speedup,
                op_speedup,
            ]
        )

    pairwise = format_table(
        f"Density-dispatch calibration (N={N} bits, AND kernels, hardware "
        f"popcount; count threshold={STREAMING_COUNT_RATIO_THRESHOLD}, "
        f"op threshold={STREAMING_OP_RATIO_THRESHOLD})",
        [
            "run_bits",
            "ratio",
            "count_dense_us",
            "count_stream_us",
            "count_speedup",
            "op_speedup",
        ],
        rows,
    )

    kway_rows: list[list[object]] = []
    kway_count_speedup_at: dict[float, float] = {}
    for run_len in RUN_LENGTHS:
        vecs = _vector_group(run_len, KWAY)
        ratio = max(v.compression_ratio() for v in vecs)
        assert op_count_runmerge_many(vecs, "or") == op_count_many(vecs, "or")
        assert logical_op_runmerge_many(vecs, "or") == logical_op_many(vecs, "or")
        t_count_dense = _best_seconds(lambda: op_count_many(vecs, "or"))
        t_count_merge = _best_seconds(lambda: op_count_runmerge_many(vecs, "or"))
        t_op_dense = _best_seconds(lambda: logical_op_many(vecs, "or"))
        t_op_merge = _best_seconds(lambda: logical_op_runmerge_many(vecs, "or"))
        count_speedup = t_count_dense / t_count_merge
        kway_count_speedup_at[ratio] = count_speedup
        kway_rows.append(
            [
                run_len,
                ratio,
                t_count_dense * 1e6,
                t_count_merge * 1e6,
                count_speedup,
                t_op_dense / t_op_merge,
            ]
        )

    kway = format_table(
        f"k-way dispatch calibration (N={N} bits, k={KWAY}, fused OR; "
        f"run merge vs chunked dense sweep; "
        f"threshold={KWAY_RUNMERGE_RATIO_THRESHOLD})",
        [
            "run_bits",
            "ratio",
            "count_dense_us",
            "count_merge_us",
            "count_speedup",
            "op_speedup",
        ],
        kway_rows,
    )
    save_table("kernel_dispatch", pairwise + "\n\n" + kway)

    # Recalibrated acceptance: inside the calibrated threshold the
    # run-merge count kernel must win (with margin at the sparse end);
    # at the dense end the group kernel must win.  The pre-hardware
    # criterion (>= 2x at ratio <= 0.1) is unreachable now that the
    # dense baseline itself runs on hardware popcount -- see DESIGN.md.
    for speedups, regime_threshold in (
        (count_speedup_at, STREAMING_COUNT_RATIO_THRESHOLD),
        (kway_count_speedup_at, KWAY_RUNMERGE_RATIO_THRESHOLD),
    ):
        in_regime = {
            r: s for r, s in speedups.items() if r <= regime_threshold
        }
        assert in_regime, "sweep produced no pairs inside the threshold regime"
        assert all(s >= 1.0 for s in in_regime.values()), (
            f"run-merge count kernel loses inside its regime: {in_regime}"
        )
        ratios = sorted(speedups)
        assert speedups[ratios[0]] >= 1.5, (
            f"no clear run-merge win at the sparsest point: {speedups}"
        )
        assert speedups[ratios[-1]] < 1.0, (
            f"no clear dense win at the densest point: {speedups}"
        )
