"""Calibration sweep for the density dispatcher (`auto_count` / `auto_op`).

Measures, across a compression-ratio sweep on 1.24M-bit vectors, the
speedup of the compressed-domain kernels over their group-expansion
counterparts:

* ``op_count_streaming`` vs ``op_count`` -- crossover calibrates
  ``STREAMING_COUNT_RATIO_THRESHOLD``;
* ``logical_op_runmerge`` vs ``logical_op`` -- crossover calibrates
  ``STREAMING_OP_RATIO_THRESHOLD``.

Writes ``benchmarks/results/kernel_dispatch.txt`` (quoted by DESIGN.md's
"Kernel dispatch policy" section) and asserts the acceptance criterion:
streaming count kernels beat decompress-then-popcount by >= 2x when both
operands compress to <= 0.1 words per group.
"""

import time

import numpy as np

from repro.bitmap import WAHBitVector
from repro.bitmap.ops import (
    STREAMING_COUNT_RATIO_THRESHOLD,
    STREAMING_OP_RATIO_THRESHOLD,
    logical_op,
    logical_op_runmerge,
    op_count,
    op_count_streaming,
)
from _tables import format_table, save_table

N = 31 * 40_000  # 1.24M bits

#: Average run lengths (bits) spanning sparse to dense regimes.
RUN_LENGTHS = [10_000, 2500, 620, 310, 150, 60, 31, 8]


def _vector_pair(run_len: int) -> tuple[WAHBitVector, WAHBitVector]:
    rng = np.random.default_rng(run_len)
    a = np.resize(np.repeat(rng.random(N // run_len + 1) < 0.3, run_len), N)
    b = np.resize(np.repeat(rng.random(N // run_len + 1) < 0.3, run_len), N)
    va, vb = WAHBitVector.from_bools(a), WAHBitVector.from_bools(b)
    va.runs(), vb.runs()  # warm the memoised run decode (steady state)
    return va, vb


def _best_seconds(fn, repeats: int = 15) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_dispatch_calibration_table():
    rows: list[list[object]] = []
    count_speedup_at: dict[float, float] = {}
    for run_len in RUN_LENGTHS:
        va, vb = _vector_pair(run_len)
        ratio = max(va.compression_ratio(), vb.compression_ratio())
        assert op_count_streaming(va, vb, "and") == op_count(va, vb, "and")
        assert logical_op_runmerge(va, vb, "and") == logical_op(va, vb, "and")
        t_count_dense = _best_seconds(lambda: op_count(va, vb, "and"))
        t_count_stream = _best_seconds(lambda: op_count_streaming(va, vb, "and"))
        t_op_dense = _best_seconds(lambda: logical_op(va, vb, "and"))
        t_op_merge = _best_seconds(lambda: logical_op_runmerge(va, vb, "and"))
        count_speedup = t_count_dense / t_count_stream
        op_speedup = t_op_dense / t_op_merge
        count_speedup_at[ratio] = count_speedup
        rows.append(
            [
                run_len,
                ratio,
                t_count_dense * 1e6,
                t_count_stream * 1e6,
                count_speedup,
                op_speedup,
            ]
        )

    text = format_table(
        f"Density-dispatch calibration (N={N} bits, AND kernels; "
        f"count threshold={STREAMING_COUNT_RATIO_THRESHOLD}, "
        f"op threshold={STREAMING_OP_RATIO_THRESHOLD})",
        [
            "run_bits",
            "ratio",
            "count_dense_us",
            "count_stream_us",
            "count_speedup",
            "op_speedup",
        ],
        rows,
    )
    save_table("kernel_dispatch", text)

    # Acceptance criterion: streaming count kernels win >= 2x whenever
    # both operands compress to <= 0.1 words per group.
    in_regime = {r: s for r, s in count_speedup_at.items() if r <= 0.1}
    assert in_regime, "sweep produced no pairs in the <= 0.1 ratio regime"
    assert all(s >= 2.0 for s in in_regime.values()), (
        f"streaming count kernel under 2x in its regime: {in_regime}"
    )
    # Sanity for the calibrated default: the sparsest point must be a
    # clear streaming win, the densest a clear dense win.
    ratios = sorted(count_speedup_at)
    assert count_speedup_at[ratios[0]] > 2.0
    assert count_speedup_at[ratios[-1]] < 1.0
