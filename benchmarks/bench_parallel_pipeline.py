"""End-to-end parallel pipeline benchmark: §2.3 strategies, measured.

Runs the same Heat3D reduce-select-write workload through
:meth:`InSituPipeline.run` (serial baseline) and through
:meth:`InSituPipeline.run_parallel` under both core-allocation
strategies and both executors, then

* verifies **bit-identical output**: every configuration writes the same
  bitmap files, byte for byte (the written store is hashed);
* reports wall-clock time and speedup vs the serial baseline.

Speedup is only meaningful on multi-core hosts; on the single-CPU CI
container the table still pins down correctness, clean shutdown, and the
overhead each engine adds (the honest number a 1-core host can measure).
The ``--smoke`` form is the CI gate: 2 workers, bit-identity and clean
shutdown only, no timing thresholds.

Runs as a pytest test (smoke-sized) or as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_pipeline.py [--smoke]
"""

import argparse
import hashlib
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import format_table, save_table

from repro.bitmap import PrecisionBinning
from repro.insitu.allocation import SeparateCores, SharedCores
from repro.insitu.pipeline import InSituPipeline
from repro.insitu.writer import OutputWriter
from repro.selection import CONDITIONAL_ENTROPY
from repro.sims import Heat3D

SEED = 42


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _store_digest(root: Path) -> str:
    """One hash over every written file (relative path + bytes)."""
    h = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file():
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
    return h.hexdigest()[:16]


def _run_config(out: Path, shape, n_steps: int, runner) -> tuple[float, object, str]:
    """Fresh simulation + writer; returns (wall_s, result, store_digest)."""
    sim = Heat3D(shape, seed=SEED)
    binning = PrecisionBinning(19.0, 101.0, digits=1)
    writer = OutputWriter(out)
    pipe = InSituPipeline(
        sim, binning, CONDITIONAL_ENTROPY, mode="bitmap", writer=writer
    )
    t0 = time.perf_counter()
    result = runner(pipe)
    wall = time.perf_counter() - t0
    return wall, result, _store_digest(out)


def run(smoke: bool = False) -> None:
    shape = (8, 16, 32) if smoke else (16, 32, 64)
    n_steps = 6 if smoke else 16
    select_k = max(2, n_steps // 3)
    cores = _cores()

    def serial(p):
        return p.run(n_steps, select_k)

    def shared(workers, executor):
        return lambda p: p.run_parallel(
            n_steps, select_k,
            allocation=SharedCores(workers), executor=executor,
        )

    def separate(sim_cores, bitmap_cores, executor):
        return lambda p: p.run_parallel(
            n_steps, select_k,
            allocation=SeparateCores(sim_cores, bitmap_cores),
            executor=executor,
            queue_capacity_bytes=8 << 20,
        )

    def auto(workers):
        return lambda p: p.run_parallel(
            n_steps, select_k, allocation="auto", n_workers=workers
        )

    configs: list[tuple[str, object]] = [
        ("serial", serial),
        ("shared c2 threads", shared(2, "threads")),
        ("shared c2 processes", shared(2, "processes")),
        ("separate c1_c1 threads", separate(1, 1, "threads")),
        ("separate c1_c1 processes", separate(1, 1, "processes")),
        ("auto n=2 processes", auto(2)),
    ]
    if not smoke:
        configs += [
            ("shared c4 processes", shared(4, "processes")),
            ("separate c1_c3 processes", separate(1, 3, "processes")),
        ]

    rows: list[list[object]] = []
    digests: dict[str, str] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for i, (name, runner) in enumerate(configs):
            wall, result, digest = _run_config(
                Path(tmp) / f"cfg{i}", shape, n_steps, runner
            )
            digests[name] = digest
            serial_wall = rows[0][1] if rows else wall
            rows.append(
                [
                    name,
                    wall,
                    result.timings.phases.get("simulate", 0.0),
                    result.timings.phases.get("reduce_bitmap", 0.0),
                    serial_wall / wall,
                    digest == digests["serial"],
                ]
            )

    title = (
        f"Parallel pipeline -- Heat3D {shape}, {n_steps} steps, "
        f"select {select_k} (host: {cores} core{'s' if cores != 1 else ''}; "
        f"speedup vs serial run())"
    )
    text = format_table(
        title,
        ["config", "wall_s", "simulate_s", "reduce_s", "speedup", "identical"],
        rows,
    )
    if cores < 4:
        text += (
            "\nnote: measured on a low-core host -- speedups are bounded by "
            "available CPUs;\nthe identical column (bit-exact written "
            "stores) is the portable result."
        )
    save_table("parallel_pipeline", text)

    # Acceptance: every configuration writes a byte-identical store.
    wrong = [name for name, d in digests.items() if d != digests["serial"]]
    assert not wrong, f"non-identical stores: {wrong}"
    if not smoke and cores >= 8:
        # Only gate on speedup where the host can physically provide it.
        best = max(row[4] for row in rows[1:])
        assert best >= 2.0, f"expected >=2x on a {cores}-core host, got {best:.2f}x"


def test_parallel_pipeline_smoke():
    run(smoke=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small and fast")
    run(smoke=parser.parse_args().smoke)
