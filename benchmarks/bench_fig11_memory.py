"""Figure 11: peak memory, full data vs bitmaps, 10-step window.

Paper values (bitmaps advantage): Heat3D 3.59x (6.4 GB steps) and 3.39x
(1.6 GB); Lulesh 2.02x (6.14 GB) and 1.99x (0.768 GB) -- Lulesh is diluted
by the mesh-edge memory both methods pay.

Two parts here:

* the closed-form Figure 11 resident-set model at paper scale, fed with
  bitmap size fractions *measured* from our real indices on the scaled
  workloads;
* a real measured comparison: the pipeline's MemoryTracker peaks for both
  modes on a laptop-scale Heat3D run.
"""

import pytest

from _tables import format_table, save_table
from repro.bitmap import BitmapIndex, PrecisionBinning, common_binning
from repro.insitu import InSituPipeline
from repro.insitu.memory import bitmap_resident_model, fulldata_resident_model
from repro.selection import CONDITIONAL_ENTROPY, EMD_SPATIAL
from repro.sims import Heat3D, LuleshProxy

WINDOW = 10  # "we kept 10 time-steps in memory for selection"


def _measured_fraction_heat3d() -> float:
    # Mid-simulation field: enough temperature structure to be
    # representative (the first steps are near-constant and compress to
    # almost nothing, which would flatter the ratio).
    sim = Heat3D((16, 16, 64), seed=1)
    for _ in range(60):
        step = sim.advance()
    t = step.fields["temperature"]
    index = BitmapIndex.build(t, PrecisionBinning.from_data(t, digits=1))
    return index.nbytes / t.nbytes


def _measured_fraction_lulesh() -> float:
    # Mid-blast state: the 12 arrays carry a developed shock structure.
    sim = LuleshProxy((10, 10, 10), seed=1)
    for _ in range(50):
        step = sim.advance()
    payload = step.concatenated()
    index = BitmapIndex.build(payload, common_binning([payload], bins=96))
    return index.nbytes / payload.nbytes


def generate_table() -> list[list[object]]:
    frac_h = _measured_fraction_heat3d()
    frac_l = _measured_fraction_lulesh()
    configs = [
        ("heat3d-6.4GB", 6.4e9, frac_h, 6.4e9, 0.0),
        ("heat3d-1.6GB", 1.6e9, frac_h, 1.6e9, 0.0),
        # Lulesh: intermediate = 1 step; substrate = edge arrays (~2x nodes)
        ("lulesh-6.14GB", 6.14e9, frac_l, 6.14e9, 2.0 * 6.14e9),
        ("lulesh-0.77GB", 0.768e9, frac_l, 0.768e9, 2.0 * 0.768e9),
    ]
    rows: list[list[object]] = []
    for name, step_bytes, frac, intermediate, substrate in configs:
        full = fulldata_resident_model(step_bytes, WINDOW, intermediate, substrate)
        bm = bitmap_resident_model(
            step_bytes, frac * step_bytes, WINDOW, intermediate, substrate
        )
        rows.append(
            [name, full / 2**30, bm / 2**30, frac, full / bm]
        )
    return rows


def test_figure11_table(benchmark):
    rows = benchmark.pedantic(generate_table, rounds=1, iterations=1)
    text = format_table(
        "Figure 11 -- peak resident memory, 10-step window "
        "(GiB; bitmap fraction measured from real indices)",
        ["config", "fulldata_GiB", "bitmaps_GiB", "bm_fraction", "ratio"],
        rows,
    )
    save_table("fig11_memory", text)
    by_name = {r[0]: r[-1] for r in rows}
    # Paper: 3.59x / 3.39x for Heat3D, 2.02x / 1.99x for Lulesh.  The exact
    # ratio tracks the measured compression fraction, which at laptop scale
    # is somewhat better than the paper's (shorter value ranges per step),
    # so the band is generous on the high side.
    assert 2.5 < by_name["heat3d-6.4GB"] < 5.5
    assert 1.4 < by_name["lulesh-6.14GB"] < 2.8
    # Lulesh's substrate memory dilutes the advantage below Heat3D's.
    assert by_name["lulesh-6.14GB"] < by_name["heat3d-6.4GB"]


def test_measured_pipeline_peaks(benchmark):
    """Real MemoryTracker peaks: bitmap mode resident << full-data mode."""

    def run():
        peaks = {}
        for mode in ("bitmap", "fulldata"):
            sim = Heat3D((12, 12, 48), seed=3)
            pipe = InSituPipeline(
                sim, PrecisionBinning(19.0, 101.0, digits=1),
                CONDITIONAL_ENTROPY, mode=mode,
            )
            peaks[mode] = pipe.run(WINDOW, 3).memory.peak_bytes
        return peaks

    peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    assert peaks["bitmap"] < 0.6 * peaks["fulldata"]
