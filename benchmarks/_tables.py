"""Shared table formatting/saving for the per-figure benchmarks.

Every ``bench_figXX_*.py`` regenerates one figure/table of the paper's §5
and writes its rows to ``benchmarks/results/figXX.txt`` (also echoed to
stdout when pytest runs with ``-s``).  EXPERIMENTS.md quotes these files.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(title: str, headers: list[str], rows: list[list[object]]) -> str:
    """Fixed-width table with a title line."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    rendered: list[list[str]] = []
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row has {len(row)} cells, expected {cols}")
        cells = [
            f"{c:.3f}" if isinstance(c, float) else str(c) for c in row
        ]
        rendered.append(cells)
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def save_table(name: str, text: str) -> Path:
    """Write a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
